// Quickstart: one instance, all four instantiations of the unified
// algorithm.
//
// Builds the paper's running example (Eq. (1) + Figure 1), then solves
// Bag-Set Maximization, Probabilistic Query Evaluation, Shapley value
// computation, and resilience — each a different 2-monoid plugged into the
// same Algorithm 1.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  // ---- The query (paper Eq. (1)) -------------------------------------
  const ConjunctiveQuery query =
      ParseQueryOrDie("Q() :- R(A,B), S(A,C), T(A,C,D).");
  std::printf("query:        %s\n", query.ToString().c_str());
  std::printf("hierarchical: %s\n", IsHierarchical(query) ? "yes" : "no");

  auto plan = EliminationPlan::Build(query);
  std::printf("\nelimination plan (Proposition 5.1):\n%s\n",
              plan->ToString(query.variables()).c_str());

  // ---- The data (Figure 1) -------------------------------------------
  Database d = *LoadDatabase(R"(
    R(1,5)
    S(1,1)
    S(1,2)
    T(1,2,4)
  )",
                             nullptr);
  Database repair = *LoadDatabase(R"(
    R(1,6)
    R(1,7)
    T(1,1,4)
    T(1,2,9)
  )",
                                  nullptr);

  // ---- 1. Bag-Set Maximization (Definition 4.1, θ = 2) ----------------
  auto bagset = MaximizeBagSet(query, d, repair, 2);
  std::printf("\n[bag-set maximization]  Q(D) = %llu",
              static_cast<unsigned long long>(bagset->profile[0]));
  std::printf("  ->  optimum at budget 2: %llu\n",
              static_cast<unsigned long long>(bagset->max_multiplicity));
  auto witness = ExtractOptimalRepair(query, d, repair, 2);
  std::printf("  optimal repair adds:");
  for (const Fact& f : *witness) {
    std::printf(" %s", f.ToString().c_str());
  }
  std::printf("\n");

  // ---- 2. Probabilistic Query Evaluation ------------------------------
  TidDatabase tid;
  for (const Fact& f : d.AllFacts()) {
    tid.AddFactOrDie(f.relation, f.tuple, 0.9);
  }
  auto probability = EvaluateProbability(query, tid);
  std::printf("\n[probabilistic evaluation]  each fact at p=0.9:  "
              "Pr[Q] = %.6f\n",
              *probability);

  // ---- 3. Shapley values ----------------------------------------------
  auto shapley = AllShapleyValues(query, /*exogenous=*/Database{}, d);
  std::printf("\n[shapley values]  contribution of each fact to Q:\n");
  for (const auto& [fact, value] : *shapley) {
    std::printf("  %-12s %s  (= %.4f)\n", fact.ToString().c_str(),
                value.ToString().c_str(), value.ToDouble());
  }

  // ---- 4. Resilience (extension: §7 Question 2) ------------------------
  auto resilience = ComputeResilience(query, d);
  std::printf("\n[resilience]  minimum fact removals to falsify Q: %llu\n",
              static_cast<unsigned long long>(*resilience));

  // ---- The universal view: provenance ---------------------------------
  auto prov = ComputeProvenance(query, d);
  std::printf("\n[provenance]  lineage tree (Definition 6.2):\n  %s\n",
              prov->tree->ToString().c_str());
  std::printf("  (f<i> is fact #i; the tree is read-once — Lemma 6.3)\n");
  return 0;
}
