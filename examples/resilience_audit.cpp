// Scenario: supply-chain robustness audit via resilience
// (the fourth 2-monoid — hierarq's answer to the paper's Question 2).
//
// A service is "up" if some warehouse stocks a SKU, that warehouse has a
// carrier assignment, and a lane exists for that assignment. The audit
// asks: how many single facts must an adversary take out to bring the
// service down (resilience), and which contracts (exogenous facts) cannot
// be touched?
//
//   $ ./examples/resilience_audit

#include <cstdio>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  Dictionary dict;
  // Stock(W, Sku), Assigned(W, Carrier), Lane(W, Carrier, Dest).
  Database operational = *LoadDatabase(R"(
    Stock(west, anvil)
    Stock(east, anvil)
    Assigned(west, acmelog)
    Assigned(east, fastship)
    Lane(west, acmelog, denver)
    Lane(east, fastship, boston)
    Lane(east, fastship, miami)
  )",
                                       &dict);

  const ConjunctiveQuery up = ParseQueryOrDie(
      "Up() :- Stock(W, Sku), Assigned(W, C), Lane(W, C, Dest).");
  std::printf("query: %s (hierarchical: %s)\n", up.ToString().c_str(),
              IsHierarchical(up) ? "yes" : "no");
  std::printf("service is currently %s\n\n",
              EvaluateBoolean(up, operational) ? "UP" : "DOWN");

  // All facts removable.
  auto res_all = ComputeResilience(up, operational);
  std::printf("resilience (all facts removable):      %llu\n",
              static_cast<unsigned long long>(*res_all));
  std::printf("  exhaustive check:                    %llu\n",
              static_cast<unsigned long long>(
                  BruteForceResilience(up, Database{}, operational)));

  // Carrier assignments are contractual: exogenous.
  Database contracts;
  Database mutable_facts;
  for (const Fact& f : operational.AllFacts()) {
    if (f.relation == "Assigned") {
      contracts.AddFactOrDie(f.relation, f.tuple);
    } else {
      mutable_facts.AddFactOrDie(f.relation, f.tuple);
    }
  }
  auto res_contract = ComputeResilience(up, contracts, mutable_facts);
  std::printf("\nresilience (carrier contracts protected): %llu\n",
              static_cast<unsigned long long>(*res_contract));

  // Everything protected: the query cannot be falsified.
  auto res_frozen = ComputeResilience(up, operational, Database{});
  if (*res_frozen == ResilienceMonoid::kInfinity) {
    std::printf("resilience (everything protected):        infinite — "
                "the service cannot be brought down\n");
  }

  // Per-region report via constants.
  std::printf("\nper-warehouse single-points-of-failure:\n");
  for (const char* wh : {"west", "east"}) {
    const Value v = *dict.Find(wh);
    const ConjunctiveQuery regional = ParseQueryOrDie(
        "Up() :- Stock(" + std::to_string(v) + ", Sku), Assigned(" +
        std::to_string(v) + ", C), Lane(" + std::to_string(v) +
        ", C, Dest).");
    auto r = ComputeResilience(regional, operational);
    std::printf("  %-5s resilience = %llu\n", wh,
                static_cast<unsigned long long>(*r));
  }
  return 0;
}
