// Scenario: probabilistic query evaluation over a noisy sensor network.
//
// A facility deploys sensors; each sensor is online with some probability
// and produces event readings with per-reading confidence. The operator
// asks: "what is the probability that some deployed sensor reported some
// event?" — a hierarchical SJF-BCQ over a tuple-independent database,
// solved exactly in linear time (Theorem 5.8).
//
//   $ ./examples/sensor_network

#include <cstdio>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  Dictionary dict;
  // Deployed(S) @ p: sensor S is online with probability p.
  // Reading(S, E) @ p: sensor S reported event E with confidence p.
  TidDatabase network = *LoadTidDatabase(R"(
    Deployed(s1) @ 0.99
    Deployed(s2) @ 0.95
    Deployed(s3) @ 0.60

    Reading(s1, smoke)     @ 0.15
    Reading(s1, motion)    @ 0.40
    Reading(s2, smoke)     @ 0.70
    Reading(s3, intrusion) @ 0.90
    Reading(s3, motion)    @ 0.25
  )",
                                         &dict);

  const ConjunctiveQuery alert =
      ParseQueryOrDie("Alert() :- Deployed(S), Reading(S, E).");
  std::printf("query: %s   (hierarchical: %s)\n",
              alert.ToString().c_str(),
              IsHierarchical(alert) ? "yes" : "no");

  auto p = EvaluateProbability(alert, network);
  std::printf("Pr[some online sensor reported some event] = %.6f\n", *p);

  // Cross-check on this small instance with possible-world enumeration.
  const double brute = BruteForcePqe(alert, network);
  std::printf("possible-worlds cross-check              = %.6f  (%s)\n",
              brute, std::abs(*p - brute) < 1e-9 ? "match" : "MISMATCH");

  // Drill-down: per-sensor alert probabilities via constants.
  std::printf("\nper-sensor drill-down:\n");
  for (const char* sensor : {"s1", "s2", "s3"}) {
    const Value v = *dict.Find(sensor);
    const std::string text = std::string("Alert() :- Deployed(") +
                             std::to_string(v) + "), Reading(" +
                             std::to_string(v) + ", E).";
    const ConjunctiveQuery per_sensor = ParseQueryOrDie(text);
    auto ps = EvaluateProbability(per_sensor, network);
    std::printf("  %-3s Pr[online and reporting] = %.6f\n", sensor, *ps);
  }

  // What-if: hardening sensor s3 (probability 0.60 -> 0.99).
  TidDatabase hardened = network;
  hardened.AddFactOrDie("Deployed", MakeTuple({*dict.Find("s3")}), 0.99);
  auto p2 = EvaluateProbability(alert, hardened);
  std::printf("\nwhat-if: hardening s3 to 0.99 lifts Pr[alert] "
              "%.6f -> %.6f\n",
              *p, *p2);
  return 0;
}
