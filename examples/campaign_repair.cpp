// Scenario: budgeted catalog repair maximizing matched offers
// (Bag-Set Maximization, Definition 4.1).
//
// A marketplace matches offers by a three-way join: a seller listing, a
// category placement, and a shipping route. Each satisfied join witness is
// one purchasable offer. The growth team may add at most θ new facts from
// a vetted backlog (the repair database Dr) — which ones maximize the
// number of offers? Exactly the paper's Bag-Set Maximization problem;
// hierarq also extracts an optimal set of facts to add, and supports
// non-unit acquisition costs.
//
//   $ ./examples/campaign_repair

#include <cstdio>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  Dictionary dict;
  // Listing(Seller, Item), Placed(Seller, Cat), Ships(Seller, Cat, Route).
  Database current = *LoadDatabase(R"(
    Listing(acme, anvil)
    Placed(acme, tools)
    Placed(acme, garden)
    Ships(acme, tools, land)
  )",
                                   &dict);
  Database backlog = *LoadDatabase(R"(
    Listing(acme, rocket)
    Listing(acme, magnet)
    Ships(acme, garden, land)
    Ships(acme, tools, air)
    Placed(acme, toys)
  )",
                                   &dict);

  const ConjunctiveQuery offers = ParseQueryOrDie(
      "Offers() :- Listing(S, I), Placed(S, C), Ships(S, C, R).");
  std::printf("query: %s\n", offers.ToString().c_str());

  const size_t budget = 2;
  auto result = MaximizeBagSet(offers, current, backlog, budget);
  std::printf("\ncurrent offers:            %llu\n",
              static_cast<unsigned long long>(result->profile[0]));
  for (size_t b = 1; b <= budget; ++b) {
    std::printf("best with %zu addition(s):   %llu\n", b,
                static_cast<unsigned long long>(result->profile[b]));
  }

  auto render = [&dict](const Fact& f) {
    std::string out = f.relation + "(";
    for (size_t i = 0; i < f.tuple.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += dict.Render(f.tuple[i]);
    }
    return out + ")";
  };

  auto picks = ExtractOptimalRepair(offers, current, backlog, budget);
  std::printf("\noptimal additions (budget %zu):\n", budget);
  for (const Fact& f : *picks) {
    std::printf("  + %s\n", render(f).c_str());
  }

  // Weighted variant: vendor onboarding for new categories costs 2 units.
  RepairCosts costs;
  for (const Fact& f : backlog.AllFacts()) {
    if (f.relation == "Placed") {
      costs[f] = 2;
    }
  }
  auto weighted = MaximizeBagSet(offers, current, backlog, budget, &costs);
  std::printf("\nwith category placements costing 2 units, best at "
              "budget %zu: %llu offers\n",
              budget,
              static_cast<unsigned long long>(weighted->max_multiplicity));

  // Sanity check against exhaustive search (small instance).
  const BagMaxVec brute =
      BruteForceBagSetMax(offers, current, backlog, budget);
  std::printf("\nexhaustive check: optimum %llu (%s)\n",
              static_cast<unsigned long long>(brute.back()),
              brute == result->profile ? "matches" : "MISMATCH");
  return 0;
}
