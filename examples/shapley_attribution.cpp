// Scenario: fact attribution in a bibliography database via Shapley values.
//
// A curator maintains a citation database and wants to know which facts
// are responsible for the (Boolean) observation "some PODS paper is cited
// by some journal paper". Shapley values give a principled, axiomatic
// answer; hierarq computes them exactly (as rationals) in polynomial time
// via the #Sat 2-monoid (Theorem 5.16).
//
//   $ ./examples/shapley_attribution

#include <algorithm>
#include <cstdio>
#include <vector>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  Dictionary dict;
  // VenueOf(P, V): paper P appeared at venue V      (curated: exogenous)
  // Cites(P, Q): paper P cites paper Q              (scraped: endogenous)
  // JournalPaper(P): P appeared in a journal        (scraped: endogenous)
  Database exogenous = *LoadDatabase(R"(
    VenueOf(p1, pods)
    VenueOf(p2, pods)
    VenueOf(p3, sigmod)
  )",
                                     &dict);
  Database endogenous = *LoadDatabase(R"(
    JournalPaper(j1)
    JournalPaper(j2)
    Cites(j1, p1)
    Cites(j1, p3)
    Cites(j2, p2)
    Cites(j2, p9)
  )",
                                      &dict);

  // "Some paper cites some PODS paper." (The JournalPaper facts are
  // endogenous but irrelevant to this query — the null-player axiom says
  // their Shapley value must come out 0, and it does.)
  const Value pods = *dict.Find("pods");
  const ConjunctiveQuery query = ParseQueryOrDie(
      "Q() :- Cites(J, P), VenueOf(P, " + std::to_string(pods) + ").");
  std::printf("query: some paper cites a PODS paper\n");
  std::printf("       %s (hierarchical: %s)\n\n", query.ToString().c_str(),
              IsHierarchical(query) ? "yes" : "no");

  // Render facts with the dictionary for readability.
  auto render = [&dict](const Fact& f) {
    std::string out = f.relation + "(";
    for (size_t i = 0; i < f.tuple.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += dict.Render(f.tuple[i]);
    }
    return out + ")";
  };

  auto values = AllShapleyValues(query, exogenous, endogenous);
  std::vector<std::pair<Fact, Fraction>> ranked = *values;
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return b.second < a.second; });

  std::printf("%-22s %-10s %s\n", "fact (endogenous)", "shapley", "exact");
  Fraction total;
  for (const auto& [fact, value] : ranked) {
    std::printf("%-22s %-10.4f %s\n", render(fact).c_str(),
                value.ToDouble(), value.ToString().c_str());
    total += value;
  }
  std::printf("%-22s %-10.4f %s   (efficiency: equals Q(D)-Q(Dx))\n",
              "TOTAL", total.ToDouble(), total.ToString().c_str());

  // The #Sat view underneath (Definition 5.13).
  auto counts = CountSat(query, exogenous, endogenous);
  std::printf("\n#Sat(k) — size-k endogenous subsets satisfying Q:\n  ");
  for (size_t k = 0; k < counts->size(); ++k) {
    std::printf("k=%zu:%s  ", k, (*counts)[k].ToString().c_str());
  }
  std::printf("\n");
  return 0;
}
