// Tour of the universal provenance 2-monoid (paper §6).
//
// Runs Algorithm 1 once with the provenance monoid to obtain the query's
// lineage tree, then *replays* the tree through the φ-homomorphism of
// Theorem 6.4 in four concrete monoids — probability, counting, bag-max
// and resilience — and shows the replayed values coincide with direct
// runs. This is the paper's correctness argument, executable.
//
//   $ ./examples/provenance_tour

#include <cstdio>

#include "hierarq/hierarq.h"

using namespace hierarq;  // NOLINT: example brevity.

int main() {
  const ConjunctiveQuery query =
      ParseQueryOrDie("Q() :- R(A,B), S(A,C), T(A,C,D).");
  Database db = *LoadDatabase(R"(
    R(1,5)
    R(2,5)
    S(1,1)
    S(1,2)
    S(2,1)
    T(1,2,4)
    T(2,1,8)
  )",
                              nullptr);

  auto prov = ComputeProvenance(query, db);
  std::printf("query:   %s\n", query.ToString().c_str());
  std::printf("lineage: %s\n\n", prov->tree->ToString().c_str());
  std::printf("symbols:\n");
  for (size_t i = 0; i < prov->facts.size(); ++i) {
    std::printf("  f%zu = %s\n", i, prov->facts[i].ToString().c_str());
  }

  std::printf("\nstructure: %zu nodes, depth %zu, decomposable: %s "
              "(Lemma 6.3)\n",
              prov->tree->NumNodes(), prov->tree->Depth(),
              prov->tree->IsDecomposable() ? "yes" : "no");

  // --- φ-replay vs direct runs (Theorem 6.4) ---------------------------
  std::printf("\nTheorem 6.4 in action — φ(lineage) vs direct run:\n");

  {
    const ProbMonoid m;
    const double via_phi = EvalTreeInMonoid(
        m, *prov->tree, [](uint64_t) { return 0.5; });
    TidDatabase tid;
    for (const Fact& f : db.AllFacts()) {
      tid.AddFactOrDie(f.relation, f.tuple, 0.5);
    }
    auto direct = EvaluateProbability(query, tid);
    std::printf("  probability (p=0.5):  φ=%.6f  direct=%.6f\n", via_phi,
                *direct);
  }
  {
    const CountMonoid m;
    const uint64_t via_phi = EvalTreeInMonoid(
        m, *prov->tree, [](uint64_t) -> uint64_t { return 1; });
    std::printf("  bag-set count:        φ=%llu  direct=%llu\n",
                static_cast<unsigned long long>(via_phi),
                static_cast<unsigned long long>(BagSetCount(query, db)));
  }
  {
    const ResilienceMonoid m;
    const uint64_t via_phi = EvalTreeInMonoid(
        m, *prov->tree, [](uint64_t) -> uint64_t { return 1; });
    auto direct = ComputeResilience(query, db);
    std::printf("  resilience:           φ=%llu  direct=%llu\n",
                static_cast<unsigned long long>(via_phi),
                static_cast<unsigned long long>(*direct));
  }
  {
    const BagMaxMonoid m(2);
    const BagMaxVec via_phi = EvalTreeInMonoid(
        m, *prov->tree, [&m](uint64_t) { return m.One(); });
    std::printf("  bag-max profile(1s):  φ=%s  (all facts present)\n",
                BagMaxMonoid::ToString(via_phi).c_str());
  }

  // --- Why lineage is useful on its own --------------------------------
  // Counterfactuals without re-running the engine: evaluate the Boolean
  // lineage under deletions.
  std::printf("\ncounterfactuals from the lineage alone:\n");
  for (size_t drop = 0; drop < prov->facts.size(); ++drop) {
    const bool still_true = EvalTreeBool(
        *prov->tree, [&](uint64_t s) { return s != drop; });
    std::printf("  without %-10s Q is %s\n",
                prov->facts[drop].ToString().c_str(),
                still_true ? "still true" : "FALSE");
  }
  return 0;
}
