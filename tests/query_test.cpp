// Unit tests for the query model and parser.

#include <gtest/gtest.h>

#include "hierarq/query/parser.h"
#include "hierarq/query/query.h"

namespace hierarq {
namespace {

TEST(VariableTable, InternIsIdempotent) {
  VariableTable t;
  const VarId a = t.Intern("A");
  const VarId b = t.Intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("A"), a);
  EXPECT_EQ(t.Name(a), "A");
  EXPECT_EQ(t.Name(b), "B");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Find("B"), b);
  EXPECT_FALSE(t.Find("C").has_value());
}

TEST(Atom, VarsAndConstants) {
  VariableTable t;
  const VarId a = t.Intern("A");
  Atom atom("R", {Term::Var(a), Term::Const(7), Term::Var(a)});
  EXPECT_EQ(atom.relation(), "R");
  EXPECT_EQ(atom.arity(), 3u);
  EXPECT_TRUE(atom.HasConstants());
  EXPECT_EQ(atom.vars(), (VarSet{a}));
  EXPECT_EQ(atom.PositionsOf(a), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(atom.ToString(t), "R(A,7,A)");
}

TEST(Parser, PaperQuery) {
  auto q = ParseQuery("Q() :- R(A,B), S(A,C), T(A,C,D).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_atoms(), 3u);
  EXPECT_EQ(q->AllVars().size(), 4u);
  EXPECT_EQ(q->ToString(), "Q() :- R(A,B), S(A,C), T(A,C,D)");
}

TEST(Parser, HeadIsOptional) {
  auto q = ParseQuery("R(A,B), S(B)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_atoms(), 2u);
}

TEST(Parser, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("R(A)").ok());
  EXPECT_TRUE(ParseQuery("R(A).").ok());
}

TEST(Parser, NullaryAtom) {
  auto q = ParseQuery("Q() :- R()");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].arity(), 0u);
  EXPECT_TRUE(q->AllVars().empty());
}

TEST(Parser, Constants) {
  auto q = ParseQuery("R(A, 3), S(A, -1)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->atoms()[0].HasConstants());
  EXPECT_EQ(q->atoms()[0].terms()[1].constant(), 3);
  EXPECT_EQ(q->atoms()[1].terms()[1].constant(), -1);
}

TEST(Parser, RepeatedVariableWithinAtom) {
  auto q = ParseQuery("R(A, A)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].vars().size(), 1u);
}

TEST(Parser, RejectsSelfJoins) {
  auto q = ParseQuery("R(A), R(B)");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, RejectsMalformed) {
  EXPECT_EQ(ParseQuery("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("R(A").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("R A)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("Q(X) :- R(X)").status().code(),
            StatusCode::kParseError);  // Head must be nullary.
  EXPECT_EQ(ParseQuery("R(,)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("R(A), , S(B)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("1R(A)").status().code(), StatusCode::kParseError);
}

TEST(Parser, LowercaseTokenIsNotAVariable) {
  // Lowercase identifiers are rejected as values in queries (only integer
  // constants are supported there).
  EXPECT_FALSE(ParseQuery("R(alice)").ok());
}

TEST(Query, AtomsOfVariable) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  const VarId a = *q.variables().Find("A");
  const VarId d = *q.variables().Find("D");
  EXPECT_EQ(q.AtomsOf(a), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(q.AtomsOf(d), (std::vector<size_t>{2}));
}

TEST(Query, AtomIndexOf) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(A,B)");
  EXPECT_EQ(q.AtomIndexOf("R"), 0u);
  EXPECT_EQ(q.AtomIndexOf("S"), 1u);
  EXPECT_FALSE(q.AtomIndexOf("T").has_value());
}

TEST(Query, ConnectedComponentsSingle) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(B,C), T(C)");
  const auto components = q.ConnectedComponents();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 3u);
}

TEST(Query, ConnectedComponentsDisconnected) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(B), T(B,C), U()");
  const auto components = q.ConnectedComponents();
  // {R}, {S,T}, {U}.
  ASSERT_EQ(components.size(), 3u);
  EXPECT_FALSE(q.IsConnected());
}

TEST(Query, ConnectedViaSharedVariableOnly) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,X), S(B,X)");
  EXPECT_TRUE(q.IsConnected());
}

}  // namespace
}  // namespace hierarq
