// Tests for K-annotated relations and the query-driven annotation builder.

#include <gtest/gtest.h>

#include "hierarq/algebra/semirings.h"
#include "hierarq/data/annotated.h"
#include "hierarq/query/parser.h"

namespace hierarq {
namespace {

TEST(AnnotatedRelation, SetFindContains) {
  AnnotatedRelation<int> rel(VarSet{0, 1});
  EXPECT_TRUE(rel.empty());
  rel.Set(MakeTuple({1, 2}), 42);
  EXPECT_EQ(rel.size(), 1u);
  ASSERT_NE(rel.Find(MakeTuple({1, 2})), nullptr);
  EXPECT_EQ(*rel.Find(MakeTuple({1, 2})), 42);
  EXPECT_EQ(rel.Find(MakeTuple({2, 1})), nullptr);
  EXPECT_TRUE(rel.Contains(MakeTuple({1, 2})));
  rel.Set(MakeTuple({1, 2}), 7);  // Overwrite.
  EXPECT_EQ(*rel.Find(MakeTuple({1, 2})), 7);
}

TEST(AnnotatedRelation, MergeCombines) {
  AnnotatedRelation<int> rel(VarSet{0});
  auto add = [](int a, int b) { return a + b; };
  rel.Merge(MakeTuple({5}), 1, add);
  rel.Merge(MakeTuple({5}), 2, add);
  rel.Merge(MakeTuple({6}), 10, add);
  EXPECT_EQ(*rel.Find(MakeTuple({5})), 3);
  EXPECT_EQ(*rel.Find(MakeTuple({6})), 10);
}

TEST(AnnotatedRelation, Clear) {
  AnnotatedRelation<int> rel(VarSet{0});
  rel.Set(MakeTuple({1}), 1);
  rel.Clear();
  EXPECT_TRUE(rel.empty());
}

TEST(AnnotateForQuery, SchemaIsSortedVarOrder) {
  // Atom R(B, A): schema is {A, B} in VarId order — B was interned first
  // so VarIds follow the first-occurrence order B, A.
  const ConjunctiveQuery q = ParseQueryOrDie("R(B, A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({10, 20}));  // B=10, A=20.
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_EQ(annotated.relations.size(), 1u);
  const VarId b = *q.variables().Find("B");
  const VarId a = *q.variables().Find("A");
  ASSERT_LT(b, a);  // Interning order.
  // Key is (value(B), value(A)) = (10, 20).
  EXPECT_TRUE(annotated.relations[0].Contains(MakeTuple({10, 20})));
}

TEST(AnnotateForQuery, ConstantsAreFiltered) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, 3)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  db.AddFactOrDie("R", MakeTuple({2, 4}));  // Fails the constant test.
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 1; });
  EXPECT_EQ(annotated.relations[0].size(), 1u);
  EXPECT_TRUE(annotated.relations[0].Contains(MakeTuple({1})));
}

TEST(AnnotateForQuery, RepeatedVariablesAreFiltered) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 1}));
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 1; });
  EXPECT_EQ(annotated.relations[0].size(), 1u);
  EXPECT_TRUE(annotated.relations[0].Contains(MakeTuple({1})));
}

TEST(AnnotateForQuery, MissingRelationGivesEmpty) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 1; });
  EXPECT_EQ(annotated.relations[0].size(), 1u);
  EXPECT_EQ(annotated.relations[1].size(), 0u);
  EXPECT_EQ(annotated.TotalSupport(), 1u);
}

TEST(AnnotateForQuery, ArityMismatchSkipped) {
  // A fact of the wrong arity for its atom cannot match.
  const ConjunctiveQuery q = ParseQueryOrDie("R(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 1; });
  EXPECT_EQ(annotated.TotalSupport(), 0u);
}

TEST(AnnotateForQuery, DuplicateFactsInDatabaseDoNotAbort) {
  // Regression: annotating used to hard-CHECK on duplicate annotated keys.
  // A set database dedups AddFact, so the same fact added twice must
  // annotate exactly once — and must not crash.
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, B)");
  Database db;
  EXPECT_TRUE(db.AddFactOrDie("R", MakeTuple({1, 2})));
  EXPECT_FALSE(db.AddFactOrDie("R", MakeTuple({1, 2})));  // Duplicate.
  size_t annotator_calls = 0;
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [&annotator_calls](const Fact&) -> uint64_t {
        ++annotator_calls;
        return 1;
      });
  EXPECT_EQ(annotator_calls, 1u);
  EXPECT_EQ(annotated.relations[0].size(), 1u);
  EXPECT_EQ(*annotated.relations[0].Find(MakeTuple({1, 2})), 1u);
}

TEST(AnnotateAtom, DuplicateKeysMergeWithCombiner) {
  // Bag-like inputs (a tuple list with repeats) reach the duplicate-key
  // path directly: the annotations must ⊕-combine, not abort.
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, B)");
  Relation bag("R", 2);
  // Relation dedups too, so simulate a bag by annotating the same relation
  // twice into one output.
  bag.Insert(MakeTuple({1, 2}));
  bag.Insert(MakeTuple({3, 4}));
  AnnotatedRelation<uint64_t> out(q.atoms()[0].vars());
  const auto annotator =
      std::function<uint64_t(const Fact&)>([](const Fact&) { return 3; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  AnnotateAtom<uint64_t>(q.atoms()[0], bag, annotator, plus, &out);
  AnnotateAtom<uint64_t>(q.atoms()[0], bag, annotator, plus, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(*out.Find(MakeTuple({1, 2})), 6u);  // 3 ⊕ 3, merged not fatal.
  EXPECT_EQ(*out.Find(MakeTuple({3, 4})), 6u);
}

TEST(AnnotateForQuery, ExplicitCombinerMergesDuplicateKeys) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  auto annotated = AnnotateForQuery<uint64_t>(
      q, db, [](const Fact&) -> uint64_t { return 5; },
      [](uint64_t a, uint64_t b) { return a + b; });
  EXPECT_EQ(*annotated.relations[0].Find(MakeTuple({1, 2})), 5u);
}

TEST(AnnotatedRelation, ResetKeepsRelationUsableUnderNewSchema) {
  AnnotatedRelation<int> rel(VarSet{0, 1});
  rel.Set(MakeTuple({1, 2}), 42);
  rel.Reset(VarSet{3});
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.schema(), (VarSet{3}));
  rel.Set(MakeTuple({9}), 7);
  EXPECT_EQ(*rel.Find(MakeTuple({9})), 7);
}

TEST(AnnotatedRelation, FindOrInsertSingleProbeSemantics) {
  AnnotatedRelation<int> rel(VarSet{0});
  auto [slot, inserted] = rel.FindOrInsert(MakeTuple({4}));
  EXPECT_TRUE(inserted);
  *slot = 11;
  auto [again, inserted_again] = rel.FindOrInsert(MakeTuple({4}));
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 11);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(AnnotateForQuery, AnnotatorSeesOriginalFact) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, 3)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  std::vector<Fact> seen;
  AnnotateForQuery<uint64_t>(q, db, [&seen](const Fact& f) -> uint64_t {
    seen.push_back(f);
    return 1;
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].ToString(), "R(1,3)");  // Full original tuple.
}

}  // namespace
}  // namespace hierarq
