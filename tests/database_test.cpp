// Tests for relations, databases, TID databases, and the text loader.

#include <gtest/gtest.h>

#include "hierarq/data/database.h"
#include "hierarq/data/loader.h"
#include "hierarq/data/tid_database.h"

namespace hierarq {
namespace {

TEST(Relation, InsertDeduplicates) {
  Relation r("R", 2);
  EXPECT_TRUE(r.Insert(MakeTuple({1, 2})));
  EXPECT_FALSE(r.Insert(MakeTuple({1, 2})));
  EXPECT_TRUE(r.Insert(MakeTuple({1, 3})));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(MakeTuple({1, 2})));
  EXPECT_FALSE(r.Contains(MakeTuple({2, 1})));
}

TEST(Relation, Erase) {
  Relation r("R", 1);
  r.Insert(MakeTuple({1}));
  r.Insert(MakeTuple({2}));
  EXPECT_TRUE(r.Erase(MakeTuple({1})));
  EXPECT_FALSE(r.Erase(MakeTuple({1})));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(MakeTuple({2})));
}

TEST(Relation, ToString) {
  Relation r("Edge", 2);
  r.Insert(MakeTuple({1, 2}));
  EXPECT_EQ(r.ToString(), "Edge{(1,2)}");
}

TEST(Database, AddFactCreatesRelations) {
  Database db;
  ASSERT_TRUE(db.AddFact("R", MakeTuple({1, 2})).ok());
  ASSERT_TRUE(db.AddFact("S", MakeTuple({3})).ok());
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_NE(db.FindRelation("R"), nullptr);
  EXPECT_EQ(db.FindRelation("T"), nullptr);
}

TEST(Database, ArityMismatchRejected) {
  Database db;
  ASSERT_TRUE(db.AddFact("R", MakeTuple({1, 2})).ok());
  auto bad = db.AddFact("R", MakeTuple({1}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Database, DuplicateFactReturnsFalse) {
  Database db;
  EXPECT_TRUE(*db.AddFact("R", MakeTuple({1})));
  EXPECT_FALSE(*db.AddFact("R", MakeTuple({1})));
  EXPECT_EQ(db.NumFacts(), 1u);
}

TEST(Database, ContainsAndErase) {
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  const Fact f{"R", MakeTuple({1, 2})};
  EXPECT_TRUE(db.ContainsFact(f));
  EXPECT_TRUE(db.EraseFact(f));
  EXPECT_FALSE(db.ContainsFact(f));
  EXPECT_FALSE(db.EraseFact(f));
  EXPECT_FALSE(db.EraseFact(Fact{"Nope", MakeTuple({1})}));
}

TEST(Database, AllFactsDeterministicOrder) {
  Database db;
  db.AddFactOrDie("S", MakeTuple({2}));
  db.AddFactOrDie("R", MakeTuple({1}));
  db.AddFactOrDie("R", MakeTuple({0}));
  const auto facts = db.AllFacts();
  ASSERT_EQ(facts.size(), 3u);
  // Relations iterate in name order; tuples in insertion order.
  EXPECT_EQ(facts[0].ToString(), "R(1)");
  EXPECT_EQ(facts[1].ToString(), "R(0)");
  EXPECT_EQ(facts[2].ToString(), "S(2)");
}

TEST(Database, UnionWith) {
  Database a;
  a.AddFactOrDie("R", MakeTuple({1}));
  Database b;
  b.AddFactOrDie("R", MakeTuple({2}));
  b.AddFactOrDie("S", MakeTuple({1, 1}));
  auto u = a.UnionWith(b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumFacts(), 3u);
  EXPECT_TRUE(u->ContainsFact("R", MakeTuple({1})));
  EXPECT_TRUE(u->ContainsFact("R", MakeTuple({2})));

  // Arity clash across databases is surfaced.
  Database c;
  c.AddFactOrDie("R", MakeTuple({1, 2}));
  EXPECT_FALSE(a.UnionWith(c).ok());
}

TEST(Fact, OrderingAndHash) {
  const Fact a{"R", MakeTuple({1})};
  const Fact b{"R", MakeTuple({2})};
  const Fact c{"S", MakeTuple({0})};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Fact{"R", MakeTuple({1})}));
  FactHash h;
  EXPECT_EQ(h(a), h(Fact{"R", MakeTuple({1})}));
  EXPECT_NE(h(a), h(b));
}

TEST(TidDatabase, ProbabilitiesClampedAndStored) {
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.25);
  db.AddFactOrDie("R", MakeTuple({2}), 2.0);   // Clamped to 1.
  db.AddFactOrDie("R", MakeTuple({3}), -0.5);  // Clamped to 0.
  EXPECT_DOUBLE_EQ(db.Probability(Fact{"R", MakeTuple({1})}), 0.25);
  EXPECT_DOUBLE_EQ(db.Probability(Fact{"R", MakeTuple({2})}), 1.0);
  EXPECT_DOUBLE_EQ(db.Probability(Fact{"R", MakeTuple({3})}), 0.0);
  EXPECT_DOUBLE_EQ(db.Probability(Fact{"R", MakeTuple({9})}), 0.0);
}

TEST(TidDatabase, ReAddOverwritesProbability) {
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.25);
  db.AddFactOrDie("R", MakeTuple({1}), 0.75);
  EXPECT_EQ(db.NumFacts(), 1u);
  EXPECT_DOUBLE_EQ(db.Probability(Fact{"R", MakeTuple({1})}), 0.75);
}

TEST(Loader, ParsesPlainDatabase) {
  auto db = LoadDatabase(R"(
    # Figure 1a
    R(1, 5)
    S(1, 1)
    S(1, 2)
    T(1, 2, 4)   # trailing comment
  )",
                         nullptr);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumFacts(), 4u);
  EXPECT_TRUE(db->ContainsFact("T", MakeTuple({1, 2, 4})));
}

TEST(Loader, SymbolicValuesNeedDictionary) {
  EXPECT_FALSE(LoadDatabase("R(alice)", nullptr).ok());
  Dictionary dict;
  auto db = LoadDatabase("R(alice)\nR(bob)\nS(alice, bob)", &dict);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumFacts(), 3u);
  const Value alice = *dict.Find("alice");
  EXPECT_TRUE(Dictionary::IsSymbolic(alice));
  EXPECT_TRUE(db->ContainsFact("R", MakeTuple({alice})));
  EXPECT_EQ(dict.Render(alice), "alice");
  EXPECT_EQ(dict.Render(42), "42");
}

TEST(Loader, ProbabilityAnnotationOnlyInTid) {
  EXPECT_FALSE(LoadDatabase("R(1) @ 0.5", nullptr).ok());
  auto tid = LoadTidDatabase("R(1) @ 0.5\nR(2)", nullptr);
  ASSERT_TRUE(tid.ok());
  EXPECT_DOUBLE_EQ(tid->Probability(Fact{"R", MakeTuple({1})}), 0.5);
  EXPECT_DOUBLE_EQ(tid->Probability(Fact{"R", MakeTuple({2})}), 1.0);
}

TEST(Loader, ErrorsCarryLineNumbers) {
  auto db = LoadDatabase("R(1)\nnot a fact\n", nullptr);
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("line 2"), std::string::npos);
}

TEST(Loader, EmptyAndCommentOnlyInput) {
  auto db = LoadDatabase("\n  # nothing here\n\n", nullptr);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumFacts(), 0u);
}

TEST(Loader, NullaryFacts) {
  auto db = LoadDatabase("R()", nullptr);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->ContainsFact("R", Tuple{}));
}

TEST(Dictionary, InternStable) {
  Dictionary dict;
  const Value a1 = dict.Intern("x");
  const Value a2 = dict.Intern("x");
  const Value b = dict.Intern("y");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(dict.size(), 2u);
}

}  // namespace
}  // namespace hierarq
