// Tests for GYO acyclicity and query classification (paper §5.1 contrast).

#include <gtest/gtest.h>

#include "hierarq/query/gyo.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

struct ClassifiedQuery {
  const char* text;
  QueryClass expected;
};

class ClassifyParam : public ::testing::TestWithParam<ClassifiedQuery> {};

TEST_P(ClassifyParam, Classification) {
  const ConjunctiveQuery q = ParseQueryOrDie(GetParam().text);
  EXPECT_EQ(Classify(q), GetParam().expected) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    QueryZoo, ClassifyParam,
    ::testing::Values(
        ClassifiedQuery{"R(A)", QueryClass::kHierarchical},
        ClassifiedQuery{"R(A,B), S(A,C), T(A,C,D)",
                        QueryClass::kHierarchical},
        ClassifiedQuery{"E(X,Y), F(Y,Z)", QueryClass::kHierarchical},
        // The paper's central contrast: acyclic but NOT hierarchical —
        // if Algorithm 1 worked on these, hardness results would collapse.
        ClassifiedQuery{"R(X), S(X,Y), T(Y)", QueryClass::kAcyclicOnly},
        ClassifiedQuery{"R(A,B), S(B,C), T(C,D)", QueryClass::kAcyclicOnly},
        ClassifiedQuery{"R(A,B), S(B,C), T(C,A)", QueryClass::kCyclic},
        ClassifiedQuery{"R(A,B), S(B,C), T(C,D), U(D,A)",
                        QueryClass::kCyclic},
        // The triangle with a guard atom covering all variables is
        // alpha-acyclic (absorbed by GYO) but still not hierarchical.
        ClassifiedQuery{"R(X,Y), S(Y,Z), T(Z,X), W(X,Y,Z)",
                        QueryClass::kAcyclicOnly}));

TEST(Gyo, TriangleWithGuardIsAcyclic) {
  // Adding a guard atom covering all three variables makes the triangle
  // alpha-acyclic (classic example).
  const ConjunctiveQuery q =
      ParseQueryOrDie("R(X,Y), S(Y,Z), T(Z,X), G(X,Y,Z)");
  EXPECT_TRUE(IsAcyclic(q));
  EXPECT_EQ(Classify(q), QueryClass::kAcyclicOnly);
}

TEST(Gyo, SingleAtomAlwaysAcyclic) {
  EXPECT_TRUE(IsAcyclic(ParseQueryOrDie("R(A,B,C,D)")));
  EXPECT_TRUE(IsAcyclic(ParseQueryOrDie("R()")));
}

TEST(Gyo, HierarchicalImpliesAcyclic) {
  // Strict inclusion (paper §5.1): every hierarchical query passes GYO.
  Rng rng(31337);
  for (int round = 0; round < 80; ++round) {
    RandomHierarchicalOptions opts;
    opts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 6));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, opts);
    EXPECT_TRUE(IsAcyclic(q)) << q.ToString();
    EXPECT_EQ(Classify(q), QueryClass::kHierarchical);
  }
}

TEST(Gyo, ClassNames) {
  EXPECT_STREQ(QueryClassName(QueryClass::kHierarchical), "hierarchical");
  EXPECT_STREQ(QueryClassName(QueryClass::kAcyclicOnly), "acyclic-only");
  EXPECT_STREQ(QueryClassName(QueryClass::kCyclic), "cyclic");
}

TEST(Gyo, DisconnectedAcyclicity) {
  EXPECT_TRUE(IsAcyclic(ParseQueryOrDie("R(A), S(B)")));
  EXPECT_EQ(Classify(ParseQueryOrDie("R(A,B), S(B,C), T(C,D), U(E)")),
            QueryClass::kAcyclicOnly);
}

}  // namespace
}  // namespace hierarq
