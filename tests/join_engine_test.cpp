// Tests for the bag-set-semantics join engine (ground truth Q(D)).

#include <gtest/gtest.h>

#include <map>

#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Reference implementation: enumerate all assignments Dom^vars and check
/// every atom by scanning. Exponential; for tiny instances only.
uint64_t NaiveCount(const ConjunctiveQuery& q, const Database& db,
                    const std::vector<Value>& domain) {
  const size_t nvars = q.AllVars().size();
  std::vector<size_t> idx(nvars, 0);
  uint64_t count = 0;
  while (true) {
    // Build the assignment VarId -> value.
    std::map<VarId, Value> assignment;
    for (size_t i = 0; i < nvars; ++i) {
      assignment[q.AllVars()[i]] = domain[idx[i]];
    }
    bool sat = true;
    for (const Atom& atom : q.atoms()) {
      Tuple expected;
      for (const Term& t : atom.terms()) {
        expected.push_back(t.is_constant() ? t.constant()
                                           : assignment[t.var()]);
      }
      const Relation* rel = db.FindRelation(atom.relation());
      if (rel == nullptr || !rel->Contains(expected)) {
        sat = false;
        break;
      }
    }
    count += sat;
    // Next assignment.
    size_t pos = 0;
    while (pos < nvars && ++idx[pos] == domain.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == nvars) {
      break;
    }
    if (nvars == 0) {
      break;
    }
  }
  return count;
}

TEST(JoinEngine, PaperInstance) {
  const ConjunctiveQuery q = MakePaperQuery();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 5}));
  db.AddFactOrDie("S", MakeTuple({1, 1}));
  db.AddFactOrDie("S", MakeTuple({1, 2}));
  db.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  EXPECT_EQ(BagSetCount(q, db), 1u);
  EXPECT_TRUE(EvaluateBoolean(q, db));
}

TEST(JoinEngine, MissingRelationMeansZero) {
  const ConjunctiveQuery q = MakePaperQuery();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 5}));
  EXPECT_EQ(BagSetCount(q, db), 0u);
  EXPECT_FALSE(EvaluateBoolean(q, db));
}

TEST(JoinEngine, CrossProduct) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(B), T(C)");
  Database db;
  for (int i = 0; i < 2; ++i) {
    db.AddFactOrDie("R", MakeTuple({i}));
  }
  for (int i = 0; i < 3; ++i) {
    db.AddFactOrDie("S", MakeTuple({i}));
  }
  for (int i = 0; i < 4; ++i) {
    db.AddFactOrDie("T", MakeTuple({i}));
  }
  EXPECT_EQ(BagSetCount(q, db), 24u);
}

TEST(JoinEngine, NonHierarchicalPathQuery) {
  // The engine must handle non-hierarchical queries (Algorithm 1 cannot).
  const ConjunctiveQuery q = MakeQnh();  // R(X), S(X,Y), T(Y).
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  db.AddFactOrDie("R", MakeTuple({2}));
  db.AddFactOrDie("S", MakeTuple({1, 10}));
  db.AddFactOrDie("S", MakeTuple({1, 11}));
  db.AddFactOrDie("S", MakeTuple({2, 10}));
  db.AddFactOrDie("T", MakeTuple({10}));
  EXPECT_EQ(BagSetCount(q, db), 2u);  // (1,10) and (2,10).
}

TEST(JoinEngine, TriangleQuery) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(B,C), T(C,A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({2, 3}));
  db.AddFactOrDie("T", MakeTuple({3, 1}));
  db.AddFactOrDie("T", MakeTuple({3, 9}));
  EXPECT_EQ(BagSetCount(q, db), 1u);
}

TEST(JoinEngine, ConstantsFilter) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, 3)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  db.AddFactOrDie("R", MakeTuple({1, 4}));
  db.AddFactOrDie("R", MakeTuple({2, 3}));
  EXPECT_EQ(BagSetCount(q, db), 2u);
}

TEST(JoinEngine, RepeatedVariables) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, A, B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 1, 5}));
  db.AddFactOrDie("R", MakeTuple({1, 2, 5}));
  db.AddFactOrDie("R", MakeTuple({2, 2, 5}));
  EXPECT_EQ(BagSetCount(q, db), 2u);
}

TEST(JoinEngine, NullaryAtom) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(), S(A)");
  Database db;
  db.AddFactOrDie("S", MakeTuple({1}));
  EXPECT_EQ(BagSetCount(q, db), 0u);  // R() absent.
  db.AddFactOrDie("R", Tuple{});
  EXPECT_EQ(BagSetCount(q, db), 1u);
}

TEST(JoinEngine, EnumerationMatchesCountAndStops) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(B)");
  Database db;
  for (int i = 0; i < 4; ++i) {
    db.AddFactOrDie("R", MakeTuple({i}));
    db.AddFactOrDie("S", MakeTuple({i}));
  }
  size_t seen = 0;
  EnumerateAssignments(q, db, [&seen](const std::vector<Value>& row) {
    EXPECT_EQ(row.size(), 2u);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 16u);

  // Early stop after 3 results.
  seen = 0;
  EnumerateAssignments(q, db, [&seen](const std::vector<Value>&) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

class JoinEngineRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEngineRandomized, MatchesNaiveEnumeration) {
  Rng rng(GetParam());
  std::vector<Value> domain{0, 1, 2};
  for (int round = 0; round < 15; ++round) {
    const ConjunctiveQuery q =
        MakeRandomQuery(rng, 1 + static_cast<size_t>(rng.UniformInt(0, 2)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 2)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 2)));
    DataGenOptions dopts;
    dopts.tuples_per_relation = 6;
    dopts.domain_size = domain.size();
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    EXPECT_EQ(BagSetCount(q, db), NaiveCount(q, db, domain))
        << q.ToString() << "\n"
        << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEngineRandomized,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(JoinEngine, ZipfDataStillCorrect) {
  Rng rng(808);
  const ConjunctiveQuery q = MakeQh();
  DataGenOptions dopts;
  dopts.tuples_per_relation = 50;
  dopts.domain_size = 10;
  dopts.zipf_skew = 1.2;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  std::vector<Value> domain;
  for (Value v = 0; v < 10; ++v) {
    domain.push_back(v);
  }
  EXPECT_EQ(BagSetCount(q, db), NaiveCount(q, db, domain));
}

}  // namespace
}  // namespace hierarq
