// Tests for the workload generators.

#include <gtest/gtest.h>

#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(QueryGen, FixedFamiliesHaveDocumentedShapes) {
  EXPECT_EQ(MakePaperQuery().ToString(), "Q() :- R(A,B), S(A,C), T(A,C,D)");
  EXPECT_EQ(MakeQnh().ToString(), "Q() :- R(X), S(X,Y), T(Y)");
  EXPECT_EQ(MakeQh().ToString(), "Q() :- E(X,Y), F(Y,Z)");
  EXPECT_EQ(MakeNestedChain(3).num_atoms(), 3u);
  EXPECT_EQ(MakeStarQuery(4).num_atoms(), 5u);
  EXPECT_EQ(MakeNonHierarchicalChain(2).num_atoms(), 5u);
}

TEST(QueryGen, RandomHierarchicalIsDeterministicPerSeed) {
  RandomHierarchicalOptions opts;
  opts.num_variables = 5;
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(MakeRandomHierarchical(a, opts).ToString(),
            MakeRandomHierarchical(b, opts).ToString());
}

TEST(QueryGen, RandomHierarchicalCoversBothRules) {
  // With twin_atom_prob > 0 some draw must produce duplicate-schema atoms.
  Rng rng(7);
  RandomHierarchicalOptions opts;
  opts.num_variables = 4;
  opts.twin_atom_prob = 0.9;
  bool saw_twins = false;
  for (int i = 0; i < 20 && !saw_twins; ++i) {
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, opts);
    for (size_t x = 0; x < q.num_atoms() && !saw_twins; ++x) {
      for (size_t y = x + 1; y < q.num_atoms(); ++y) {
        if (q.atoms()[x].vars() == q.atoms()[y].vars()) {
          saw_twins = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(saw_twins);
}

TEST(QueryGen, EveryVariableOccursInRandomQueries) {
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const ConjunctiveQuery q = MakeRandomQuery(rng, 3, 5, 3);
    EXPECT_EQ(q.AllVars().size(), q.variables().size());
  }
}

TEST(DataGen, RespectsSizeTargets) {
  Rng rng(13);
  const ConjunctiveQuery q = MakePaperQuery();
  DataGenOptions opts;
  opts.tuples_per_relation = 50;
  opts.domain_size = 100;
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  // Large domain: collisions are rare, so all relations are full.
  for (const auto& [name, rel] : db.relations()) {
    EXPECT_EQ(rel.size(), 50u) << name;
  }
}

TEST(DataGen, TightDomainStillTerminates) {
  Rng rng(17);
  const ConjunctiveQuery q = ParseQueryOrDie("R(A)");
  DataGenOptions opts;
  opts.tuples_per_relation = 100;
  opts.domain_size = 3;  // Only 3 possible tuples.
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  EXPECT_LE(db.NumFacts(), 3u);
  EXPECT_GE(db.NumFacts(), 1u);
}

TEST(DataGen, TidProbabilitiesInRange) {
  Rng rng(19);
  const TidDatabase db =
      RandomTidForQuery(MakePaperQuery(), rng, DataGenOptions{}, 0.2, 0.4);
  for (const auto& [fact, p] : db.AllFacts()) {
    EXPECT_GE(p, 0.2);
    EXPECT_LE(p, 0.4);
  }
}

TEST(DataGen, RepairInstancePartitionsFacts) {
  Rng rng(23);
  const RepairInstance inst =
      RandomRepairInstance(MakePaperQuery(), rng, DataGenOptions{}, 0.5);
  for (const Fact& f : inst.d.AllFacts()) {
    EXPECT_FALSE(inst.repair.ContainsFact(f));
  }
  EXPECT_GT(inst.d.NumFacts(), 0u);
  EXPECT_GT(inst.repair.NumFacts(), 0u);
}

TEST(DataGen, SplitExoEndoPartitions) {
  Rng rng(29);
  DataGenOptions opts;
  opts.tuples_per_relation = 30;
  const Database db = RandomDatabaseForQuery(MakeQh(), rng, opts);
  const auto [exo, endo] = SplitExoEndo(db, rng, 0.5);
  EXPECT_EQ(exo.NumFacts() + endo.NumFacts(), db.NumFacts());
  for (const Fact& f : exo.AllFacts()) {
    EXPECT_TRUE(db.ContainsFact(f));
    EXPECT_FALSE(endo.ContainsFact(f));
  }
}

TEST(DataGen, RandomGraphEdgeProbability) {
  Rng rng(31);
  const Graph g = RandomGraph(rng, 40, 0.3);
  const size_t possible = 40 * 39 / 2;
  EXPECT_NEAR(static_cast<double>(g.NumEdges()) / possible, 0.3, 0.08);
}

TEST(DataGen, PlantedBicliqueContainsPlant) {
  Rng rng(37);
  for (int i = 0; i < 5; ++i) {
    const Graph g = PlantedBicliqueGraph(rng, 12, 3, 0.05);
    // The plant guarantees a 3-biclique (checked by the exhaustive
    // solver in reduction_test; here we just sanity-check edge counts).
    EXPECT_GE(g.NumEdges(), 9u);
  }
}

TEST(DataGen, ZipfSkewConcentratesValues) {
  Rng rng(41);
  const ConjunctiveQuery q = ParseQueryOrDie("R(A, B)");
  DataGenOptions uniform;
  uniform.tuples_per_relation = 400;
  uniform.domain_size = 1000;
  DataGenOptions zipf = uniform;
  zipf.zipf_skew = 1.5;
  const Database u = RandomDatabaseForQuery(q, rng, uniform);
  const Database z = RandomDatabaseForQuery(q, rng, zipf);
  auto head_hits = [](const Database& db) {
    size_t hits = 0;
    for (const Fact& f : db.AllFacts()) {
      hits += f.tuple[0] < 5;
    }
    return hits;
  };
  EXPECT_GT(head_hits(z), head_hits(u) * 5);
}

}  // namespace
}  // namespace hierarq
