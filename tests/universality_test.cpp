// Theorem 6.4 for the #Sat monoid — the most delicate φ-homomorphism
// (it lacks annihilation) — plus parser/loader robustness fuzzing.

#include <gtest/gtest.h>

#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/data/loader.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(Universality, Theorem64ForSatCountMonoid) {
  // φ(provenance tree) — the generic fold with leaves mapped to 1
  // (exogenous) or ★ (endogenous) — must equal the direct #Sat run.
  Rng rng(606);
  for (int round = 0; round < 30; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 6;
    dopts.domain_size = 4;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.5);

    auto prov = ComputeProvenance(q, db);
    ASSERT_TRUE(prov.ok());

    const SatCountMonoid<uint64_t> m(endo.NumFacts());
    const auto via_phi = EvalTreeInMonoid(
        m, *prov->tree, [&](uint64_t symbol) {
          const Fact& fact = prov->facts[symbol];
          return endo.ContainsFact(fact) && !exo.ContainsFact(fact)
                     ? m.Star()
                     : m.One();
        });

    auto combined = exo.UnionWith(endo);
    ASSERT_TRUE(combined.ok());
    auto direct = RunAlgorithm1OnQuery<SatCountMonoid<uint64_t>>(
        q, m, *combined, [&](const Fact& fact) {
          return exo.ContainsFact(fact) ? m.One() : m.Star();
        });
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_phi, *direct) << q.ToString();
  }
}

TEST(Universality, BigUintAndUint64CountsAgreeModulo64) {
  // The fast counter is the exact counter reduced mod 2^64.
  Rng rng(607);
  for (int round = 0; round < 15; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 8;
    dopts.domain_size = 4;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const size_t n = db.NumFacts();

    const SatCountMonoid<BigUint> exact(n);
    const SatCountMonoid<uint64_t> fast(n);
    auto exact_out = RunAlgorithm1OnQuery<SatCountMonoid<BigUint>>(
        q, exact, db, [&](const Fact&) { return exact.Star(); });
    auto fast_out = RunAlgorithm1OnQuery<SatCountMonoid<uint64_t>>(
        q, fast, db, [&](const Fact&) { return fast.Star(); });
    ASSERT_TRUE(exact_out.ok());
    ASSERT_TRUE(fast_out.ok());
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_EQ(exact_out->on_true[k].Low64(), fast_out->on_true[k]);
      EXPECT_EQ(exact_out->on_false[k].Low64(), fast_out->on_false[k]);
    }
  }
}

TEST(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(608);
  const char alphabet[] = "RSTABXYZ(),:-. 0123456789'qe";
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 40));
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.UniformInt(0, sizeof(alphabet) - 2)];
    }
    // Must return, never crash; errors are fine.
    auto result = ParseQuery(input);
    if (result.ok()) {
      // Whatever parsed must round-trip through its own ToString.
      auto again = ParseQuery(result->ToString());
      EXPECT_TRUE(again.ok()) << input << " -> " << result->ToString();
    }
  }
}

TEST(ParserFuzz, MutatedValidQueries) {
  Rng rng(609);
  const std::string base = "Q() :- R(A,B), S(A,C), T(A,C,D).";
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = base;
    const size_t edits = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    for (size_t e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, '(');
          break;
        default:
          mutated[pos] = ',';
          break;
      }
    }
    auto result = ParseQuery(mutated);  // Must not crash.
    (void)result;
  }
}

TEST(LoaderFuzz, RandomGarbageNeverCrashes) {
  Rng rng(610);
  const char alphabet[] = "RST(),@.# 0123456789ab\n";
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 60));
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.UniformInt(0, sizeof(alphabet) - 2)];
    }
    Dictionary dict;
    auto db = LoadDatabase(input, &dict);
    auto tid = LoadTidDatabase(input, &dict);
    (void)db;
    (void)tid;
  }
}

}  // namespace
}  // namespace hierarq
