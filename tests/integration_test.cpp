// Cross-solver integration tests: all four instantiations run on the same
// instances and their outputs must be mutually consistent.

#include <gtest/gtest.h>

#include "hierarq/core/bagset.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"
#include "hierarq/data/loader.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

struct SharedInstance {
  ConjunctiveQuery query;
  Database db;
};

SharedInstance Draw(Rng& rng) {
  RandomHierarchicalOptions qopts;
  qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
  SharedInstance out{MakeRandomHierarchical(rng, qopts), Database{}};
  DataGenOptions dopts;
  dopts.tuples_per_relation = 8;
  dopts.domain_size = 4;
  out.db = RandomDatabaseForQuery(out.query, rng, dopts);
  return out;
}

TEST(Integration, CertainTidMatchesBooleanEvaluation) {
  // PQE with all probabilities 1 must equal [Q true].
  Rng rng(1001);
  for (int round = 0; round < 20; ++round) {
    const SharedInstance inst = Draw(rng);
    TidDatabase tid;
    for (const Fact& f : inst.db.AllFacts()) {
      tid.AddFactOrDie(f.relation, f.tuple, 1.0);
    }
    auto p = EvaluateProbability(inst.query, tid);
    ASSERT_TRUE(p.ok());
    EXPECT_DOUBLE_EQ(*p, EvaluateBoolean(inst.query, inst.db) ? 1.0 : 0.0)
        << inst.query.ToString();
  }
}

TEST(Integration, ResilienceZeroIffQueryFalse) {
  Rng rng(1002);
  for (int round = 0; round < 20; ++round) {
    const SharedInstance inst = Draw(rng);
    auto r = ComputeResilience(inst.query, inst.db);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r == 0, !EvaluateBoolean(inst.query, inst.db))
        << inst.query.ToString();
  }
}

TEST(Integration, SatCountAtFullSizeIsQueryTruth) {
  // #Sat(n, true) = 1 iff Q holds on Dx ∪ Dn (only one subset of size n).
  Rng rng(1003);
  for (int round = 0; round < 20; ++round) {
    const SharedInstance inst = Draw(rng);
    const auto [exo, endo] = SplitExoEndo(inst.db, rng, 0.5);
    auto counts = CountSat(inst.query, exo, endo);
    ASSERT_TRUE(counts.ok());
    const bool sat = EvaluateBoolean(inst.query, inst.db);
    EXPECT_EQ(counts->back(), BigUint(sat ? 1 : 0)) << inst.query.ToString();
  }
}

TEST(Integration, BagMaxAtZeroBudgetEqualsCountingRun) {
  Rng rng(1004);
  for (int round = 0; round < 20; ++round) {
    const SharedInstance inst = Draw(rng);
    auto profile = MaximizeBagSet(inst.query, inst.db, Database{}, 0);
    ASSERT_TRUE(profile.ok());
    auto count = BagSetCountHierarchical(inst.query, inst.db);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(profile->max_multiplicity, *count);
  }
}

TEST(Integration, ProvenanceSupportEqualsUsefulFactCount) {
  // Facts outside the lineage support contribute to no assignment.
  Rng rng(1005);
  for (int round = 0; round < 10; ++round) {
    const SharedInstance inst = Draw(rng);
    auto prov = ComputeProvenance(inst.query, inst.db);
    ASSERT_TRUE(prov.ok());
    EXPECT_EQ(prov->facts.size(), inst.db.NumFacts());
    EXPECT_LE(prov->tree->Support().size(), prov->facts.size());
  }
}

TEST(Integration, LoaderToSolversEndToEnd) {
  // Figure 1 via the text loader, through all four solvers.
  auto d = LoadDatabase(R"(
    R(1,5)
    S(1,1)
    S(1,2)
    T(1,2,4)
  )",
                        nullptr);
  ASSERT_TRUE(d.ok());
  auto dr = LoadDatabase(R"(
    R(1,6)
    R(1,7)
    T(1,1,4)
    T(1,2,9)
  )",
                         nullptr);
  ASSERT_TRUE(dr.ok());
  const ConjunctiveQuery q = MakePaperQuery();

  auto bagset = MaximizeBagSet(q, *d, *dr, 2);
  ASSERT_TRUE(bagset.ok());
  EXPECT_EQ(bagset->max_multiplicity, 4u);

  auto resilience = ComputeResilience(q, *d);
  ASSERT_TRUE(resilience.ok());
  EXPECT_EQ(*resilience, 1u);

  auto tid = LoadTidDatabase(R"(
    R(1,5) @ 0.5
    S(1,1) @ 0.5
    S(1,2) @ 0.5
    T(1,2,4) @ 0.5
  )",
                             nullptr);
  ASSERT_TRUE(tid.ok());
  auto p = EvaluateProbability(q, *tid);
  ASSERT_TRUE(p.ok());
  // Pr = p_R · (p_S2 · p_T) (S(1,1) has no matching T(1,1,_)).
  EXPECT_NEAR(*p, 0.5 * (0.5 * 0.5), 1e-12);

  auto shapley = AllShapleyValues(q, Database{}, *d);
  ASSERT_TRUE(shapley.ok());
  Fraction sum;
  for (const auto& [fact, value] : *shapley) {
    sum += value;
  }
  EXPECT_EQ(sum, Fraction(1));  // Q flips from false to true: efficiency.
  // S(1,1) participates in no assignment: null player.
  for (const auto& [fact, value] : *shapley) {
    if (fact == (Fact{"S", MakeTuple({1, 1})})) {
      EXPECT_EQ(value, Fraction(0));
    } else {
      EXPECT_GT(value, Fraction(0));
    }
  }
}

TEST(Integration, SymbolicDataEndToEnd) {
  // Symbolic (string) values flow through the whole pipeline.
  Dictionary dict;
  auto db = LoadDatabase(R"(
    Author(alice, p1)
    Author(bob, p1)
    Cites(p1, p2)
  )",
                         &dict);
  ASSERT_TRUE(db.ok());
  const ConjunctiveQuery q = ParseQueryOrDie("Author(A, P), Cites(P, O)");
  EXPECT_EQ(BagSetCount(q, *db), 2u);
  auto count = BagSetCountHierarchical(q, *db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST(Integration, AllSolversAgreeOnEmptyDatabase) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto p = EvaluateProbability(q, TidDatabase{});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 0.0);
  auto r = ComputeResilience(q, Database{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  auto b = MaximizeBagSet(q, Database{}, Database{}, 3);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->max_multiplicity, 0u);
  auto s = CountSat(q, Database{}, Database{});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 1u);
  EXPECT_EQ((*s)[0], BigUint(0));
}

}  // namespace
}  // namespace hierarq
