// Tests for Algorithm 1 itself: the universality theorem (6.4), the
// decomposability lemma (6.3), the support lemma (6.6) and the operation
// bound (Theorem 6.7) — all on random hierarchical instances.

#include <gtest/gtest.h>

#include <algorithm>

#include "hierarq/query/parser.h"

#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/provenance.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/engine/join.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

struct RandomInstance {
  ConjunctiveQuery query;
  Database db;
};

RandomInstance DrawInstance(Rng& rng, size_t max_vars = 6,
                            size_t tuples = 12, size_t domain = 4) {
  RandomHierarchicalOptions qopts;
  qopts.num_variables = 1 + static_cast<size_t>(
                                rng.UniformInt(0, static_cast<int64_t>(max_vars) - 1));
  qopts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
  RandomInstance out{MakeRandomHierarchical(rng, qopts), Database{}};
  DataGenOptions dopts;
  dopts.tuples_per_relation = tuples;
  dopts.domain_size = domain;
  out.db = RandomDatabaseForQuery(out.query, rng, dopts);
  return out;
}

TEST(Algorithm1, CountingMonoidMatchesJoinEngine) {
  // The counting semiring run counts satisfying assignments — the join
  // engine is the independent ground truth.
  Rng rng(101);
  for (int round = 0; round < 60; ++round) {
    const RandomInstance inst = DrawInstance(rng);
    const CountMonoid m;
    auto algo = RunAlgorithm1OnQuery<CountMonoid>(
        inst.query, m, inst.db, [](const Fact&) -> uint64_t { return 1; });
    ASSERT_TRUE(algo.ok()) << inst.query.ToString();
    EXPECT_EQ(*algo, BagSetCount(inst.query, inst.db))
        << inst.query.ToString();
  }
}

TEST(Algorithm1, BoolMonoidMatchesJoinEngine) {
  Rng rng(102);
  for (int round = 0; round < 60; ++round) {
    const RandomInstance inst = DrawInstance(rng);
    const BoolMonoid m;
    auto algo = RunAlgorithm1OnQuery<BoolMonoid>(
        inst.query, m, inst.db, [](const Fact&) { return true; });
    ASSERT_TRUE(algo.ok());
    EXPECT_EQ(*algo, EvaluateBoolean(inst.query, inst.db))
        << inst.query.ToString();
  }
}

TEST(Algorithm1, RejectsNonHierarchical) {
  const ConjunctiveQuery q = MakeQnh();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  const CountMonoid m;
  auto result = RunAlgorithm1OnQuery<CountMonoid>(
      q, m, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotHierarchical);
}

TEST(Algorithm1, EmptyDatabaseYieldsZero) {
  const ConjunctiveQuery q = MakePaperQuery();
  const CountMonoid m;
  auto result = RunAlgorithm1OnQuery<CountMonoid>(
      q, m, Database{}, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0u);
}

TEST(Algorithm1, Lemma63OutputsAreDecomposableWithUniqueLeaves) {
  // Lemma 6.3: with unique symbols per fact, the output provenance tree is
  // decomposable.
  Rng rng(103);
  for (int round = 0; round < 60; ++round) {
    const RandomInstance inst = DrawInstance(rng);
    auto prov = ComputeProvenance(inst.query, inst.db);
    ASSERT_TRUE(prov.ok()) << inst.query.ToString();
    EXPECT_TRUE(prov->tree->IsDecomposable()) << prov->tree->ToString();
  }
}

TEST(Algorithm1, ProvenanceBooleanMatchesEngineOnWorlds) {
  // The output tree is a lineage: its Boolean evaluation on any sub-world
  // must agree with evaluating the query there.
  Rng rng(104);
  for (int round = 0; round < 25; ++round) {
    const RandomInstance inst = DrawInstance(rng, 4, 4, 3);
    auto prov = ComputeProvenance(inst.query, inst.db);
    ASSERT_TRUE(prov.ok());
    const size_t n = prov->facts.size();
    if (n > 12) {
      continue;  // Keep the world enumeration tiny.
    }
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Database world;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          world.AddFactOrDie(prov->facts[i].relation, prov->facts[i].tuple);
        }
      }
      const bool via_tree = EvalTreeBool(
          *prov->tree, [&](uint64_t s) { return (mask >> s) & 1; });
      EXPECT_EQ(via_tree, EvaluateBoolean(inst.query, world))
          << inst.query.ToString() << " mask=" << mask;
    }
  }
}

TEST(Algorithm1, Theorem64UniversalityForAllMonoids) {
  // φ(provenance output) == direct run, for the probability, counting,
  // Boolean, resilience and bag-max monoids. φ is the generic tree fold
  // with the problem's leaf annotation.
  Rng rng(105);
  for (int round = 0; round < 40; ++round) {
    const RandomInstance inst = DrawInstance(rng);
    auto prov = ComputeProvenance(inst.query, inst.db);
    ASSERT_TRUE(prov.ok());

    // Per-fact annotations, keyed by symbol.
    std::vector<double> probs(prov->facts.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      probs[i] = rng.UniformDouble();
    }

    {
      const ProbMonoid m;
      auto direct = RunAlgorithm1OnQuery<ProbMonoid>(
          inst.query, m, inst.db, [&](const Fact& f) {
            for (size_t i = 0; i < prov->facts.size(); ++i) {
              if (prov->facts[i] == f) {
                return probs[i];
              }
            }
            ADD_FAILURE() << "fact not found";
            return 0.0;
          });
      ASSERT_TRUE(direct.ok());
      const double via_phi = EvalTreeInMonoid(
          m, *prov->tree, [&](uint64_t s) { return probs[s]; });
      EXPECT_NEAR(*direct, via_phi, 1e-9);
    }
    {
      const CountMonoid m;
      auto direct = RunAlgorithm1OnQuery<CountMonoid>(
          inst.query, m, inst.db, [](const Fact&) -> uint64_t { return 1; });
      ASSERT_TRUE(direct.ok());
      const uint64_t via_phi = EvalTreeInMonoid(
          m, *prov->tree, [](uint64_t) -> uint64_t { return 1; });
      EXPECT_EQ(*direct, via_phi);
    }
    {
      const ResilienceMonoid m;
      auto direct = RunAlgorithm1OnQuery<ResilienceMonoid>(
          inst.query, m, inst.db,
          [](const Fact&) -> uint64_t { return 1; });
      ASSERT_TRUE(direct.ok());
      const uint64_t via_phi = EvalTreeInMonoid(
          m, *prov->tree, [](uint64_t) -> uint64_t { return 1; });
      EXPECT_EQ(*direct, via_phi);
    }
    {
      const BagMaxMonoid m(3);
      auto direct = RunAlgorithm1OnQuery<BagMaxMonoid>(
          inst.query, m, inst.db,
          [&m](const Fact&) { return m.One(); });
      ASSERT_TRUE(direct.ok());
      const BagMaxVec via_phi = EvalTreeInMonoid(
          m, *prov->tree, [&m](uint64_t) { return m.One(); });
      EXPECT_EQ(*direct, via_phi);
    }
  }
}

TEST(Algorithm1, Theorem67LinearOperationCount) {
  // The number of ⊕/⊗ operations is O(|D|): measure with the counting
  // wrapper at two database sizes and check (near-)linear growth.
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(106);

  auto ops_for_size = [&](size_t tuples) {
    DataGenOptions opts;
    opts.tuples_per_relation = tuples;
    opts.domain_size = std::max<size_t>(4, tuples);
    const Database db = RandomDatabaseForQuery(q, rng, opts);
    const CountingMonoid<CountMonoid> m{CountMonoid{}};
    auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
        q, m, db, [](const Fact&) -> uint64_t { return 1; });
    EXPECT_TRUE(result.ok());
    return std::pair<size_t, size_t>(m.total_count(), db.NumFacts());
  };

  const auto [ops_small, n_small] = ops_for_size(100);
  const auto [ops_large, n_large] = ops_for_size(1000);
  // ops ≤ c·|D| with a small constant (one ⊕ or ⊗ per support entry per
  // step; steps = O(query)).
  EXPECT_LE(ops_small, 4 * n_small);
  EXPECT_LE(ops_large, 4 * n_large);
  // Growth is linear: ratio of ops tracks ratio of sizes within 2x.
  const double ops_ratio =
      static_cast<double>(ops_large) / static_cast<double>(ops_small);
  const double size_ratio =
      static_cast<double>(n_large) / static_cast<double>(n_small);
  EXPECT_LT(ops_ratio, 2.0 * size_ratio);
}

TEST(Algorithm1, Lemma66FinalSupportBoundedByInput) {
  // |supp| never grows; in particular the output stage cannot exceed the
  // input size. We check the observable consequence: the provenance tree
  // contains each input fact at most once (disjoint supports all the way).
  Rng rng(107);
  for (int round = 0; round < 30; ++round) {
    const RandomInstance inst = DrawInstance(rng);
    auto prov = ComputeProvenance(inst.query, inst.db);
    ASSERT_TRUE(prov.ok());
    EXPECT_LE(prov->tree->Support().size(), prov->facts.size());
    EXPECT_TRUE(prov->tree->IsDecomposable());
  }
}

TEST(Algorithm1, DisconnectedQueryMultipliesComponents) {
  // Q() :- R(A), S(B): count = |R| * |S| (via ⊗ of the two projections).
  const ConjunctiveQuery query = ParseQueryOrDie("Q() :- R(A), S(B)");
  Database db;
  for (int i = 0; i < 3; ++i) {
    db.AddFactOrDie("R", MakeTuple({i}));
  }
  for (int i = 0; i < 5; ++i) {
    db.AddFactOrDie("S", MakeTuple({i}));
  }
  const CountMonoid m;
  auto result = RunAlgorithm1OnQuery<CountMonoid>(
      query, m, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 15u);
}

TEST(Algorithm1, ConstantsInAtomsActAsSelections) {
  // Q() :- R(A, 3): only tuples with second column 3 count.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A, 3)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  db.AddFactOrDie("R", MakeTuple({2, 3}));
  db.AddFactOrDie("R", MakeTuple({3, 4}));
  const CountMonoid m;
  auto result = RunAlgorithm1OnQuery<CountMonoid>(
      q, m, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2u);
  EXPECT_EQ(*result, BagSetCount(q, db));
}

TEST(Algorithm1, RepeatedVariablesActAsEqualitySelections) {
  // Q() :- R(A, A).
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A, A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 1}));
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("R", MakeTuple({2, 2}));
  const CountMonoid m;
  auto result = RunAlgorithm1OnQuery<CountMonoid>(
      q, m, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2u);
  EXPECT_EQ(*result, BagSetCount(q, db));
}

}  // namespace
}  // namespace hierarq
