// ShardedStore unit tests plus a randomized differential against
// std::unordered_map covering the full mutation surface — including the
// per-key Erase the incremental subsystem leans on — and the
// AnnotatedRelation facade paths that adopt or copy sharded backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hierarq/data/annotated.h"
#include "hierarq/data/sharded.h"
#include "hierarq/data/tuple.h"
#include "hierarq/query/var_set.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

Tuple RandomKey(Rng& rng, size_t arity, int64_t domain) {
  Tuple key;
  for (size_t i = 0; i < arity; ++i) {
    key.push_back(rng.UniformInt(0, domain));
  }
  return key;
}

TEST(ShardedStoreTest, BasicInsertFindEraseAcrossShards) {
  ShardedStore<uint64_t> store;
  EXPECT_TRUE(store.empty());

  // Enough keys that every shard receives some (256 keys over 8 shards).
  std::vector<Tuple> keys;
  for (int64_t i = 0; i < 256; ++i) {
    keys.push_back(MakeTuple({i, i * 7}));
    store.Set(keys.back(), static_cast<uint64_t>(i) + 1);
  }
  EXPECT_EQ(store.size(), 256u);

  size_t occupied_shards = 0;
  for (size_t s = 0; s < ShardedStore<uint64_t>::kNumShards; ++s) {
    occupied_shards += store.shard(s).empty() ? 0 : 1;
  }
  EXPECT_EQ(occupied_shards, ShardedStore<uint64_t>::kNumShards)
      << "256 hashed keys should touch all 8 shards";

  for (int64_t i = 0; i < 256; ++i) {
    const uint64_t* value = store.Find(keys[static_cast<size_t>(i)]);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, static_cast<uint64_t>(i) + 1);
  }
  EXPECT_FALSE(store.Contains(MakeTuple({999, 999})));

  EXPECT_TRUE(store.Erase(keys[10]));
  EXPECT_FALSE(store.Erase(keys[10]));
  EXPECT_EQ(store.Find(keys[10]), nullptr);
  EXPECT_EQ(store.size(), 255u);

  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.Find(keys[0]), nullptr);
}

TEST(ShardedStoreTest, KeysLiveInTheShardTheirHashTopBitsName) {
  ShardedStore<int> store;
  Rng rng(0x5a5aULL);
  for (int i = 0; i < 500; ++i) {
    const Tuple key = RandomKey(rng, 1 + i % 3, 1000);
    store.Set(key, i);
    const size_t expected =
        ShardedStore<int>::ShardOfHash(TupleHash{}(key));
    EXPECT_NE(store.shard(expected).Find(key), nullptr)
        << "key must land in its hash-routed shard";
    for (size_t s = 0; s < ShardedStore<int>::kNumShards; ++s) {
      if (s != expected) {
        EXPECT_EQ(store.shard(s).Find(key), nullptr);
      }
    }
  }
}

TEST(ShardedStoreTest, ForEachVisitsShardsInIndexOrderDeterministically) {
  ShardedStore<uint64_t> store;
  Rng rng(0xfeedULL);
  for (int i = 0; i < 300; ++i) {
    store.Set(RandomKey(rng, 2, 100), static_cast<uint64_t>(i));
  }
  std::vector<Tuple> first_pass;
  store.ForEach(
      [&](const Tuple& key, const uint64_t&) { first_pass.push_back(key); });
  EXPECT_EQ(first_pass.size(), store.size());
  // A second walk yields the identical sequence; and the sequence is
  // shard-ordered: each key's shard index must be non-decreasing.
  std::vector<Tuple> second_pass;
  store.ForEach(
      [&](const Tuple& key, const uint64_t&) { second_pass.push_back(key); });
  EXPECT_EQ(first_pass, second_pass);
  size_t previous_shard = 0;
  for (const Tuple& key : first_pass) {
    const size_t shard = ShardedStore<uint64_t>::ShardOfHash(TupleHash{}(key));
    EXPECT_GE(shard, previous_shard);
    previous_shard = shard;
  }
}

TEST(ShardedStoreTest, MergeCombinesExistingEntries) {
  ShardedStore<uint64_t> store;
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const Tuple key = MakeTuple({4, 2});
  store.Merge(key, 10, plus);
  store.Merge(key, 32, plus);
  const uint64_t* value = store.Find(key);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 42u);
}

TEST(ShardedStoreTest, ReserveThenFillDoesNotLoseEntries) {
  ShardedStore<uint64_t> store;
  store.Reserve(10000);
  Rng rng(0xcafeULL);
  std::unordered_map<Tuple, uint64_t, TupleHash> reference;
  for (int i = 0; i < 10000; ++i) {
    const Tuple key = RandomKey(rng, 2, 5000);
    reference[key] = static_cast<uint64_t>(i);
    store.Set(key, static_cast<uint64_t>(i));
  }
  ASSERT_EQ(store.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const uint64_t* found = store.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  }
}

// Randomized differential: a long interleaved stream of FindOrInsert /
// Set / Merge / Erase / Clear against std::unordered_map, checked by full
// content comparison at checkpoints. Erase gets double weight — the
// robin-hood backward-shift inside a routed shard is the fiddliest path.
TEST(ShardedStoreTest, RandomizedDifferentialAgainstUnorderedMap) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(0xd1ffULL + seed);
    ShardedStore<uint64_t> store;
    std::unordered_map<Tuple, uint64_t, TupleHash> reference;
    const size_t arity = 1 + static_cast<size_t>(seed % 3);
    const int64_t domain = 60;  // Small: plenty of hits and re-touches.

    for (int op = 0; op < 4000; ++op) {
      const Tuple key = RandomKey(rng, arity, domain);
      switch (rng.UniformInt(0, 5)) {
        case 0: {
          auto [slot, inserted] = store.FindOrInsert(key);
          auto [it, ref_inserted] = reference.try_emplace(key);
          EXPECT_EQ(inserted, ref_inserted);
          if (inserted) {
            *slot = static_cast<uint64_t>(op);
            it->second = static_cast<uint64_t>(op);
          } else {
            EXPECT_EQ(*slot, it->second);
          }
          break;
        }
        case 1:
          store.Set(key, static_cast<uint64_t>(op));
          reference[key] = static_cast<uint64_t>(op);
          break;
        case 2: {
          const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
          store.Merge(key, 3, plus);
          auto [it, inserted] = reference.try_emplace(key, 3);
          if (!inserted) {
            it->second += 3;
          }
          break;
        }
        case 3:
        case 4:
          EXPECT_EQ(store.Erase(key), reference.erase(key) > 0);
          break;
        case 5:
          if (op % 1000 == 999) {
            store.Clear();
            reference.clear();
          }
          break;
      }
      if (op % 500 == 499) {
        ASSERT_EQ(store.size(), reference.size()) << "seed=" << seed;
        size_t visited = 0;
        store.ForEach([&](const Tuple& key, const uint64_t& value) {
          auto it = reference.find(key);
          ASSERT_NE(it, reference.end());
          EXPECT_EQ(value, it->second);
          ++visited;
        });
        EXPECT_EQ(visited, reference.size());
      }
    }
  }
}

// ------------------------------------------- AnnotatedRelation adoption --

TEST(ShardedStoreTest, AnnotatedRelationRoundTripsThroughShardedBackend) {
  VarSet schema{VarId{0}, VarId{1}};
  AnnotatedRelation<uint64_t> sharded(schema, StorageKind::kSharded);
  EXPECT_EQ(sharded.storage(), StorageKind::kSharded);
  Rng rng(0xadd0ULL);
  for (int i = 0; i < 400; ++i) {
    sharded.Set(RandomKey(rng, 2, 80), static_cast<uint64_t>(i) + 1);
  }

  // Copy into a flat relation and back; contents must survive each hop.
  AnnotatedRelation<uint64_t> flat(schema, StorageKind::kFlat);
  flat.AssignFrom(sharded, schema);
  EXPECT_EQ(flat.storage(), StorageKind::kSharded)
      << "AssignFrom adopts the source backend";
  EXPECT_EQ(flat.size(), sharded.size());
  sharded.ForEach([&](const Tuple& key, const uint64_t& value) {
    const uint64_t* found = flat.Find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, value);
  });

  // Move-adopt leaves the source empty, keeps the contents.
  AnnotatedRelation<uint64_t> adopted;
  const size_t size_before = flat.size();
  adopted.AdoptFrom(std::move(flat), schema);
  EXPECT_EQ(adopted.size(), size_before);
  EXPECT_EQ(adopted.storage(), StorageKind::kSharded);
}

}  // namespace
}  // namespace hierarq
