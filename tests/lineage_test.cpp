// Tests for DNF lineage + Shannon-expansion PQE (the fallback for the
// intractable side of the dichotomy).

#include <gtest/gtest.h>

#include "hierarq/core/pqe.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/engine/lineage.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(DnfLineage, ClausePerAssignment) {
  const ConjunctiveQuery q = MakeQnh();  // R(X), S(X,Y), T(Y).
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  db.AddFactOrDie("S", MakeTuple({1, 10}));
  db.AddFactOrDie("S", MakeTuple({1, 11}));
  db.AddFactOrDie("T", MakeTuple({10}));
  db.AddFactOrDie("T", MakeTuple({11}));
  auto lineage = ComputeDnfLineage(q, db);
  ASSERT_TRUE(lineage.ok());
  // Two satisfying assignments -> ∨ of two ∧-clauses; R(1) repeats.
  EXPECT_EQ(lineage->tree->kind(), ProvTree::Kind::kOr);
  EXPECT_EQ(lineage->tree->children().size(), 2u);
  EXPECT_FALSE(lineage->tree->IsDecomposable());  // R(1) in both clauses.
  EXPECT_EQ(lineage->facts.size(), 5u);
}

TEST(DnfLineage, FalseWhenUnsatisfied) {
  const ConjunctiveQuery q = MakeQnh();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  auto lineage = ComputeDnfLineage(q, db);
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->tree->kind(), ProvTree::Kind::kFalse);
}

TEST(DnfLineage, BooleanSemanticsMatchEngineOnWorlds) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const ConjunctiveQuery q =
        MakeRandomQuery(rng, 1 + static_cast<size_t>(rng.UniformInt(0, 2)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 2)), 2);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 3;
    dopts.domain_size = 2;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    auto lineage = ComputeDnfLineage(q, db);
    ASSERT_TRUE(lineage.ok());
    const size_t n = lineage->facts.size();
    if (n > 10) {
      continue;
    }
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      Database world;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          world.AddFactOrDie(lineage->facts[i].relation,
                             lineage->facts[i].tuple);
        }
      }
      EXPECT_EQ(EvalTreeBool(*lineage->tree,
                             [&](uint64_t s) { return (mask >> s) & 1; }),
                EvaluateBoolean(q, world))
          << q.ToString();
    }
  }
}

TEST(Shannon, HandComputedNonReadOnce) {
  // (f0 ∧ f1) ∨ (f0 ∧ f2) with all p = 1/2:
  // Pr = p0 · (1 - (1-p1)(1-p2)) = 0.5 · 0.75 = 0.375.
  // Naive independent-events evaluation of the DNF would give
  // 1-(1-0.25)^2 = 0.4375 — wrong, because f0 is shared.
  const ProvTreeRef tree = ProvTree::Or(
      ProvTree::And(ProvTree::Leaf(0), ProvTree::Leaf(1)),
      ProvTree::And(ProvTree::Leaf(0), ProvTree::Leaf(2)));
  const double p =
      TreeProbabilityShannon(tree, [](uint64_t) { return 0.5; });
  EXPECT_NEAR(p, 0.375, 1e-12);
}

TEST(Shannon, ConstantsAndExtremes) {
  EXPECT_EQ(TreeProbabilityShannon(ProvTree::True(),
                                   [](uint64_t) { return 0.5; }),
            1.0);
  EXPECT_EQ(TreeProbabilityShannon(ProvTree::False(),
                                   [](uint64_t) { return 0.5; }),
            0.0);
  const ProvTreeRef leaf = ProvTree::Leaf(0);
  EXPECT_EQ(TreeProbabilityShannon(leaf, [](uint64_t) { return 0.0; }), 0.0);
  EXPECT_EQ(TreeProbabilityShannon(leaf, [](uint64_t) { return 1.0; }), 1.0);
}

class ShannonPqeParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShannonPqeParam, MatchesPossibleWorldsOnNonHierarchical) {
  // The whole point: exact PQE where Algorithm 1 cannot go.
  Rng rng(GetParam() * 77 + 3);
  const ConjunctiveQuery queries[] = {
      MakeQnh(), ParseQueryOrDie("R(A,B), S(B,C), T(C,D)")};
  for (const ConjunctiveQuery& q : queries) {
    for (int round = 0; round < 4; ++round) {
      DataGenOptions dopts;
      dopts.tuples_per_relation = 3;
      dopts.domain_size = 3;
      const TidDatabase db = RandomTidForQuery(q, rng, dopts, 0.2, 0.8);
      if (db.NumFacts() > 12) {
        continue;
      }
      ASSERT_FALSE(EvaluateProbability(q, db).ok());  // Dichotomy.
      auto shannon = EvaluateProbabilityExhaustive(q, db);
      ASSERT_TRUE(shannon.ok());
      EXPECT_NEAR(*shannon, BruteForcePqe(q, db), 1e-9) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShannonPqeParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Shannon, AgreesWithUnifiedAlgorithmOnHierarchical) {
  // On the tractable side both methods must coincide.
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const TidDatabase db = RandomTidForQuery(q, rng, dopts, 0.1, 0.9);
    auto lineage = ComputeDnfLineage(q, db.facts());
    ASSERT_TRUE(lineage.ok());
    if (lineage->tree->Support().size() > 20) {
      continue;
    }
    auto fast = EvaluateProbability(q, db);
    auto shannon = EvaluateProbabilityExhaustive(q, db);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(shannon.ok());
    EXPECT_NEAR(*fast, *shannon, 1e-9) << q.ToString();
  }
}

}  // namespace
}  // namespace hierarq
