// Tests for the hierarchical property, violation witnesses, and hierarchy
// trees (paper §1, Propositions 5.1 / 5.5).

#include <gtest/gtest.h>

#include "hierarq/query/gyo.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

struct NamedQuery {
  const char* text;
  bool hierarchical;
};

class HierarchicalParam : public ::testing::TestWithParam<NamedQuery> {};

TEST_P(HierarchicalParam, Classification) {
  const ConjunctiveQuery q = ParseQueryOrDie(GetParam().text);
  EXPECT_EQ(IsHierarchical(q), GetParam().hierarchical) << q.ToString();
  // FindHierarchyViolation must agree.
  EXPECT_EQ(!FindHierarchyViolation(q).has_value(), GetParam().hierarchical);
  // BuildHierarchyForest succeeds exactly on hierarchical queries
  // (Proposition 5.5).
  EXPECT_EQ(BuildHierarchyForest(q).ok(), GetParam().hierarchical);
}

INSTANTIATE_TEST_SUITE_P(
    QueryZoo, HierarchicalParam,
    ::testing::Values(
        // Hierarchical queries.
        NamedQuery{"R(A)", true},
        NamedQuery{"R()", true},
        NamedQuery{"R(A,B)", true},
        NamedQuery{"R(A,B), S(A,C), T(A,C,D)", true},   // Paper Eq. (1).
        NamedQuery{"E(X,Y), F(Y,Z)", true},             // Q_h of §1.
        NamedQuery{"R(A), S(B)", true},                 // Example 5.4.
        NamedQuery{"R(X), S(X,Y)", true},
        NamedQuery{"R(X,Y), S(Y,X)", true},             // Same var sets.
        NamedQuery{"R(A,B,C), S(A,B), T(A)", true},     // Chain.
        NamedQuery{"R0(X), R1(X,Y1), R2(X,Y2)", true},  // Star.
        NamedQuery{"A1(X), A2(X), A3(X)", true},        // Triplicate.
        // Non-hierarchical queries.
        NamedQuery{"R(X), S(X,Y), T(Y)", false},        // Q_nh of §1.
        NamedQuery{"R(A,B), S(B,C), T(C,D)", false},    // Example 5.3.
        NamedQuery{"R(X,Y), S(Y,Z), T(Z,X)", false},    // Triangle.
        NamedQuery{"R(A,B), S(B,C), T(C)", false},
        NamedQuery{"R(X), S(X,Y), T(Y), U(X,Y)", false}));

TEST(Hierarchical, QhOfPaperIsHierarchical) {
  // The paper calls Q_h() :- E(X,Y) ∧ F(Y,Z) hierarchical: at(X) = {E},
  // at(Z) = {F} are disjoint, and at(Y) = {E,F} contains both.
  const ConjunctiveQuery q = MakeQh();
  EXPECT_TRUE(IsHierarchical(q));
}

TEST(Hierarchical, ViolationWitnessShape) {
  const ConjunctiveQuery q = MakeQnh();  // R(X), S(X,Y), T(Y).
  const auto v = FindHierarchyViolation(q);
  ASSERT_TRUE(v.has_value());
  const VarSet& r_vars = q.atoms()[v->r_atom].vars();
  const VarSet& s_vars = q.atoms()[v->s_atom].vars();
  const VarSet& t_vars = q.atoms()[v->t_atom].vars();
  EXPECT_TRUE(r_vars.Contains(v->a));
  EXPECT_FALSE(r_vars.Contains(v->b));
  EXPECT_TRUE(s_vars.Contains(v->a));
  EXPECT_TRUE(s_vars.Contains(v->b));
  EXPECT_TRUE(t_vars.Contains(v->b));
  EXPECT_FALSE(t_vars.Contains(v->a));
  EXPECT_NE(v->ToString(q).find("violate"), std::string::npos);
}

TEST(Hierarchical, ForestForPaperQuery) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto forest = BuildHierarchyForest(q);
  ASSERT_TRUE(forest.ok());
  // One tree (connected query), rooted at A.
  ASSERT_EQ(forest->roots.size(), 1u);
  const VarId a = *q.variables().Find("A");
  EXPECT_EQ(forest->nodes[forest->roots[0]].var, a);
  EXPECT_TRUE(ForestRealizesQuery(*forest, q));
  // Each atom's variable set must be a root path (Proposition 5.5).
  for (const Atom& atom : q.atoms()) {
    bool realized = false;
    for (size_t i = 0; i < forest->nodes.size(); ++i) {
      realized |= forest->PathToRoot(i) == atom.vars();
    }
    EXPECT_TRUE(realized) << atom.ToString(q.variables());
  }
}

TEST(Hierarchical, ForestForDisconnectedQuery) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(B), T(B,C)");
  auto forest = BuildHierarchyForest(q);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->roots.size(), 2u);  // {A} and {B,C} components.
  EXPECT_TRUE(ForestRealizesQuery(*forest, q));
}

TEST(Hierarchical, ForestChainsEqualSignatures) {
  // R(X,Y): at(X) == at(Y) — the two variables must form a chain.
  const ConjunctiveQuery q = ParseQueryOrDie("R(X,Y)");
  auto forest = BuildHierarchyForest(q);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->roots.size(), 1u);
  ASSERT_EQ(forest->nodes.size(), 2u);
  const size_t root = forest->roots[0];
  ASSERT_EQ(forest->nodes[root].children.size(), 1u);
  const size_t child = forest->nodes[root].children[0];
  EXPECT_EQ(forest->PathToRoot(child), q.atoms()[0].vars());
}

TEST(Hierarchical, ForestToStringSmoke) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto forest = BuildHierarchyForest(q);
  ASSERT_TRUE(forest.ok());
  const std::string rendered = forest->ToString(q.variables());
  EXPECT_NE(rendered.find("A"), std::string::npos);
}

TEST(Hierarchical, RandomHierarchicalAlwaysBuildsForest) {
  Rng rng(2024);
  for (int round = 0; round < 60; ++round) {
    RandomHierarchicalOptions opts;
    opts.num_variables = 2 + static_cast<size_t>(rng.UniformInt(0, 6));
    opts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, opts);
    ASSERT_TRUE(IsHierarchical(q)) << q.ToString();
    auto forest = BuildHierarchyForest(q);
    ASSERT_TRUE(forest.ok()) << q.ToString();
    EXPECT_TRUE(ForestRealizesQuery(*forest, q)) << q.ToString();
  }
}

TEST(Hierarchical, NonHierarchicalChainFamily) {
  for (size_t links = 1; links <= 5; ++links) {
    const ConjunctiveQuery q = MakeNonHierarchicalChain(links);
    EXPECT_FALSE(IsHierarchical(q)) << q.ToString();
    EXPECT_TRUE(IsAcyclic(q)) << q.ToString();
  }
}

TEST(Hierarchical, NestedChainFamily) {
  for (size_t depth = 1; depth <= 8; ++depth) {
    const ConjunctiveQuery q = MakeNestedChain(depth);
    EXPECT_TRUE(IsHierarchical(q)) << q.ToString();
  }
}

TEST(Hierarchical, StarFamily) {
  for (size_t branches = 1; branches <= 8; ++branches) {
    const ConjunctiveQuery q = MakeStarQuery(branches);
    EXPECT_TRUE(IsHierarchical(q)) << q.ToString();
  }
}

}  // namespace
}  // namespace hierarq
