// Tests for provenance trees and the provenance 2-monoid
// (paper Definitions 6.1 / 6.2).

#include <gtest/gtest.h>

#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/provenance.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

TEST(ProvTree, IdentitiesAreSingletons) {
  EXPECT_EQ(ProvTree::False()->kind(), ProvTree::Kind::kFalse);
  EXPECT_EQ(ProvTree::True()->kind(), ProvTree::Kind::kTrue);
  EXPECT_TRUE(ProvTree::False()->Equals(*ProvTree::False()));
  EXPECT_FALSE(ProvTree::False()->Equals(*ProvTree::True()));
}

TEST(ProvTree, IdentityLaws) {
  // Or(x, false) = x and And(x, true) = x — the identity laws hold
  // structurally by construction.
  const ProvTreeRef leaf = ProvTree::Leaf(3);
  EXPECT_TRUE(ProvTree::Or(leaf, ProvTree::False())->Equals(*leaf));
  EXPECT_TRUE(ProvTree::Or(ProvTree::False(), leaf)->Equals(*leaf));
  EXPECT_TRUE(ProvTree::And(leaf, ProvTree::True())->Equals(*leaf));
  EXPECT_TRUE(ProvTree::And(ProvTree::True(), leaf)->Equals(*leaf));
}

TEST(ProvTree, NoAnnihilation) {
  // And(x, false) must be KEPT — 2-monoids have no annihilation law.
  const ProvTreeRef leaf = ProvTree::Leaf(3);
  const ProvTreeRef product = ProvTree::And(leaf, ProvTree::False());
  EXPECT_EQ(product->kind(), ProvTree::Kind::kAnd);
  EXPECT_FALSE(product->Equals(*ProvTree::False()));
}

TEST(ProvTree, CommutativityByCanonicalization) {
  const ProvTreeRef a = ProvTree::Leaf(1);
  const ProvTreeRef b = ProvTree::Leaf(2);
  EXPECT_TRUE(ProvTree::Or(a, b)->Equals(*ProvTree::Or(b, a)));
  EXPECT_TRUE(ProvTree::And(a, b)->Equals(*ProvTree::And(b, a)));
  EXPECT_EQ(ProvTree::Or(a, b)->hash(), ProvTree::Or(b, a)->hash());
}

TEST(ProvTree, AssociativityByFlattening) {
  const ProvTreeRef a = ProvTree::Leaf(1);
  const ProvTreeRef b = ProvTree::Leaf(2);
  const ProvTreeRef c = ProvTree::Leaf(3);
  const ProvTreeRef left = ProvTree::Or(ProvTree::Or(a, b), c);
  const ProvTreeRef right = ProvTree::Or(a, ProvTree::Or(b, c));
  EXPECT_TRUE(left->Equals(*right));
  EXPECT_EQ(left->children().size(), 3u);  // Flattened, not nested.
}

TEST(ProvTree, MixedKindsDoNotFlatten) {
  const ProvTreeRef a = ProvTree::Leaf(1);
  const ProvTreeRef b = ProvTree::Leaf(2);
  const ProvTreeRef c = ProvTree::Leaf(3);
  const ProvTreeRef tree = ProvTree::And(ProvTree::Or(a, b), c);
  EXPECT_EQ(tree->kind(), ProvTree::Kind::kAnd);
  ASSERT_EQ(tree->children().size(), 2u);
}

TEST(ProvTree, Support) {
  const ProvTreeRef tree = ProvTree::And(
      ProvTree::Or(ProvTree::Leaf(1), ProvTree::Leaf(4)), ProvTree::Leaf(2));
  EXPECT_EQ(tree->Support(), (std::set<uint64_t>{1, 2, 4}));
  EXPECT_TRUE(ProvTree::True()->Support().empty());
}

TEST(ProvTree, Decomposability) {
  const ProvTreeRef a = ProvTree::Leaf(1);
  const ProvTreeRef b = ProvTree::Leaf(2);
  EXPECT_TRUE(ProvTree::Or(a, b)->IsDecomposable());
  // Repeated leaf symbol -> not decomposable.
  EXPECT_FALSE(ProvTree::Or(a, ProvTree::And(a, b))->IsDecomposable());
  // ⊤/⊥ leaves do not break decomposability (they carry no fact), even
  // when repeated — see the doc comment on IsDecomposable().
  EXPECT_TRUE(ProvTree::True()->IsDecomposable());
  const ProvTreeRef two_falses =
      ProvTree::Or(ProvTree::And(a, ProvTree::False()),
                   ProvTree::And(b, ProvTree::False()));
  EXPECT_TRUE(two_falses->IsDecomposable());
}

TEST(ProvTree, ZeroTimesZeroIsZero) {
  // The Definition 5.6 law, structurally.
  const ProvTreeRef product =
      ProvTree::And(ProvTree::False(), ProvTree::False());
  EXPECT_TRUE(product->Equals(*ProvTree::False()));
}

TEST(ProvTree, NumNodesAndDepth) {
  const ProvTreeRef tree = ProvTree::And(
      ProvTree::Or(ProvTree::Leaf(1), ProvTree::Leaf(2)), ProvTree::Leaf(3));
  EXPECT_EQ(tree->NumNodes(), 5u);
  EXPECT_EQ(tree->Depth(), 3u);
  EXPECT_EQ(ProvTree::Leaf(0)->Depth(), 1u);
}

TEST(ProvTree, ToStringSmoke) {
  const ProvTreeRef tree =
      ProvTree::And(ProvTree::Or(ProvTree::Leaf(1), ProvTree::Leaf(2)),
                    ProvTree::Leaf(3));
  const std::string s = tree->ToString();
  EXPECT_NE(s.find("f1"), std::string::npos);
  EXPECT_NE(s.find("∧"), std::string::npos);
  EXPECT_NE(s.find("∨"), std::string::npos);
  EXPECT_EQ(ProvTree::True()->ToString(), "⊤");
  EXPECT_EQ(ProvTree::False()->ToString(), "⊥");
}

TEST(ProvMonoid, SatisfiesConcept) {
  static_assert(TwoMonoid<ProvMonoid>);
  const ProvMonoid m;
  const ProvTreeRef leaf = ProvTree::Leaf(7);
  EXPECT_TRUE(m.Plus(leaf, m.Zero())->Equals(*leaf));
  EXPECT_TRUE(m.Times(leaf, m.One())->Equals(*leaf));
  EXPECT_TRUE(m.Times(m.Zero(), m.Zero())->Equals(*m.Zero()));
}

TEST(EvalTree, BooleanSemantics) {
  // (f1 ∨ f2) ∧ f3.
  const ProvTreeRef tree =
      ProvTree::And(ProvTree::Or(ProvTree::Leaf(1), ProvTree::Leaf(2)),
                    ProvTree::Leaf(3));
  auto world = [](std::set<uint64_t> present) {
    return [present](uint64_t s) { return present.count(s) > 0; };
  };
  EXPECT_TRUE(EvalTreeBool(*tree, world({1, 3})));
  EXPECT_TRUE(EvalTreeBool(*tree, world({2, 3})));
  EXPECT_FALSE(EvalTreeBool(*tree, world({1, 2})));
  EXPECT_FALSE(EvalTreeBool(*tree, world({3})));
  EXPECT_TRUE(EvalTreeBool(*ProvTree::True(), world({})));
  EXPECT_FALSE(EvalTreeBool(*ProvTree::False(), world({})));
}

TEST(EvalTree, CountSemantics) {
  // (f1 ∨ f2) ∧ f3 with multiplicities 2, 3, 4 -> (2+3)*4 = 20.
  const ProvTreeRef tree =
      ProvTree::And(ProvTree::Or(ProvTree::Leaf(1), ProvTree::Leaf(2)),
                    ProvTree::Leaf(3));
  auto mult = [](uint64_t s) { return s + 1; };
  EXPECT_EQ(EvalTreeCount(*tree, mult), 20u);
  EXPECT_EQ(EvalTreeCount(*ProvTree::True(), mult), 1u);
  EXPECT_EQ(EvalTreeCount(*ProvTree::False(), mult), 0u);
}

TEST(EvalTree, GenericMonoidFoldMatchesSpecial) {
  // EvalTreeInMonoid over CountMonoid == EvalTreeCount; over ProbMonoid it
  // is the independent-events probability (valid: tree is decomposable).
  const ProvTreeRef tree =
      ProvTree::And(ProvTree::Or(ProvTree::Leaf(0), ProvTree::Leaf(1)),
                    ProvTree::Leaf(2));
  const CountMonoid count;
  EXPECT_EQ(EvalTreeInMonoid(count, *tree,
                             [](uint64_t) -> uint64_t { return 1; }),
            2u);

  const ProbMonoid prob;
  const double p = EvalTreeInMonoid(prob, *tree, [](uint64_t s) {
    return s == 2 ? 0.5 : 0.5;
  });
  // (0.5 ⊕ 0.5) ⊗ 0.5 = 0.75 * 0.5.
  EXPECT_DOUBLE_EQ(p, 0.375);
}

TEST(EvalTree, RandomizedCountMatchesBooleanOverWorlds) {
  // For decomposable trees over {0..n-1} with 0/1 multiplicities, count
  // semantics and Boolean semantics agree on "positive iff satisfied".
  Rng rng(4242);
  for (int round = 0; round < 100; ++round) {
    // Random decomposable tree over distinct leaves.
    std::vector<ProvTreeRef> pool;
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    for (size_t i = 0; i < n; ++i) {
      pool.push_back(ProvTree::Leaf(i));
    }
    while (pool.size() > 1) {
      const size_t i =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
      ProvTreeRef a = pool[i];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(i));
      const size_t j =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
      ProvTreeRef b = pool[j];
      pool[j] = rng.Bernoulli(0.5) ? ProvTree::Or(a, b) : ProvTree::And(a, b);
    }
    const ProvTreeRef tree = pool[0];
    ASSERT_TRUE(tree->IsDecomposable());
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      const bool b =
          EvalTreeBool(*tree, [&](uint64_t s) { return (mask >> s) & 1; });
      const uint64_t c = EvalTreeCount(
          *tree, [&](uint64_t s) -> uint64_t { return (mask >> s) & 1; });
      EXPECT_EQ(b, c > 0);
    }
  }
}

}  // namespace
}  // namespace hierarq
