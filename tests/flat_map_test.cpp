// Tests for the open-addressing FlatMap (util/flat_map.h): basic map
// semantics, rehash survival, tombstone-free Clear, and a randomized
// differential test against std::unordered_map under the Rule 1 / Rule 2
// access pattern of Algorithm 1.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "hierarq/data/tuple.h"
#include "hierarq/util/flat_map.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

using TupleMap = FlatMap<Tuple, uint64_t, TupleHash>;

TEST(FlatMap, StartsEmpty) {
  TupleMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(MakeTuple({1})), nullptr);
  EXPECT_FALSE(map.Contains(MakeTuple({1})));
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, SetFindOverwrite) {
  TupleMap map;
  map.Set(MakeTuple({1, 2}), 42);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(MakeTuple({1, 2})), nullptr);
  EXPECT_EQ(*map.Find(MakeTuple({1, 2})), 42u);
  EXPECT_EQ(map.Find(MakeTuple({2, 1})), nullptr);
  map.Set(MakeTuple({1, 2}), 7);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(MakeTuple({1, 2})), 7u);
}

TEST(FlatMap, FindOrInsertReportsInsertion) {
  TupleMap map;
  auto [first, inserted_first] = map.FindOrInsert(MakeTuple({3}));
  EXPECT_TRUE(inserted_first);
  EXPECT_EQ(*first, 0u);  // Value-initialized.
  *first = 9;
  auto [second, inserted_second] = map.FindOrInsert(MakeTuple({3}));
  EXPECT_FALSE(inserted_second);
  EXPECT_EQ(*second, 9u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, MergeCombines) {
  TupleMap map;
  auto add = [](uint64_t a, uint64_t b) { return a + b; };
  map.Merge(MakeTuple({5}), 1, add);
  map.Merge(MakeTuple({5}), 2, add);
  map.Merge(MakeTuple({6}), 10, add);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.Find(MakeTuple({5})), 3u);
  EXPECT_EQ(*map.Find(MakeTuple({6})), 10u);
}

TEST(FlatMap, SurvivesGrowthRehashes) {
  TupleMap map;
  constexpr uint64_t kCount = 10000;
  for (uint64_t i = 0; i < kCount; ++i) {
    map.Set(MakeTuple({static_cast<Value>(i), static_cast<Value>(i * 3)}),
            i);
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    const uint64_t* found =
        map.Find(MakeTuple({static_cast<Value>(i), static_cast<Value>(i * 3)}));
    ASSERT_NE(found, nullptr) << "missing key " << i;
    EXPECT_EQ(*found, i);
  }
  EXPECT_FALSE(map.Contains(MakeTuple({-1, -1})));
}

TEST(FlatMap, ReservePreventsGrowthRehash) {
  TupleMap map;
  map.Reserve(1000);
  const size_t capacity = map.capacity();
  EXPECT_GE(capacity, 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    map.Set(MakeTuple({i}), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(map.capacity(), capacity) << "Reserve(n) must cover n inserts";
}

TEST(FlatMap, ClearKeepsCapacityAndDropsEntries) {
  TupleMap map;
  for (int64_t i = 0; i < 500; ++i) {
    map.Set(MakeTuple({i}), static_cast<uint64_t>(i));
  }
  const size_t capacity = map.capacity();
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.Find(MakeTuple({17})), nullptr);
  EXPECT_EQ(map.begin(), map.end());
  // The table is fully usable after Clear (no tombstone residue).
  for (int64_t i = 0; i < 500; ++i) {
    map.Set(MakeTuple({i + 250}), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(map.size(), 500u);
  EXPECT_EQ(*map.Find(MakeTuple({250})), 0u);
}

TEST(FlatMap, ClearReleasesOwnedPayloads) {
  // Payloads with heap state (here: strings) must be reset by Clear so a
  // retained slot array does not pin stale data alive.
  FlatMap<Tuple, std::string, TupleHash> map;
  map.Set(MakeTuple({1}), std::string(1000, 'x'));
  map.Clear();
  auto [slot, inserted] = map.FindOrInsert(MakeTuple({1}));
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(slot->empty());
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  TupleMap map;
  constexpr int64_t kCount = 777;
  for (int64_t i = 0; i < kCount; ++i) {
    map.Set(MakeTuple({i}), static_cast<uint64_t>(i));
  }
  std::vector<bool> seen(kCount, false);
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    ASSERT_EQ(key.size(), 1u);
    ASSERT_EQ(static_cast<uint64_t>(key[0]), value);
    ASSERT_FALSE(seen[static_cast<size_t>(key[0])]);
    seen[static_cast<size_t>(key[0])] = true;
    ++visited;
  }
  EXPECT_EQ(visited, static_cast<size_t>(kCount));
}

// Differential test: drive FlatMap and std::unordered_map through the same
// random schedule of the operations Algorithm 1 performs — Merge (Rule 1
// ⊕-aggregation), Set + FindOrInsert (Rule 2 union-of-supports), Find, and
// periodic Clear (intermediate relation teardown) — and require identical
// contents throughout.
TEST(FlatMap, DifferentialAgainstUnorderedMap) {
  Rng rng(20260727);
  TupleMap flat;
  std::unordered_map<Tuple, uint64_t, TupleHash> reference;
  const auto add = [](uint64_t a, uint64_t b) { return a + b; };

  for (int round = 0; round < 20000; ++round) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    // Small-ish keyspace so collisions between ops are common.
    Tuple key = MakeTuple({rng.UniformInt(0, 499), rng.UniformInt(0, 7)});
    if (op < 3) {  // Rule 1: merge.
      const uint64_t value = static_cast<uint64_t>(rng.UniformInt(1, 100));
      flat.Merge(key, value, add);
      auto it = reference.find(key);
      if (it == reference.end()) {
        reference.emplace(key, value);
      } else {
        it->second = add(it->second, value);
      }
    } else if (op < 5) {  // Overwrite.
      const uint64_t value = static_cast<uint64_t>(rng.UniformInt(1, 100));
      flat.Set(key, value);
      reference[key] = value;
    } else if (op < 7) {  // Rule 2: find-or-insert with default fill.
      auto [slot, inserted] = flat.FindOrInsert(key);
      auto [it, ref_inserted] = reference.try_emplace(key, 0);
      ASSERT_EQ(inserted, ref_inserted);
      if (inserted) {
        *slot = 123;
        it->second = 123;
      }
    } else if (op < 9) {  // Lookup.
      const uint64_t* found = flat.Find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(*found, it->second);
      }
    } else if (rng.UniformInt(0, 99) == 0) {  // Rare wholesale teardown.
      flat.Clear();
      reference.clear();
    }
    ASSERT_EQ(flat.size(), reference.size());
  }

  // Final deep comparison, both directions.
  size_t visited = 0;
  for (const auto& [key, value] : flat) {
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    ASSERT_EQ(value, it->second);
    ++visited;
  }
  EXPECT_EQ(visited, reference.size());
}

}  // namespace
}  // namespace hierarq
