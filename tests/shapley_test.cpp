// Tests for #Sat and Shapley value computation (paper §5.6, Theorem 5.16).

#include <gtest/gtest.h>

#include "hierarq/core/shapley.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(CountSat, SingleAtomHandComputed) {
  // Q() :- R(A) with Dn = {R(1), R(2), R(3)}, Dx = ∅:
  // every non-empty subset satisfies Q: #Sat(k) = C(3,k) for k ≥ 1.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  endo.AddFactOrDie("R", MakeTuple({2}));
  endo.AddFactOrDie("R", MakeTuple({3}));
  auto counts = CountSat(q, Database{}, endo);
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), 4u);
  EXPECT_EQ((*counts)[0], BigUint(0));
  EXPECT_EQ((*counts)[1], BigUint(3));
  EXPECT_EQ((*counts)[2], BigUint(3));
  EXPECT_EQ((*counts)[3], BigUint(1));
}

TEST(CountSat, BothPolaritiesSumToBinomial) {
  Rng rng(10);
  for (int round = 0; round < 15; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.7);
    auto both = CountSatBoth(q, exo, endo);
    ASSERT_TRUE(both.ok());
    const size_t n = endo.NumFacts();
    for (size_t k = 0; k <= n; ++k) {
      EXPECT_EQ(both->on_true[k] + both->on_false[k],
                BigUint::Binomial(n, k))
          << q.ToString() << " k=" << k;
    }
  }
}

class CountSatBruteForceParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountSatBruteForceParam, MatchesSubsetEnumeration) {
  Rng rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.6);
    if (endo.NumFacts() > 14) {
      continue;
    }
    auto fast = CountSatBoth(q, exo, endo);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    const BruteForceSatCounts slow = BruteForceCountSat(q, exo, endo);
    EXPECT_EQ(fast->on_true, slow.on_true) << q.ToString();
    EXPECT_EQ(fast->on_false, slow.on_false) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountSatBruteForceParam,
                         ::testing::Values(3, 6, 9, 12, 15, 18, 21, 24));

TEST(Shapley, SingleFactTakesAllCredit) {
  // Dn = {R(1)}, Dx = ∅, Q() :- R(A): the only fact always flips Q.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  auto value = ShapleyValue(q, Database{}, endo, Fact{"R", MakeTuple({1})});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, Fraction(1));
}

TEST(Shapley, TwoSymmetricFactsSplitCredit) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  endo.AddFactOrDie("R", MakeTuple({2}));
  for (const Fact& f : endo.AllFacts()) {
    auto value = ShapleyValue(q, Database{}, endo, f);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, Fraction::Of(1, 2));
  }
}

TEST(Shapley, NullPlayerGetsZero) {
  // A fact that can never participate in a satisfying assignment has
  // Shapley value 0 (the null-player axiom).
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(A)");
  Database exo;
  exo.AddFactOrDie("R", MakeTuple({1}));
  Database endo;
  endo.AddFactOrDie("S", MakeTuple({1}));
  endo.AddFactOrDie("S", MakeTuple({99}));  // No matching R(99): useless.
  auto useless =
      ShapleyValue(q, exo, endo, Fact{"S", MakeTuple({99})});
  ASSERT_TRUE(useless.ok());
  EXPECT_EQ(*useless, Fraction(0));
  auto useful = ShapleyValue(q, exo, endo, Fact{"S", MakeTuple({1})});
  ASSERT_TRUE(useful.ok());
  EXPECT_EQ(*useful, Fraction(1));
}

TEST(Shapley, EfficiencyAxiom) {
  // Σ_f Shapley(f) = Q(Dx ∪ Dn) − Q(Dx) (as 0/1 values).
  Rng rng(20);
  for (int round = 0; round < 15; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 3;
    dopts.domain_size = 3;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.6);
    if (endo.NumFacts() == 0) {
      continue;
    }
    auto all = AllShapleyValues(q, exo, endo);
    ASSERT_TRUE(all.ok()) << q.ToString();
    Fraction sum;
    for (const auto& [fact, value] : *all) {
      EXPECT_GE(value, Fraction(0));
      EXPECT_LE(value, Fraction(1));
      sum += value;
    }
    auto full = exo.UnionWith(endo);
    ASSERT_TRUE(full.ok());
    const int expected = static_cast<int>(EvaluateBoolean(q, *full)) -
                         static_cast<int>(EvaluateBoolean(q, exo));
    EXPECT_EQ(sum, Fraction(expected)) << q.ToString();
  }
}

class ShapleyBruteForceParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapleyBruteForceParam, MatchesSubsetFormula) {
  Rng rng(GetParam() * 31 + 5);
  for (int round = 0; round < 6; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 3;
    dopts.domain_size = 2;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.7);
    if (endo.NumFacts() == 0 || endo.NumFacts() > 10) {
      continue;
    }
    for (const Fact& f : endo.AllFacts()) {
      auto fast = ShapleyValue(q, exo, endo, f);
      ASSERT_TRUE(fast.ok()) << q.ToString();
      const Fraction slow = BruteForceShapleySubsets(q, exo, endo, f);
      EXPECT_EQ(*fast, slow) << q.ToString() << " fact=" << f.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyBruteForceParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Shapley, MatchesPermutationDefinition) {
  // Validate the whole reduction chain against Definition 5.12 verbatim
  // (permutation enumeration) on a small instance.
  const ConjunctiveQuery q = MakePaperQuery();
  Database exo;
  exo.AddFactOrDie("S", MakeTuple({1, 2}));
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1, 5}));
  endo.AddFactOrDie("R", MakeTuple({1, 6}));
  endo.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  endo.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  for (const Fact& f : endo.AllFacts()) {
    auto fast = ShapleyValue(q, exo, endo, f);
    ASSERT_TRUE(fast.ok());
    const Fraction perm = BruteForceShapleyPermutations(q, exo, endo, f);
    const Fraction subs = BruteForceShapleySubsets(q, exo, endo, f);
    EXPECT_EQ(perm, subs) << f.ToString();
    EXPECT_EQ(*fast, perm) << f.ToString();
  }
}

TEST(Shapley, SymmetricFactsGetEqualValues) {
  // R(1,5) and R(1,6) are exchangeable in the paper query.
  const ConjunctiveQuery q = MakePaperQuery();
  Database exo;
  exo.AddFactOrDie("S", MakeTuple({1, 2}));
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1, 5}));
  endo.AddFactOrDie("R", MakeTuple({1, 6}));
  endo.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  auto v1 = ShapleyValue(q, exo, endo, Fact{"R", MakeTuple({1, 5})});
  auto v2 = ShapleyValue(q, exo, endo, Fact{"R", MakeTuple({1, 6})});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
}

TEST(Shapley, NonEndogenousFactRejected) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  auto bad = ShapleyValue(q, Database{}, endo, Fact{"R", MakeTuple({9})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Shapley, NonHierarchicalRejected) {
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  auto bad =
      ShapleyValue(MakeQnh(), Database{}, endo, Fact{"R", MakeTuple({1})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotHierarchical);
}

TEST(Shapley, IrrelevantEndogenousFactsAreHandled) {
  // Endogenous facts whose relation does not appear in the query dilute
  // permutations but must not change the relative values' correctness —
  // validated against brute force.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1}));
  endo.AddFactOrDie("Z", MakeTuple({7}));  // Not in the query.
  const Fact r1{"R", MakeTuple({1})};
  auto fast = ShapleyValue(q, Database{}, endo, r1);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, BruteForceShapleySubsets(q, Database{}, endo, r1));
  EXPECT_EQ(*fast, Fraction(1));
  const Fact z{"Z", MakeTuple({7})};
  auto zero = ShapleyValue(q, Database{}, endo, z);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, Fraction(0));
}

TEST(CountSat, LargeEndogenousSetNeedsBigIntegers) {
  // 80 independent facts: counts reach C(80, 40) ≈ 10^23 > 2^64. The
  // result must match the binomial exactly — this is why BigUint exists.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database endo;
  for (int i = 0; i < 80; ++i) {
    endo.AddFactOrDie("R", MakeTuple({i}));
  }
  auto counts = CountSat(q, Database{}, endo);
  ASSERT_TRUE(counts.ok());
  for (size_t k = 1; k <= 80; ++k) {
    EXPECT_EQ((*counts)[k], BigUint::Binomial(80, k));
  }
  EXPECT_EQ((*counts)[40].ToString(), BigUint::Binomial(80, 40).ToString());
  EXPECT_GT(BigUint::Binomial(80, 40), BigUint(~uint64_t{0}));
}

}  // namespace
}  // namespace hierarq
