// Randomized property tests for the relation laws every storage backend
// must satisfy (the contract behind AnnotatedRelation's runtime dispatch):
//
//   * AssignFrom under a permuted/renamed schema is an isomorphism — the
//     copy holds exactly the source's (key, annotation) pairs, re-labelled;
//   * Merge is ⊕-associative and ⊕-commutative per monoid: any insertion
//     order and any grouping of a multiset of (key, value) updates lands
//     on the same relation;
//   * Reset + reuse never leaks prior entries — a scratch relation cycled
//     through schemas and backends behaves like a fresh one (the class of
//     bug the PR 2 scratch-resize fix addressed).
//
// All properties quantify over the three backends and over random data
// from seeded Rngs, so failures reproduce from the seed printed by gtest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <vector>

#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/storage.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

// A random key over `arity` positions with values in [0, domain).
Tuple RandomKey(Rng& rng, size_t arity, int64_t domain) {
  Tuple key;
  key.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    key.push_back(rng.UniformInt(0, domain - 1));
  }
  return key;
}

// Reference content of a relation, independent of backend layout.
template <typename K>
std::map<std::vector<Value>, K> Snapshot(const AnnotatedRelation<K>& rel) {
  std::map<std::vector<Value>, K> out;
  rel.ForEach([&](const Tuple& key, const K& value) {
    out.emplace(std::vector<Value>(key.begin(), key.end()), value);
  });
  return out;
}

VarSet SchemaOfArity(size_t arity, VarId first) {
  VarSet schema;
  for (size_t i = 0; i < arity; ++i) {
    schema.Insert(first + static_cast<VarId>(i));
  }
  return schema;
}

TEST(AnnotatedPropertyTest, AssignFromIsSchemaRelabelledIsomorphism) {
  for (StorageKind source_kind : kAllStorageKinds) {
    for (StorageKind target_kind : kAllStorageKinds) {
      Rng rng(0x5eedULL + static_cast<uint64_t>(source_kind) * 16 +
              static_cast<uint64_t>(target_kind));
      for (int round = 0; round < 20; ++round) {
        const size_t arity = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
        AnnotatedRelation<uint64_t> source(SchemaOfArity(arity, 0),
                                           source_kind);
        const size_t n = static_cast<size_t>(rng.UniformInt(0, 40));
        for (size_t i = 0; i < n; ++i) {
          source.Merge(RandomKey(rng, arity, 16), rng.Next() % 1000,
                       [](uint64_t a, uint64_t b) { return a + b; });
        }

        // Target starts in its own backend, pre-polluted with entries that
        // the assignment must fully replace.
        AnnotatedRelation<uint64_t> target(SchemaOfArity(arity, 50),
                                           target_kind);
        target.Set(RandomKey(rng, arity, 16), 77);
        const VarSet renamed = SchemaOfArity(arity, 100);
        target.AssignFrom(source, renamed);

        // The copy adopts the source's backend and the new labels, and is
        // entry-for-entry identical to the source.
        EXPECT_EQ(target.storage(), source.storage());
        EXPECT_TRUE(target.schema() == renamed);
        EXPECT_EQ(target.size(), source.size());
        EXPECT_EQ(Snapshot(target), Snapshot(source));
        source.ForEach([&](const Tuple& key, const uint64_t& value) {
          const uint64_t* found = target.Find(key);
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, value);
        });

        // The copy is independent: mutating it leaves the source intact.
        const auto before = Snapshot(source);
        target.Merge(RandomKey(rng, arity, 16), 5,
                     [](uint64_t a, uint64_t b) { return a + b; });
        EXPECT_EQ(Snapshot(source), before);
      }
    }
  }
}

// Applies `updates` to a fresh relation in the given order, with a random
// associativity flavor: each update may first pre-combine with a
// neighbour before merging (exercising grouping, not just order).
template <typename Combine>
AnnotatedRelation<uint64_t> Apply(
    const std::vector<std::pair<Tuple, uint64_t>>& updates, VarSet schema,
    StorageKind kind, Combine combine) {
  AnnotatedRelation<uint64_t> rel(std::move(schema), kind);
  for (const auto& [key, value] : updates) {
    rel.Merge(key, value, combine);
  }
  return rel;
}

TEST(AnnotatedPropertyTest, MergeIsOrderAndBackendIndependentPerMonoid) {
  // ⊕ candidates: counting + (CountMonoid's Plus) and min with ∞ identity
  // (ResilienceMonoid's Plus). Both are associative and commutative, so
  // any permutation of the update sequence must produce the same relation
  // on every backend.
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const auto min_combine = [](uint64_t a, uint64_t b) {
    return ResilienceMonoid{}.Plus(a, b);
  };

  Rng rng(0xfeedULL);
  for (int round = 0; round < 30; ++round) {
    const size_t arity = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const VarSet schema = SchemaOfArity(arity, 0);
    std::vector<std::pair<Tuple, uint64_t>> updates;
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 60));
    for (size_t i = 0; i < n; ++i) {
      // Tight domain so duplicate keys (the merge path) are common.
      updates.emplace_back(RandomKey(rng, arity, 4),
                           1 + rng.Next() % 100);
    }
    std::vector<std::pair<Tuple, uint64_t>> shuffled = updates;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);

    const auto reference_plus =
        Snapshot(Apply(updates, schema, StorageKind::kBaseline, plus));
    const auto reference_min =
        Snapshot(Apply(updates, schema, StorageKind::kBaseline, min_combine));
    for (StorageKind kind : kAllStorageKinds) {
      EXPECT_EQ(Snapshot(Apply(updates, schema, kind, plus)),
                reference_plus);
      EXPECT_EQ(Snapshot(Apply(shuffled, schema, kind, plus)),
                reference_plus);
      EXPECT_EQ(Snapshot(Apply(updates, schema, kind, min_combine)),
                reference_min);
      EXPECT_EQ(Snapshot(Apply(shuffled, schema, kind, min_combine)),
                reference_min);
    }
  }
}

TEST(AnnotatedPropertyTest, ResetAndReuseNeverLeaksPriorEntries) {
  for (StorageKind kind : kAllStorageKinds) {
    Rng rng(0xabcdULL + static_cast<uint64_t>(kind));
    AnnotatedRelation<uint64_t> rel(SchemaOfArity(2, 0), kind);
    for (int round = 0; round < 40; ++round) {
      // Fill under a random schema/arity...
      const size_t arity = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
      const VarSet schema = SchemaOfArity(arity, rng.Next() % 8);
      rel.Reset(schema);
      EXPECT_TRUE(rel.empty()) << "Reset left entries behind";
      std::vector<std::pair<Tuple, uint64_t>> inserted;
      const size_t n = static_cast<size_t>(rng.UniformInt(0, 30));
      for (size_t i = 0; i < n; ++i) {
        Tuple key = RandomKey(rng, arity, 8);
        const uint64_t value = rng.Next() % 1000;
        rel.Set(key, value);
        inserted.emplace_back(std::move(key), value);
      }
      // ... and verify the content is exactly what this round inserted:
      // last-write-wins per key, nothing from earlier rounds.
      std::map<std::vector<Value>, uint64_t> expected;
      for (const auto& [key, value] : inserted) {
        expected[std::vector<Value>(key.begin(), key.end())] = value;
      }
      EXPECT_EQ(Snapshot(rel), expected);
      EXPECT_EQ(rel.size(), expected.size());
    }
  }
}

TEST(AnnotatedPropertyTest, ResetAcrossBackendSwitchesStartsClean) {
  Rng rng(0x90edULL);
  AnnotatedRelation<uint64_t> rel(SchemaOfArity(2, 0));
  for (int round = 0; round < 60; ++round) {
    const StorageKind kind = kAllStorageKinds[static_cast<size_t>(
        rng.UniformInt(0, std::size(kAllStorageKinds) - 1))];
    const size_t arity = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    rel.Reset(SchemaOfArity(arity, 0), kind);
    EXPECT_EQ(rel.storage(), kind);
    EXPECT_TRUE(rel.empty());
    const Tuple probe = RandomKey(rng, arity, 4);
    EXPECT_EQ(rel.Find(probe), nullptr);
    rel.Set(probe, static_cast<uint64_t>(round));
    EXPECT_EQ(rel.size(), 1u);
    ASSERT_NE(rel.Find(probe), nullptr);
    EXPECT_EQ(*rel.Find(probe), static_cast<uint64_t>(round));
  }
}

}  // namespace
}  // namespace hierarq
