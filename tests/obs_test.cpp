// Tests for the observability layer (obs/): the metrics registry's
// counters/gauges/log-2 histograms and their concurrency story (the TSAN
// leg runs this file), the span tracer's ring-buffer wraparound, the
// disabled-instrumentation fast path, and the EXPLAIN ANALYZE renderer's
// contract that every plan step appears exactly once.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/obs/explain.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

// Figure 1a's database for the paper query Q() :- R(A,B), S(A,C), T(A,C,D).
Database PaperDb() {
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 1}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  return d;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly the zeros; bucket i >= 1 covers
  // [2^(i-1), 2^i - 1] — the log-2 layout BucketOf/bit_width implies.
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketOf(UINT64_MAX),
            obs::Histogram::kNumBuckets - 1);
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::BucketOf(obs::Histogram::BucketLowerBound(i)),
              i);
    EXPECT_EQ(obs::Histogram::BucketOf(obs::Histogram::BucketUpperBound(i)),
              i);
    if (i + 1 < obs::Histogram::kNumBuckets) {
      EXPECT_EQ(obs::Histogram::BucketUpperBound(i) + 1,
                obs::Histogram::BucketLowerBound(i + 1));
    }
  }

  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1006u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(obs::Histogram::BucketOf(1000)), 1u);
}

TEST(Metrics, CounterSumsItsShards) {
  obs::Counter counter;
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Metrics, DisabledMetricsDropUpdates) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  obs::SetMetricsEnabled(false);
  counter.Add(7);
  gauge.Set(7);
  histogram.Observe(7);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Count(), 0u);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(Metrics, RegistryResolvesOneInstrumentPerName) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test.counter");
  obs::Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.other"), a);
  a->Add(3);
  registry.GetGauge("test.gauge")->Set(-5);
  registry.GetHistogram("test.hist")->Observe(9);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("counter test.counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.gauge -5"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram test.hist count=1 sum=9"),
            std::string::npos)
      << text;
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"test.counter\": 3"), std::string::npos) << json;
  registry.Reset();
  EXPECT_EQ(a->Value(), 0u);
}

// The TSAN target: many threads hammering the same named instruments
// through the registry must neither race nor lose updates.
TEST(Metrics, RegistryConcurrency) {
  obs::MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kBumps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter* counter = registry.GetCounter("conc.counter");
      obs::Gauge* gauge = registry.GetGauge("conc.gauge");
      obs::Histogram* histogram = registry.GetHistogram("conc.hist");
      for (size_t i = 0; i < kBumps; ++i) {
        counter->Add();
        gauge->Add(1);
        histogram->Observe(i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("conc.counter")->Value(), kThreads * kBumps);
  EXPECT_EQ(registry.GetGauge("conc.gauge")->Value(),
            static_cast<int64_t>(kThreads * kBumps));
  EXPECT_EQ(registry.GetHistogram("conc.hist")->Count(), kThreads * kBumps);
}

TEST(Tracer, RingBufferWrapsKeepingTheMostRecentWindow) {
  constexpr size_t kCapacity = 8;
  constexpr size_t kEmits = 30;
  obs::Tracer tracer(kCapacity);
  tracer.Install();
  for (size_t i = 0; i < kEmits; ++i) {
    tracer.EmitInstant("tick", "i", static_cast<double>(i));
  }
  tracer.Uninstall();
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(tracer.dropped(), kEmits - kCapacity);
  // A flight recorder keeps the newest window, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].arg,
                     static_cast<double>(kEmits - kCapacity + i));
  }
}

TEST(Tracer, ChromeTraceEnvelopeCarriesTheDropCount) {
  // tools/check_trace.py reads "dropped" to decide whether a wrapped
  // ring may explain missing step events (it degrades the equal-coverage
  // failure to a warning); the envelope must carry the exact count.
  constexpr size_t kCapacity = 4;
  constexpr size_t kEmits = 11;
  obs::Tracer tracer(kCapacity);
  tracer.Install();
  for (size_t i = 0; i < kEmits; ++i) {
    tracer.EmitInstant("tick", "i", static_cast<double>(i));
  }
  tracer.Uninstall();
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped\": " + std::to_string(kEmits - kCapacity)),
            std::string::npos)
      << json;

  // And a quiet tracer reports zero, so the validator stays strict.
  obs::Tracer quiet;
  quiet.Install();
  quiet.EmitInstant("tick", "i", 1.0);
  quiet.Uninstall();
  std::ostringstream quiet_out;
  quiet.WriteChromeTrace(quiet_out);
  EXPECT_NE(quiet_out.str().find("\"dropped\": 0"), std::string::npos);
}

TEST(Tracer, UninstalledSpansAreCheapAndRecordNothing) {
  ASSERT_EQ(obs::Tracer::Current(), nullptr);
  constexpr size_t kSpans = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kSpans; ++i) {
    obs::Span span("noop", "test");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns_per_span =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kSpans;
  // One relaxed load + a branch. The bound is deliberately loose (debug
  // builds, sanitizers, loaded CI machines) — it exists to catch the
  // fast path growing a lock or a clock read, which costs 10-100x more.
  EXPECT_LT(ns_per_span, 500.0);
}

TEST(Tracer, StepEventsCarryTheDecision) {
  obs::Tracer tracer;
  tracer.Install();
  const uint64_t t0 = obs::Tracer::NowNs();
  obs::TraceStepArgs args;
  args.step_index = 3;
  args.rule = 2;
  args.parallel = true;
  args.threads = 4;
  args.rows_in = 100;
  args.rows_out = 60;
  args.adaptive = true;
  args.predicted_serial_ns = 1000.0;
  args.predicted_parallel_ns = 400.0;
  tracer.EmitStep(t0, obs::Tracer::NowNs(), args);
  tracer.Uninstall();
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::TraceEvent::Kind::kStep);
  EXPECT_STREQ(events[0].name, "rule2_merge");
  EXPECT_EQ(events[0].step.step_index, 3u);
  EXPECT_TRUE(events[0].step.parallel);
  EXPECT_EQ(events[0].step.threads, 4u);
}

TEST(Explain, NamesEveryPlanStepExactlyOnce) {
  const ConjunctiveQuery q = MakePaperQuery();
  const Database db = PaperDb();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());

  obs::Tracer tracer;
  tracer.Install();
  Evaluator evaluator;
  auto result = evaluator.Evaluate<CountMonoid>(
      q, CountMonoid{}, db, [](const Fact&) -> uint64_t { return 1; });
  tracer.Uninstall();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  size_t step_events = 0;
  for (const obs::TraceEvent& event : events) {
    step_events += event.kind == obs::TraceEvent::Kind::kStep ? 1 : 0;
  }
  EXPECT_EQ(step_events, plan->steps().size());

  const std::string text =
      obs::RenderExplainAnalyze(*plan, q.variables(), events);
  // One "#i " step marker per elimination step, each exactly once, and
  // every step has an observation (nothing rendered "[not executed]").
  for (size_t i = 0; i < plan->steps().size(); ++i) {
    const std::string marker = "#" + std::to_string(i + 1) + " ";
    EXPECT_EQ(CountOccurrences(text, marker), 1u)
        << "marker '" << marker << "' in:\n"
        << text;
  }
  EXPECT_EQ(CountOccurrences(text, "[not executed]"), 0u) << text;
  EXPECT_EQ(CountOccurrences(text, "rows"), plan->steps().size()) << text;
}

TEST(Explain, UnexecutedPlanRendersEveryStepAsNotRun) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  const std::string text =
      obs::RenderExplainAnalyze(*plan, q.variables(), {});
  EXPECT_EQ(CountOccurrences(text, "[not executed]"), plan->steps().size())
      << text;
}

TEST(Explain, FormatNsPicksReadableUnits) {
  EXPECT_EQ(obs::FormatNs(123.0), "123ns");
  EXPECT_EQ(obs::FormatNs(1500.0), "1.5us");
  EXPECT_EQ(obs::FormatNs(2350000.0), "2.35ms");
  EXPECT_EQ(obs::FormatNs(1234000000.0), "1.234s");
}

}  // namespace
}  // namespace hierarq
