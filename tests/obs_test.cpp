// Tests for the observability layer (obs/): the metrics registry's
// counters/gauges/log-2 histograms and their concurrency story (the TSAN
// leg runs this file), the span tracer's ring-buffer wraparound, the
// disabled-instrumentation fast path, and the EXPLAIN ANALYZE renderer's
// contract that every plan step appears exactly once.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/obs/explain.h"
#include "hierarq/obs/log.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/query_stats.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

// Figure 1a's database for the paper query Q() :- R(A,B), S(A,C), T(A,C,D).
Database PaperDb() {
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 1}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  return d;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly the zeros; bucket i >= 1 covers
  // [2^(i-1), 2^i - 1] — the log-2 layout BucketOf/bit_width implies.
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketOf(UINT64_MAX),
            obs::Histogram::kNumBuckets - 1);
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::BucketOf(obs::Histogram::BucketLowerBound(i)),
              i);
    EXPECT_EQ(obs::Histogram::BucketOf(obs::Histogram::BucketUpperBound(i)),
              i);
    if (i + 1 < obs::Histogram::kNumBuckets) {
      EXPECT_EQ(obs::Histogram::BucketUpperBound(i) + 1,
                obs::Histogram::BucketLowerBound(i + 1));
    }
  }

  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1006u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(obs::Histogram::BucketOf(1000)), 1u);
}

TEST(Metrics, CounterSumsItsShards) {
  obs::Counter counter;
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Metrics, DisabledMetricsDropUpdates) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  obs::SetMetricsEnabled(false);
  counter.Add(7);
  gauge.Set(7);
  histogram.Observe(7);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Count(), 0u);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(Metrics, RegistryResolvesOneInstrumentPerName) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("test.counter");
  obs::Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("test.other"), a);
  a->Add(3);
  registry.GetGauge("test.gauge")->Set(-5);
  registry.GetHistogram("test.hist")->Observe(9);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("counter test.counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.gauge -5"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram test.hist count=1 sum=9"),
            std::string::npos)
      << text;
  const std::string json = registry.RenderJson();
  // 64-bit integers ride JSON as decimal strings (ns counters pass 2^53,
  // where double-parsing consumers would silently round).
  EXPECT_NE(json.find("\"test.counter\": \"3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": \"1\""), std::string::npos) << json;
  registry.Reset();
  EXPECT_EQ(a->Value(), 0u);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  obs::Histogram h;
  // An empty histogram must answer NaN, not pretend bucket 0.
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));

  // 1000 samples 0..999: exact percentiles are known, and the log-2
  // buckets bound the estimate to its bucket's range.
  for (uint64_t v = 0; v < 1000; ++v) {
    h.Observe(v);
  }
  const double p50 = h.Quantile(0.50);
  const double p90 = h.Quantile(0.90);
  const double p99 = h.Quantile(0.99);
  // Exact p50 = 499.5 lives in [256,511]; p90 = 899.1 and p99 = 989.01
  // share [512,1023]. The estimate may not leave the exact value's
  // bucket, and must order correctly.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 511.0);
  EXPECT_GE(p90, 512.0);
  EXPECT_LE(p90, 1023.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1023.0);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  // Within-bucket interpolation: relative error against the exact
  // percentile stays well under the 2x worst case of bucket midpoints.
  EXPECT_NEAR(p50, 499.5, 499.5 * 0.35);
  EXPECT_NEAR(p90, 899.1, 899.1 * 0.35);
  EXPECT_NEAR(p99, 989.01, 989.01 * 0.35);

  // Extremes clamp instead of over/underrunning the rank walk.
  EXPECT_GE(h.Quantile(0.0), 0.0);
  EXPECT_LE(h.Quantile(1.0), 1023.0);

  obs::Histogram zeros;
  zeros.Observe(0);
  zeros.Observe(0);
  EXPECT_EQ(zeros.Quantile(0.99), 0.0) << "all-zero data is bucket 0";

  // Empty histograms render WITHOUT p* fields in both formats.
  obs::MetricsRegistry registry;
  registry.GetHistogram("test.empty");
  EXPECT_EQ(registry.RenderText().find("p50="), std::string::npos);
  EXPECT_EQ(registry.RenderJson().find("\"p50\""), std::string::npos);
  registry.GetHistogram("test.full")->Observe(100);
  EXPECT_NE(registry.RenderText().find("p50="), std::string::npos);
  EXPECT_NE(registry.RenderJson().find("\"p50\""), std::string::npos);
}

// The TSAN target: many threads hammering the same named instruments
// through the registry must neither race nor lose updates.
TEST(Metrics, RegistryConcurrency) {
  obs::MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kBumps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter* counter = registry.GetCounter("conc.counter");
      obs::Gauge* gauge = registry.GetGauge("conc.gauge");
      obs::Histogram* histogram = registry.GetHistogram("conc.hist");
      for (size_t i = 0; i < kBumps; ++i) {
        counter->Add();
        gauge->Add(1);
        histogram->Observe(i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("conc.counter")->Value(), kThreads * kBumps);
  EXPECT_EQ(registry.GetGauge("conc.gauge")->Value(),
            static_cast<int64_t>(kThreads * kBumps));
  EXPECT_EQ(registry.GetHistogram("conc.hist")->Count(), kThreads * kBumps);
}

TEST(Tracer, RingBufferWrapsKeepingTheMostRecentWindow) {
  constexpr size_t kCapacity = 8;
  constexpr size_t kEmits = 30;
  obs::Tracer tracer(kCapacity);
  tracer.Install();
  for (size_t i = 0; i < kEmits; ++i) {
    tracer.EmitInstant("tick", "i", static_cast<double>(i));
  }
  tracer.Uninstall();
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(tracer.dropped(), kEmits - kCapacity);
  // A flight recorder keeps the newest window, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].arg,
                     static_cast<double>(kEmits - kCapacity + i));
  }
}

TEST(Tracer, ChromeTraceEnvelopeCarriesTheDropCount) {
  // tools/check_trace.py reads "dropped" to decide whether a wrapped
  // ring may explain missing step events (it degrades the equal-coverage
  // failure to a warning); the envelope must carry the exact count.
  constexpr size_t kCapacity = 4;
  constexpr size_t kEmits = 11;
  obs::Tracer tracer(kCapacity);
  tracer.Install();
  for (size_t i = 0; i < kEmits; ++i) {
    tracer.EmitInstant("tick", "i", static_cast<double>(i));
  }
  tracer.Uninstall();
  std::ostringstream out;
  tracer.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped\": " + std::to_string(kEmits - kCapacity)),
            std::string::npos)
      << json;

  // And a quiet tracer reports zero, so the validator stays strict.
  obs::Tracer quiet;
  quiet.Install();
  quiet.EmitInstant("tick", "i", 1.0);
  quiet.Uninstall();
  std::ostringstream quiet_out;
  quiet.WriteChromeTrace(quiet_out);
  EXPECT_NE(quiet_out.str().find("\"dropped\": 0"), std::string::npos);
}

TEST(Tracer, UninstalledSpansAreCheapAndRecordNothing) {
  ASSERT_EQ(obs::Tracer::Current(), nullptr);
  constexpr size_t kSpans = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kSpans; ++i) {
    obs::Span span("noop", "test");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double ns_per_span =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kSpans;
  // One relaxed load + a branch. The bound is deliberately loose (debug
  // builds, sanitizers, loaded CI machines) — it exists to catch the
  // fast path growing a lock or a clock read, which costs 10-100x more.
  EXPECT_LT(ns_per_span, 500.0);
}

TEST(Tracer, StepEventsCarryTheDecision) {
  obs::Tracer tracer;
  tracer.Install();
  const uint64_t t0 = obs::Tracer::NowNs();
  obs::TraceStepArgs args;
  args.step_index = 3;
  args.rule = 2;
  args.parallel = true;
  args.threads = 4;
  args.rows_in = 100;
  args.rows_out = 60;
  args.adaptive = true;
  args.predicted_serial_ns = 1000.0;
  args.predicted_parallel_ns = 400.0;
  tracer.EmitStep(t0, obs::Tracer::NowNs(), args);
  tracer.Uninstall();
  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::TraceEvent::Kind::kStep);
  EXPECT_STREQ(events[0].name, "rule2_merge");
  EXPECT_EQ(events[0].step.step_index, 3u);
  EXPECT_TRUE(events[0].step.parallel);
  EXPECT_EQ(events[0].step.threads, 4u);
}

TEST(Explain, NamesEveryPlanStepExactlyOnce) {
  const ConjunctiveQuery q = MakePaperQuery();
  const Database db = PaperDb();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());

  obs::Tracer tracer;
  tracer.Install();
  Evaluator evaluator;
  auto result = evaluator.Evaluate<CountMonoid>(
      q, CountMonoid{}, db, [](const Fact&) -> uint64_t { return 1; });
  tracer.Uninstall();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::vector<obs::TraceEvent> events = tracer.Snapshot();
  size_t step_events = 0;
  for (const obs::TraceEvent& event : events) {
    step_events += event.kind == obs::TraceEvent::Kind::kStep ? 1 : 0;
  }
  EXPECT_EQ(step_events, plan->steps().size());

  const std::string text =
      obs::RenderExplainAnalyze(*plan, q.variables(), events);
  // One "#i " step marker per elimination step, each exactly once, and
  // every step has an observation (nothing rendered "[not executed]").
  for (size_t i = 0; i < plan->steps().size(); ++i) {
    const std::string marker = "#" + std::to_string(i + 1) + " ";
    EXPECT_EQ(CountOccurrences(text, marker), 1u)
        << "marker '" << marker << "' in:\n"
        << text;
  }
  EXPECT_EQ(CountOccurrences(text, "[not executed]"), 0u) << text;
  EXPECT_EQ(CountOccurrences(text, "rows"), plan->steps().size()) << text;
}

TEST(Explain, UnexecutedPlanRendersEveryStepAsNotRun) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  const std::string text =
      obs::RenderExplainAnalyze(*plan, q.variables(), {});
  EXPECT_EQ(CountOccurrences(text, "[not executed]"), plan->steps().size())
      << text;
}

TEST(Explain, FormatNsPicksReadableUnits) {
  EXPECT_EQ(obs::FormatNs(123.0), "123ns");
  EXPECT_EQ(obs::FormatNs(1500.0), "1.5us");
  EXPECT_EQ(obs::FormatNs(2350000.0), "2.35ms");
  EXPECT_EQ(obs::FormatNs(1234000000.0), "1.234s");
}

// ------------------------------------------------------ structured log --

TEST(Logger, KeyValueLinesCarryPrefixAndFields) {
  std::ostringstream sink;
  obs::Logger::Options options;
  options.sink = &sink;
  obs::Logger logger(options);
  logger.Info("listening", {{"addr", "127.0.0.1:9000"}, {"facts", "42"}});
  const std::string line = sink.str();
  EXPECT_NE(line.find("level=info"), std::string::npos) << line;
  EXPECT_NE(line.find("event=listening"), std::string::npos) << line;
  EXPECT_NE(line.find("addr=127.0.0.1:9000"), std::string::npos) << line;
  EXPECT_NE(line.find("facts=42"), std::string::npos) << line;
  EXPECT_NE(line.find("ts_ns="), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');

  // Values with spaces or quotes are quoted-and-escaped, so the line
  // stays one-token-per-field parseable.
  sink.str("");
  logger.Warn("slow_query", {{"query", "Q() :- R(A,\"x\")"}});
  EXPECT_NE(sink.str().find("query=\"Q() :- R(A,\\\"x\\\")\""),
            std::string::npos)
      << sink.str();
}

TEST(Logger, JsonLinesAreParseableObjects) {
  std::ostringstream sink;
  obs::Logger::Options options;
  options.sink = &sink;
  options.json = true;
  obs::Logger logger(options);
  logger.Error("error_frame", {{"message", "bad \"frame\""}});
  const std::string line = sink.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\":\"error_frame\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"message\":\"bad \\\"frame\\\"\""),
            std::string::npos)
      << line;
}

TEST(Logger, LevelGateAndRateLimitDropLines) {
  std::ostringstream sink;
  obs::Logger::Options options;
  options.sink = &sink;
  options.min_level = obs::LogLevel::kWarn;
  obs::Logger logger(options);
  logger.Debug("below", {});
  logger.Info("below", {});
  logger.Warn("kept", {});
  EXPECT_EQ(CountOccurrences(sink.str(), "event="), 1u) << sink.str();

  // Token bucket: burst admits the first N instantly, the flood beyond
  // is counted in dropped() — except errors, which always land.
  std::ostringstream limited_sink;
  obs::Logger::Options limited;
  limited.sink = &limited_sink;
  limited.rate_per_sec = 1;
  limited.burst = 2;
  obs::Logger flooded(limited);
  for (int i = 0; i < 50; ++i) {
    flooded.Info("flood", {});
  }
  flooded.Error("always", {});
  EXPECT_LE(CountOccurrences(limited_sink.str(), "event=flood"), 3u);
  EXPECT_GE(flooded.dropped(), 47u);
  EXPECT_NE(limited_sink.str().find("event=always"), std::string::npos)
      << "errors bypass the bucket";
}

TEST(QueryStats, RenderAndScopedCollection) {
  obs::QueryStats stats;
  {
    obs::ScopedQueryStats scope(&stats);
    ASSERT_EQ(obs::CurrentQueryStats(), &stats);
    obs::CurrentQueryStats()->RecordStep(1, 10, 4, false);
    obs::CurrentQueryStats()->RecordStep(2, 8, 2, true);
  }
  EXPECT_EQ(obs::CurrentQueryStats(), nullptr) << "scope must uninstall";
  EXPECT_EQ(stats.rule1_rows_scanned, 10u);
  EXPECT_EQ(stats.rule1_rows_emitted, 4u);
  EXPECT_EQ(stats.rule2_rows_scanned, 8u);
  EXPECT_EQ(stats.rule2_rows_emitted, 2u);
  EXPECT_EQ(stats.steps_total, 2u);
  EXPECT_EQ(stats.steps_serial, 1u);
  EXPECT_EQ(stats.steps_parallel, 1u);
  const std::string line = stats.Render();
  EXPECT_NE(line.find("rule1_rows_scanned=10"), std::string::npos) << line;
  EXPECT_NE(line.find("plan_cache_hit=false"), std::string::npos) << line;

  // A null scope is the disabled path: collection is a no-op, not a
  // crash.
  obs::ScopedQueryStats disabled(nullptr);
  EXPECT_EQ(obs::CurrentQueryStats(), nullptr);
}

}  // namespace
}  // namespace hierarq
