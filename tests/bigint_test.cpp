// Unit tests for arbitrary-precision integers.

#include <gtest/gtest.h>

#include <cmath>

#include "hierarq/util/bigint.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToDouble(), 0.0);
  EXPECT_EQ(z, BigUint(0));
}

TEST(BigUint, SmallArithmetic) {
  EXPECT_EQ(BigUint(2) + BigUint(3), BigUint(5));
  EXPECT_EQ(BigUint(10) - BigUint(4), BigUint(6));
  EXPECT_EQ(BigUint(6) * BigUint(7), BigUint(42));
  EXPECT_EQ((BigUint(1) << 10), BigUint(1024));
  EXPECT_EQ((BigUint(1024) >> 3), BigUint(128));
}

TEST(BigUint, CarryPropagation) {
  const BigUint max64(~uint64_t{0});
  const BigUint sum = max64 + BigUint(1);
  EXPECT_EQ(sum.ToString(), "18446744073709551616");  // 2^64
  EXPECT_EQ(sum - BigUint(1), max64);
  EXPECT_EQ(sum.BitLength(), 65u);
}

TEST(BigUint, MultiplicationLarge) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const BigUint max64(~uint64_t{0});
  const BigUint square = max64 * max64;
  EXPECT_EQ(square.ToString(),
            "340282366920938463426481119284349108225");
}

TEST(BigUint, StringRoundTrip) {
  const char* kValues[] = {
      "0", "1", "42", "18446744073709551615", "18446744073709551616",
      "123456789012345678901234567890123456789012345678901234567890"};
  for (const char* text : kValues) {
    auto parsed = BigUint::FromString(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(BigUint, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigUint::FromString("").ok());
  EXPECT_FALSE(BigUint::FromString("12a").ok());
  EXPECT_FALSE(BigUint::FromString("-5").ok());
}

TEST(BigUint, Factorial) {
  EXPECT_EQ(BigUint::Factorial(0), BigUint(1));
  EXPECT_EQ(BigUint::Factorial(1), BigUint(1));
  EXPECT_EQ(BigUint::Factorial(5), BigUint(120));
  EXPECT_EQ(BigUint::Factorial(20), BigUint(2432902008176640000ULL));
  // 25! overflows uint64 and is a known constant.
  EXPECT_EQ(BigUint::Factorial(25).ToString(),
            "15511210043330985984000000");
}

TEST(BigUint, FactorialRecurrence) {
  for (uint64_t n = 1; n <= 40; ++n) {
    EXPECT_EQ(BigUint::Factorial(n),
              BigUint::Factorial(n - 1) * BigUint(n));
  }
}

TEST(BigUint, Binomial) {
  EXPECT_EQ(BigUint::Binomial(5, 2), BigUint(10));
  EXPECT_EQ(BigUint::Binomial(10, 0), BigUint(1));
  EXPECT_EQ(BigUint::Binomial(10, 10), BigUint(1));
  EXPECT_EQ(BigUint::Binomial(10, 11), BigUint(0));
  EXPECT_EQ(BigUint::Binomial(52, 5), BigUint(2598960));
  // C(100, 50) is a known 30-digit constant.
  EXPECT_EQ(BigUint::Binomial(100, 50).ToString(),
            "100891344545564193334812497256");
}

TEST(BigUint, PascalIdentity) {
  for (uint64_t n = 1; n <= 30; ++n) {
    for (uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(BigUint::Binomial(n, k),
                BigUint::Binomial(n - 1, k - 1) + BigUint::Binomial(n - 1, k));
    }
  }
}

TEST(BigUint, BinomialRowSum) {
  for (uint64_t n = 0; n <= 40; ++n) {
    BigUint sum;
    for (uint64_t k = 0; k <= n; ++k) {
      sum += BigUint::Binomial(n, k);
    }
    EXPECT_EQ(sum, BigUint::PowerOfTwo(n));
  }
}

TEST(BigUint, DivModSmall) {
  uint64_t rem = 0;
  const BigUint q = BigUint(1000003).DivModSmall(10, &rem);
  EXPECT_EQ(q, BigUint(100000));
  EXPECT_EQ(rem, 3u);

  // Multi-limb division.
  auto big = BigUint::FromString("340282366920938463463374607431768211456");
  ASSERT_TRUE(big.ok());  // 2^128.
  const BigUint half = big->DivModSmall(2, &rem);
  EXPECT_EQ(rem, 0u);
  EXPECT_EQ(half, BigUint::PowerOfTwo(127));
}

TEST(BigUint, Gcd) {
  EXPECT_EQ(BigUint::Gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(5)), BigUint(1));
  EXPECT_EQ(BigUint::Gcd(BigUint(0), BigUint(9)), BigUint(9));
  EXPECT_EQ(BigUint::Gcd(BigUint(9), BigUint(0)), BigUint(9));
  EXPECT_EQ(BigUint::Gcd(BigUint(64), BigUint(48)), BigUint(16));
  // gcd(20!, 2^30) = 2^18 (20! has exactly 18 factors of two).
  EXPECT_EQ(BigUint::Gcd(BigUint::Factorial(20), BigUint::PowerOfTwo(30)),
            BigUint::PowerOfTwo(18));
}

TEST(BigUint, GcdRandomizedAgreesWithEuclid) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() % 100000;
    uint64_t b = rng.Next() % 100000;
    uint64_t x = a;
    uint64_t y = b;
    while (y != 0) {
      const uint64_t t = x % y;
      x = y;
      y = t;
    }
    EXPECT_EQ(BigUint::Gcd(BigUint(a), BigUint(b)), BigUint(x))
        << a << " " << b;
  }
}

TEST(BigUint, CompareTotalOrder) {
  EXPECT_LT(BigUint(3), BigUint(5));
  EXPECT_GT(BigUint::PowerOfTwo(100), BigUint::PowerOfTwo(99));
  EXPECT_LE(BigUint(7), BigUint(7));
  EXPECT_GE(BigUint::Factorial(10), BigUint::Factorial(9));
}

TEST(BigUint, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigUint(12345).ToDouble(), 12345.0);
  EXPECT_NEAR(BigUint::PowerOfTwo(100).ToDouble(), std::ldexp(1.0, 100),
              std::ldexp(1.0, 48));  // Relative error ~2^-52.
  // 170! still fits a double.
  EXPECT_NEAR(BigUint::Factorial(170).ToDouble() / 7.257415615307994e306,
              1.0, 1e-12);
  // 200! does not.
  EXPECT_TRUE(std::isinf(BigUint::Factorial(200).ToDouble()));
}

TEST(BigUint, ShiftRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const BigUint v(rng.Next());
    const uint64_t shift = rng.Next() % 200;
    EXPECT_EQ((v << shift) >> shift, v);
  }
}

TEST(BigUint, AdditionCommutesAndAssociates) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const BigUint a(rng.Next());
    const BigUint b(rng.Next());
    const BigUint c(rng.Next());
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(BigInt, SignHandling) {
  EXPECT_EQ(BigInt(-5).ToString(), "-5");
  EXPECT_EQ(BigInt(5).ToString(), "5");
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_FALSE(BigInt(0).IsNegative());
  EXPECT_TRUE(BigInt(-1).IsNegative());
  EXPECT_EQ((-BigInt(7)).ToString(), "-7");
  EXPECT_EQ((-BigInt(0)), BigInt(0));
}

TEST(BigInt, Int64MinSafe) {
  const BigInt min64(std::numeric_limits<int64_t>::min());
  EXPECT_EQ(min64.ToString(), "-9223372036854775808");
}

TEST(BigInt, MixedSignArithmetic) {
  EXPECT_EQ(BigInt(5) + BigInt(-8), BigInt(-3));
  EXPECT_EQ(BigInt(-5) + BigInt(8), BigInt(3));
  EXPECT_EQ(BigInt(-5) + BigInt(-8), BigInt(-13));
  EXPECT_EQ(BigInt(5) - BigInt(8), BigInt(-3));
  EXPECT_EQ(BigInt(-3) * BigInt(4), BigInt(-12));
  EXPECT_EQ(BigInt(-3) * BigInt(-4), BigInt(12));
}

TEST(BigInt, CompareAcrossSigns) {
  EXPECT_LT(BigInt(-10), BigInt(1));
  EXPECT_LT(BigInt(-10), BigInt(-2));
  EXPECT_GT(BigInt(3), BigInt(-3));
  EXPECT_EQ(BigInt(0).Compare(BigInt(0)), 0);
}

TEST(BigInt, FromString) {
  EXPECT_EQ(*BigInt::FromString("-123"), BigInt(-123));
  EXPECT_EQ(*BigInt::FromString("+77"), BigInt(77));
  EXPECT_EQ(*BigInt::FromString("0"), BigInt(0));
  EXPECT_FALSE(BigInt::FromString("--1").ok());
}

TEST(BigInt, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(-42).ToDouble(), -42.0);
  EXPECT_DOUBLE_EQ(BigInt(42).ToDouble(), 42.0);
}

TEST(BigInt, RandomizedAgainstInt128) {
  Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    const int64_t a = rng.UniformInt(-1000000, 1000000);
    const int64_t b = rng.UniformInt(-1000000, 1000000);
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToString(), std::to_string(a + b));
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToString(), std::to_string(a - b));
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToString(), std::to_string(a * b));
  }
}

}  // namespace
}  // namespace hierarq
