// Tests for Bag-Set Maximization (paper §4 / §5.5, Theorem 5.11).

#include <gtest/gtest.h>

#include "hierarq/core/bagset.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(BagSetMax, ZeroBudgetIsPlainCount) {
  Rng rng(1);
  RandomHierarchicalOptions qopts;
  qopts.num_variables = 4;
  const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 20;
  dopts.domain_size = 4;
  const RepairInstance inst = RandomRepairInstance(q, rng, dopts);
  auto result = MaximizeBagSet(q, inst.d, inst.repair, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->max_multiplicity, BagSetCount(q, inst.d));
}

TEST(BagSetMax, ProfileIsMonotone) {
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 10;
    dopts.domain_size = 4;
    const RepairInstance inst = RandomRepairInstance(q, rng, dopts);
    auto result = MaximizeBagSet(q, inst.d, inst.repair, 6);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(BagMaxMonoid::IsMonotone(result->profile));
  }
}

TEST(BagSetMax, FullBudgetReachesUnionCount) {
  // With budget ≥ |Dr \ D| the optimum is Q(D ∪ Dr).
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 8;
    dopts.domain_size = 4;
    const RepairInstance inst = RandomRepairInstance(q, rng, dopts);
    auto everything = inst.d.UnionWith(inst.repair);
    ASSERT_TRUE(everything.ok());
    auto result =
        MaximizeBagSet(q, inst.d, inst.repair, inst.repair.NumFacts());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->max_multiplicity, BagSetCount(q, *everything))
        << q.ToString();
  }
}

class BagSetBruteForceParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BagSetBruteForceParam, MatchesSubsetEnumeration) {
  // Theorem 5.11 correctness: the whole budget profile equals the
  // brute-force optimum at every budget.
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const RepairInstance inst = RandomRepairInstance(q, rng, dopts, 0.5);
    size_t candidates = 0;
    for (const Fact& f : inst.repair.AllFacts()) {
      candidates += !inst.d.ContainsFact(f);
    }
    if (candidates > 12) {
      continue;
    }
    const size_t budget = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    auto algo = MaximizeBagSet(q, inst.d, inst.repair, budget);
    ASSERT_TRUE(algo.ok()) << q.ToString();
    const BagMaxVec brute =
        BruteForceBagSetMax(q, inst.d, inst.repair, budget);
    EXPECT_EQ(algo->profile, brute) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagSetBruteForceParam,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56, 63,
                                           70));

TEST(BagSetMax, RepairFactsAlreadyInDAreFree) {
  // Facts present in both D and Dr must be treated as already-present.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database d;
  d.AddFactOrDie("R", MakeTuple({1}));
  Database dr;
  dr.AddFactOrDie("R", MakeTuple({1}));  // Duplicate of D.
  dr.AddFactOrDie("R", MakeTuple({2}));
  auto result = MaximizeBagSet(q, d, dr, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile[0], 1u);
  EXPECT_EQ(result->profile[1], 2u);
}

TEST(BagSetMax, NonHierarchicalRejected) {
  auto result = MaximizeBagSet(MakeQnh(), Database{}, Database{}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotHierarchical);
}

TEST(BagSetMax, WeightedCostsRespectBudget) {
  // Weighted extension: a fact of cost 3 only helps from budget 3 on.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database d;
  Database dr;
  dr.AddFactOrDie("R", MakeTuple({1}));
  RepairCosts costs;
  costs[Fact{"R", MakeTuple({1})}] = 3;
  auto result = MaximizeBagSet(q, d, dr, 4, &costs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile, (BagMaxVec{0, 0, 0, 1, 1}));
}

TEST(BagSetMax, WeightedCostsChooseCheaperAlternative) {
  // Two ways to gain multiplicity: expensive fact (cost 3) with payoff 2,
  // or two cheap facts (cost 1 each) with payoff 1 each.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database d;
  Database dr;
  dr.AddFactOrDie("R", MakeTuple({1}));
  dr.AddFactOrDie("R", MakeTuple({2}));
  dr.AddFactOrDie("R", MakeTuple({3}));
  RepairCosts costs;
  costs[Fact{"R", MakeTuple({3})}] = 3;
  auto result = MaximizeBagSet(q, d, dr, 3, &costs);
  ASSERT_TRUE(result.ok());
  // Budget 1: one cheap fact. Budget 2: both cheap. Budget 3: all three
  // would cost 5 — best is the two cheap ones OR cheap+expensive = 2.
  EXPECT_EQ(result->profile, (BagMaxVec{0, 1, 2, 2}));
}

TEST(BagSetMax, WitnessAchievesOptimum) {
  Rng rng(77);
  for (int round = 0; round < 12; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 5;
    dopts.domain_size = 3;
    const RepairInstance inst = RandomRepairInstance(q, rng, dopts);
    const size_t budget = 2;
    auto opt = MaximizeBagSet(q, inst.d, inst.repair, budget);
    ASSERT_TRUE(opt.ok());
    auto witness = ExtractOptimalRepair(q, inst.d, inst.repair, budget);
    ASSERT_TRUE(witness.ok()) << q.ToString();
    ASSERT_LE(witness->size(), budget);
    Database repaired = inst.d;
    for (const Fact& f : *witness) {
      EXPECT_TRUE(inst.repair.ContainsFact(f));
      repaired.AddFactOrDie(f.relation, f.tuple);
    }
    EXPECT_EQ(BagSetCount(q, repaired), opt->max_multiplicity)
        << q.ToString();
  }
}

TEST(BagSetMax, EmptyRepairDatabase) {
  const ConjunctiveQuery q = MakePaperQuery();
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  auto result = MaximizeBagSet(q, d, Database{}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->max_multiplicity, 1u);
}

TEST(BagSetMax, CountHierarchicalMatchesEngineOnFamilies) {
  Rng rng(88);
  for (size_t branches = 1; branches <= 4; ++branches) {
    const ConjunctiveQuery q = MakeStarQuery(branches);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 25;
    dopts.domain_size = 5;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    auto fast = BagSetCountHierarchical(q, db);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, BagSetCount(q, db));
  }
}

}  // namespace
}  // namespace hierarq
