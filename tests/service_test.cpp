// Tests for the service layer (src/hierarq/service/): WorkerPool task
// dispatch, SharedPlanCache single-build under contention, EvalService
// batching (shared annotation passes, per-query failures, results equal to
// the single-threaded Evaluator under concurrent clients), and the batch
// solver entry points.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/core/expectation.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"
#include "hierarq/query/parser.h"
#include "hierarq/service/batch_solvers.h"
#include "hierarq/service/eval_service.h"
#include "hierarq/service/shared_plan_cache.h"
#include "hierarq/util/worker_pool.h"
#include "hierarq/util/random.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

std::function<uint64_t(const Fact&)> OneAnnotator() {
  return [](const Fact&) -> uint64_t { return 1; };
}

// ------------------------------------------------------------- WorkerPool --

TEST(WorkerPool, ParallelForCoversEveryIndexOnce) {
  WorkerPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t worker, size_t i) {
    EXPECT_LT(worker, pool.num_workers());
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, DrainsSubmittedTasksOnDestruction) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran](size_t) { ran.fetch_add(1); });
    }
  }  // Destructor must run all 100 tasks before joining.
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPool, ZeroWorkersClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<int> ran{0};
  pool.ParallelFor(3, [&](size_t, size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(WorkerPool, ConcurrentClientsInterleaveSafely) {
  WorkerPool pool(4);
  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 200;
  std::atomic<size_t> total{0};
  std::vector<std::jthread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &total] {
      pool.ParallelFor(kPerClient,
                       [&total](size_t, size_t) { total.fetch_add(1); });
    });
  }
  clients.clear();  // Join.
  EXPECT_EQ(total.load(), kClients * kPerClient);
}

// -------------------------------------------------------- SharedPlanCache --

TEST(SharedPlanCache, BuildsEachPlanExactlyOnceUnderContention) {
  SharedPlanCache cache;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  constexpr size_t kThreads = 8;
  constexpr size_t kLookupsPerThread = 200;

  std::vector<const EliminationPlan*> first_seen(kThreads, nullptr);
  {
    std::vector<std::jthread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &q, &first_seen, t] {
        for (size_t i = 0; i < kLookupsPerThread; ++i) {
          auto plan = cache.GetPlan(q);
          ASSERT_TRUE(plan.ok());
          if (first_seen[t] == nullptr) {
            first_seen[t] = *plan;
          }
          // The pointer is stable: every lookup sees the same plan.
          EXPECT_EQ(*plan, first_seen[t]);
        }
      });
    }
  }

  // All threads raced on a cold cache, yet Build ran exactly once.
  EXPECT_EQ(cache.stats().plans_built, 1u);
  EXPECT_EQ(cache.stats().cache_hits, kThreads * kLookupsPerThread - 1);
  EXPECT_EQ(cache.size(), 1u);
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first_seen[t], first_seen[0]);
  }
}

TEST(SharedPlanCache, DistinctQueriesFromManyThreads) {
  SharedPlanCache cache;
  constexpr size_t kThreads = 4;
  constexpr size_t kQueries = 20;
  {
    std::vector<std::jthread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache] {
        for (size_t i = 0; i < kQueries; ++i) {
          const std::string rel = "T" + std::to_string(i);
          auto plan = cache.GetPlan(ParseQueryOrDie(rel + "(A)"));
          ASSERT_TRUE(plan.ok());
        }
      });
    }
  }
  EXPECT_EQ(cache.size(), kQueries);
  EXPECT_EQ(cache.stats().plans_built, kQueries);
}

TEST(SharedPlanCache, NonHierarchicalFailsAndIsNotCached) {
  SharedPlanCache cache;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(A,B), T(B)");
  auto plan = cache.GetPlan(q);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotHierarchical);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedPlanCache, ServesDelegatingEvaluators) {
  SharedPlanCache cache;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({1}));
  const CountMonoid monoid;

  Evaluator a(&cache);
  Evaluator b(&cache);
  auto ra = a.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
  auto rb = b.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*ra, *rb);
  // One build total, served to both evaluators; their local caches and
  // build counters stay empty.
  EXPECT_EQ(cache.stats().plans_built, 1u);
  EXPECT_EQ(cache.stats().cache_hits, 1u);
  EXPECT_EQ(a.num_cached_plans(), 0u);
  EXPECT_EQ(a.stats().plans_built, 0u);
}

// ------------------------------------------------------------ EvalService --

/// The benchmark-style query family over the paper query's relations:
/// heavy atom overlap, so batching has signatures to share.
std::vector<ConjunctiveQuery> QueryFamily() {
  std::vector<ConjunctiveQuery> out;
  for (const char* text : {
           "R(A,B), S(A,C), T(A,C,D)",
           "R(A,B), S(A,C)",
           "R(A,B)",
           "S(A,C), T(A,C,D)",
           "T(A,C,D)",
           "S(A,C)",
       }) {
    out.push_back(ParseQueryOrDie(text));
  }
  return out;
}

std::vector<const ConjunctiveQuery*> Pointers(
    const std::vector<ConjunctiveQuery>& queries) {
  std::vector<const ConjunctiveQuery*> out;
  for (const ConjunctiveQuery& q : queries) {
    out.push_back(&q);
  }
  return out;
}

TEST(EvalService, BatchMatchesSingleThreadedEvaluator) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Rng rng(11);
  DataGenOptions opts;
  opts.tuples_per_relation = 300;
  opts.domain_size = 40;
  const Database db =
      RandomDatabaseForQuery(ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)"),
                             rng, opts);
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 4});
  const std::vector<Result<uint64_t>> batched =
      service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), db,
                                        OneAnnotator());

  Evaluator reference;
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected =
        reference.Evaluate<CountMonoid>(queries[i], monoid, db,
                                        OneAnnotator());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(batched[i].ok()) << queries[i].ToString();
    EXPECT_EQ(*batched[i], *expected) << queries[i].ToString();
  }
}

TEST(EvalService, SharesAnnotationPassesWithinAGroup) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({1, 3}));
  db.AddFactOrDie("T", MakeTuple({1, 3, 4}));
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 2});
  auto results = service.EvaluateMany<CountMonoid>(monoid, Pointers(queries),
                                                   db, OneAnnotator());
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, 1u);
  }

  // The family holds 10 atoms over 3 distinct signatures — R(v0,v1),
  // S(v0,v1), T(v0,v1,v2) — so one group performs exactly 3 scans.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, 3u);
  EXPECT_EQ(stats.annotations_shared, 7u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.requests, queries.size());
  EXPECT_EQ(stats.plans_built, queries.size());
}

TEST(EvalService, NonHierarchicalQueriesFailIndividually) {
  const ConjunctiveQuery good = ParseQueryOrDie("R(A,B), S(A)");
  const ConjunctiveQuery bad = ParseQueryOrDie("R(A,B), S(A), U(B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({1}));
  db.AddFactOrDie("U", MakeTuple({2}));
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 2});
  auto results = service.EvaluateMany<CountMonoid>(
      monoid, {&good, &bad, &good}, db, OneAnnotator());
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], 1u);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotHierarchical);
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(*results[2], 1u);
}

TEST(EvalService, AnnotationCacheServesRepeatBatchesWithoutRescanning) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 3}));
  base.AddFactOrDie("T", MakeTuple({1, 3, 4}));
  VersionedDatabase db(std::move(base));
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 2});
  auto first = service.EvaluateMany<CountMonoid>(monoid, Pointers(queries),
                                                 db, OneAnnotator(), "ones");
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, 3u);  // R, S, T — one pass each.
  EXPECT_EQ(stats.annotation_cache_hits, 0u);
  EXPECT_EQ(service.annotation_cache_size(), 1u);

  // Same database generation, same annotator id: zero new scans.
  auto second = service.EvaluateMany<CountMonoid>(monoid, Pointers(queries),
                                                  db, OneAnnotator(), "ones");
  stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, 3u);
  EXPECT_EQ(stats.annotation_cache_hits, 1u);
  EXPECT_EQ(stats.annotation_cache_invalidations, 0u);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].ok() && second[i].ok());
    EXPECT_EQ(*first[i], *second[i]);
  }

  // A cached pool must also serve *new* queries by annotating only the
  // missing signatures.
  const ConjunctiveQuery extra = ParseQueryOrDie("U(A), R(A,B)");
  auto third = service.EvaluateMany<CountMonoid>(monoid, {&extra}, db,
                                                 OneAnnotator(), "ones");
  stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, 4u);  // Only U was missing.
  EXPECT_EQ(stats.annotation_cache_hits, 2u);

  // Cached pools are shared; their entries must never be moved from.
  EXPECT_EQ(stats.singleton_moves, 0u);
}

TEST(EvalService, AnnotationCacheInvalidatesOnGenerationBump) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 3}));
  base.AddFactOrDie("T", MakeTuple({1, 3, 4}));
  VersionedDatabase db(std::move(base));
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 2});
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), db,
                                    OneAnnotator(), "ones");
  ASSERT_EQ(service.stats().annotation_scans, 3u);

  // One applied DeltaBatch bumps the generation; the next batch must
  // rebuild the pool and see the new fact.
  DeltaBatch batch;
  batch.Insert("R", MakeTuple({1, 9}));
  db.Apply(batch);
  auto updated = service.EvaluateMany<CountMonoid>(monoid, Pointers(queries),
                                                   db, OneAnnotator(), "ones");
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, 6u);
  EXPECT_EQ(stats.annotation_cache_invalidations, 1u);
  EXPECT_EQ(service.annotation_cache_size(), 1u);

  Evaluator reference;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = reference.Evaluate<CountMonoid>(queries[i], monoid,
                                                    db.facts(),
                                                    OneAnnotator());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(updated[i].ok());
    EXPECT_EQ(*updated[i], *expected) << queries[i].ToString();
  }

  // Distinct annotator ids never share pools.
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), db,
                                    OneAnnotator(), "other");
  EXPECT_EQ(service.annotation_cache_size(), 2u);
  service.ClearAnnotationCache();
  EXPECT_EQ(service.annotation_cache_size(), 0u);
}

TEST(EvalService, AnnotationCacheEvictsLeastRecentlyUsedPastCapacity) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  const CountMonoid monoid;
  // Three distinct versioned databases, capacity two: the first-touched
  // entry must fall out when the third arrives.
  std::vector<std::unique_ptr<VersionedDatabase>> dbs;
  for (int d = 0; d < 3; ++d) {
    Database base;
    base.AddFactOrDie("R", MakeTuple({1, 2 + d}));
    base.AddFactOrDie("S", MakeTuple({1, 3}));
    base.AddFactOrDie("T", MakeTuple({1, 3, 4}));
    dbs.push_back(std::make_unique<VersionedDatabase>(std::move(base)));
  }

  EvalService::Options options;
  options.num_workers = 2;
  options.annotation_cache_max_entries = 2;
  EvalService service(options);

  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[0],
                                    OneAnnotator(), "ones");
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[1],
                                    OneAnnotator(), "ones");
  EXPECT_EQ(service.annotation_cache_size(), 2u);
  EXPECT_EQ(service.stats().annotation_cache_evictions, 0u);

  // Touch db0 so db1 becomes the LRU victim, then insert db2.
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[0],
                                    OneAnnotator(), "ones");
  EXPECT_EQ(service.stats().annotation_cache_hits, 1u);
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[2],
                                    OneAnnotator(), "ones");
  ServiceStats stats = service.stats();
  EXPECT_EQ(service.annotation_cache_size(), 2u);
  EXPECT_EQ(stats.annotation_cache_evictions, 1u);

  // db0 survived (recently touched): serving it again is a hit with no
  // new scans. db1 was evicted: serving it re-scans its three relations.
  const size_t scans_before = stats.annotation_scans;
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[0],
                                    OneAnnotator(), "ones");
  EXPECT_EQ(service.stats().annotation_scans, scans_before);
  service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *dbs[1],
                                    OneAnnotator(), "ones");
  stats = service.stats();
  EXPECT_EQ(stats.annotation_scans, scans_before + 3);
  EXPECT_EQ(stats.annotation_cache_evictions, 2u);  // db2 fell out.
  EXPECT_EQ(service.annotation_cache_size(), 2u);

  // Results served through the bounded cache stay correct.
  Evaluator reference;
  auto results = service.EvaluateMany<CountMonoid>(
      monoid, Pointers(queries), *dbs[1], OneAnnotator(), "ones");
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = reference.Evaluate<CountMonoid>(
        queries[i], monoid, dbs[1]->facts(), OneAnnotator());
    ASSERT_TRUE(expected.ok() && results[i].ok());
    EXPECT_EQ(*results[i], *expected);
  }
}

TEST(EvalService, AnnotationCacheUnboundedWhenMaxEntriesZero) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  const CountMonoid monoid;
  std::vector<std::unique_ptr<VersionedDatabase>> dbs;
  for (int d = 0; d < 5; ++d) {
    Database base;
    base.AddFactOrDie("R", MakeTuple({1, 2 + d}));
    dbs.push_back(std::make_unique<VersionedDatabase>(std::move(base)));
  }
  EvalService::Options options;
  options.num_workers = 2;
  options.annotation_cache_max_entries = 0;  // Unbounded.
  EvalService service(options);
  for (const auto& db : dbs) {
    service.EvaluateMany<CountMonoid>(monoid, Pointers(queries), *db,
                                      OneAnnotator(), "ones");
  }
  EXPECT_EQ(service.annotation_cache_size(), 5u);
  EXPECT_EQ(service.stats().annotation_cache_evictions, 0u);
}

TEST(EvalService, SingletonPoolEntriesMoveIntoWorkerScratch) {
  // Two queries over disjoint relations: every pool entry serves exactly
  // one query, so an anonymous (uncached) group adopts all of them.
  const ConjunctiveQuery q1 = ParseQueryOrDie("R(A,B), S(A)");
  const ConjunctiveQuery q2 = ParseQueryOrDie("U(A,B), V(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  db.AddFactOrDie("S", MakeTuple({1}));
  db.AddFactOrDie("U", MakeTuple({4, 5}));
  db.AddFactOrDie("V", MakeTuple({4}));
  const CountMonoid monoid;

  EvalService service(EvalService::Options{.num_workers = 2});
  auto results = service.EvaluateMany<CountMonoid>(monoid, {&q1, &q2}, db,
                                                   OneAnnotator());
  ASSERT_TRUE(results[0].ok() && results[1].ok());
  EXPECT_EQ(*results[0], 2u);
  EXPECT_EQ(*results[1], 1u);
  EXPECT_EQ(service.stats().singleton_moves, 4u);

  // A shared signature (R(A,B) appears in both queries) must be copied,
  // not moved; the singletons still move.
  const ConjunctiveQuery q3 = ParseQueryOrDie("R(A,B)");
  results = service.EvaluateMany<CountMonoid>(monoid, {&q1, &q3}, db,
                                              OneAnnotator());
  ASSERT_TRUE(results[0].ok() && results[1].ok());
  EXPECT_EQ(*results[0], 2u);
  EXPECT_EQ(*results[1], 2u);
  EXPECT_EQ(service.stats().singleton_moves, 5u);  // +1: only S(A).
}

TEST(EvalService, StressManyClientThreadsQueriesAndDatabases) {
  // N client threads × M queries × K databases, all against one service;
  // every result must equal the single-threaded Evaluator's.
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  const ConjunctiveQuery schema_query =
      ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  constexpr size_t kDatabases = 3;
  constexpr size_t kClients = 4;
  constexpr size_t kRoundsPerClient = 5;
  const CountMonoid monoid;

  std::vector<Database> databases;
  for (size_t k = 0; k < kDatabases; ++k) {
    Rng rng(100 + k);
    DataGenOptions opts;
    opts.tuples_per_relation = 150 + 50 * k;
    opts.domain_size = 25;
    databases.push_back(RandomDatabaseForQuery(schema_query, rng, opts));
  }

  // Reference results, computed single-threaded.
  std::vector<std::vector<uint64_t>> expected(kDatabases);
  Evaluator reference;
  for (size_t k = 0; k < kDatabases; ++k) {
    for (const ConjunctiveQuery& q : queries) {
      auto r = reference.Evaluate<CountMonoid>(q, monoid, databases[k],
                                               OneAnnotator());
      ASSERT_TRUE(r.ok());
      expected[k].push_back(*r);
    }
  }

  EvalService service(EvalService::Options{.num_workers = 4});
  std::atomic<size_t> mismatches{0};
  {
    std::vector<std::jthread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t round = 0; round < kRoundsPerClient; ++round) {
          // Each client batches all databases in one EvaluateBatch call,
          // rotating which database leads so groups interleave.
          std::vector<BatchRequest<uint64_t>> batch;
          for (size_t k = 0; k < kDatabases; ++k) {
            BatchRequest<uint64_t> request;
            request.database = &databases[(k + c) % kDatabases];
            request.annotator = OneAnnotator();
            request.queries = Pointers(queries);
            batch.push_back(std::move(request));
          }
          auto results = service.EvaluateBatch<CountMonoid>(monoid, batch);
          for (size_t k = 0; k < kDatabases; ++k) {
            const size_t db_index = (k + c) % kDatabases;
            for (size_t i = 0; i < queries.size(); ++i) {
              if (!results[k].values[i].ok() ||
                  *results[k].values[i] != expected[db_index][i]) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0u);

  // Plans were built once per distinct query text despite all the traffic.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plans_built, queries.size());
  EXPECT_EQ(stats.requests,
            kClients * kRoundsPerClient * kDatabases * queries.size());
}

// ---------------------------------------------------------- batch solvers --

TEST(BatchSolvers, CountBatchMatchesSingleQueryPath) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Rng rng(21);
  DataGenOptions opts;
  opts.tuples_per_relation = 120;
  opts.domain_size = 16;
  const Database db = RandomDatabaseForQuery(
      ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)"), rng, opts);

  EvalService service(EvalService::Options{.num_workers = 3});
  auto batched = CountBatch(service, Pointers(queries), db);
  Evaluator reference;
  const CountMonoid monoid;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = reference.Evaluate<CountMonoid>(queries[i], monoid, db,
                                                    OneAnnotator());
    ASSERT_TRUE(batched[i].ok());
    EXPECT_EQ(*batched[i], *expected);
  }
}

TEST(BatchSolvers, PqeAndExpectationBatchesMatchSingleQueryPath) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Rng rng(22);
  DataGenOptions opts;
  opts.tuples_per_relation = 60;
  opts.domain_size = 12;
  const TidDatabase db = RandomTidForQuery(
      ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)"), rng, opts);

  EvalService service(EvalService::Options{.num_workers = 3});
  auto probs = EvaluateProbabilityBatch(service, Pointers(queries), db);
  auto expects = ExpectedMultiplicityBatch(service, Pointers(queries), db);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto p = EvaluateProbability(queries[i], db);
    auto e = ExpectedMultiplicity(queries[i], db);
    ASSERT_TRUE(probs[i].ok());
    ASSERT_TRUE(expects[i].ok());
    EXPECT_NEAR(*probs[i], *p, 1e-12) << queries[i].ToString();
    EXPECT_NEAR(*expects[i], *e, 1e-9) << queries[i].ToString();
  }
}

TEST(BatchSolvers, ResilienceBatchMatchesSingleQueryPath) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Rng rng(23);
  DataGenOptions opts;
  opts.tuples_per_relation = 60;
  opts.domain_size = 10;
  const Database db = RandomDatabaseForQuery(
      ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)"), rng, opts);
  auto [exo, endo] = SplitExoEndo(db, rng, 0.7);

  EvalService service(EvalService::Options{.num_workers = 3});
  auto batched = ComputeResilienceBatch(service, Pointers(queries), exo, endo);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = ComputeResilience(queries[i], exo, endo);
    ASSERT_TRUE(batched[i].ok());
    EXPECT_EQ(*batched[i], *expected) << queries[i].ToString();
  }
}

TEST(BatchSolvers, ProvenanceBatchMatchesSingleQueryPath) {
  const std::vector<ConjunctiveQuery> queries = QueryFamily();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 5}));
  db.AddFactOrDie("S", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({1, 3}));
  db.AddFactOrDie("T", MakeTuple({1, 2, 4}));

  EvalService service(EvalService::Options{.num_workers = 3});
  auto batched = ComputeProvenanceBatch(service, Pointers(queries), db);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto expected = ComputeProvenance(queries[i], db);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(batched[i].ok());
    // The pipeline is deterministic, so trees and fact tables must agree
    // exactly with the single-threaded path.
    EXPECT_EQ(batched[i]->tree->ToString(), expected->tree->ToString());
    EXPECT_EQ(batched[i]->facts.size(), expected->facts.size());
    for (size_t f = 0; f < expected->facts.size(); ++f) {
      EXPECT_EQ(batched[i]->facts[f], expected->facts[f]);
    }
  }
}

TEST(BatchSolvers, ServiceShapleyMatchesSingleThreaded) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  // The Figure 1 database: known values, Q flips false -> true.
  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1, 5}));
  endo.AddFactOrDie("S", MakeTuple({1, 1}));
  endo.AddFactOrDie("S", MakeTuple({1, 2}));
  endo.AddFactOrDie("T", MakeTuple({1, 2, 4}));

  EvalService service(EvalService::Options{.num_workers = 4});
  auto parallel = AllShapleyValues(service, q, Database(), endo);
  auto serial = AllShapleyValues(q, Database(), endo);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  Fraction sum;
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*parallel)[i].first, (*serial)[i].first);
    EXPECT_EQ((*parallel)[i].second, (*serial)[i].second);
    sum += (*parallel)[i].second;
  }
  // Efficiency axiom: values sum to Q(D) - Q(empty) = 1.
  EXPECT_EQ(sum, Fraction(1));
}

TEST(BatchSolvers, ServiceShapleyRejectsLargerRandomMismatch) {
  // A bigger random instance, still exact: parallel == serial everywhere.
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  Rng rng(31);
  DataGenOptions opts;
  opts.tuples_per_relation = 5;
  opts.domain_size = 6;
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  auto [exo, endo] = SplitExoEndo(db, rng, 0.6);
  if (endo.NumFacts() == 0) {
    GTEST_SKIP() << "degenerate split";
  }

  EvalService service(EvalService::Options{.num_workers = 4});
  auto parallel = AllShapleyValues(service, q, exo, endo);
  auto serial = AllShapleyValues(q, exo, endo);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*parallel)[i].second, (*serial)[i].second)
        << (*serial)[i].first.ToString();
  }
}

}  // namespace
}  // namespace hierarq
