// Tests for the BCBS solver and the Theorem 4.4 reduction.

#include <gtest/gtest.h>

#include "hierarq/core/bagset.h"
#include "hierarq/query/parser.h"
#include "hierarq/reductions/bagset_reduction.h"
#include "hierarq/reductions/bcbs.h"
#include "hierarq/reductions/graph.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(Graph, Basics) {
  Graph g(4);
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 0u);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // Duplicate: no-op.
  g.AddEdge(2, 3);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Edges().size(), 2u);
}

TEST(Graph, CompleteFamilies) {
  EXPECT_EQ(Graph::Complete(5).NumEdges(), 10u);
  const Graph kb = Graph::CompleteBipartite(3, 4);
  EXPECT_EQ(kb.NumEdges(), 12u);
  EXPECT_TRUE(kb.HasEdge(0, 3));
  EXPECT_FALSE(kb.HasEdge(0, 1));
}

TEST(Bcbs, CompleteBipartiteHasExactBiclique) {
  const Graph g = Graph::CompleteBipartite(3, 3);
  EXPECT_TRUE(HasBalancedBiclique(g, 3));
  EXPECT_TRUE(HasBalancedBiclique(g, 2));
  EXPECT_FALSE(HasBalancedBiclique(g, 4));
}

TEST(Bcbs, CompleteGraph) {
  // K_n contains a k-biclique iff 2k <= n.
  const Graph g = Graph::Complete(6);
  EXPECT_TRUE(HasBalancedBiclique(g, 3));
  EXPECT_FALSE(HasBalancedBiclique(g, 4));
}

TEST(Bcbs, EmptyGraphHasNone) {
  const Graph g(5);
  EXPECT_FALSE(HasBalancedBiclique(g, 1));
  EXPECT_TRUE(HasBalancedBiclique(g, 0));  // Trivial.
}

TEST(Bcbs, SingleEdgeIsOneBiclique) {
  Graph g(3);
  g.AddEdge(0, 2);
  EXPECT_TRUE(HasBalancedBiclique(g, 1));
  EXPECT_FALSE(HasBalancedBiclique(g, 2));
}

TEST(Bcbs, WitnessIsValidated) {
  Rng rng(5);
  const Graph g = PlantedBicliqueGraph(rng, 10, 3, 0.2);
  const auto witness = FindBalancedBiclique(g, 3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->left.size(), 3u);
  EXPECT_EQ(witness->right.size(), 3u);
  EXPECT_TRUE(IsBiclique(g, witness->left, witness->right));
}

TEST(Bcbs, IsBicliqueRejectsBadPairs) {
  Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 2);
  EXPECT_TRUE(IsBiclique(g, {0}, {2, 3}));
  EXPECT_FALSE(IsBiclique(g, {0, 1}, {2, 3}));  // (1,3) missing.
  EXPECT_FALSE(IsBiclique(g, {0}, {0}));        // Overlapping parts.
}

TEST(Reduction, RejectsHierarchicalQueries) {
  const Graph g = Graph::Complete(3);
  auto inst = ReduceBcbsToBagSetMax(MakePaperQuery(), g, 1);
  ASSERT_FALSE(inst.ok());
  EXPECT_EQ(inst.status().code(), StatusCode::kInvalidArgument);
}

TEST(Reduction, InstanceShapeForQnh) {
  // For Q_nh() :- R(X), S(X,Y), T(Y) on a graph with n vertices and m
  // edges: D has 2m S-facts (both orientations), Dr has n R-facts and n
  // T-facts; θ = 2k, τ = k².
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, 2);
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->budget, 4u);
  EXPECT_EQ(inst->target, 4u);
  EXPECT_EQ(inst->d.FindRelation("S")->size(), 6u);
  EXPECT_EQ(inst->d.FindRelation("R"), nullptr);  // Empty in D.
  EXPECT_EQ(inst->repair.FindRelation("R")->size(), 4u);
  EXPECT_EQ(inst->repair.FindRelation("T")->size(), 4u);
  EXPECT_EQ(inst->repair.FindRelation("S"), nullptr);
}

TEST(Reduction, PositiveInstanceForCompleteBipartite) {
  const Graph g = Graph::CompleteBipartite(2, 2);
  auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, 2);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(DecideBagSetMaxBruteForce(MakeQnh(), *inst));
}

TEST(Reduction, NegativeInstanceForSparseGraph) {
  Graph g(4);
  g.AddEdge(0, 1);  // One edge: no 2-biclique.
  auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, 2);
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(DecideBagSetMaxBruteForce(MakeQnh(), *inst));
}

class ReductionEquivalenceParam : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ReductionEquivalenceParam, Theorem44RoundTrip) {
  // The reduction is correct: BCBS(G, k) iff the reduced Bag-Set
  // Maximization Decision instance is a "yes" instance — verified with
  // exhaustive solvers on both sides, for two different non-hierarchical
  // queries (the theorem quantifies over *all* of them).
  Rng rng(GetParam() * 13 + 1);
  const ConjunctiveQuery queries[] = {
      MakeQnh(),
      ParseQueryOrDie("R(A,B), S(B,C), T(C,D)"),  // Example 5.3.
  };
  for (int round = 0; round < 3; ++round) {
    const size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 1));
    const size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
    const Graph g = RandomGraph(rng, n, 0.5);
    const bool has_biclique = HasBalancedBiclique(g, k);
    for (const ConjunctiveQuery& q : queries) {
      auto inst = ReduceBcbsToBagSetMax(q, g, k);
      ASSERT_TRUE(inst.ok());
      EXPECT_EQ(DecideBagSetMaxBruteForce(q, *inst), has_biclique)
          << q.ToString() << "\n"
          << g.ToString() << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalenceParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Reduction, PlantedBicliqueAlwaysYes) {
  Rng rng(37);
  for (int round = 0; round < 5; ++round) {
    const size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
    const Graph g = PlantedBicliqueGraph(rng, 6, k, 0.1);
    ASSERT_TRUE(HasBalancedBiclique(g, k));
    auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, k);
    ASSERT_TRUE(inst.ok());
    EXPECT_TRUE(DecideBagSetMaxBruteForce(MakeQnh(), *inst));
  }
}

}  // namespace
}  // namespace hierarq
