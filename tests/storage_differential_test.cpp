// Cross-backend differential harness: every storage backend behind
// `AnnotatedRelation` (baseline std::unordered_map, FlatMap, columnar)
// must produce the same answers for every solver on the same instance.
//
// The harness drives the workload generators (random hierarchical queries
// + random databases, fully seeded) through all three backends for
// count, PQE, resilience, and Shapley, over hundreds of instances, and
// asserts:
//   * bit-identical results where the monoid's ⊕/⊗ are exactly
//     associative-commutative (counting, resilience min/plus, exact
//     Fraction Shapley values) — backend iteration order cannot matter;
//   * tiny-relative-error agreement for the floating-point monoids (PQE,
//     expected multiplicity): the backends visit supports in different
//     orders, and double addition is not associative, so the last few
//     ulps may legitimately differ.
// Edge cases get dedicated instances: empty and missing base relations,
// duplicate-key (bag) merges, and single-fact supports.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "hierarq/hierarq.h"

namespace hierarq {
namespace {

constexpr StorageKind kKinds[] = {StorageKind::kBaseline, StorageKind::kFlat,
                                  StorageKind::kColumnar};

uint64_t CountWith(StorageKind kind, const ConjunctiveQuery& q,
                   const Database& db) {
  Evaluator evaluator(kind);
  auto result = evaluator.Evaluate<CountMonoid>(
      q, CountMonoid{}, db, [](const Fact&) -> uint64_t { return 1; });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : 0;
}

// Relative-or-absolute closeness for the floating monoids.
void ExpectClose(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, 1e-11 * scale);
}

// Removes every fact of `relation` from a copy of `db` — produces the
// "base relation entirely absent" edge case for one atom.
Database DropRelation(const Database& db, const std::string& relation) {
  Database out;
  for (const Fact& fact : db.AllFacts()) {
    if (fact.relation != relation) {
      out.AddFactOrDie(fact.relation, fact.tuple);
    }
  }
  return out;
}

ConjunctiveQuery RandomQuery(Rng& rng) {
  RandomHierarchicalOptions opts;
  opts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
  opts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
  return MakeRandomHierarchical(rng, opts);
}

// ---------------------------------------------------------------- count --

TEST(StorageDifferential, CountAgreesAcrossBackendsOnRandomInstances) {
  size_t instances = 0;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    Rng rng(1000 + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    DataGenOptions dopts;
    // Includes 0 (all relations empty) and 1 (single-fact supports).
    dopts.tuples_per_relation = static_cast<size_t>(rng.UniformInt(0, 50));
    dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 14));
    const Database db = RandomDatabaseForQuery(q, rng, dopts);

    const uint64_t reference = CountWith(StorageKind::kBaseline, q, db);
    for (StorageKind kind : kKinds) {
      EXPECT_EQ(CountWith(kind, q, db), reference)
          << "seed=" << seed << " storage=" << StorageKindName(kind)
          << " query=" << q.ToString();
    }
    // The join engine cross-checks the whole family on small instances.
    if (db.NumFacts() <= 60) {
      EXPECT_EQ(reference, BagSetCount(q, db)) << "seed=" << seed;
    }
    ++instances;

    // Variant: first atom's base relation missing entirely.
    const Database dropped = DropRelation(db, q.atoms()[0].relation());
    const uint64_t dropped_reference =
        CountWith(StorageKind::kBaseline, q, dropped);
    EXPECT_EQ(dropped_reference, 0u);  // An empty conjunct kills Q().
    for (StorageKind kind : kKinds) {
      EXPECT_EQ(CountWith(kind, q, dropped), dropped_reference)
          << "seed=" << seed << " storage=" << StorageKindName(kind);
    }
    ++instances;
  }
  EXPECT_GE(instances, 160u);
}

// ------------------------------------------------------ duplicate merges --

TEST(StorageDifferential, BagAnnotationsMergeIdenticallyAcrossBackends) {
  // Set databases cannot produce duplicate annotated keys, so bag inputs
  // are simulated the way AnnotateAtom's contract allows: annotating the
  // same relation multiple times into one output with ⊕ as the combiner.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(7000 + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 1 + static_cast<size_t>(rng.UniformInt(0, 20));
    dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 6));
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const size_t multiplicity = 2 + static_cast<size_t>(seed % 3);

    auto plan = EliminationPlan::Build(q);
    ASSERT_TRUE(plan.ok());
    const CountMonoid monoid;
    const auto annotator =
        std::function<uint64_t(const Fact&)>([](const Fact&) { return 1; });
    const auto plus = [](uint64_t a, uint64_t b) { return a + b; };

    std::optional<uint64_t> reference;
    for (StorageKind kind : kKinds) {
      AnnotatedDatabase<uint64_t> annotated;
      annotated.relations.reserve(q.num_atoms());
      for (const Atom& atom : q.atoms()) {
        AnnotatedRelation<uint64_t> rel(atom.vars(), kind);
        const Relation* relation = db.FindRelation(atom.relation());
        if (relation != nullptr) {
          for (size_t copy = 0; copy < multiplicity; ++copy) {
            AnnotateAtom<uint64_t>(atom, *relation, annotator, plus, &rel);
          }
        }
        annotated.relations.push_back(std::move(rel));
      }
      const uint64_t value =
          RunAlgorithm1(*plan, monoid, std::move(annotated));
      if (!reference.has_value()) {
        reference = value;
      }
      EXPECT_EQ(value, *reference)
          << "seed=" << seed << " storage=" << StorageKindName(kind);
    }
  }
}

// ------------------------------------------------------------------- PQE --

TEST(StorageDifferential, ProbabilityAgreesAcrossBackends) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(2000 + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    DataGenOptions dopts;
    dopts.tuples_per_relation = static_cast<size_t>(rng.UniformInt(0, 40));
    dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 10));
    const TidDatabase tid = RandomTidForQuery(q, rng, dopts);

    Evaluator baseline(StorageKind::kBaseline);
    auto reference = EvaluateProbability(baseline, q, tid);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (StorageKind kind : kKinds) {
      Evaluator evaluator(kind);
      auto result = EvaluateProbability(evaluator, q, tid);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectClose(*result, *reference);

      auto expectation = ExpectedMultiplicity(evaluator, q, tid);
      auto expectation_reference = ExpectedMultiplicity(baseline, q, tid);
      ASSERT_TRUE(expectation.ok() && expectation_reference.ok());
      ExpectClose(*expectation, *expectation_reference);
    }
  }
}

// ------------------------------------------------------------ resilience --

TEST(StorageDifferential, ResilienceIsBitIdenticalAcrossBackends) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(3000 + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    DataGenOptions dopts;
    dopts.tuples_per_relation = static_cast<size_t>(rng.UniformInt(0, 30));
    dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 8));
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.7);

    Evaluator baseline(StorageKind::kBaseline);
    auto reference = ComputeResilience(baseline, q, exo, endo);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (StorageKind kind : kKinds) {
      Evaluator evaluator(kind);
      auto result = ComputeResilience(evaluator, q, exo, endo);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(*result, *reference)
          << "seed=" << seed << " storage=" << StorageKindName(kind)
          << " query=" << q.ToString();
    }
  }
}

// --------------------------------------------------------------- Shapley --

TEST(StorageDifferential, ShapleyValuesAreBitIdenticalAcrossBackends) {
  // Exact Fractions (BigUint #Sat counts), so equality is exact; the
  // instances stay small because each runs 2·|Dn| Algorithm 1 passes.
  for (uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(4000 + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 2));
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.6);

    Evaluator baseline(StorageKind::kBaseline);
    auto reference = AllShapleyValues(baseline, q, exo, endo);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (StorageKind kind : kKinds) {
      Evaluator evaluator(kind);
      auto result = AllShapleyValues(evaluator, q, exo, endo);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->size(), reference->size());
      for (size_t i = 0; i < result->size(); ++i) {
        EXPECT_EQ((*result)[i].first, (*reference)[i].first);
        EXPECT_TRUE((*result)[i].second == (*reference)[i].second)
            << "seed=" << seed << " storage=" << StorageKindName(kind)
            << " fact #" << i << ": " << (*result)[i].second.ToString()
            << " vs " << (*reference)[i].second.ToString();
      }
    }
  }
}

// ------------------------------------------------------- service batches --

TEST(StorageDifferential, ServiceBatchesMatchSingleThreadedPerBackend) {
  // The service path adds shared annotation pools + AssignFrom replay on
  // worker scratch; its answers must match the direct evaluator for every
  // backend (and therefore across backends, by the tests above).
  Rng rng(5000);
  std::vector<ConjunctiveQuery> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(RandomQuery(rng));
  }
  std::vector<const ConjunctiveQuery*> query_ptrs;
  for (const ConjunctiveQuery& q : queries) {
    query_ptrs.push_back(&q);
  }
  DataGenOptions dopts;
  dopts.tuples_per_relation = 30;
  dopts.domain_size = 8;
  // One database covering all queries' relations: union per-query draws.
  Database db;
  for (const ConjunctiveQuery& q : queries) {
    const Database part = RandomDatabaseForQuery(q, rng, dopts);
    for (const Fact& fact : part.AllFacts()) {
      // Queries may reuse a relation name at a different arity; such
      // additions fail and are deliberately skipped.
      auto added = db.AddFact(fact.relation, fact.tuple);
      (void)added;
    }
  }

  for (StorageKind kind : kKinds) {
    EvalService service(
        EvalService::Options{.num_workers = 4, .storage = kind});
    EXPECT_EQ(service.storage(), kind);
    const auto batch = CountBatch(service, query_ptrs, db);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
      EXPECT_EQ(*batch[i], CountWith(kind, queries[i], db))
          << "storage=" << StorageKindName(kind)
          << " query=" << queries[i].ToString();
    }
  }
}

}  // namespace
}  // namespace hierarq
