// Tests for the incremental subsystem (src/hierarq/incremental/):
// VersionedDatabase semantics, per-key Erase on every storage backend,
// hand-checked view maintenance, and the randomized delta-vs-scratch
// differential harness — ≥200 seeded insert/delete/re-weight sequences
// driven through IncrementalEvaluator and cross-checked against a
// from-scratch Evaluator on all three StorageKinds and six monoids
// (exact monoids bit-identical, floating monoids to 1e-11 relative).

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "hierarq/hierarq.h"

namespace hierarq {
namespace {

// ---------------------------------------------------------------------------
// VersionedDatabase.

TEST(VersionedDatabaseTest, GenerationAdvancesOncePerBatch) {
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  VersionedDatabase db(std::move(base));
  EXPECT_EQ(db.generation(), 0u);

  DeltaBatch batch;
  batch.Insert("R", MakeTuple({1, 3})).Delete("R", MakeTuple({1, 2}));
  const auto stats = db.Apply(batch);
  EXPECT_EQ(db.generation(), 1u);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_TRUE(db.Contains(Fact{"R", MakeTuple({1, 3})}));
  EXPECT_FALSE(db.Contains(Fact{"R", MakeTuple({1, 2})}));

  // Empty batches still advance the generation (one step per Apply).
  db.Apply(DeltaBatch{});
  EXPECT_EQ(db.generation(), 2u);
  ASSERT_EQ(db.log().size(), 2u);
  EXPECT_EQ(db.log()[0].size(), 2u);
}

TEST(VersionedDatabaseTest, NormalizesOpsAgainstCurrentState) {
  VersionedDatabase db;
  DeltaBatch setup;
  setup.Insert("R", MakeTuple({7}), 0.25);
  db.Apply(setup);
  EXPECT_DOUBLE_EQ(db.WeightOf(Fact{"R", MakeTuple({7})}), 0.25);
  EXPECT_DOUBLE_EQ(db.WeightOf(Fact{"R", MakeTuple({8})}), 0.0);

  DeltaBatch mixed;
  mixed.Insert("R", MakeTuple({7}), 0.5);          // Present: re-weight.
  mixed.Delete("R", MakeTuple({9}));               // Absent: no-op.
  mixed.SetAnnotation("R", MakeTuple({9}), 0.5);   // Absent: no-op.
  mixed.SetAnnotation("R", MakeTuple({7}), 0.5);   // Same weight: no-op.
  const auto stats = db.Apply(mixed);
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.deleted, 0u);
  EXPECT_EQ(stats.reweighted, 1u);
  EXPECT_EQ(stats.noops, 3u);
  EXPECT_DOUBLE_EQ(db.WeightOf(Fact{"R", MakeTuple({7})}), 0.5);
}

TEST(VersionedDatabaseTest, UidsAreProcessUniqueAndLogTruncates) {
  VersionedDatabase a;
  VersionedDatabase b;
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_NE(a.uid(), 0u);  // 0 is the "plain database" cache sentinel.

  for (int i = 0; i < 5; ++i) {
    DeltaBatch batch;
    batch.Insert("R", MakeTuple({i}));
    a.Apply(batch);
  }
  ASSERT_EQ(a.log().size(), 5u);
  EXPECT_EQ(a.log_start_generation(), 0u);

  a.TruncateLog(3);  // Keep entries for generations 3 and 4.
  ASSERT_EQ(a.log().size(), 2u);
  EXPECT_EQ(a.log_start_generation(), 3u);
  // log()[g - start] is generation g's batch: generation 3 inserted R(3).
  EXPECT_EQ(a.log()[0].ops[0].fact.tuple, MakeTuple({3}));
  a.TruncateLog(1);  // Already past generation 1: no-op.
  EXPECT_EQ(a.log_start_generation(), 3u);
  a.TruncateLog(a.generation());
  EXPECT_TRUE(a.log().empty());
  EXPECT_EQ(a.generation(), 5u);  // Truncation never moves the version.
}

TEST(VersionedDatabaseTest, WrapsTidDatabaseWithProbabilitiesAsWeights) {
  TidDatabase tid;
  tid.AddFactOrDie("R", MakeTuple({1}), 0.3);
  tid.AddFactOrDie("R", MakeTuple({2}), 0.9);
  VersionedDatabase db(tid);
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_DOUBLE_EQ(db.WeightOf(Fact{"R", MakeTuple({1})}), 0.3);
  EXPECT_DOUBLE_EQ(db.WeightOf(Fact{"R", MakeTuple({2})}), 0.9);
}

// ---------------------------------------------------------------------------
// Per-key Erase across backends (the storage primitive the views rely on):
// randomized insert/erase/find interleavings vs a reference map.

TEST(AnnotatedEraseTest, RandomizedDifferentialAgainstReferenceMap) {
  for (StorageKind storage : kAllStorageKinds) {
    SCOPED_TRACE(StorageKindName(storage));
    Rng rng(0xE7A5Eu ^ static_cast<uint64_t>(storage));
    AnnotatedRelation<uint64_t> relation(VarSet{0, 1}, storage);
    std::unordered_map<Tuple, uint64_t, TupleHash> reference;
    for (size_t step = 0; step < 4000; ++step) {
      Tuple key = MakeTuple({rng.UniformInt(0, 15), rng.UniformInt(0, 15)});
      const uint64_t roll = rng.Next() % 3;
      if (roll == 0) {
        const uint64_t value = rng.Next() % 1000;
        relation.Set(key, value);
        reference[key] = value;
      } else if (roll == 1) {
        EXPECT_EQ(relation.Erase(key), reference.erase(key) > 0);
      } else {
        const uint64_t* found = relation.Find(key);
        auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
      ASSERT_EQ(relation.size(), reference.size());
    }
    // Drain: erase everything that remains, in reference order.
    std::vector<Tuple> keys;
    for (const auto& [key, value] : reference) {
      keys.push_back(key);
    }
    for (const Tuple& key : keys) {
      EXPECT_TRUE(relation.Erase(key));
      EXPECT_FALSE(relation.Erase(key));
    }
    EXPECT_EQ(relation.size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Hand-checked view maintenance.

std::function<uint64_t(const Fact&, double)> CountAnnotator() {
  return [](const Fact&, double) -> uint64_t { return 1; };
}

TEST(IncrementalViewTest, PaperExampleCountsUnderUpdates) {
  // Q() :- R(A,B), S(A,C), T(A,C,D) — Eq. (1).
  const ConjunctiveQuery query = MakePaperQuery();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 5}));
  base.AddFactOrDie("T", MakeTuple({1, 5, 7}));
  VersionedDatabase db(std::move(base));
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto handle = evaluator.Attach(query);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(evaluator.ResultOf(*handle), 1u);

  DeltaBatch add_r;
  add_r.Insert("R", MakeTuple({1, 3}));
  auto results = evaluator.ApplyDelta(add_r);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].second, 2u);  // Two R-facts join the one S×T pair.

  DeltaBatch add_t;
  add_t.Insert("T", MakeTuple({1, 5, 8}));
  EXPECT_EQ(evaluator.ApplyDelta(add_t)[0].second, 4u);

  DeltaBatch del_s;
  del_s.Delete("S", MakeTuple({1, 5}));
  EXPECT_EQ(evaluator.ApplyDelta(del_s)[0].second, 0u);

  // Reinserting S restores the previous count exactly.
  DeltaBatch re_add;
  re_add.Insert("S", MakeTuple({1, 5}));
  EXPECT_EQ(evaluator.ApplyDelta(re_add)[0].second, 4u);
  EXPECT_EQ(evaluator.generation(), 4u);
}

TEST(IncrementalViewTest, InsertThenDeleteInOneBatchIsANoop) {
  const ConjunctiveQuery query = MakePaperQuery();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 5}));
  base.AddFactOrDie("T", MakeTuple({1, 5, 7}));
  VersionedDatabase db(std::move(base));
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto handle = evaluator.Attach(query);
  ASSERT_TRUE(handle.ok());
  const size_t support_before = evaluator.view(*handle).TotalSupport();

  DeltaBatch batch;
  batch.Insert("R", MakeTuple({9, 9})).Delete("R", MakeTuple({9, 9}));
  EXPECT_EQ(evaluator.ApplyDelta(batch)[0].second, 1u);
  EXPECT_EQ(evaluator.view(*handle).TotalSupport(), support_before);
}

TEST(IncrementalViewTest, ConstantsAndRepeatedVariablesFilterOps) {
  // Q() :- R(A,A), S(A,3): only facts matching the pattern move the view.
  auto parsed = ParseQuery("Q() :- R(A,A), S(A,3)");
  ASSERT_TRUE(parsed.ok());
  const ConjunctiveQuery query = std::move(parsed).ValueOrDie();
  VersionedDatabase db;
  DeltaBatch setup;
  setup.Insert("R", MakeTuple({2, 2})).Insert("S", MakeTuple({2, 3}));
  db.Apply(setup);
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto handle = evaluator.Attach(query);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(evaluator.ResultOf(*handle), 1u);

  DeltaBatch irrelevant;
  irrelevant.Insert("R", MakeTuple({4, 5}));   // Not diagonal: no match.
  irrelevant.Insert("S", MakeTuple({2, 7}));   // Constant mismatch.
  irrelevant.Insert("U", MakeTuple({1}));      // Relation not in the query.
  EXPECT_EQ(evaluator.ApplyDelta(irrelevant)[0].second, 1u);

  DeltaBatch relevant;
  relevant.Insert("R", MakeTuple({5, 5})).Insert("S", MakeTuple({5, 3}));
  EXPECT_EQ(evaluator.ApplyDelta(relevant)[0].second, 2u);
}

TEST(IncrementalViewTest, MultipleViewsAndDetach) {
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1}));
  VersionedDatabase db(std::move(base));
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto q1 = ParseQuery("Q() :- R(A,B), S(A)");
  auto q2 = ParseQuery("Q() :- R(A,B)");
  ASSERT_TRUE(q1.ok() && q2.ok());
  auto h1 = evaluator.Attach(*q1);
  auto h2 = evaluator.Attach(*q2);
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(evaluator.num_views(), 2u);

  DeltaBatch batch;
  batch.Insert("R", MakeTuple({1, 3}));
  auto results = evaluator.ApplyDelta(batch);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].second, 2u);
  EXPECT_EQ(results[1].second, 2u);

  EXPECT_TRUE(evaluator.Detach(*h1));
  EXPECT_FALSE(evaluator.Detach(*h1));
  EXPECT_EQ(evaluator.num_views(), 1u);
  DeltaBatch more;
  more.Insert("R", MakeTuple({1, 4}));
  results = evaluator.ApplyDelta(more);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].first, *h2);
  EXPECT_EQ(results[0].second, 3u);
}

TEST(IncrementalViewTest, ReleaseThenReattachCatchesUpFromTheLog) {
  const ConjunctiveQuery query = MakePaperQuery();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 5}));
  base.AddFactOrDie("T", MakeTuple({1, 5, 7}));
  VersionedDatabase db(std::move(base));
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto handle = evaluator.Attach(query);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(evaluator.ResultOf(*handle), 1u);

  // Release: the view stops receiving deltas but remembers its sync
  // point — the detached-reader protocol that view recovery rides.
  auto detached = evaluator.Release(*handle);
  EXPECT_EQ(detached.synced_generation, 0u);
  EXPECT_EQ(evaluator.num_views(), 0u);

  DeltaBatch add_r;
  add_r.Insert("R", MakeTuple({1, 3}));
  EXPECT_TRUE(evaluator.ApplyDelta(add_r).empty());  // Nobody listening.
  DeltaBatch add_t;
  add_t.Insert("T", MakeTuple({1, 5, 8}));
  evaluator.ApplyDelta(add_t);
  EXPECT_EQ(db.generation(), 2u);

  // Reattach replays exactly the missed log suffix — no
  // rematerialization — and the result matches a never-detached view.
  auto reattached = evaluator.Reattach(std::move(detached));
  EXPECT_EQ(evaluator.ResultOf(reattached), 4u);
  EXPECT_EQ(evaluator.stats().reattach_replays, 1u);
  EXPECT_EQ(evaluator.stats().reattach_rematerializations, 0u);

  // The reattached view is live again: further deltas propagate.
  DeltaBatch del_s;
  del_s.Delete("S", MakeTuple({1, 5}));
  EXPECT_EQ(evaluator.ApplyDelta(del_s)[0].second, 0u);
}

TEST(IncrementalViewTest, ReattachPastATruncatedLogRematerializes) {
  const ConjunctiveQuery query = MakePaperQuery();
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 5}));
  base.AddFactOrDie("T", MakeTuple({1, 5, 7}));
  VersionedDatabase db(std::move(base));
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  auto handle = evaluator.Attach(query);
  ASSERT_TRUE(handle.ok());
  auto detached = evaluator.Release(*handle);

  DeltaBatch add_t;
  add_t.Insert("T", MakeTuple({1, 5, 8}));
  evaluator.ApplyDelta(add_t);
  // The log entries the detached view would need are gone: catch-up
  // must fall back to a full rematerialization, and still be correct.
  db.TruncateLog(db.generation());

  auto reattached = evaluator.Reattach(std::move(detached));
  EXPECT_EQ(evaluator.ResultOf(reattached), 2u);
  EXPECT_EQ(evaluator.stats().reattach_replays, 0u);
  EXPECT_EQ(evaluator.stats().reattach_rematerializations, 1u);
}

TEST(IncrementalViewTest, NonHierarchicalQueryFailsToAttach) {
  VersionedDatabase db;
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &db,
                                              CountAnnotator());
  EXPECT_FALSE(evaluator.Attach(MakeQnh()).ok());
  EXPECT_EQ(evaluator.num_views(), 0u);
}

// ---------------------------------------------------------------------------
// The randomized delta-vs-scratch differential harness.

struct SequenceConfig {
  StorageKind storage = StorageKind::kFlat;
  uint64_t seed = 0;
  size_t num_batches = 10;
  size_t max_ops_per_batch = 3;
};

/// Drives one seeded sequence of insert/delete/re-weight batches through
/// an IncrementalEvaluator view and checks every maintained result (and,
/// at the end, every materialized support) against a from-scratch
/// Evaluator over the same evolving VersionedDatabase. `tolerance` < 0
/// demands bit-identical values.
template <TwoMonoid M>
void RunDifferentialSequence(
    const M& monoid, typename IncrementalView<M>::Annotator annotator,
    const SequenceConfig& config, double tolerance) {
  using K = typename M::value_type;
  Rng rng(config.seed);
  RandomHierarchicalOptions query_opts;
  query_opts.num_variables = 2 + rng.Next() % 4;
  const ConjunctiveQuery query = MakeRandomHierarchical(rng, query_opts);
  DataGenOptions data_opts;
  data_opts.tuples_per_relation = 20 + rng.Next() % 40;
  data_opts.domain_size = 6;
  VersionedDatabase db(RandomTidForQuery(query, rng, data_opts));

  IncrementalEvaluator<M> incremental(
      monoid, &db, annotator, {.storage = config.storage});
  auto handle = incremental.Attach(query);
  ASSERT_TRUE(handle.ok()) << query.ToString();

  // Relation schemas the random ops draw from.
  std::vector<std::pair<std::string, size_t>> schemas;
  for (const Atom& atom : query.atoms()) {
    schemas.emplace_back(atom.relation(), atom.arity());
  }

  Evaluator scratch(config.storage);
  const std::function<K(const Fact&)> scratch_annotator =
      [&db, &annotator](const Fact& fact) {
        return annotator(fact, db.WeightOf(fact));
      };
  const auto check = [&](const char* when) {
    auto expected = scratch.Evaluate(query, monoid, db.facts(),
                                     scratch_annotator);
    ASSERT_TRUE(expected.ok());
    const K& maintained = incremental.ResultOf(*handle);
    if (tolerance < 0) {
      EXPECT_EQ(maintained, *expected)
          << when << " seed=" << config.seed << " " << query.ToString();
    } else {
      const double a = static_cast<double>(maintained);
      const double b = static_cast<double>(*expected);
      if (a != b) {  // a == b also covers ±inf (the tropical zero).
        EXPECT_NEAR(a, b,
                    tolerance * std::max({std::abs(a), std::abs(b), 1.0}))
            << when << " seed=" << config.seed << " " << query.ToString();
      }
    }
  };
  check("after attach");

  for (size_t b = 0; b < config.num_batches; ++b) {
    DeltaBatch batch;
    const size_t ops = 1 + rng.Next() % config.max_ops_per_batch;
    for (size_t o = 0; o < ops; ++o) {
      const auto& [relation, arity] =
          schemas[rng.Next() % schemas.size()];
      const uint64_t roll = rng.Next() % 4;
      if (roll == 0 || db.NumFacts() == 0) {
        Tuple tuple;
        for (size_t i = 0; i < arity; ++i) {
          tuple.push_back(rng.UniformInt(
              0, static_cast<int64_t>(data_opts.domain_size) - 1));
        }
        batch.Insert(relation, std::move(tuple), rng.UniformDouble());
      } else {
        const std::vector<Fact> facts = db.facts().AllFacts();
        const Fact& victim = facts[rng.Next() % facts.size()];
        if (roll == 1) {
          batch.SetAnnotation(victim.relation, victim.tuple,
                              rng.UniformDouble());
        } else {
          batch.Delete(victim.relation, victim.tuple);
        }
      }
    }
    incremental.ApplyDelta(batch);
    check("after batch");
  }

  // Support hygiene: the maintained view tree must be key-for-key what a
  // fresh materialization of the final state builds (Erase left nothing
  // behind and dropped nothing it should have kept).
  IncrementalView<M> fresh(query, incremental.view(*handle).plan(), monoid,
                           annotator, config.storage);
  fresh.Materialize(db);
  EXPECT_EQ(incremental.view(*handle).TotalSupport(), fresh.TotalSupport())
      << "seed=" << config.seed << " " << query.ToString();
}

template <TwoMonoid M>
void RunDifferentialSweep(const M& monoid,
                          typename IncrementalView<M>::Annotator annotator,
                          double tolerance, uint64_t seed_base) {
  size_t sequences = 0;
  for (StorageKind storage : kAllStorageKinds) {
    SCOPED_TRACE(StorageKindName(storage));
    for (uint64_t seed = 0; seed < 12; ++seed) {
      SequenceConfig config;
      config.storage = storage;
      config.seed = seed_base + seed;
      RunDifferentialSequence(monoid, annotator, config, tolerance);
      ++sequences;
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  EXPECT_EQ(sequences, 12u * std::size(kAllStorageKinds));
}

constexpr double kFloatTolerance = 1e-11;

// Six monoids × 3 backends × 12 seeds = 216 seeded sequences, exceeding
// the 200-sequence floor. Count and expectation take the ⊕-inverse fast
// path; bool, tropical, prob, and resilience take the group-refold
// fallback.

TEST(IncrementalDifferentialTest, CountMonoidBitIdentical) {
  RunDifferentialSweep(
      CountMonoid{}, [](const Fact&, double) -> uint64_t { return 1; },
      /*tolerance=*/-1, /*seed_base=*/1000);
}

TEST(IncrementalDifferentialTest, BoolMonoidBitIdentical) {
  RunDifferentialSweep(
      BoolMonoid{}, [](const Fact&, double) { return true; },
      /*tolerance=*/-1, /*seed_base=*/2000);
}

TEST(IncrementalDifferentialTest, ResilienceMonoidBitIdentical) {
  // Weight < 0.5 reads as endogenous (cost 1), else exogenous (∞) — the
  // same rule on both the incremental and the scratch side.
  RunDifferentialSweep(
      ResilienceMonoid{},
      [](const Fact&, double weight) -> uint64_t {
        return weight < 0.5 ? 1 : ResilienceMonoid::kInfinity;
      },
      /*tolerance=*/-1, /*seed_base=*/3000);
}

TEST(IncrementalDifferentialTest, TropicalMonoidWithinTolerance) {
  RunDifferentialSweep(
      TropicalMonoid{}, [](const Fact&, double weight) { return weight; },
      kFloatTolerance, /*seed_base=*/4000);
}

TEST(IncrementalDifferentialTest, ProbMonoidWithinTolerance) {
  RunDifferentialSweep(
      ProbMonoid{}, [](const Fact&, double weight) { return weight; },
      kFloatTolerance, /*seed_base=*/5000);
}

TEST(IncrementalDifferentialTest, ExpectationMonoidWithinTolerance) {
  RunDifferentialSweep(
      ExpectationMonoid{}, [](const Fact&, double weight) { return weight; },
      kFloatTolerance, /*seed_base=*/6000);
}

// Zero-valued annotations must stay in the support on both sides (scratch
// keeps keys whose annotation is the monoid zero; the view's contributor
// counts track presence, not values).

TEST(IncrementalDifferentialTest, ZeroAnnotationsKeepSupportParity) {
  SequenceConfig config;
  config.seed = 77;
  for (StorageKind storage : kAllStorageKinds) {
    SCOPED_TRACE(StorageKindName(storage));
    config.storage = storage;
    RunDifferentialSequence(
        ExpectationMonoid{},
        [](const Fact& fact, double weight) {
          // Some facts annotate to exactly 0.0 while staying present.
          return weight < 0.3 ? 0.0 : weight;
        },
        config, kFloatTolerance);
  }
}

}  // namespace
}  // namespace hierarq
