// Tests for the expected-multiplicity instantiation (expectation
// semiring) and its contrast with marginal probability.

#include <gtest/gtest.h>

#include "hierarq/core/expectation.h"
#include "hierarq/core/pqe.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Reference: E[Q] = Σ_worlds P(world) · Q(world), enumerated.
double BruteForceExpectation(const ConjunctiveQuery& q,
                             const TidDatabase& db) {
  const auto facts = db.AllFacts();
  HIERARQ_CHECK_LE(facts.size(), 20u);
  double total = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << facts.size()); ++mask) {
    double weight = 1.0;
    Database world;
    for (size_t i = 0; i < facts.size(); ++i) {
      if ((mask >> i) & 1) {
        weight *= facts[i].second;
        world.AddFactOrDie(facts[i].first.relation, facts[i].first.tuple);
      } else {
        weight *= 1.0 - facts[i].second;
      }
    }
    if (weight > 0.0) {
      total += weight * static_cast<double>(BagSetCount(q, world));
    }
  }
  return total;
}

TEST(Expectation, SingleAtomIsSumOfProbabilities) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  db.AddFactOrDie("R", MakeTuple({2}), 0.25);
  auto e = ExpectedMultiplicity(q, db);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.75);
}

TEST(Expectation, ProductOverIndependentAtoms) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  db.AddFactOrDie("R", MakeTuple({2}), 0.5);
  db.AddFactOrDie("S", MakeTuple({1}), 0.5);
  auto e = ExpectedMultiplicity(q, db);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 1.0 * 0.5);  // E[|R|] * E[|S|].
}

TEST(Expectation, CertainDatabaseGivesExactCount) {
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 10;
    dopts.domain_size = 4;
    const Database facts = RandomDatabaseForQuery(q, rng, dopts);
    TidDatabase db;
    for (const Fact& f : facts.AllFacts()) {
      db.AddFactOrDie(f.relation, f.tuple, 1.0);
    }
    auto e = ExpectedMultiplicity(q, db);
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(*e, static_cast<double>(BagSetCount(q, facts)))
        << q.ToString();
  }
}

class ExpectationBruteForceParam : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ExpectationBruteForceParam, MatchesWorldEnumeration) {
  Rng rng(GetParam() * 1000 + 17);
  for (int round = 0; round < 8; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 3;
    dopts.domain_size = 3;
    const TidDatabase db = RandomTidForQuery(q, rng, dopts, 0.1, 0.9);
    if (db.NumFacts() > 14) {
      continue;
    }
    auto fast = ExpectedMultiplicity(q, db);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    EXPECT_NEAR(*fast, BruteForceExpectation(q, db), 1e-9) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpectationBruteForceParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Expectation, DominatesMarginalProbability) {
  // Markov: Pr[Q] = Pr[count >= 1] <= E[count].
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 6;
    dopts.domain_size = 4;
    const TidDatabase db = RandomTidForQuery(q, rng, dopts);
    auto pr = EvaluateProbability(q, db);
    auto ev = ExpectedMultiplicity(q, db);
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(ev.ok());
    EXPECT_LE(*pr, *ev + 1e-9) << q.ToString();
  }
}

TEST(Expectation, NonHierarchicalRejected) {
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  auto e = ExpectedMultiplicity(MakeQnh(), db);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotHierarchical);
}

}  // namespace
}  // namespace hierarq
