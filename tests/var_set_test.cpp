// Unit tests for sorted variable sets.

#include <gtest/gtest.h>

#include "hierarq/query/var_set.h"
#include "hierarq/util/random.h"

#include <set>

namespace hierarq {
namespace {

TEST(VarSet, InsertKeepsSortedUnique) {
  VarSet s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_TRUE(s.Insert(1));
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(3));  // Duplicate.
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 1u);
  EXPECT_EQ(s[1], 3u);
  EXPECT_EQ(s[2], 5u);
}

TEST(VarSet, InitializerList) {
  VarSet s{4, 2, 2, 9};
  EXPECT_EQ(s, (VarSet{2, 4, 9}));
}

TEST(VarSet, Contains) {
  VarSet s{1, 3, 5};
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(VarSet{}.Contains(0));
}

TEST(VarSet, Erase) {
  VarSet s{1, 2, 3};
  EXPECT_TRUE(s.Erase(2));
  EXPECT_EQ(s, (VarSet{1, 3}));
  EXPECT_FALSE(s.Erase(2));
  EXPECT_TRUE(s.Erase(1));
  EXPECT_TRUE(s.Erase(3));
  EXPECT_TRUE(s.empty());
}

TEST(VarSet, SubsetRelation) {
  EXPECT_TRUE((VarSet{1, 3}).IsSubsetOf(VarSet{1, 2, 3}));
  EXPECT_TRUE((VarSet{}).IsSubsetOf(VarSet{1}));
  EXPECT_TRUE((VarSet{1, 2}).IsSubsetOf(VarSet{1, 2}));
  EXPECT_FALSE((VarSet{1, 4}).IsSubsetOf(VarSet{1, 2, 3}));
  EXPECT_FALSE((VarSet{1, 2, 3}).IsSubsetOf(VarSet{1, 2}));
}

TEST(VarSet, Disjointness) {
  EXPECT_TRUE((VarSet{1, 2}).IsDisjointFrom(VarSet{3, 4}));
  EXPECT_FALSE((VarSet{1, 2}).IsDisjointFrom(VarSet{2, 3}));
  EXPECT_TRUE((VarSet{}).IsDisjointFrom(VarSet{1}));
  EXPECT_TRUE((VarSet{}).IsDisjointFrom(VarSet{}));
}

TEST(VarSet, SetAlgebra) {
  const VarSet a{1, 2, 3};
  const VarSet b{2, 3, 4};
  EXPECT_EQ(a.Union(b), (VarSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (VarSet{2, 3}));
  EXPECT_EQ(a.Minus(b), (VarSet{1}));
  EXPECT_EQ(b.Minus(a), (VarSet{4}));
}

TEST(VarSet, ToString) {
  EXPECT_EQ((VarSet{2, 0}).ToString(), "{0,2}");
  EXPECT_EQ(VarSet{}.ToString(), "{}");
}

TEST(VarSet, RandomizedAgainstStdSet) {
  Rng rng(4242);
  for (int round = 0; round < 50; ++round) {
    VarSet mine;
    std::set<VarId> reference;
    for (int op = 0; op < 60; ++op) {
      const VarId v = static_cast<VarId>(rng.UniformInt(0, 15));
      if (rng.Bernoulli(0.6)) {
        EXPECT_EQ(mine.Insert(v), reference.insert(v).second);
      } else {
        EXPECT_EQ(mine.Erase(v), reference.erase(v) > 0);
      }
    }
    ASSERT_EQ(mine.size(), reference.size());
    size_t i = 0;
    for (VarId v : reference) {
      EXPECT_EQ(mine[i++], v);
    }
  }
}

TEST(VarSet, RandomizedAlgebraAgainstStdSet) {
  Rng rng(777);
  auto random_set = [&rng]() {
    VarSet s;
    const int n = static_cast<int>(rng.UniformInt(0, 10));
    for (int i = 0; i < n; ++i) {
      s.Insert(static_cast<VarId>(rng.UniformInt(0, 12)));
    }
    return s;
  };
  auto to_std = [](const VarSet& s) {
    return std::set<VarId>(s.begin(), s.end());
  };
  for (int round = 0; round < 100; ++round) {
    const VarSet a = random_set();
    const VarSet b = random_set();
    const auto sa = to_std(a);
    const auto sb = to_std(b);

    std::set<VarId> expected_union = sa;
    expected_union.insert(sb.begin(), sb.end());
    EXPECT_EQ(to_std(a.Union(b)), expected_union);

    std::set<VarId> expected_inter;
    for (VarId v : sa) {
      if (sb.count(v)) {
        expected_inter.insert(v);
      }
    }
    EXPECT_EQ(to_std(a.Intersect(b)), expected_inter);

    std::set<VarId> expected_minus;
    for (VarId v : sa) {
      if (!sb.count(v)) {
        expected_minus.insert(v);
      }
    }
    EXPECT_EQ(to_std(a.Minus(b)), expected_minus);

    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()));
    EXPECT_EQ(a.IsDisjointFrom(b), expected_inter.empty());
  }
}

}  // namespace
}  // namespace hierarq
