// End-to-end reproduction of the paper's worked material:
//   * Figure 1 + Eq. (1): the Bag-Set Maximization running example (§1-§2);
//   * the probabilistic evaluation pipeline of §2 (Eqs. (4)-(9));
//   * Examples 5.2 / 5.3 / 5.4: elimination traces.

#include <gtest/gtest.h>

#include "hierarq/core/bagset.h"
#include "hierarq/core/pqe.h"
#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Figure 1a: the database D.
Database Fig1D() {
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 1}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  return d;
}

/// Figure 1b: the repair database Dr.
Database Fig1Dr() {
  Database dr;
  dr.AddFactOrDie("R", MakeTuple({1, 6}));
  dr.AddFactOrDie("R", MakeTuple({1, 7}));
  dr.AddFactOrDie("T", MakeTuple({1, 1, 4}));
  dr.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  return dr;
}

TEST(PaperExample, QueryEq1IsHierarchical) {
  const ConjunctiveQuery q = MakePaperQuery();
  EXPECT_TRUE(IsHierarchical(q));
  EXPECT_EQ(q.num_atoms(), 3u);
  EXPECT_EQ(q.AllVars().size(), 4u);
}

TEST(PaperExample, InitialMultiplicityIsOne) {
  // "Initially, Q has one satisfying assignment over D, namely
  //  (A,B,C,D) = (1,5,2,4). Hence Q(D) = 1."
  const ConjunctiveQuery q = MakePaperQuery();
  EXPECT_EQ(BagSetCount(q, Fig1D()), 1u);

  auto via_algorithm = BagSetCountHierarchical(q, Fig1D());
  ASSERT_TRUE(via_algorithm.ok());
  EXPECT_EQ(*via_algorithm, 1u);
}

TEST(PaperExample, TheUniqueInitialAssignmentIs1524) {
  const ConjunctiveQuery q = MakePaperQuery();
  std::vector<std::vector<Value>> rows;
  EnumerateAssignments(q, Fig1D(), [&rows](const std::vector<Value>& row) {
    rows.push_back(row);
    return true;
  });
  ASSERT_EQ(rows.size(), 1u);
  // AllVars order is interning order: A, B, C, D.
  EXPECT_EQ(rows[0], (std::vector<Value>{1, 5, 2, 4}));
}

TEST(PaperExample, TwoRFactsGiveThree) {
  // "We could amend D with the two facts R(1,6) and R(1,7) from Dr, which
  //  would bring Q(D) to 3."
  const ConjunctiveQuery q = MakePaperQuery();
  Database d = Fig1D();
  d.AddFactOrDie("R", MakeTuple({1, 6}));
  d.AddFactOrDie("R", MakeTuple({1, 7}));
  EXPECT_EQ(BagSetCount(q, d), 3u);
}

TEST(PaperExample, OptimalRepairGivesFour) {
  // "A better repair is to amend D with R(1,6) and T(1,2,9), since this
  //  would bring Q(D) to 4. [...] this would be an optimal repair, hence
  //  the answer to this Bag-Set Maximization instance is 4."
  const ConjunctiveQuery q = MakePaperQuery();
  Database d = Fig1D();
  d.AddFactOrDie("R", MakeTuple({1, 6}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  EXPECT_EQ(BagSetCount(q, d), 4u);

  auto result = MaximizeBagSet(MakePaperQuery(), Fig1D(), Fig1Dr(), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->max_multiplicity, 4u);
  EXPECT_FALSE(result->saturated);
}

TEST(PaperExample, FullBudgetProfile) {
  // profile[i] = optimum at budget i: 1 (no repair), 2 (one fact),
  // 4 (two facts).
  auto result = MaximizeBagSet(MakePaperQuery(), Fig1D(), Fig1Dr(), 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->profile.size(), 3u);
  EXPECT_EQ(result->profile[0], 1u);
  EXPECT_EQ(result->profile[1], 2u);
  EXPECT_EQ(result->profile[2], 4u);
}

TEST(PaperExample, ProfileMatchesBruteForce) {
  const ConjunctiveQuery q = MakePaperQuery();
  for (size_t budget : {0, 1, 2, 3, 4}) {
    auto algo = MaximizeBagSet(q, Fig1D(), Fig1Dr(), budget);
    ASSERT_TRUE(algo.ok());
    const BagMaxVec brute = BruteForceBagSetMax(q, Fig1D(), Fig1Dr(), budget);
    EXPECT_EQ(algo->profile, brute) << "budget=" << budget;
  }
}

TEST(PaperExample, OptimalRepairWitness) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto repair = ExtractOptimalRepair(q, Fig1D(), Fig1Dr(), 2);
  ASSERT_TRUE(repair.ok());
  ASSERT_EQ(repair->size(), 2u);
  Database d = Fig1D();
  for (const Fact& fact : *repair) {
    EXPECT_TRUE(Fig1Dr().ContainsFact(fact));
    EXPECT_FALSE(Fig1D().ContainsFact(fact));
    d.AddFactOrDie(fact.relation, fact.tuple);
  }
  EXPECT_EQ(BagSetCount(q, d), 4u);
}

TEST(PaperExample, WholeRepairDatabaseBudget) {
  // With budget >= |Dr| = 4 every fact can be added:
  // R ∈ {5,6,7} × {S(1,1)T(1,1,4), S(1,2)T(1,2,4), S(1,2)T(1,2,9)} = 9.
  const ConjunctiveQuery q = MakePaperQuery();
  auto result = MaximizeBagSet(q, Fig1D(), Fig1Dr(), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->max_multiplicity, 9u);
}

TEST(PaperExample, Section2ProbabilisticPipeline) {
  // §2 instantiates the same elimination with the probability monoid; on a
  // uniform-0.5 TID version of Figure 1's D the result must match the
  // possible-worlds brute force.
  const ConjunctiveQuery q = MakePaperQuery();
  TidDatabase tid;
  tid.AddFactOrDie("R", MakeTuple({1, 5}), 0.5);
  tid.AddFactOrDie("S", MakeTuple({1, 1}), 0.25);
  tid.AddFactOrDie("S", MakeTuple({1, 2}), 0.75);
  tid.AddFactOrDie("T", MakeTuple({1, 2, 4}), 0.5);
  tid.AddFactOrDie("T", MakeTuple({1, 1, 4}), 0.125);

  auto fast = EvaluateProbability(q, tid);
  ASSERT_TRUE(fast.ok());
  const double slow = BruteForcePqe(q, tid);
  EXPECT_NEAR(*fast, slow, 1e-12);
}

TEST(PaperExample, Example52EliminationSucceedsInSixSteps) {
  // Example 5.2 reduces Eq. (1) with 4 applications of Rule 1 and 2 of
  // Rule 2 (6 steps total), ending in a nullary atom.
  const ConjunctiveQuery q = MakePaperQuery();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps().size(), 6u);
  size_t rule1 = 0;
  size_t rule2 = 0;
  for (const EliminationStep& step : plan->steps()) {
    (step.rule == EliminationRule::kProjectVariable ? rule1 : rule2) += 1;
  }
  EXPECT_EQ(rule1, 4u);
  EXPECT_EQ(rule2, 2u);
  EXPECT_TRUE(plan->vars_of(plan->final_atom()).empty());
}

TEST(PaperExample, Example53PathQueryGetsStuck) {
  // Q() :- R(A,B), S(B,C), T(C,D): Rule 1 eliminates A and D, then the
  // procedure is stuck — the query is not hierarchical.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A,B), S(B,C), T(C,D)");
  EXPECT_FALSE(IsHierarchical(q));
  auto plan = EliminationPlan::Build(q);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotHierarchical);
}

TEST(PaperExample, Example54DisconnectedQueryReduces) {
  // Q() :- R(A), S(B) reduces via Rule 1, Rule 1, Rule 2.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
  ASSERT_TRUE(IsHierarchical(q));
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps().size(), 3u);
  EXPECT_EQ(plan->steps()[0].rule, EliminationRule::kProjectVariable);
  EXPECT_EQ(plan->steps()[1].rule, EliminationRule::kProjectVariable);
  EXPECT_EQ(plan->steps()[2].rule, EliminationRule::kMergeAtoms);
}

}  // namespace
}  // namespace hierarq
