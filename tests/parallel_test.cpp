// Threaded-vs-serial differential for intra-query parallel Algorithm 1
// (core/parallel.h): for every storage backend × monoid × thread count,
// the shard-parallel runner must agree with the serial engine —
// bit-identically for exact monoids (count, bool, resilience, Shapley's
// Fractions: ⊕ is exactly associative-commutative, so order cannot show),
// and to 1e-11 relative for the floating monoids (sharding fixes a
// different ⊕ order, like switching backends does).
//
// Also covered here: determinism across thread counts (2 threads and 8
// threads must agree bit-for-bit — shard ownership depends on hashes,
// not scheduling), the EvalService single-huge-replay route, and
// parallel incremental-view materialization feeding serial delta
// maintenance. parallel_test runs in the TSAN CI leg: the concurrency
// tests double as race detectors.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "hierarq/hierarq.h"
#include "hierarq/incremental/incremental_evaluator.h"

namespace hierarq {
namespace {

// Relative-or-absolute closeness for the floating monoids. Equal
// non-finite values (the tropical zero is +inf) compare equal directly —
// inf - inf is nan, which EXPECT_NEAR cannot digest.
void ExpectClose(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    EXPECT_EQ(a, b);
    return;
  }
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, 1e-11 * scale);
}

// Deterministic pseudo-weight in (0, 1) derived from the fact itself, so
// every backend and thread count annotates identically.
double WeightOf(const Fact& fact) {
  uint64_t h = HashRange(fact.tuple.begin(), fact.tuple.end());
  h = Mix64(h ^ fact.relation.size());
  return (static_cast<double>(h % 999) + 0.5) / 1000.0;
}

ConjunctiveQuery RandomQuery(Rng& rng) {
  RandomHierarchicalOptions opts;
  opts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
  opts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
  return MakeRandomHierarchical(rng, opts);
}

Database RandomInstance(Rng& rng, const ConjunctiveQuery& q) {
  DataGenOptions dopts;
  // Includes empty and single-fact relations; parallel_min_rows = 1 in
  // the sweeps below forces even these through the sharded path.
  dopts.tuples_per_relation = static_cast<size_t>(rng.UniformInt(0, 120));
  dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 20));
  return RandomDatabaseForQuery(q, rng, dopts);
}

template <TwoMonoid M>
typename M::value_type EvaluateWith(
    const M& monoid,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    const ConjunctiveQuery& q, const Database& db, StorageKind storage,
    size_t threads) {
  Evaluator::Options options;
  options.storage = storage;
  options.intra_query_threads = threads;
  options.parallel_min_rows = 1;  // Force the sharded path on test sizes.
  Evaluator evaluator(options);
  auto result = evaluator.Evaluate<M>(q, monoid, db, annotator);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : typename M::value_type{};
}

// One sweep: serial reference per backend, then 2- and 8-thread runs
// compared by `check(reference, threaded)`; the two thread counts are
// additionally compared bit-for-bit (determinism).
template <TwoMonoid M, typename Check>
void SweepThreadedVsSerial(
    const M& monoid,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    uint64_t seed_base, Check check) {
  size_t instances = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed_base + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    const Database db = RandomInstance(rng, q);
    for (StorageKind storage : kAllStorageKinds) {
      SCOPED_TRACE(std::string(StorageKindName(storage)) +
                   " seed=" + std::to_string(seed) + " " + q.ToString());
      const auto reference =
          EvaluateWith(monoid, annotator, q, db, storage, 1);
      const auto two = EvaluateWith(monoid, annotator, q, db, storage, 2);
      const auto eight = EvaluateWith(monoid, annotator, q, db, storage, 8);
      check(reference, two);
      check(reference, eight);
      ++instances;
    }
  }
  EXPECT_EQ(instances, 10 * std::size(kAllStorageKinds));
}

template <typename T>
void CheckBitIdentical(const T& a, const T& b) {
  EXPECT_EQ(a, b);
}

TEST(ParallelDifferential, CountBitIdentical) {
  SweepThreadedVsSerial<CountMonoid>(
      CountMonoid{}, [](const Fact&) -> uint64_t { return 1; }, 0xc0c0,
      [](uint64_t a, uint64_t b) { CheckBitIdentical(a, b); });
}

TEST(ParallelDifferential, BoolBitIdentical) {
  SweepThreadedVsSerial<BoolMonoid>(
      BoolMonoid{}, [](const Fact&) { return true; }, 0xb001,
      [](bool a, bool b) { CheckBitIdentical(a, b); });
}

TEST(ParallelDifferential, ResilienceBitIdentical) {
  SweepThreadedVsSerial<ResilienceMonoid>(
      ResilienceMonoid{},
      [](const Fact& fact) -> uint64_t {
        return WeightOf(fact) < 0.5 ? 1 : ResilienceMonoid::kInfinity;
      },
      0x4e51,
      [](uint64_t a, uint64_t b) { CheckBitIdentical(a, b); });
}

TEST(ParallelDifferential, TropicalWithinTolerance) {
  SweepThreadedVsSerial<TropicalMonoid>(
      TropicalMonoid{}, [](const Fact& fact) { return WeightOf(fact); },
      0x7209, [](double a, double b) { ExpectClose(a, b); });
}

TEST(ParallelDifferential, ProbWithinTolerance) {
  SweepThreadedVsSerial<ProbMonoid>(
      ProbMonoid{}, [](const Fact& fact) { return WeightOf(fact); }, 0x9206,
      [](double a, double b) { ExpectClose(a, b); });
}

TEST(ParallelDifferential, ExpectationWithinTolerance) {
  SweepThreadedVsSerial<ExpectationMonoid>(
      ExpectationMonoid{}, [](const Fact& fact) { return WeightOf(fact); },
      0xe4bc, [](double a, double b) { ExpectClose(a, b); });
}

// Shapley routes 2n Algorithm 1 calls through one evaluator over exact
// Fractions — the acceptance bar's third bit-identical family.
TEST(ParallelDifferential, ShapleyValuesBitIdenticalUnderThreads) {
  Rng rng(0x57a9ULL);
  const ConjunctiveQuery q = MakePaperQuery();
  DataGenOptions dopts;
  dopts.tuples_per_relation = 12;
  dopts.domain_size = 5;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  // Split facts: first half exogenous, rest endogenous.
  Database exo;
  Database endo;
  size_t i = 0;
  for (const Fact& fact : db.AllFacts()) {
    (i++ % 2 == 0 ? exo : endo).AddFactOrDie(fact.relation, fact.tuple);
  }

  Evaluator serial(StorageKind::kFlat);
  auto reference = AllShapleyValues(serial, q, exo, endo);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (StorageKind storage : kAllStorageKinds) {
    Evaluator::Options options;
    options.storage = storage;
    options.intra_query_threads = 8;
    options.parallel_min_rows = 1;
    Evaluator threaded(options);
    auto values = AllShapleyValues(threaded, q, exo, endo);
    ASSERT_TRUE(values.ok()) << values.status().ToString();
    ASSERT_EQ(values->size(), reference->size());
    for (size_t j = 0; j < values->size(); ++j) {
      EXPECT_EQ((*values)[j].second, (*reference)[j].second)
          << StorageKindName(storage) << " fact #" << j;
    }
  }
}

// ------------------------------------------------------- service routing --

TEST(ParallelService, SingleHugeReplayTakesIntraQueryRoute) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0x1277ULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 400;
  dopts.domain_size = 100;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);

  EvalService::Options options;
  options.num_workers = 2;
  options.intra_query_threads = 2;
  options.intra_query_min_support = 1;  // Route everything big enough...
  options.parallel_min_rows = 1;        // ...and shard every step.
  EvalService service(options);

  const auto annotate =
      std::function<uint64_t(const Fact&)>([](const Fact&) -> uint64_t {
        return 1;
      });
  auto results = service.EvaluateMany<CountMonoid>(CountMonoid{}, {&q}, db,
                                                   annotate);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(service.stats().intra_parallel_replays, 1u);

  // Cross-check against a plain serial evaluator.
  Evaluator serial;
  auto reference = serial.Evaluate<CountMonoid>(q, CountMonoid{}, db,
                                                annotate);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(*results[0], *reference);

  // A multi-query group keeps the across-query fan-out (no extra intra
  // replays), and a small database never takes the route.
  auto multi = service.EvaluateMany<CountMonoid>(CountMonoid{}, {&q, &q},
                                                 db, annotate);
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_EQ(*multi[0], *reference);
  EXPECT_EQ(*multi[1], *reference);
  EXPECT_EQ(service.stats().intra_parallel_replays, 1u);
}

// Concurrent clients mixing batch fan-out with intra-parallel singleton
// replays on the same pool — the TSAN target for the new code paths.
TEST(ParallelService, ConcurrentBatchesAndIntraReplaysAgree) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0xc0ffULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 200;
  dopts.domain_size = 60;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  const auto annotate =
      std::function<uint64_t(const Fact&)>([](const Fact&) -> uint64_t {
        return 1;
      });

  Evaluator serial;
  auto reference = serial.Evaluate<CountMonoid>(q, CountMonoid{}, db,
                                                annotate);
  ASSERT_TRUE(reference.ok());

  EvalService::Options options;
  options.num_workers = 4;
  options.intra_query_threads = 4;
  options.intra_query_min_support = 1;
  options.parallel_min_rows = 1;
  EvalService service(options);

  constexpr size_t kClients = 6;
  constexpr size_t kRounds = 5;
  std::vector<std::jthread> clients;
  std::vector<size_t> mismatches(kClients, 0);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        // Alternate singleton groups (intra route) and pair groups
        // (fan-out route) from every client.
        std::vector<const ConjunctiveQuery*> queries;
        queries.push_back(&q);
        if ((c + round) % 2 == 0) {
          queries.push_back(&q);
        }
        auto results = service.EvaluateMany<CountMonoid>(
            CountMonoid{}, queries, db, annotate);
        for (const auto& result : results) {
          if (!result.ok() || *result != *reference) {
            ++mismatches[c];
          }
        }
      }
    });
  }
  clients.clear();  // Join.
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0u) << "client " << c;
  }
  EXPECT_GT(service.stats().intra_parallel_replays, 0u);
}

// ------------------------------------------------------------ fused steps --

// Builds a range-scannable relation of `rows` pseudo-random tuples (with
// duplicates ⊕-merged, exercising the Merge path) over `vars`.
AnnotatedRelation<uint64_t> FilledRelation(const VarSet& vars,
                                           StorageKind kind, size_t rows,
                                           uint64_t seed) {
  AnnotatedRelation<uint64_t> rel;
  rel.Reset(vars, kind);
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    Tuple key;
    for (size_t c = 0; c < vars.size(); ++c) {
      key.push_back(rng.UniformInt(0, 40));
    }
    rel.Merge(key, 1 + static_cast<uint64_t>(rng.UniformInt(0, 5)), plus);
  }
  return rel;
}

template <typename K>
void ExpectSameRelation(const AnnotatedRelation<K>& expected,
                        const AnnotatedRelation<K>& actual) {
  EXPECT_EQ(expected.size(), actual.size());
  expected.ForEach([&](const Tuple& key, const K& value) {
    const K* other = actual.Find(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(*other, value);
  });
}

// The fused Rule 1/Rule 2 phases exist to shrink per-step pool
// synchronization: hash chunks and shard scatters now share one
// ParallelFor (work-stealing barrier inside), where Rule 1 used to take
// 2 latches (hash pass, scatter) and Rule 2 took 3 (two hash passes,
// scatter). parallel_for_calls() counts latches directly.
TEST(FusedSteps, Rule1AndRule2TakeOneLatchEach) {
  WorkerPool pool(4);
  IntraQueryParallel par{&pool, 4, /*min_rows=*/1};
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const auto times = [](uint64_t a, uint64_t b) { return a * b; };

  const AnnotatedRelation<uint64_t> source =
      FilledRelation(VarSet{0, 1}, StorageKind::kFlat, 300, 0xfab1);
  AnnotatedRelation<uint64_t> projected;
  const size_t before_rule1 = pool.parallel_for_calls();
  ProjectDropStep(source, /*drop_pos=*/0, VarSet{1}, plus, par,
                  StorageKind::kFlat, &projected);
  EXPECT_EQ(pool.parallel_for_calls() - before_rule1, 1u);
  EXPECT_FALSE(projected.empty());

  const AnnotatedRelation<uint64_t> left =
      FilledRelation(VarSet{0, 1}, StorageKind::kFlat, 300, 0xfab2);
  const AnnotatedRelation<uint64_t> right =
      FilledRelation(VarSet{0, 1}, StorageKind::kFlat, 300, 0xfab3);
  AnnotatedRelation<uint64_t> joined;
  const size_t before_rule2 = pool.parallel_for_calls();
  JoinUnionStep(left, right, VarSet{0, 1}, times, uint64_t{0}, par,
                StorageKind::kFlat, &joined);
  EXPECT_EQ(pool.parallel_for_calls() - before_rule2, 1u);
  EXPECT_FALSE(joined.empty());
}

// Both sharded scatter flavors (FlatMap shards and the SIMD-widened
// columnar shards) must produce the serial natives' exact contents, from
// every range-scannable input layout.
TEST(FusedSteps, ScatterFlavorsMatchSerialResults) {
  WorkerPool pool(4);
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const auto times = [](uint64_t a, uint64_t b) { return a * b; };

  for (StorageKind input : {StorageKind::kFlat, StorageKind::kColumnar,
                            StorageKind::kSharded,
                            StorageKind::kShardedColumnar}) {
    for (StorageKind scatter :
         {StorageKind::kSharded, StorageKind::kShardedColumnar}) {
      SCOPED_TRACE(std::string(StorageKindName(input)) + " -> " +
                   StorageKindName(scatter));
      IntraQueryParallel par{&pool, 4, /*min_rows=*/1, scatter};
      const AnnotatedRelation<uint64_t> source =
          FilledRelation(VarSet{0, 1}, input, 400, 0x5ca7);
      const AnnotatedRelation<uint64_t> other =
          FilledRelation(VarSet{0, 1}, input, 400, 0x5ca8);

      AnnotatedRelation<uint64_t> serial_projected;
      ProjectDropStep(source, 0, VarSet{1}, plus, IntraQueryParallel{},
                      StorageKind::kFlat, &serial_projected);
      AnnotatedRelation<uint64_t> parallel_projected;
      ProjectDropStep(source, 0, VarSet{1}, plus, par, StorageKind::kFlat,
                      &parallel_projected);
      EXPECT_EQ(parallel_projected.storage(), scatter);
      ExpectSameRelation(serial_projected, parallel_projected);

      AnnotatedRelation<uint64_t> serial_joined;
      JoinUnionStep(source, other, VarSet{0, 1}, times, uint64_t{0},
                    IntraQueryParallel{}, StorageKind::kFlat,
                    &serial_joined);
      AnnotatedRelation<uint64_t> parallel_joined;
      JoinUnionStep(source, other, VarSet{0, 1}, times, uint64_t{0}, par,
                    StorageKind::kFlat, &parallel_joined);
      EXPECT_EQ(parallel_joined.storage(), scatter);
      ExpectSameRelation(serial_joined, parallel_joined);
    }
  }
}

// --------------------------------------------- incremental materialization --

TEST(ParallelIncremental, ParallelMaterializeFeedsSerialDeltasCorrectly) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0x13c4ULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 60;
  dopts.domain_size = 12;
  const Database base = RandomDatabaseForQuery(q, rng, dopts);

  for (StorageKind storage :
       {StorageKind::kFlat, StorageKind::kColumnar, StorageKind::kSharded}) {
    SCOPED_TRACE(StorageKindName(storage));
    VersionedDatabase serial_db(base);
    VersionedDatabase parallel_db(base);
    IncrementalEvaluator<CountMonoid> serial(
        CountMonoid{}, &serial_db,
        [](const Fact&, double) -> uint64_t { return 1; }, {storage});
    IncrementalEvaluator<CountMonoid>::Options par_options;
    par_options.storage = storage;
    par_options.intra_query_threads = 4;
    IncrementalEvaluator<CountMonoid> parallel(
        CountMonoid{}, &parallel_db,
        [](const Fact&, double) -> uint64_t { return 1; }, par_options);

    auto serial_handle = serial.Attach(q);
    auto parallel_handle = parallel.Attach(q);
    ASSERT_TRUE(serial_handle.ok());
    ASSERT_TRUE(parallel_handle.ok());
    EXPECT_EQ(serial.ResultOf(*serial_handle),
              parallel.ResultOf(*parallel_handle));

    // Stream random single-fact deltas through both; the parallel-
    // materialized view tree must track the serial one exactly.
    for (int round = 0; round < 40; ++round) {
      DeltaBatch batch;
      DeltaOp op;
      op.kind = rng.UniformInt(0, 2) == 0 ? DeltaKind::kDelete
                                          : DeltaKind::kInsert;
      op.fact.relation = q.atoms()[static_cast<size_t>(
                                       rng.UniformInt(0, 2))]
                             .relation();
      const size_t arity =
          q.atoms()[*q.AtomIndexOf(op.fact.relation)].arity();
      for (size_t i = 0; i < arity; ++i) {
        op.fact.tuple.push_back(rng.UniformInt(0, 12));
      }
      batch.ops.push_back(op);
      serial.ApplyDelta(batch);
      parallel.ApplyDelta(batch);
      ASSERT_EQ(serial.ResultOf(*serial_handle),
                parallel.ResultOf(*parallel_handle))
          << "round " << round;
    }
    EXPECT_EQ(serial.view(*serial_handle).TotalSupport(),
              parallel.view(*parallel_handle).TotalSupport());
  }
}

}  // namespace
}  // namespace hierarq
