// Unit tests for the deterministic PRNG and Zipf sampler.

#include <gtest/gtest.h>

#include <set>

#include "hierarq/util/random.h"

namespace hierarq {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.Next() == b.Next();
  }
  EXPECT_LT(equal, 4u);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformInt(0, kBuckets - 1)] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.SampleWithoutReplacement(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (size_t s : sample) {
      EXPECT_LT(s, 20u);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Zipf, SamplesInRange) {
  Rng rng(41);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 100u);
  }
}

TEST(Zipf, SkewFavorsSmallRanks) {
  Rng rng(43);
  ZipfDistribution zipf(1000, 1.2);
  int head = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    head += zipf.Sample(rng) < 10;
  }
  // Under uniform sampling the head would get ~1%; Zipf(1.2) gives far more.
  EXPECT_GT(head, kDraws / 4);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(47);
  ZipfDistribution zipf(10, 0.0);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Sample(rng)] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

}  // namespace
}  // namespace hierarq
