// Tests for Probabilistic Query Evaluation (paper §5.4, Theorem 5.8).

#include <gtest/gtest.h>

#include "hierarq/core/pqe.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(Pqe, SingleAtomSingleFact) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.3);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.3);
}

TEST(Pqe, SingleAtomIsNoisyOr) {
  // Pr[∃A R(A)] = 1 - ∏ (1 - p_i).
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  db.AddFactOrDie("R", MakeTuple({2}), 0.25);
  db.AddFactOrDie("R", MakeTuple({3}), 0.8);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0 - 0.5 * 0.75 * 0.2, 1e-12);
}

TEST(Pqe, IndependentConjunctionMultiplies) {
  // Q() :- R(A), S(B): Pr = Pr[∃R] * Pr[∃S].
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  db.AddFactOrDie("S", MakeTuple({1}), 0.5);
  db.AddFactOrDie("S", MakeTuple({2}), 0.5);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5 * 0.75, 1e-12);
}

TEST(Pqe, DeterministicFactsGiveBooleanSemantics) {
  // With all probabilities in {0, 1}, Pr[Q] = [Q true on the certain DB].
  const ConjunctiveQuery q = MakePaperQuery();
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1, 5}), 1.0);
  db.AddFactOrDie("S", MakeTuple({1, 2}), 1.0);
  db.AddFactOrDie("T", MakeTuple({1, 2, 4}), 1.0);
  db.AddFactOrDie("T", MakeTuple({2, 2, 4}), 0.0);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(Pqe, EmptyDatabaseIsZero) {
  auto p = EvaluateProbability(MakePaperQuery(), TidDatabase{});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.0);
}

TEST(Pqe, NonHierarchicalRejected) {
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.5);
  auto p = EvaluateProbability(MakeQnh(), db);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotHierarchical);
}

TEST(Pqe, ProbabilityIsAlwaysAUnitIntervalValue) {
  Rng rng(555);
  for (int round = 0; round < 40; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 30;
    dopts.domain_size = 5;
    const TidDatabase db = RandomTidForQuery(q, rng, dopts);
    auto p = EvaluateProbability(q, db);
    ASSERT_TRUE(p.ok());
    EXPECT_GE(*p, 0.0);
    EXPECT_LE(*p, 1.0 + 1e-12);
  }
}

class PqeBruteForceParam : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PqeBruteForceParam, MatchesPossibleWorlds) {
  // The heart of Theorem 5.8: on random hierarchical instances small
  // enough to enumerate, Algorithm 1's probability equals the
  // possible-worlds sum exactly.
  Rng rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    if (q.num_atoms() > 4) {
      continue;
    }
    DataGenOptions dopts;
    dopts.tuples_per_relation = 3;
    dopts.domain_size = 3;
    const TidDatabase db = RandomTidForQuery(q, rng, dopts, 0.1, 0.9);
    if (db.NumFacts() > 14) {
      continue;
    }
    auto fast = EvaluateProbability(q, db);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    const double slow = BruteForcePqe(q, db);
    EXPECT_NEAR(*fast, slow, 1e-10) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PqeBruteForceParam,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

TEST(Pqe, PaperQueryHandComputed) {
  // Q() :- R(A,B), S(A,C), T(A,C,D) over one A-group:
  //   Pr = p_R * (1 - (1 - p_S1·p_T1)(1 - p_S2·p_T2)).
  const ConjunctiveQuery q = MakePaperQuery();
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1, 5}), 0.9);
  db.AddFactOrDie("S", MakeTuple({1, 1}), 0.5);
  db.AddFactOrDie("S", MakeTuple({1, 2}), 0.6);
  db.AddFactOrDie("T", MakeTuple({1, 1, 4}), 0.7);
  db.AddFactOrDie("T", MakeTuple({1, 2, 9}), 0.8);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  const double expected = 0.9 * (1 - (1 - 0.5 * 0.7) * (1 - 0.6 * 0.8));
  EXPECT_NEAR(*p, expected, 1e-12);
}

TEST(Pqe, TwoIndependentAGroups) {
  // Groups a=1 and a=2 combine with noisy-or at the top level (Eq. (9)).
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A,B), S(A,C)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1, 1}), 0.5);
  db.AddFactOrDie("S", MakeTuple({1, 1}), 0.5);
  db.AddFactOrDie("R", MakeTuple({2, 1}), 0.5);
  db.AddFactOrDie("S", MakeTuple({2, 1}), 0.5);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1 - (1 - 0.25) * (1 - 0.25), 1e-12);
}

}  // namespace
}  // namespace hierarq
