// Unit tests for exact rationals.

#include <gtest/gtest.h>

#include "hierarq/util/fraction.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

TEST(Fraction, DefaultIsZero) {
  Fraction f;
  EXPECT_TRUE(f.IsZero());
  EXPECT_EQ(f.ToString(), "0");
  EXPECT_EQ(f.ToDouble(), 0.0);
}

TEST(Fraction, ReducesOnConstruction) {
  const Fraction f = Fraction::Of(6, 8);
  EXPECT_EQ(f.ToString(), "3/4");
  EXPECT_EQ(Fraction::Of(10, 5).ToString(), "2");
  EXPECT_EQ(Fraction::Of(0, 7).ToString(), "0");
}

TEST(Fraction, SignNormalization) {
  EXPECT_EQ(Fraction::Of(1, -2).ToString(), "-1/2");
  EXPECT_EQ(Fraction::Of(-1, -2).ToString(), "1/2");
  EXPECT_EQ(Fraction::Of(-1, 2).ToString(), "-1/2");
}

TEST(Fraction, Arithmetic) {
  EXPECT_EQ(Fraction::Of(1, 2) + Fraction::Of(1, 3), Fraction::Of(5, 6));
  EXPECT_EQ(Fraction::Of(1, 2) - Fraction::Of(1, 3), Fraction::Of(1, 6));
  EXPECT_EQ(Fraction::Of(2, 3) * Fraction::Of(3, 4), Fraction::Of(1, 2));
  EXPECT_EQ(Fraction::Of(1, 2) / Fraction::Of(1, 4), Fraction(2));
  EXPECT_EQ(-Fraction::Of(1, 2), Fraction::Of(-1, 2));
}

TEST(Fraction, CompoundAssignment) {
  Fraction f = Fraction::Of(1, 4);
  f += Fraction::Of(1, 4);
  EXPECT_EQ(f, Fraction::Of(1, 2));
  f *= Fraction(4);
  EXPECT_EQ(f, Fraction(2));
  f -= Fraction::Of(1, 2);
  EXPECT_EQ(f, Fraction::Of(3, 2));
  f /= Fraction(3);
  EXPECT_EQ(f, Fraction::Of(1, 2));
}

TEST(Fraction, Comparison) {
  EXPECT_LT(Fraction::Of(1, 3), Fraction::Of(1, 2));
  EXPECT_GT(Fraction::Of(2, 3), Fraction::Of(1, 2));
  EXPECT_LE(Fraction::Of(2, 4), Fraction::Of(1, 2));
  EXPECT_LT(Fraction::Of(-1, 2), Fraction::Of(1, 100));
  EXPECT_LT(Fraction::Of(-2, 3), Fraction::Of(-1, 3));
}

TEST(Fraction, ToDoubleSimple) {
  EXPECT_DOUBLE_EQ(Fraction::Of(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Fraction::Of(-3, 4).ToDouble(), -0.75);
  EXPECT_DOUBLE_EQ(Fraction::Of(1, 3).ToDouble(), 1.0 / 3.0);
}

TEST(Fraction, ToDoubleHugeFactorials) {
  // 170!/171! = 1/171 even though both factorials overflow double... 171!
  // does; the exponent-tracked conversion must still work.
  const Fraction f(BigInt(BigUint::Factorial(170)),
                   BigInt(BigUint::Factorial(171)));
  EXPECT_NEAR(f.ToDouble(), 1.0 / 171.0, 1e-15);

  const Fraction g(BigInt(BigUint::Factorial(500)),
                   BigInt(BigUint::Factorial(501)));
  EXPECT_NEAR(g.ToDouble(), 1.0 / 501.0, 1e-15);
}

TEST(Fraction, HugeFactorialReduction) {
  // 100!/98! must reduce to 9900.
  const Fraction f(BigInt(BigUint::Factorial(100)),
                   BigInt(BigUint::Factorial(98)));
  EXPECT_EQ(f, Fraction(9900));
}

TEST(Fraction, ShapleyStyleCoefficientsSumToOne) {
  // Σ_{k=0}^{n-1} k!(n-k-1)!/n! · C(n-1, k) = 1 — the permutation-weight
  // identity behind Eq. (14).
  for (uint64_t n = 1; n <= 30; ++n) {
    Fraction sum;
    for (uint64_t k = 0; k < n; ++k) {
      const Fraction weight(
          BigInt(BigUint::Factorial(k) * BigUint::Factorial(n - k - 1)),
          BigInt(BigUint::Factorial(n)));
      sum += weight * Fraction(BigInt(BigUint::Binomial(n - 1, k)), BigInt(1));
    }
    EXPECT_EQ(sum, Fraction(1)) << "n=" << n;
  }
}

TEST(Fraction, RandomizedFieldAxioms) {
  Rng rng(123);
  auto random_fraction = [&rng]() {
    return Fraction::Of(rng.UniformInt(-50, 50), rng.UniformInt(1, 50));
  };
  for (int i = 0; i < 200; ++i) {
    const Fraction a = random_fraction();
    const Fraction b = random_fraction();
    const Fraction c = random_fraction();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Fraction(), a);
    EXPECT_EQ(a * Fraction(1), a);
    EXPECT_EQ(a - a, Fraction());
    if (!b.IsZero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

}  // namespace
}  // namespace hierarq
