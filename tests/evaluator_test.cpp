// Tests for the Evaluator (core/evaluator.h): plan caching across repeated
// evaluations, per-monoid scratch isolation, correctness against the
// uncached path, and the amortized solver entry points.

#include <gtest/gtest.h>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/parser.h"
#include "hierarq/util/random.h"
#include "hierarq/workload/data_gen.h"

namespace hierarq {
namespace {

std::function<uint64_t(const Fact&)> OneAnnotator() {
  return [](const Fact&) -> uint64_t { return 1; };
}

TEST(Evaluator, SecondEvaluationSkipsPlanBuild) {
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("S", MakeTuple({1}));
  const CountMonoid monoid;

  auto first = evaluator.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  EXPECT_EQ(evaluator.stats().plans_built, 1u);
  EXPECT_EQ(evaluator.stats().plan_cache_hits, 0u);

  for (int i = 0; i < 5; ++i) {
    auto again =
        evaluator.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 1u);
  }
  // EliminationPlan::Build ran exactly once; all later runs hit the cache.
  EXPECT_EQ(evaluator.stats().plans_built, 1u);
  EXPECT_EQ(evaluator.stats().plan_cache_hits, 5u);
  EXPECT_EQ(evaluator.stats().evaluations, 6u);
  EXPECT_EQ(evaluator.num_cached_plans(), 1u);
}

TEST(Evaluator, DistinctQueriesGetDistinctPlans) {
  Evaluator evaluator;
  const ConjunctiveQuery q1 = ParseQueryOrDie("R(A)");
  const ConjunctiveQuery q2 = ParseQueryOrDie("S(A,B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  db.AddFactOrDie("S", MakeTuple({1, 2}));
  const CountMonoid monoid;

  ASSERT_TRUE(
      evaluator.Evaluate<CountMonoid>(q1, monoid, db, OneAnnotator()).ok());
  ASSERT_TRUE(
      evaluator.Evaluate<CountMonoid>(q2, monoid, db, OneAnnotator()).ok());
  EXPECT_EQ(evaluator.stats().plans_built, 2u);
  EXPECT_EQ(evaluator.num_cached_plans(), 2u);
}

TEST(Evaluator, GetPlanReturnsStablePointer) {
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A)");
  auto plan = evaluator.GetPlan(q);
  ASSERT_TRUE(plan.ok());
  const EliminationPlan* first = *plan;
  // Populate the cache with more plans to force rehashes.
  for (int i = 0; i < 50; ++i) {
    const std::string rel = "T" + std::to_string(i);
    ASSERT_TRUE(
        evaluator.GetPlan(ParseQueryOrDie(rel + "(A)")).ok());
  }
  auto again = evaluator.GetPlan(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, first);
}

TEST(Evaluator, NonHierarchicalQueryFailsAndIsNotCached) {
  Evaluator evaluator;
  // The canonical non-hierarchical path query R(A), S(A,B), T(B).
  const ConjunctiveQuery q = ParseQueryOrDie("R(A), S(A,B), T(B)");
  Database db;
  const CountMonoid monoid;
  auto result = evaluator.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotHierarchical);
  EXPECT_EQ(evaluator.num_cached_plans(), 0u);
  EXPECT_EQ(evaluator.stats().evaluations, 0u);
}

TEST(Evaluator, RepeatedEvaluationMatchesUncachedPath) {
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  const CountMonoid monoid;
  Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    // A fresh random database per round: buffers are reused, results must
    // still match the one-shot evaluation exactly.
    Database db;
    for (int i = 0; i < 30; ++i) {
      db.AddFactOrDie("R", MakeTuple({rng.UniformInt(0, 5),
                                      rng.UniformInt(0, 5)}));
      db.AddFactOrDie("S", MakeTuple({rng.UniformInt(0, 5),
                                      rng.UniformInt(0, 5)}));
      db.AddFactOrDie("T", MakeTuple({rng.UniformInt(0, 5),
                                      rng.UniformInt(0, 5),
                                      rng.UniformInt(0, 5)}));
    }
    auto cached = evaluator.Evaluate<CountMonoid>(q, monoid, db,
                                                  OneAnnotator());
    auto uncached = RunAlgorithm1OnQuery<CountMonoid>(q, monoid, db,
                                                      OneAnnotator());
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(uncached.ok());
    EXPECT_EQ(*cached, *uncached) << "round " << round;
  }
  EXPECT_EQ(evaluator.stats().plans_built, 1u);
  EXPECT_EQ(evaluator.stats().plan_cache_hits, 9u);
}

TEST(Evaluator, ScratchIsolatedAcrossMonoidDomains) {
  // Evaluating the same query in different value domains must not corrupt
  // either domain's scratch buffers.
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("R", MakeTuple({1, 3}));
  db.AddFactOrDie("S", MakeTuple({1}));

  const CountMonoid count;
  const BoolMonoid boolean;
  for (int i = 0; i < 3; ++i) {
    auto c = evaluator.Evaluate<CountMonoid>(q, count, db, OneAnnotator());
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*c, 2u);
    auto b = evaluator.Evaluate<BoolMonoid>(
        q, boolean, db, [](const Fact&) { return true; });
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(*b);
  }
  EXPECT_EQ(evaluator.stats().plans_built, 1u);
}

TEST(Evaluator, ClearCacheForcesRebuild) {
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A)");
  ASSERT_TRUE(evaluator.GetPlan(q).ok());
  EXPECT_EQ(evaluator.num_cached_plans(), 1u);
  evaluator.ClearCache();
  EXPECT_EQ(evaluator.num_cached_plans(), 0u);
  ASSERT_TRUE(evaluator.GetPlan(q).ok());
  EXPECT_EQ(evaluator.stats().plans_built, 2u);
}

TEST(Evaluator, ScratchShrinksAndGrowsAcrossQueries) {
  // Alternating queries with different atom counts must reuse the scratch
  // prefix (shrink-or-grow) and still produce exact results every round.
  Evaluator evaluator;
  const ConjunctiveQuery big = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  const ConjunctiveQuery small = ParseQueryOrDie("R(A,B)");
  const ConjunctiveQuery chain =
      ParseQueryOrDie("C1(X1), C2(X1,X2), C3(X1,X2,X3)");
  const CountMonoid monoid;
  Rng rng(13);
  for (int round = 0; round < 6; ++round) {
    Database db;
    for (int i = 0; i < 20; ++i) {
      db.AddFactOrDie("R", MakeTuple({rng.UniformInt(0, 4),
                                      rng.UniformInt(0, 4)}));
      db.AddFactOrDie("S", MakeTuple({rng.UniformInt(0, 4),
                                      rng.UniformInt(0, 4)}));
      db.AddFactOrDie("T", MakeTuple({rng.UniformInt(0, 4),
                                      rng.UniformInt(0, 4),
                                      rng.UniformInt(0, 4)}));
      db.AddFactOrDie("C1", MakeTuple({rng.UniformInt(0, 4)}));
      db.AddFactOrDie("C2", MakeTuple({rng.UniformInt(0, 4),
                                       rng.UniformInt(0, 4)}));
      db.AddFactOrDie("C3", MakeTuple({rng.UniformInt(0, 4),
                                       rng.UniformInt(0, 4),
                                       rng.UniformInt(0, 4)}));
    }
    // big (more plan atoms) -> small (fewer) -> chain (more again).
    for (const ConjunctiveQuery* q : {&big, &small, &chain}) {
      auto cached = evaluator.Evaluate<CountMonoid>(*q, monoid, db,
                                                    OneAnnotator());
      auto uncached = RunAlgorithm1OnQuery<CountMonoid>(*q, monoid, db,
                                                        OneAnnotator());
      ASSERT_TRUE(cached.ok());
      ASSERT_TRUE(uncached.ok());
      EXPECT_EQ(*cached, *uncached)
          << "round " << round << " query " << q->ToString();
    }
  }
  EXPECT_EQ(evaluator.stats().plans_built, 3u);
}

TEST(AtomAnnotationSignature, CapturesStructureNotVariableNames) {
  auto atom_of = [](const char* text, size_t index = 0) {
    return ParseQueryOrDie(text).atoms()[index];
  };
  // Variable renamings share a signature.
  EXPECT_EQ(AtomAnnotationSignature(atom_of("R(A,B)")),
            AtomAnnotationSignature(atom_of("R(X,Y)")));
  // So do atoms embedded in different queries with different intern order:
  // in "S(C,A)" C interns first, but ranks follow ascending VarId per atom.
  EXPECT_EQ(AtomAnnotationSignature(atom_of("R(A,B), S(A,C)", 1)),
            AtomAnnotationSignature(atom_of("S(C,A)")));
  // Different relations differ.
  EXPECT_NE(AtomAnnotationSignature(atom_of("R(A,B)")),
            AtomAnnotationSignature(atom_of("S(A,B)")));
  // Repeated-variable structure matters: R(X,X,Y) vs R(X,Y,Y).
  EXPECT_EQ(AtomAnnotationSignature(atom_of("R(A,A,B)")),
            AtomAnnotationSignature(atom_of("R(X,X,Y)")));
  EXPECT_NE(AtomAnnotationSignature(atom_of("R(A,A,B)")),
            AtomAnnotationSignature(atom_of("R(A,B,B)")));
  // Constants are part of the signature.
  EXPECT_EQ(AtomAnnotationSignature(atom_of("R(A,7)")),
            AtomAnnotationSignature(atom_of("R(X,7)")));
  EXPECT_NE(AtomAnnotationSignature(atom_of("R(A,7)")),
            AtomAnnotationSignature(atom_of("R(A,8)")));
  EXPECT_NE(AtomAnnotationSignature(atom_of("R(A,7)")),
            AtomAnnotationSignature(atom_of("R(A,B)")));
}

TEST(AnnotateForQuerySet, SharesScansAcrossEqualSignatures) {
  const ConjunctiveQuery q1 = ParseQueryOrDie("R(A,B), S(A,C)");
  const ConjunctiveQuery q2 = ParseQueryOrDie("R(X,Y)");
  const ConjunctiveQuery q3 = ParseQueryOrDie("S(A,B)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 2}));
  db.AddFactOrDie("R", MakeTuple({2, 3}));
  db.AddFactOrDie("S", MakeTuple({1, 7}));

  const auto annotator = OneAnnotator();
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  AnnotationPool<uint64_t> pool =
      AnnotateForQuerySet<uint64_t>({&q1, &q2, &q3}, db, annotator, plus);

  // 4 atoms, 2 distinct signatures: R(v0,v1) and S(v0,v1).
  EXPECT_EQ(pool.scans, 2u);
  EXPECT_EQ(pool.reused, 2u);
  EXPECT_EQ(pool.by_signature.size(), 2u);

  const AnnotatedRelation<uint64_t>* r =
      pool.Find(AtomAnnotationSignature(q2.atoms()[0]));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 2u);
  const AnnotatedRelation<uint64_t>* s =
      pool.Find(AtomAnnotationSignature(q3.atoms()[0]));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 1u);
  EXPECT_NE(s->Find(MakeTuple({1, 7})), nullptr);
}

TEST(Evaluator, ReplayPlanMatchesEvaluate) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A,C), T(A,C,D)");
  Rng rng(17);
  DataGenOptions opts;
  opts.tuples_per_relation = 80;
  opts.domain_size = 12;
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  const CountMonoid monoid;

  Evaluator evaluator;
  auto direct = evaluator.Evaluate<CountMonoid>(q, monoid, db, OneAnnotator());
  ASSERT_TRUE(direct.ok());

  auto plan = evaluator.GetPlan(q);
  ASSERT_TRUE(plan.ok());
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const AnnotationPool<uint64_t> pool =
      AnnotateForQuerySet<uint64_t>({&q}, db, OneAnnotator(), plus);
  // Replaying twice from the same pool must be stable: the pool is only
  // read, the scratch is reset per replay.
  EXPECT_EQ(evaluator.ReplayPlan(**plan, monoid, q, pool), *direct);
  EXPECT_EQ(evaluator.ReplayPlan(**plan, monoid, q, pool), *direct);
}

TEST(Evaluator, SharedAcrossSolverEntryPoints) {
  Evaluator evaluator;
  const ConjunctiveQuery q = ParseQueryOrDie("R(A,B), S(A)");

  TidDatabase tid;
  tid.AddFactOrDie("R", MakeTuple({1, 2}), 0.5);
  tid.AddFactOrDie("S", MakeTuple({1}), 0.5);
  auto pqe = EvaluateProbability(evaluator, q, tid);
  ASSERT_TRUE(pqe.ok());
  EXPECT_NEAR(*pqe, 0.25, 1e-12);

  Database endo;
  endo.AddFactOrDie("R", MakeTuple({1, 2}));
  endo.AddFactOrDie("S", MakeTuple({1}));
  auto res = ComputeResilience(evaluator, q, Database(), endo);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, 1u);

  auto shapley = AllShapleyValues(evaluator, q, Database(), endo);
  ASSERT_TRUE(shapley.ok());
  EXPECT_EQ(shapley->size(), 2u);

  // One plan for the one query text, shared by all three solvers.
  EXPECT_EQ(evaluator.num_cached_plans(), 1u);
  EXPECT_EQ(evaluator.stats().plans_built, 1u);
  EXPECT_GT(evaluator.stats().plan_cache_hits, 0u);
}

}  // namespace
}  // namespace hierarq
