// Tests for the elimination procedure (paper Proposition 5.1).

#include <gtest/gtest.h>

#include "hierarq/query/elimination.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Replays a plan's bookkeeping and checks internal consistency: every
/// step consumes live atoms and produces the recorded schema; the run ends
/// on one nullary atom.
void ValidatePlan(const EliminationPlan& plan, const ConjunctiveQuery& q) {
  std::vector<bool> live(plan.num_atoms(), false);
  for (size_t i = 0; i < plan.num_base_atoms(); ++i) {
    live[i] = true;
    ASSERT_EQ(plan.vars_of(i), q.atoms()[i].vars());
  }
  for (const EliminationStep& step : plan.steps()) {
    if (step.rule == EliminationRule::kProjectVariable) {
      ASSERT_TRUE(live[step.source_atom]);
      ASSERT_TRUE(plan.vars_of(step.source_atom).Contains(step.variable));
      VarSet expected = plan.vars_of(step.source_atom);
      expected.Erase(step.variable);
      ASSERT_EQ(plan.vars_of(step.result_atom), expected);
      live[step.source_atom] = false;
    } else {
      ASSERT_TRUE(live[step.left_atom]);
      ASSERT_TRUE(live[step.right_atom]);
      ASSERT_EQ(plan.vars_of(step.left_atom), plan.vars_of(step.right_atom));
      ASSERT_EQ(plan.vars_of(step.result_atom), plan.vars_of(step.left_atom));
      live[step.left_atom] = false;
      live[step.right_atom] = false;
    }
    live[step.result_atom] = true;
  }
  size_t live_count = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    if (live[i]) {
      ++live_count;
      EXPECT_EQ(i, plan.final_atom());
    }
  }
  EXPECT_EQ(live_count, 1u);
  EXPECT_TRUE(plan.vars_of(plan.final_atom()).empty());
}

TEST(Elimination, SingleNullaryAtomNeedsNoSteps) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R()");
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->steps().empty());
  EXPECT_EQ(plan->final_atom(), 0u);
}

TEST(Elimination, SingleUnaryAtom) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps().size(), 1u);
  EXPECT_EQ(plan->steps()[0].rule, EliminationRule::kProjectVariable);
  ValidatePlan(*plan, q);
}

TEST(Elimination, TwoNullaryAtomsMergeOnce) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(), S()");
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->steps().size(), 1u);
  EXPECT_EQ(plan->steps()[0].rule, EliminationRule::kMergeAtoms);
  ValidatePlan(*plan, q);
}

TEST(Elimination, DuplicateSchemasMerge) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(X,Y), S(Y,X), T(X)");
  ASSERT_TRUE(IsHierarchical(q));
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  ValidatePlan(*plan, q);
}

TEST(Elimination, StuckReportsViolation) {
  auto plan = EliminationPlan::Build(MakeQnh());
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotHierarchical);
  // The message should carry a concrete witness.
  EXPECT_NE(plan.status().message().find("violate"), std::string::npos);
}

TEST(Elimination, StepCountIsLinearInQuerySize) {
  // Each Rule 1 removes one variable occurrence set; each Rule 2 removes
  // one atom: steps = #vars + #atoms - 1 for connected... in general
  // exactly (#variable-eliminations) + (#atoms - 1).
  for (size_t depth = 1; depth <= 6; ++depth) {
    const ConjunctiveQuery q = MakeNestedChain(depth);
    auto plan = EliminationPlan::Build(q);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->steps().size(), q.AllVars().size() + q.num_atoms() - 1);
    ValidatePlan(*plan, q);
  }
}

TEST(Elimination, PlanToStringMentionsRules) {
  const ConjunctiveQuery q = MakePaperQuery();
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  const std::string trace = plan->ToString(q.variables());
  EXPECT_NE(trace.find("Rule 1"), std::string::npos);
  EXPECT_NE(trace.find("Rule 2"), std::string::npos);
  EXPECT_NE(trace.find("Final atom"), std::string::npos);
}

TEST(Elimination, DerivedNamesCarryPrimes) {
  const ConjunctiveQuery q = ParseQueryOrDie("R(A)");
  auto plan = EliminationPlan::Build(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->name_of(plan->final_atom()), "R'");
}

class EliminationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EliminationPropertyTest, PlanExistsIffHierarchical) {
  // Proposition 5.1 both directions, on random queries of both kinds.
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const ConjunctiveQuery q =
        MakeRandomQuery(rng, 1 + static_cast<size_t>(rng.UniformInt(0, 4)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 4)),
                        1 + static_cast<size_t>(rng.UniformInt(0, 2)));
    const bool hierarchical = IsHierarchical(q);
    auto plan = EliminationPlan::Build(q);
    ASSERT_EQ(plan.ok(), hierarchical) << q.ToString();
    if (plan.ok()) {
      ValidatePlan(*plan, q);
    } else {
      EXPECT_EQ(plan.status().code(), StatusCode::kNotHierarchical);
    }
  }
}

TEST_P(EliminationPropertyTest, RandomHierarchicalAlwaysPlans) {
  Rng rng(GetParam() * 7919 + 13);
  for (int round = 0; round < 40; ++round) {
    RandomHierarchicalOptions opts;
    opts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    opts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 2));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, opts);
    auto plan = EliminationPlan::Build(q);
    ASSERT_TRUE(plan.ok()) << q.ToString();
    ValidatePlan(*plan, q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hierarq
