// Unit tests for the Status/Result error model.

#include <gtest/gtest.h>

#include "hierarq/util/result.h"
#include "hierarq/util/status.h"

namespace hierarq {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, NamedConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::NotHierarchical("x").code(),
            StatusCode::kNotHierarchical);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(Status, MessagePreserved) {
  Status s = Status::ParseError("line 3: bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "line 3: bad token");
  EXPECT_EQ(s.ToString(), "parse-error: line 3: bad token");
}

TEST(Status, Is) {
  EXPECT_TRUE(Status::NotFound("f").Is(StatusCode::kNotFound));
  EXPECT_FALSE(Status::NotFound("f").Is(StatusCode::kParseError));
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::ParseError("a"));
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotHierarchical),
               "not-hierarchical");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    HIERARQ_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);

  auto succeeds = []() -> Status {
    HIERARQ_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) {
      return Status::OutOfRange("nope");
    }
    return 10;
  };
  auto outer = [&inner](bool fail) -> Result<int> {
    HIERARQ_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 11);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace hierarq
