// Tests for the persistence layer (src/hierarq/persist/): codec and CRC
// primitives, atomic publish, WAL framing with torn-tail truncation,
// snapshot/recover round-trips (including dictionary remapping into a
// pre-populated dictionary), corrupt-input hardening (truncated
// manifests, CRC-mismatched chunks, forged versions, bit-flips — clean
// Status, never UB), the Persistor boot/append/snapshot lifecycle, view
// recovery through Release/Reattach, a live persisted server whose acks
// survive its own teardown, and the kill-and-recover differential: >100
// deterministic fault schedules, each crashing the writer at one chosen
// I/O operation and requiring recovery (through a fresh RealFileIo, like
// a restarted process) to land bit-identically on a never-crashed
// reference at the last durable generation.

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hierarq/algebra/semirings.h"
#include "hierarq/data/loader.h"
#include "hierarq/incremental/delta_text.h"
#include "hierarq/incremental/incremental_evaluator.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/client.h"
#include "hierarq/net/server.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/persist/chunk_store.h"
#include "hierarq/persist/codec.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/persist/persistor.h"
#include "hierarq/persist/snapshot.h"
#include "hierarq/persist/wal.h"
#include "hierarq/query/parser.h"

namespace hierarq::persist {
namespace {

// ------------------------------------------------------------- fixtures --

// A unique, empty directory per call. /dev/shm when present (tmpfs makes
// the thousands of fsyncs of the differential harness cheap), else the
// gtest temp dir.
std::string FreshDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  RealFileIo io;
  const std::string base =
      io.Exists("/dev/shm") ? std::string("/dev/shm/") : ::testing::TempDir();
  const std::string dir = base + "hierarq_persist_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter.fetch_add(1));
  EXPECT_TRUE(io.MakeDir(dir).ok());
  auto entries = io.ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)io.Remove(dir + "/" + name);
    }
  }
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  RealFileIo io;
  auto entries = io.ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)io.Remove(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

// Canonical rendering of (facts, weights, generation) for bit-identical
// comparison across independently recovered databases. Symbolic values
// render through the caller's dictionary, so a recovered database whose
// dictionary assigned different ids still compares equal iff the
// *logical* state is equal. Relations that hold no tuples are skipped: a
// recovered database never materializes them (a chunk with zero rows
// inserts nothing), and an empty relation has no observable facts.
std::string RenderState(const VersionedDatabase& db, const Dictionary& dict) {
  std::string out = "generation=" + std::to_string(db.generation()) + "\n";
  for (const auto& [name, relation] : db.facts().relations()) {
    for (const Tuple& tuple : relation.tuples()) {
      out += name + "(";
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += dict.Render(tuple[i]);
      }
      char weight[64];
      std::snprintf(weight, sizeof(weight), ")@%.17g\n",
                    db.WeightOf(Fact{name, tuple}));
      out += weight;
    }
  }
  return out;
}

Status FlipOneByte(const std::string& path, size_t offset) {
  RealFileIo io;
  HIERARQ_ASSIGN_OR_RETURN(std::string bytes, io.ReadFile(path));
  if (offset >= bytes.size()) {
    return Status::InvalidArgument("offset past end");
  }
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t file,
                           io.OpenForWrite(path, /*truncate=*/true));
  HIERARQ_RETURN_NOT_OK(io.Write(file, bytes));
  return io.Close(file);
}

// --------------------------------------------------------------- codec --

TEST(CodecTest, Crc32MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chaining across buffers equals the one-shot CRC.
  EXPECT_EQ(Crc32("456789", Crc32("123")), Crc32("123456789"));
}

TEST(CodecTest, PrimitivesRoundTrip) {
  std::string bytes;
  PutU32(&bytes, 0xDEADBEEFu);
  PutU64(&bytes, 0x0123456789ABCDEFull);
  PutI64(&bytes, -42);
  PutF64(&bytes, 0.3);
  PutStr(&bytes, "hello");
  ByteReader reader(bytes);
  EXPECT_EQ(reader.U32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.I64().ValueOrDie(), -42);
  EXPECT_EQ(reader.F64().ValueOrDie(), 0.3);
  EXPECT_EQ(reader.Str().ValueOrDie(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, ReaderRejectsOverReadsCleanly) {
  std::string bytes;
  PutU32(&bytes, 7);
  ByteReader reader(bytes);
  EXPECT_FALSE(reader.U64().ok());  // 4 bytes left, 8 wanted.
  // A length-prefixed string whose length exceeds the buffer must fail,
  // not allocate or read out of range.
  std::string huge;
  PutU32(&huge, 0xFFFFFFFFu);
  huge += "abc";
  ByteReader huge_reader(huge);
  EXPECT_FALSE(huge_reader.Str().ok());
}

// ------------------------------------------------------- atomic publish --

TEST(AtomicWriteFileTest, PublishesAndReplacesAtomically) {
  const std::string dir = FreshDir("atomic");
  const std::string path = dir + "/file";
  RealFileIo io;
  ASSERT_TRUE(AtomicWriteFile(io, path, "first").ok());
  EXPECT_EQ(io.ReadFile(path).ValueOrDie(), "first");
  ASSERT_TRUE(AtomicWriteFile(io, path, "second").ok());
  EXPECT_EQ(io.ReadFile(path).ValueOrDie(), "second");
  EXPECT_FALSE(io.Exists(path + ".tmp"));
  RemoveDirRecursive(dir);
}

TEST(AtomicWriteFileTest, CrashMidWriteLeavesDestinationUntouched) {
  const std::string dir = FreshDir("atomic_crash");
  const std::string path = dir + "/file";
  RealFileIo real;
  ASSERT_TRUE(AtomicWriteFile(real, path, "old").ok());
  // Op 1 is the temp-file Write: it tears, the rename never runs.
  FaultInjectingIo io(&real, {.seed = 7, .crash_at_op = 1});
  EXPECT_FALSE(AtomicWriteFile(io, path, "newer and longer").ok());
  EXPECT_EQ(real.ReadFile(path).ValueOrDie(), "old");
  RemoveDirRecursive(dir);
}

// ----------------------------------------------------------------- WAL --

TEST(WalTest, RoundTripsAndTruncatesTornTail) {
  const std::string dir = FreshDir("wal");
  const std::string path = dir + "/wal-0.log";
  RealFileIo io;
  {
    auto writer = WalWriter::Open(&io, path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, "+R(1,2)").ok());
    ASSERT_TRUE(writer->Append(2, "-R(1,2); +S(3)@0.5").ok());
    ASSERT_TRUE(writer->Append(3, "").ok());  // Empty batches are legal.
    ASSERT_TRUE(writer->Close().ok());
  }
  WalReadStats stats;
  auto records = ReadWal(io, path, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].generation, 1u);
  EXPECT_EQ((*records)[1].line, "-R(1,2); +S(3)@0.5");
  EXPECT_EQ((*records)[2].line, "");
  EXPECT_FALSE(stats.torn_tail);

  // A torn tail — half a record appended raw — reads as exactly the
  // records before it, with the tear accounted.
  const std::string full = EncodeWalRecord(4, "+T(9)");
  const uint64_t file = io.OpenForWrite(path, /*truncate=*/false).ValueOrDie();
  ASSERT_TRUE(io.Write(file, std::string_view(full).substr(0, full.size() / 2))
                  .ok());
  ASSERT_TRUE(io.Close(file).ok());
  records = ReadWal(io, path, &stats);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.truncated_bytes, 0u);
  RemoveDirRecursive(dir);
}

TEST(WalTest, CorruptRecordStopsReplayThere) {
  const std::string dir = FreshDir("wal_flip");
  const std::string path = dir + "/wal-0.log";
  RealFileIo io;
  auto writer = WalWriter::Open(&io, path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, "+R(1,2)").ok());
  ASSERT_TRUE(writer->Append(2, "+R(3,4)").ok());
  ASSERT_TRUE(writer->Close().ok());
  // Flip a bit in the SECOND record's payload region.
  const size_t first = EncodeWalRecord(1, "+R(1,2)").size();
  ASSERT_TRUE(FlipOneByte(path, first + 17).ok());
  WalReadStats stats;
  auto records = ReadWal(io, path, &stats);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].line, "+R(1,2)");
  EXPECT_TRUE(stats.torn_tail);
  RemoveDirRecursive(dir);
}

TEST(WalTest, InjectedFsyncFailureSurfacesAsAppendError) {
  const std::string dir = FreshDir("wal_fsync");
  RealFileIo real;
  // Append is Write (op 1) then Sync (op 2): fail the sync.
  FaultInjectingIo io(&real, {.seed = 3, .fail_sync_at_op = 2});
  auto writer = WalWriter::Open(&io, dir + "/wal-0.log");
  ASSERT_TRUE(writer.ok());
  const Status appended = writer->Append(1, "+R(1)");
  EXPECT_FALSE(appended.ok());
  // Transient, not a crash: the next append goes through.
  EXPECT_TRUE(writer->Append(1, "+R(1)").ok());
  RemoveDirRecursive(dir);
}

// ------------------------------------------------------ delta rendering --

TEST(DeltaRenderTest, RenderedLinesReparseExactly) {
  Dictionary dict;
  VersionedDatabase db;
  const std::string line =
      "+R(alice,2)@0.25; -R(alice,2); +S(7); !S(7)@1; +T(bob)@3.0000000001";
  auto batch = ParseDeltaLine(line, &dict, db);
  ASSERT_TRUE(batch.ok()) << batch.status();
  const std::string rendered = RenderDeltaLine(*batch, dict);
  auto reparsed = ParseDeltaLine(rendered, &dict, db);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << " for " << rendered;
  EXPECT_EQ(RenderDeltaLine(*reparsed, dict), rendered);
  ASSERT_EQ(reparsed->size(), batch->size());
  for (size_t i = 0; i < batch->ops.size(); ++i) {
    EXPECT_EQ(RenderDeltaOp(reparsed->ops[i], dict),
              RenderDeltaOp(batch->ops[i], dict));
  }
  // Default-weight inserts render without the redundant @1.
  EXPECT_EQ(RenderDeltaOp(batch->ops[2], dict), "+S(7)");
}

// ----------------------------------------------------- chunks + manifest --

TEST(ChunkStoreTest, RelationChunkRoundTripsSymbolsIntoAForeignDictionary) {
  Dictionary writer_dict;
  Database base;
  base.AddFactOrDie("R", MakeTuple({writer_dict.Intern("alice"), 2}));
  base.AddFactOrDie("R", MakeTuple({writer_dict.Intern("bob"), 3}));
  VersionedDatabase db(std::move(base));
  DeltaBatch weights;
  weights.SetAnnotation("R", MakeTuple({writer_dict.Intern("alice"), 2}),
                        0.125);
  db.Apply(weights);

  const Relation& relation = db.facts().relations().at("R");
  const std::string chunk = EncodeRelationChunk(relation, db);
  const std::string dict_chunk = EncodeDictionaryChunk(writer_dict);

  // The reading dictionary already holds other symbols, so raw id reuse
  // would silently alias — the remap table must prevent exactly that.
  Dictionary reader_dict;
  reader_dict.Intern("zulu");
  reader_dict.Intern("alice");
  auto remap = DecodeDictionaryChunk(dict_chunk, &reader_dict);
  ASSERT_TRUE(remap.ok()) << remap.status();

  ChunkInfo info;
  info.file = "chunk-0-0.hq";
  info.relation = "R";
  info.arity = 2;
  info.rows = 2;
  info.bytes = chunk.size();
  info.crc = Crc32(chunk);
  Database decoded;
  std::unordered_map<Fact, double, FactHash> decoded_weights;
  ASSERT_TRUE(
      DecodeRelationChunk(chunk, info, *remap, &decoded, &decoded_weights)
          .ok());
  const Value alice = *reader_dict.Find("alice");
  const Value bob = *reader_dict.Find("bob");
  EXPECT_TRUE(decoded.ContainsFact("R", MakeTuple({alice, 2})));
  EXPECT_TRUE(decoded.ContainsFact("R", MakeTuple({bob, 3})));
  const Fact weighted{"R", MakeTuple({alice, 2})};
  EXPECT_DOUBLE_EQ(decoded_weights[weighted], 0.125);

  // A flipped bit anywhere fails the CRC gate before any parsing.
  std::string corrupt = chunk;
  corrupt[corrupt.size() / 2] ^= 0x10;
  Database scratch;
  std::unordered_map<Fact, double, FactHash> scratch_weights;
  EXPECT_FALSE(
      DecodeRelationChunk(corrupt, info, *remap, &scratch, &scratch_weights)
          .ok());
}

TEST(ChunkStoreTest, ManifestRejectsForgedVersionAndTruncation) {
  Manifest manifest;
  manifest.generation = 5;
  manifest.wal_file = "wal-5.log";
  manifest.chunks.push_back(
      ChunkInfo{"chunk-5-0.hq", "R", 2, 10, 1234, 0xABCD});
  const std::string bytes = EncodeManifest(manifest);
  auto decoded = DecodeManifest(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->generation, 5u);
  ASSERT_EQ(decoded->chunks.size(), 1u);
  EXPECT_EQ(decoded->chunks[0].relation, "R");

  // A future format version with a perfectly valid CRC must be rejected
  // cleanly — misparsing it as version 1 would be silent corruption.
  Manifest forged = manifest;
  forged.version = 99;
  EXPECT_FALSE(DecodeManifest(EncodeManifest(forged)).ok());

  // Truncation at every prefix length: clean Status, never UB (the
  // ASan/UBSan legs run this).
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeManifest(std::string_view(bytes).substr(0, len)).ok());
  }
}

// ---------------------------------------------------- snapshot + recover --

// The shared example: two relations, symbolic constants, non-default
// weights — every representational feature the chunk format carries.
VersionedDatabase MakeExampleDb(Dictionary* dict) {
  Database base;
  base.AddFactOrDie("R", MakeTuple({dict->Intern("alice"), 2}));
  base.AddFactOrDie("R", MakeTuple({1, 3}));
  base.AddFactOrDie("S", MakeTuple({dict->Intern("bob")}));
  VersionedDatabase db(std::move(base));
  DeltaBatch weights;
  weights.SetAnnotation("S", MakeTuple({dict->Intern("bob")}), 0.75);
  db.Apply(weights);
  return db;
}

TEST(SnapshotTest, RoundTripsIntoAPrePopulatedDictionary) {
  const std::string dir = FreshDir("snap_roundtrip");
  RealFileIo io;
  Dictionary dict;
  VersionedDatabase db = MakeExampleDb(&dict);
  auto stats = WriteSnapshot(io, dir, db, dict);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_EQ(stats->relations, 2u);
  EXPECT_EQ(stats->facts, 3u);

  Dictionary recovered_dict;
  recovered_dict.Intern("prior");  // Shifts every recovered symbol id.
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &recovered_dict, &detail);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(detail.snapshot_generation, 1u);
  EXPECT_EQ(detail.recovered_generation, 1u);
  EXPECT_EQ(detail.wal_records, 0u);
  EXPECT_FALSE(detail.used_fallback_manifest);
  EXPECT_EQ(RenderState(*recovered, recovered_dict), RenderState(db, dict));
  RemoveDirRecursive(dir);
}

TEST(SnapshotTest, ReplaysWalTailPastTheSnapshot) {
  const std::string dir = FreshDir("snap_tail");
  RealFileIo io;
  Dictionary dict;
  VersionedDatabase db = MakeExampleDb(&dict);
  ASSERT_TRUE(WriteSnapshot(io, dir, db, dict).ok());

  // Two acked batches after the snapshot, WAL-appended exactly as the
  // server does it: render, append, apply.
  auto writer = WalWriter::Open(&io, dir + "/" + WalFileName(1));
  ASSERT_TRUE(writer.ok());
  for (const std::string line : {"+R(4,5); -S(bob)", "!R(alice,2)@0.5"}) {
    auto batch = ParseDeltaLine(line, &dict, db);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_TRUE(
        writer->Append(db.generation() + 1, RenderDeltaLine(*batch, dict))
            .ok());
    db.Apply(*batch);
  }
  ASSERT_TRUE(writer->Close().ok());

  Dictionary recovered_dict;
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &recovered_dict, &detail);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(detail.snapshot_generation, 1u);
  EXPECT_EQ(detail.recovered_generation, 3u);
  EXPECT_EQ(detail.wal_records, 2u);
  EXPECT_EQ(RenderState(*recovered, recovered_dict), RenderState(db, dict));
  RemoveDirRecursive(dir);
}

TEST(SnapshotTest, EmptyOrMissingDirectoryIsNotFound) {
  RealFileIo io;
  Dictionary dict;
  const std::string dir = FreshDir("snap_empty");
  EXPECT_TRUE(Recover(io, dir, &dict).status().Is(StatusCode::kNotFound));
  EXPECT_TRUE(Recover(io, dir + "/never_made", &dict)
                  .status()
                  .Is(StatusCode::kNotFound));
  RemoveDirRecursive(dir);
}

// Builds the two-snapshot directory every fallback test corrupts:
// snapshot at generation 1, one acked batch (wal-1), snapshot at
// generation 2, one more acked batch (wal-2). Returns the final state.
std::string BuildTwoSnapshotDir(const std::string& dir, Dictionary* dict) {
  RealFileIo io;
  VersionedDatabase db = MakeExampleDb(dict);
  EXPECT_TRUE(WriteSnapshot(io, dir, db, *dict).ok());
  {
    auto writer = WalWriter::Open(&io, dir + "/" + WalFileName(1));
    EXPECT_TRUE(writer.ok());
    auto batch = ParseDeltaLine("+R(4,5)", dict, db);
    EXPECT_TRUE(batch.ok());
    EXPECT_TRUE(writer->Append(2, RenderDeltaLine(*batch, *dict)).ok());
    db.Apply(*batch);
    EXPECT_TRUE(writer->Close().ok());
  }
  EXPECT_TRUE(WriteSnapshot(io, dir, db, *dict).ok());
  {
    auto writer = WalWriter::Open(&io, dir + "/" + WalFileName(2));
    EXPECT_TRUE(writer.ok());
    auto batch = ParseDeltaLine("+S(carol)@0.5", dict, db);
    EXPECT_TRUE(batch.ok());
    EXPECT_TRUE(writer->Append(3, RenderDeltaLine(*batch, *dict)).ok());
    db.Apply(*batch);
    EXPECT_TRUE(writer->Close().ok());
  }
  return RenderState(db, *dict);
}

TEST(SnapshotTest, TruncatedManifestFallsBackAndReplaysTheWalChain) {
  const std::string dir = FreshDir("snap_fallback");
  Dictionary dict;
  const std::string reference = BuildTwoSnapshotDir(dir, &dict);
  RealFileIo io;
  // Damage the NEWEST manifest: recovery must fall back to MANIFEST.1
  // (generation 1) and still reach generation 3 by replaying wal-1 and
  // then HOPPING to wal-2 — no acked batch may be lost to a bad commit
  // record.
  const std::string manifest_bytes =
      io.ReadFile(dir + "/" + kManifestName).ValueOrDie();
  const uint64_t file =
      io.OpenForWrite(dir + "/" + kManifestName, /*truncate=*/true)
          .ValueOrDie();
  ASSERT_TRUE(io.Write(file, std::string_view(manifest_bytes)
                                 .substr(0, manifest_bytes.size() / 2))
                  .ok());
  ASSERT_TRUE(io.Close(file).ok());

  Dictionary recovered_dict;
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &recovered_dict, &detail);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(detail.used_fallback_manifest);
  EXPECT_EQ(detail.snapshot_generation, 1u);
  EXPECT_EQ(detail.recovered_generation, 3u);
  EXPECT_EQ(RenderState(*recovered, recovered_dict), reference);
  RemoveDirRecursive(dir);
}

TEST(SnapshotTest, CorruptChunkCrcFallsBackWithoutLosingAckedBatches) {
  const std::string dir = FreshDir("snap_chunk_flip");
  Dictionary dict;
  const std::string reference = BuildTwoSnapshotDir(dir, &dict);
  // Flip one bit in a generation-2 chunk: MANIFEST (generation 2)
  // becomes unloadable mid-validation, MANIFEST.1 wins, the chain
  // replay still reaches generation 3.
  ASSERT_TRUE(FlipOneByte(dir + "/" + ChunkFileName(2, 0), 9).ok());
  RealFileIo io;
  Dictionary recovered_dict;
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &recovered_dict, &detail);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(detail.used_fallback_manifest);
  EXPECT_EQ(detail.recovered_generation, 3u);
  EXPECT_EQ(RenderState(*recovered, recovered_dict), reference);
  RemoveDirRecursive(dir);
}

TEST(SnapshotTest, MissingChunkWithNoFallbackIsACleanError) {
  const std::string dir = FreshDir("snap_missing_chunk");
  RealFileIo io;
  Dictionary dict;
  VersionedDatabase db = MakeExampleDb(&dict);
  ASSERT_TRUE(WriteSnapshot(io, dir, db, dict).ok());
  ASSERT_TRUE(io.Remove(dir + "/" + ChunkFileName(1, 0)).ok());
  Dictionary recovered_dict;
  const Status status = Recover(io, dir, &recovered_dict).status();
  EXPECT_TRUE(status.Is(StatusCode::kInvalidArgument)) << status;
  RemoveDirRecursive(dir);
}

TEST(SnapshotTest, ForgedFutureVersionManifestIsACleanError) {
  const std::string dir = FreshDir("snap_forged");
  RealFileIo io;
  Manifest forged;
  forged.version = 99;
  forged.generation = 1;
  forged.wal_file = "wal-1.log";
  ASSERT_TRUE(
      AtomicWriteFile(io, dir + "/" + kManifestName, EncodeManifest(forged))
          .ok());
  Dictionary dict;
  const Status status = Recover(io, dir, &dict).status();
  EXPECT_TRUE(status.Is(StatusCode::kInvalidArgument)) << status;
  RemoveDirRecursive(dir);
}

// ----------------------------------------------------------- persistor --

TEST(PersistorTest, BootSeedsThenRecoversAndHealsTheDirectory) {
  const std::string dir = FreshDir("persistor");
  Dictionary dict;
  {
    auto persistor = Persistor::Open(dir, {});
    ASSERT_TRUE(persistor.ok());
    auto booted = (*persistor)->Boot(MakeExampleDb(&dict), &dict);
    ASSERT_TRUE(booted.ok()) << booted.status();
    EXPECT_FALSE((*persistor)->recovery().has_value());  // Seed path.
    VersionedDatabase db = std::move(*booted);
    for (const std::string line : {"+R(4,5)", "+S(dave)@0.25", "-R(1,3)"}) {
      auto batch = ParseDeltaLine(line, &dict, db);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE((*persistor)
                      ->Append(db.generation() + 1,
                               RenderDeltaLine(*batch, dict))
                      .ok());
      db.Apply(*batch);
    }
    EXPECT_EQ((*persistor)->appends_since_snapshot(), 3u);
  }
  // A "restarted process": recover through a fresh persistor and an
  // empty initial database — the directory wins.
  Dictionary dict2;
  auto persistor = Persistor::Open(dir, {});
  ASSERT_TRUE(persistor.ok());
  auto booted = (*persistor)->Boot(VersionedDatabase(), &dict2);
  ASSERT_TRUE(booted.ok()) << booted.status();
  ASSERT_TRUE((*persistor)->recovery().has_value());
  EXPECT_EQ((*persistor)->recovery()->recovered_generation, 4u);
  EXPECT_EQ(booted->generation(), 4u);
  EXPECT_TRUE(booted->Contains(Fact{"R", MakeTuple({4, 5})}));
  EXPECT_FALSE(booted->Contains(Fact{"R", MakeTuple({1, 3})}));
  EXPECT_DOUBLE_EQ(
      booted->WeightOf(Fact{"S", MakeTuple({*dict2.Find("dave")})}), 0.25);
  // Boot healed: the directory now holds a fresh snapshot at the
  // recovered generation with an empty WAL, so a THIRD boot replays
  // nothing.
  RealFileIo io;
  Dictionary dict3;
  RecoverResult detail;
  ASSERT_TRUE(RecoverDatabase(io, dir, &dict3, &detail).ok());
  EXPECT_EQ(detail.snapshot_generation, 4u);
  EXPECT_EQ(detail.wal_records, 0u);
  RemoveDirRecursive(dir);
}

TEST(PersistorTest, ShouldSnapshotFiresOnTheConfiguredCadence) {
  const std::string dir = FreshDir("persistor_cadence");
  Dictionary dict;
  auto persistor = Persistor::Open(dir, {.snapshot_every = 2});
  ASSERT_TRUE(persistor.ok());
  auto booted = (*persistor)->Boot(VersionedDatabase(), &dict);
  ASSERT_TRUE(booted.ok());
  VersionedDatabase db = std::move(*booted);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE((*persistor)->ShouldSnapshot());
    DeltaBatch batch;
    batch.Insert("R", MakeTuple({i}));
    ASSERT_TRUE(
        (*persistor)->Append(db.generation() + 1, "+R(" + std::to_string(i) + ")")
            .ok());
    db.Apply(batch);
  }
  EXPECT_TRUE((*persistor)->ShouldSnapshot());
  ASSERT_TRUE((*persistor)->WriteSnapshot(db, dict).ok());
  EXPECT_FALSE((*persistor)->ShouldSnapshot());
  EXPECT_EQ((*persistor)->appends_since_snapshot(), 0u);
  RemoveDirRecursive(dir);
}

// -------------------------------------------------------- view recovery --

TEST(ViewRecoveryTest, RecoveredTailStreamsThroughAReattachedView) {
  const std::string dir = FreshDir("view_recovery");
  RealFileIo io;
  Dictionary dict;
  Database base;
  base.AddFactOrDie("R", MakeTuple({1, 2}));
  base.AddFactOrDie("S", MakeTuple({1, 5}));
  VersionedDatabase db(std::move(base));
  ASSERT_TRUE(WriteSnapshot(io, dir, db, dict).ok());
  auto writer = WalWriter::Open(&io, dir + "/" + WalFileName(0));
  ASSERT_TRUE(writer.ok());
  for (const std::string line : {"+R(2,3); +S(2,0)", "-S(1,5)", "+S(1,9)"}) {
    auto batch = ParseDeltaLine(line, &dict, db);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_TRUE(
        writer->Append(db.generation() + 1, RenderDeltaLine(*batch, dict))
            .ok());
    db.Apply(*batch);
  }
  ASSERT_TRUE(writer->Close().ok());

  // Recover WITHOUT applying the tail, attach a view against the
  // snapshot state, then stream the tail through it — the documented
  // view-recovery path (snapshot.h): nothing is rematerialized per
  // batch, and the final result matches a fresh evaluation.
  Dictionary recovered_dict;
  auto recovered = Recover(io, dir, &recovered_dict);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->snapshot_generation, 0u);
  ASSERT_EQ(recovered->tail.size(), 3u);

  auto query = ParseQuery("Q() :- R(A,B), S(A,C)");
  ASSERT_TRUE(query.ok());
  const auto annotator = [](const Fact&, double) -> uint64_t { return 1; };
  IncrementalEvaluator<CountMonoid> evaluator(CountMonoid{}, &recovered->db,
                                              annotator);
  auto handle = evaluator.Attach(*query);
  ASSERT_TRUE(handle.ok()) << handle.status();
  for (const DeltaBatch& batch : recovered->tail) {
    evaluator.ApplyDelta(batch);
  }
  EXPECT_EQ(recovered->db.generation(), 3u);

  IncrementalEvaluator<CountMonoid> fresh(CountMonoid{}, &db, annotator);
  auto fresh_handle = fresh.Attach(*query);
  ASSERT_TRUE(fresh_handle.ok());
  EXPECT_EQ(evaluator.ResultOf(*handle), fresh.ResultOf(*fresh_handle));
  RemoveDirRecursive(dir);
}

// --------------------------------------------- kill-and-recover harness --

// The differential workload: a seeded example database plus a fixed
// batch sequence exercising inserts, deletes, re-weights, and new
// symbols. snapshot_every=3 places snapshot commits (manifest rotation,
// stale-file sweeps) inside the crash window, not just WAL appends.
const std::vector<std::string>& WorkloadLines() {
  static const std::vector<std::string>* lines = new std::vector<std::string>{
      "+R(4,5); +S(carol)@0.5",
      "-R(1,3)",
      "!S(bob)@0.875",
      "+T(1,alice)",
      "+R(6,7)@2; -S(carol)",
      "+T(2,dave)@0.125",
      "-R(4,5); +R(4,8)",
      "!T(1,alice)@4",
      "+S(erin)",
      "-T(2,dave); +R(9,9)",
  };
  return *lines;
}

// Reference states indexed by GENERATION: the example db's seed Apply
// leaves it at generation 1 and each workload batch bumps it by one, so
// states[g] is the canonical rendering at generation g (computed
// entirely in memory — never crashed, never persisted). Generation 0 is
// unreachable on disk: the seed snapshot commits at generation 1.
std::vector<std::string> ReferenceStates(Dictionary* dict) {
  VersionedDatabase db = MakeExampleDb(dict);
  std::vector<std::string> states;
  states.push_back("<generation 0 is never durable>");
  states.push_back(RenderState(db, *dict));
  for (const std::string& line : WorkloadLines()) {
    auto batch = ParseDeltaLine(line, dict, db);
    EXPECT_TRUE(batch.ok()) << batch.status() << " for " << line;
    db.Apply(*batch);
    states.push_back(RenderState(db, *dict));
  }
  return states;
}

// Runs the persisted workload against `io`, stopping at the first I/O
// failure (the simulated crash). Returns the number of ACKED batches —
// batches whose WAL append returned OK before Apply.
uint64_t RunPersistedWorkload(FileIo* io, const std::string& dir) {
  Dictionary dict;
  Persistor::Options options;
  options.io = io;
  options.snapshot_every = 3;
  auto persistor = Persistor::Open(dir, options);
  if (!persistor.ok()) {
    return 0;
  }
  auto booted = (*persistor)->Boot(MakeExampleDb(&dict), &dict);
  if (!booted.ok()) {
    return 0;
  }
  VersionedDatabase db = std::move(*booted);
  uint64_t acked = 0;
  for (const std::string& line : WorkloadLines()) {
    auto batch = ParseDeltaLine(line, &dict, db);
    EXPECT_TRUE(batch.ok()) << batch.status();
    if (!(*persistor)
             ->Append(db.generation() + 1, RenderDeltaLine(*batch, dict))
             .ok()) {
      break;
    }
    db.Apply(*batch);
    ++acked;
    if ((*persistor)->ShouldSnapshot() &&
        !(*persistor)->WriteSnapshot(db, dict).ok()) {
      break;
    }
  }
  return acked;
}

// Recovery half of one schedule: a fresh RealFileIo (the restarted
// process), a fresh dictionary, and two obligations — (a) when faults
// were crashes or failed fsyncs, no acked batch may be lost; (b) always,
// whatever generation recovery CLAIMS must match the reference state at
// that generation bit-for-bit (no silent corruption, ever).
void CheckRecovery(const std::string& dir, uint64_t acked,
                   bool durability_required,
                   const std::vector<std::string>& reference,
                   const std::string& label) {
  RealFileIo io;
  Dictionary dict;
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &dict, &detail);
  if (!recovered.ok()) {
    // Legal only when nothing was ever durable (a crash before the
    // seed snapshot committed) — or when a silent bit-flip destroyed a
    // directory with no surviving fallback, which is corruption beyond
    // the crash-durability contract but must still be a CLEAN error.
    if (durability_required) {
      EXPECT_EQ(acked, 0u)
          << label << ": lost " << acked
          << " acked batches: " << recovered.status();
      EXPECT_TRUE(recovered.status().Is(StatusCode::kNotFound))
          << label << ": " << recovered.status();
    }
    return;
  }
  const uint64_t generation = detail.recovered_generation;
  ASSERT_LT(generation, reference.size()) << label;
  if (durability_required) {
    // The seed commits at generation 1 and batch k acks at 1 + k.
    EXPECT_GE(generation, acked + 1) << label << ": acked batches lost";
  }
  EXPECT_EQ(recovered->generation(), generation) << label;
  EXPECT_EQ(RenderState(*recovered, dict), reference[generation]) << label;
}

TEST(KillAndRecoverTest, EveryCrashScheduleRecoversTheLastDurableGeneration) {
  Dictionary ref_dict;
  const std::vector<std::string> reference = ReferenceStates(&ref_dict);

  // Fault-free run sizes the schedule space: every mutating I/O op the
  // workload performs is one crash point.
  RealFileIo real;
  uint64_t total_ops = 0;
  {
    const std::string dir = FreshDir("kill_sizing");
    FaultInjectingIo io(&real, {});
    EXPECT_EQ(RunPersistedWorkload(&io, dir), WorkloadLines().size());
    total_ops = io.mutating_ops();
    RemoveDirRecursive(dir);
  }
  ASSERT_GT(total_ops, 80u) << "workload too small to be a crash harness";

  size_t schedules = 0;
  for (uint64_t op = 1; op <= total_ops; ++op) {
    const std::string dir = FreshDir("kill_crash");
    FaultInjectingIo io(&real, {.seed = op, .crash_at_op = op});
    const uint64_t acked = RunPersistedWorkload(&io, dir);
    EXPECT_TRUE(io.crashed());
    CheckRecovery(dir, acked, /*durability_required=*/true, reference,
                  "crash_at_op=" + std::to_string(op));
    RemoveDirRecursive(dir);
    ++schedules;
  }

  // Transient fsync failures: not a crash — the workload stops at the
  // first surfaced error (as the server stops acking), and nothing
  // acked before it may be lost.
  for (uint64_t op = 2; op <= total_ops; op += 7) {
    const std::string dir = FreshDir("kill_fsync");
    FaultInjectingIo io(&real, {.seed = op, .fail_sync_at_op = op});
    const uint64_t acked = RunPersistedWorkload(&io, dir);
    CheckRecovery(dir, acked, /*durability_required=*/true, reference,
                  "fail_sync_at_op=" + std::to_string(op));
    RemoveDirRecursive(dir);
    ++schedules;
  }

  // Silent single-bit corruption: the workload itself never notices
  // (every op "succeeds"), so durability at the acked generation cannot
  // be promised — but recovery must NEVER present corrupt data as a
  // valid generation: it either lands on a state bit-identical to the
  // reference at the generation it claims, or fails cleanly.
  for (uint64_t op = 1; op <= total_ops; op += 5) {
    const std::string dir = FreshDir("kill_flip");
    FaultInjectingIo io(&real, {.seed = op, .flip_bit_at_op = op});
    RunPersistedWorkload(&io, dir);
    CheckRecovery(dir, 0, /*durability_required=*/false, reference,
                  "flip_bit_at_op=" + std::to_string(op));
    RemoveDirRecursive(dir);
    ++schedules;
  }

  EXPECT_GE(schedules, 100u) << "the differential must cover >=100 schedules";
}

// ------------------------------------------------------ persisted server --

// End-to-end ack-implies-durable, with enough concurrency for the TSAN
// leg to check the WAL-append + Apply critical section: writer threads
// stream delta batches while a reader hammers queries, the server is
// torn down, and a fresh recovery must land exactly on the last acked
// generation. This is also the regression test for the single-writer
// assertion: two racing writers would die on the VersionedDatabase
// CHECK rather than corrupt state.
TEST(PersistedServerTest, AckedBatchesSurviveServerTeardown) {
  const std::string dir = FreshDir("server");
  Dictionary dict;
  auto loaded = LoadDatabase("R(1,2)\nR(1,3)\nS(1,5)\n", &dict);
  ASSERT_TRUE(loaded.ok());

  auto persistor = Persistor::Open(dir, {.snapshot_every = 4});
  ASSERT_TRUE(persistor.ok());
  auto booted = (*persistor)
                    ->Boot(VersionedDatabase(std::move(*loaded)), &dict);
  ASSERT_TRUE(booted.ok()) << booted.status();

  constexpr int kWriters = 2;
  constexpr int kBatchesPerWriter = 8;
  uint64_t final_generation = 0;
  {
    net::HierarqServer::Options options;
    options.persist = persistor->get();
    net::HierarqServer server(options, std::move(*booted), Database{},
                              &dict);
    ASSERT_TRUE(server.Start().ok());

    std::atomic<int> acked{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        net::HierarqClient client;
        ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
        for (int i = 0; i < kBatchesPerWriter; ++i) {
          // Distinct relations per writer: no arity races, and each
          // line is independent of interleaving order.
          const std::string line = "+W" + std::to_string(w) + "(" +
                                   std::to_string(i) + ")@0.5";
          auto ack = client.ApplyDelta(line);
          ASSERT_TRUE(ack.ok()) << ack.status();
          acked.fetch_add(1);
        }
      });
    }
    std::thread reader([&] {
      net::HierarqClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      for (int i = 0; i < 10; ++i) {
        auto result = client.Query(net::SolverKind::kCount,
                                   "Q() :- R(A,B), S(A,C)");
        ASSERT_TRUE(result.ok()) << result.status();
      }
    });
    for (auto& thread : writers) {
      thread.join();
    }
    reader.join();
    EXPECT_EQ(acked.load(), kWriters * kBatchesPerWriter);
    final_generation = server.database().generation();
    server.Stop();
  }
  persistor->reset();  // Close the WAL before "restarting".

  RealFileIo io;
  Dictionary recovered_dict;
  RecoverResult detail;
  auto recovered = RecoverDatabase(io, dir, &recovered_dict, &detail);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(detail.recovered_generation, final_generation);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kBatchesPerWriter; ++i) {
      const Fact fact{"W" + std::to_string(w), MakeTuple({i})};
      EXPECT_TRUE(recovered->Contains(fact)) << fact.ToString();
      EXPECT_DOUBLE_EQ(recovered->WeightOf(fact), 0.5);
    }
  }
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace hierarq::persist
