// Property tests for the 2-monoid laws (paper Definition 5.6) across all
// instantiations, plus the paper's key structural observation: the three
// problem monoids (and resilience) are NOT distributive, while the classic
// semiring adapters are.

#include <gtest/gtest.h>

#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/provenance.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

// Generic law checks. Equality via a comparator because double needs a
// tolerance.
template <typename M, typename Gen, typename Eq>
void CheckTwoMonoidLaws(const M& monoid, Gen gen, Eq eq, int rounds) {
  static_assert(TwoMonoid<M>);
  for (int i = 0; i < rounds; ++i) {
    const auto a = gen();
    const auto b = gen();
    const auto c = gen();
    // (K, ⊕) commutative monoid with identity 0.
    EXPECT_TRUE(eq(monoid.Plus(a, b), monoid.Plus(b, a)));
    EXPECT_TRUE(eq(monoid.Plus(monoid.Plus(a, b), c),
                   monoid.Plus(a, monoid.Plus(b, c))));
    EXPECT_TRUE(eq(monoid.Plus(a, monoid.Zero()), a));
    EXPECT_TRUE(eq(monoid.Plus(monoid.Zero(), a), a));
    // (K, ⊗) commutative monoid with identity 1.
    EXPECT_TRUE(eq(monoid.Times(a, b), monoid.Times(b, a)));
    EXPECT_TRUE(eq(monoid.Times(monoid.Times(a, b), c),
                   monoid.Times(a, monoid.Times(b, c))));
    EXPECT_TRUE(eq(monoid.Times(a, monoid.One()), a));
    EXPECT_TRUE(eq(monoid.Times(monoid.One(), a), a));
  }
  // 0 ⊗ 0 = 0.
  EXPECT_TRUE(eq(monoid.Times(monoid.Zero(), monoid.Zero()), monoid.Zero()));
}

TEST(ProbMonoid, Laws) {
  Rng rng(1);
  const ProbMonoid m;
  CheckTwoMonoidLaws(
      m, [&rng] { return rng.UniformDouble(); },
      [](double x, double y) { return std::abs(x - y) < 1e-12; }, 300);
}

TEST(ProbMonoid, MatchesIndependentEventSemantics) {
  const ProbMonoid m;
  EXPECT_DOUBLE_EQ(m.Times(0.5, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(m.Plus(0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(m.Plus(1.0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(m.Times(1.0, 0.3), 0.3);
}

TEST(ProbMonoid, NotDistributive) {
  // The paper (§2): p1 ⊗ (p2 ⊕ p3) ≠ (p1⊗p2) ⊕ (p1⊗p3) in general.
  const ProbMonoid m;
  const double p1 = 0.5;
  const double p2 = 0.5;
  const double p3 = 0.5;
  const double lhs = m.Times(p1, m.Plus(p2, p3));
  const double rhs = m.Plus(m.Times(p1, p2), m.Times(p1, p3));
  EXPECT_GT(std::abs(lhs - rhs), 0.05);  // 0.375 vs 0.4375.
}

BagMaxVec RandomBagMaxVec(Rng& rng, const BagMaxMonoid& m) {
  // Random *monotone* vector — the domain of Definition 5.9.
  BagMaxVec v(m.vector_length());
  uint64_t acc = static_cast<uint64_t>(rng.UniformInt(0, 3));
  for (auto& entry : v) {
    acc += static_cast<uint64_t>(rng.UniformInt(0, 4));
    entry = acc;
  }
  return v;
}

TEST(BagMaxMonoid, Laws) {
  Rng rng(2);
  for (size_t budget : {0, 1, 3, 7}) {
    const BagMaxMonoid m(budget);
    CheckTwoMonoidLaws(
        m, [&rng, &m] { return RandomBagMaxVec(rng, m); },
        [](const BagMaxVec& x, const BagMaxVec& y) { return x == y; }, 150);
  }
}

TEST(BagMaxMonoid, OperatorsMatchDefinition) {
  // Eq. (10)/(11) hand-computed on budget 2.
  const BagMaxMonoid m(2);
  const BagMaxVec x{1, 3, 4};
  const BagMaxVec y{2, 2, 5};
  // Plus: z[0]=1+2=3; z[1]=max(1+2,3+2)=5; z[2]=max(1+5,3+2,4+2)=6.
  EXPECT_EQ(m.Plus(x, y), (BagMaxVec{3, 5, 6}));
  // Times: z[0]=2; z[1]=max(1*2,3*2)=6; z[2]=max(1*5,3*2,4*2)=8.
  EXPECT_EQ(m.Times(x, y), (BagMaxVec{2, 6, 8}));
}

TEST(BagMaxMonoid, PreservesMonotonicity) {
  Rng rng(3);
  const BagMaxMonoid m(5);
  for (int i = 0; i < 200; ++i) {
    const BagMaxVec x = RandomBagMaxVec(rng, m);
    const BagMaxVec y = RandomBagMaxVec(rng, m);
    EXPECT_TRUE(BagMaxMonoid::IsMonotone(m.Plus(x, y)));
    EXPECT_TRUE(BagMaxMonoid::IsMonotone(m.Times(x, y)));
  }
}

TEST(BagMaxMonoid, StarAndCostVectors) {
  const BagMaxMonoid m(3);
  EXPECT_EQ(m.Star(), (BagMaxVec{0, 1, 1, 1}));
  EXPECT_EQ(m.FromCost(0), m.One());
  EXPECT_EQ(m.FromCost(1), m.Star());
  EXPECT_EQ(m.FromCost(3), (BagMaxVec{0, 0, 0, 1}));
  EXPECT_EQ(m.FromCost(9), m.Zero());  // Unaffordable.
}

TEST(BagMaxMonoid, NotDistributive) {
  // ★ ⊗ (1 ⊕ 1) ≠ (★⊗1) ⊕ (★⊗1) at budget 2:
  // lhs = ★ ⊗ (2,2,2) = (0,2,2); rhs = ★ ⊕ ★ = (0,1,2).
  const BagMaxMonoid m(2);
  const BagMaxVec star = m.Star();
  const BagMaxVec one = m.One();
  const auto lhs = m.Times(star, m.Plus(one, one));
  const auto rhs = m.Plus(m.Times(star, one), m.Times(star, one));
  EXPECT_EQ(lhs, (BagMaxVec{0, 2, 2}));
  EXPECT_EQ(rhs, (BagMaxVec{0, 1, 2}));
  EXPECT_NE(lhs, rhs);
}

TEST(BagMaxMonoid, SaturationDetection) {
  const BagMaxMonoid m(1);
  const uint64_t huge = ~uint64_t{0} - 1;
  const BagMaxVec x{huge, huge};
  EXPECT_FALSE(BagMaxMonoid::Saturated(x));
  EXPECT_TRUE(BagMaxMonoid::Saturated(m.Plus(x, x)));
  EXPECT_TRUE(BagMaxMonoid::Saturated(m.Times(x, x)));
  EXPECT_EQ(SatAddU64(huge, huge), ~uint64_t{0});
  EXPECT_EQ(SatMulU64(huge, 2), ~uint64_t{0});
  EXPECT_EQ(SatMulU64(2, 3), 6u);
}

template <typename Count>
SatCountVec<Count> RandomSatVec(Rng& rng, const SatCountMonoid<Count>& m) {
  SatCountVec<Count> v;
  v.on_false.resize(m.vector_length(), Count(0));
  v.on_true.resize(m.vector_length(), Count(0));
  for (size_t i = 0; i < m.vector_length(); ++i) {
    v.on_false[i] = Count(static_cast<uint64_t>(rng.UniformInt(0, 5)));
    v.on_true[i] = Count(static_cast<uint64_t>(rng.UniformInt(0, 5)));
  }
  return v;
}

TEST(SatCountMonoid, LawsUint64) {
  Rng rng(4);
  for (size_t n : {0, 1, 2, 5}) {
    const SatCountMonoid<uint64_t> m(n);
    CheckTwoMonoidLaws(
        m, [&rng, &m] { return RandomSatVec(rng, m); },
        [](const SatCountVec<uint64_t>& x, const SatCountVec<uint64_t>& y) {
          return x == y;
        },
        150);
  }
}

TEST(SatCountMonoid, LawsBigUint) {
  Rng rng(5);
  const SatCountMonoid<BigUint> m(3);
  CheckTwoMonoidLaws(
      m, [&rng, &m] { return RandomSatVec(rng, m); },
      [](const SatCountVec<BigUint>& x, const SatCountVec<BigUint>& y) {
        return x == y;
      },
      60);
}

TEST(SatCountMonoid, NoAnnihilation) {
  // The paper remarks a ⊗ 0 ≠ 0: conjunction with "absent" stays counted
  // on the false side.
  const SatCountMonoid<uint64_t> m(2);
  const auto star = m.Star();
  const auto product = m.Times(star, m.Zero());
  EXPECT_NE(product, m.Zero());
  // star ⊗ 0: the k=1 "true" mass moves to "false" (conjunction with an
  // absent fact is false but the subset still exists).
  EXPECT_EQ(product.on_false[1], 1u);
  EXPECT_EQ(product.on_true[1], 0u);
}

TEST(SatCountMonoid, IdentitiesMatchDefinition) {
  const SatCountMonoid<uint64_t> m(2);
  const auto zero = m.Zero();
  EXPECT_EQ(zero.on_false[0], 1u);
  EXPECT_EQ(zero.on_true[0], 0u);
  const auto one = m.One();
  EXPECT_EQ(one.on_true[0], 1u);
  EXPECT_EQ(one.on_false[0], 0u);
  const auto star = m.Star();
  EXPECT_EQ(star.on_false[0], 1u);
  EXPECT_EQ(star.on_true[1], 1u);
}

TEST(SatCountMonoid, StarPowersCountSubsets) {
  // ★ ⊕ ★ ⊕ ... (n stars, i.e. n independent endogenous facts under a
  // disjunction) has total mass C(n, k) at size k.
  const size_t n = 6;
  const SatCountMonoid<uint64_t> m(n);
  auto acc = m.Zero();
  for (size_t i = 0; i < n; ++i) {
    acc = m.Plus(acc, m.Star());
  }
  for (size_t k = 0; k <= n; ++k) {
    EXPECT_EQ(acc.on_true[k] + acc.on_false[k],
              BigUint::Binomial(n, k).Low64());
    // Disjunction is false only for the empty choice.
    EXPECT_EQ(acc.on_false[k], k == 0 ? 1u : 0u);
  }
}

TEST(SatCountMonoid, NotDistributive) {
  const SatCountMonoid<uint64_t> m(3);
  const auto s = m.Star();
  const auto lhs = m.Times(s, m.Plus(s, s));
  const auto rhs = m.Plus(m.Times(s, s), m.Times(s, s));
  EXPECT_NE(lhs, rhs);
}

TEST(ResilienceMonoid, Laws) {
  Rng rng(6);
  const ResilienceMonoid m;
  CheckTwoMonoidLaws(
      m,
      [&rng]() -> uint64_t {
        if (rng.Bernoulli(0.2)) {
          return ResilienceMonoid::kInfinity;
        }
        return static_cast<uint64_t>(rng.UniformInt(0, 20));
      },
      [](uint64_t x, uint64_t y) { return x == y; }, 300);
}

TEST(ResilienceMonoid, Semantics) {
  const ResilienceMonoid m;
  EXPECT_EQ(m.Plus(2, 3), 5u);                         // Falsify both.
  EXPECT_EQ(m.Times(2, 3), 2u);                        // Cheaper conjunct.
  EXPECT_EQ(m.Plus(2, ResilienceMonoid::kInfinity),
            ResilienceMonoid::kInfinity);
  EXPECT_EQ(m.Times(2, ResilienceMonoid::kInfinity), 2u);
}

TEST(ResilienceMonoid, NotDistributive) {
  const ResilienceMonoid m;
  // min(a, b+c) vs min(a,b) + min(a,c) with a=1,b=1,c=1: 1 vs 2.
  EXPECT_NE(m.Times(1, m.Plus(1, 1)), m.Plus(m.Times(1, 1), m.Times(1, 1)));
}

TEST(Semirings, BoolLawsAndDistributivity) {
  Rng rng(7);
  const BoolMonoid m;
  CheckTwoMonoidLaws(
      m, [&rng] { return rng.Bernoulli(0.5); },
      [](bool x, bool y) { return x == y; }, 100);
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      for (bool c : {false, true}) {
        EXPECT_EQ(m.Times(a, m.Plus(b, c)),
                  m.Plus(m.Times(a, b), m.Times(a, c)));
      }
    }
  }
}

TEST(Semirings, CountLawsAndDistributivity) {
  Rng rng(8);
  const CountMonoid m;
  auto gen = [&rng]() -> uint64_t {
    return static_cast<uint64_t>(rng.UniformInt(0, 1000));
  };
  CheckTwoMonoidLaws(
      m, gen, [](uint64_t x, uint64_t y) { return x == y; }, 300);
  for (int i = 0; i < 300; ++i) {
    const uint64_t a = gen();
    const uint64_t b = gen();
    const uint64_t c = gen();
    EXPECT_EQ(m.Times(a, m.Plus(b, c)),
              m.Plus(m.Times(a, b), m.Times(a, c)));
  }
}

TEST(Semirings, TropicalLawsAndDistributivity) {
  Rng rng(9);
  const TropicalMonoid m;
  auto gen = [&rng]() -> double {
    if (rng.Bernoulli(0.1)) {
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(rng.UniformInt(0, 50));
  };
  CheckTwoMonoidLaws(
      m, gen, [](double x, double y) { return x == y; }, 300);
  for (int i = 0; i < 300; ++i) {
    const double a = gen();
    const double b = gen();
    const double c = gen();
    EXPECT_EQ(m.Times(a, m.Plus(b, c)),
              m.Plus(m.Times(a, b), m.Times(a, c)));
  }
}

TEST(CountingMonoid, CountsOperations) {
  const CountingMonoid<CountMonoid> m{CountMonoid{}};
  EXPECT_EQ(m.total_count(), 0u);
  (void)m.Plus(1, 2);
  (void)m.Plus(1, 2);
  (void)m.Times(1, 2);
  EXPECT_EQ(m.plus_count(), 2u);
  EXPECT_EQ(m.times_count(), 1u);
  EXPECT_EQ(m.total_count(), 3u);
  m.ResetCounts();
  EXPECT_EQ(m.total_count(), 0u);
}

}  // namespace
}  // namespace hierarq
