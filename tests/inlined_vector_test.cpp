// Unit tests for the small-buffer-optimized vector.

#include <gtest/gtest.h>

#include "hierarq/util/inlined_vector.h"

namespace hierarq {
namespace {

using Vec = InlinedVector<int64_t, 4>;

TEST(InlinedVector, StartsEmptyAndInline) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlinedVector, PushWithinInlineCapacity) {
  Vec v;
  for (int64_t i = 0; i < 4; ++i) {
    v.push_back(i * 10);
  }
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i * 10);
  }
}

TEST(InlinedVector, SpillsToHeap) {
  Vec v;
  for (int64_t i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(InlinedVector, InitializerList) {
  Vec v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
}

TEST(InlinedVector, CopySmallAndLarge) {
  Vec small{1, 2};
  Vec small_copy = small;
  EXPECT_EQ(small_copy, small);

  Vec large;
  for (int64_t i = 0; i < 50; ++i) {
    large.push_back(i);
  }
  Vec large_copy = large;
  EXPECT_EQ(large_copy, large);
  large_copy.push_back(99);
  EXPECT_NE(large_copy, large);  // Deep copy.
}

TEST(InlinedVector, CopyAssignOverwrites) {
  Vec a{1, 2, 3};
  Vec b{9};
  b = a;
  EXPECT_EQ(b, a);
  a = a;  // Self-assignment is a no-op.
  EXPECT_EQ(a, (Vec{1, 2, 3}));
}

TEST(InlinedVector, MoveStealsHeapBuffer) {
  Vec large;
  for (int64_t i = 0; i < 50; ++i) {
    large.push_back(i);
  }
  const int64_t* buffer = large.data();
  Vec moved = std::move(large);
  EXPECT_EQ(moved.data(), buffer);  // Pointer stolen, no copy.
  EXPECT_EQ(moved.size(), 50u);
  EXPECT_TRUE(large.empty());  // NOLINT(bugprone-use-after-move): spec'd.
}

TEST(InlinedVector, MoveInlineCopies) {
  Vec small{5, 6};
  Vec moved = std::move(small);
  EXPECT_EQ(moved, (Vec{5, 6}));
  EXPECT_TRUE(moved.is_inline());
}

TEST(InlinedVector, PopBack) {
  Vec v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v, (Vec{1, 2}));
}

TEST(InlinedVector, Resize) {
  Vec v;
  v.resize(3, 7);
  EXPECT_EQ(v, (Vec{7, 7, 7}));
  v.resize(1);
  EXPECT_EQ(v, (Vec{7}));
  v.resize(6, 1);
  EXPECT_EQ(v, (Vec{7, 1, 1, 1, 1, 1}));
}

TEST(InlinedVector, EraseAt) {
  Vec v{10, 20, 30, 40};
  v.erase_at(1);
  EXPECT_EQ(v, (Vec{10, 30, 40}));
  v.erase_at(2);
  EXPECT_EQ(v, (Vec{10, 30}));
  v.erase_at(0);
  EXPECT_EQ(v, (Vec{30}));
}

TEST(InlinedVector, LexicographicOrder) {
  EXPECT_LT((Vec{1, 2}), (Vec{1, 3}));
  EXPECT_LT((Vec{1, 2}), (Vec{1, 2, 0}));
  EXPECT_LT((Vec{}), (Vec{0}));
  EXPECT_FALSE((Vec{2}) < (Vec{1, 9}));
}

TEST(InlinedVector, HashConsistentWithEquality) {
  InlinedVectorHash<int64_t, 4> hasher;
  Vec a{1, 2, 3};
  Vec b{1, 2, 3};
  Vec c{3, 2, 1};
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));  // Not guaranteed, but Mix64 is good.
}

TEST(InlinedVector, IteratorRange) {
  Vec v{4, 5, 6};
  int64_t sum = 0;
  for (int64_t x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 15);
}

TEST(InlinedVector, RangeConstructor) {
  std::vector<int64_t> src{9, 8, 7, 6, 5, 4};
  Vec v(src.begin(), src.end());
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 9);
  EXPECT_EQ(v[5], 4);
}

TEST(InlinedVector, ReserveKeepsContents) {
  Vec v{1, 2, 3};
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_EQ(v, (Vec{1, 2, 3}));
}

}  // namespace
}  // namespace hierarq
