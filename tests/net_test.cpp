// Tests for the net layer (src/hierarq/net/): wire codec round-trips in
// both formats, reject-don't-trust decoding of truncated/oversized/
// garbage bytes, the async submission layer's admission control and
// deadline handling, the shared delta-text grammar's line atomicity
// (the partial-apply regression), and a live loopback server answering
// concurrent clients bit-identically to the single-threaded Evaluator.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/loader.h"
#include "hierarq/incremental/delta_text.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/async_service.h"
#include "hierarq/net/client.h"
#include "hierarq/net/server.h"
#include "hierarq/net/wire.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/query/parser.h"
#include "hierarq/util/random.h"
#include "hierarq/workload/data_gen.h"

namespace hierarq::net {
namespace {

ConjunctiveQuery MustParse(const std::string& text) {
  auto query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  return std::move(query).ValueOrDie();
}

// ------------------------------------------------------------ wire codec --

class WireFormatTest : public ::testing::TestWithParam<WireFormat> {};

INSTANTIATE_TEST_SUITE_P(BothFormats, WireFormatTest,
                         ::testing::Values(WireFormat::kNative,
                                           WireFormat::kJson));

TEST_P(WireFormatTest, QueryRequestRoundTrips) {
  QueryRequest request;
  request.solver = SolverKind::kShapley;
  request.deadline_ms = 1234;
  request.query = "Q() :- R(A,B), S(A,\"C\")";  // Quote survives JSON.
  auto decoded =
      DecodeQueryRequest(EncodeQueryRequest(request, GetParam()), GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->solver, SolverKind::kShapley);
  EXPECT_EQ(decoded->deadline_ms, 1234u);
  EXPECT_EQ(decoded->query, request.query);
}

TEST_P(WireFormatTest, CountResultRoundTrips) {
  QueryResult result;
  result.solver = SolverKind::kCount;
  result.count = ~uint64_t{0} - 7;  // Exercises the full u64 range.
  auto decoded = DecodeQueryResult(
      EncodeQueryResult(result, GetParam(), /*with_stats=*/false,
                        /*with_trace=*/false),
      GetParam(), /*with_stats=*/false, /*with_trace=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->solver, SolverKind::kCount);
  EXPECT_EQ(decoded->count, result.count);
}

TEST_P(WireFormatTest, DoubleResultRoundTripsBitExactly) {
  QueryResult result;
  result.solver = SolverKind::kPqe;
  result.number = 0.1 + 0.2;  // Not representable exactly: %.17g must hold.
  auto decoded = DecodeQueryResult(
      EncodeQueryResult(result, GetParam(), false, false), GetParam(), false,
      false);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->number, result.number);  // Bit-exact, not near.
}

TEST_P(WireFormatTest, ShapleyResultWithTraceRoundTrips) {
  QueryResult result;
  result.solver = SolverKind::kShapley;
  result.shapley = {{"R(1,2)", "1/3", 1.0 / 3.0},
                    {"S(7,\"x\")", "-2/5", -0.4}};
  result.trace_json = "{\"traceEvents\": []}";
  auto decoded = DecodeQueryResult(
      EncodeQueryResult(result, GetParam(), /*with_stats=*/false,
                        /*with_trace=*/true),
      GetParam(), /*with_stats=*/false, /*with_trace=*/true);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->shapley.size(), 2u);
  EXPECT_EQ(decoded->shapley[0].fact, "R(1,2)");
  EXPECT_EQ(decoded->shapley[0].fraction, "1/3");
  EXPECT_EQ(decoded->shapley[1].fact, "S(7,\"x\")");
  EXPECT_EQ(decoded->shapley[1].value, -0.4);
  EXPECT_EQ(decoded->trace_json, result.trace_json);
}

TEST_P(WireFormatTest, StatsSectionRoundTrips) {
  QueryResult result;
  result.solver = SolverKind::kCount;
  result.count = 7;
  result.stats.rule1_rows_scanned = ~uint64_t{0} - 3;  // Past 2^53.
  result.stats.rule1_rows_emitted = 11;
  result.stats.rule2_rows_scanned = 12;
  result.stats.rule2_rows_emitted = 13;
  result.stats.steps_total = 6;
  result.stats.steps_serial = 4;
  result.stats.steps_parallel = 2;
  result.stats.cancel_checkpoints = 9;
  result.stats.queue_wait_ns = 1234567;
  result.stats.exec_ns = 7654321;
  result.stats.plan_cache_hit = true;
  auto decoded = DecodeQueryResult(
      EncodeQueryResult(result, GetParam(), /*with_stats=*/true,
                        /*with_trace=*/false),
      GetParam(), /*with_stats=*/true, /*with_trace=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->count, 7u);
  EXPECT_EQ(decoded->stats.rule1_rows_scanned,
            result.stats.rule1_rows_scanned);
  EXPECT_EQ(decoded->stats.rule1_rows_emitted, 11u);
  EXPECT_EQ(decoded->stats.rule2_rows_scanned, 12u);
  EXPECT_EQ(decoded->stats.rule2_rows_emitted, 13u);
  EXPECT_EQ(decoded->stats.steps_total, 6u);
  EXPECT_EQ(decoded->stats.steps_serial, 4u);
  EXPECT_EQ(decoded->stats.steps_parallel, 2u);
  EXPECT_EQ(decoded->stats.cancel_checkpoints, 9u);
  EXPECT_EQ(decoded->stats.queue_wait_ns, 1234567u);
  EXPECT_EQ(decoded->stats.exec_ns, 7654321u);
  EXPECT_TRUE(decoded->stats.plan_cache_hit);
}

TEST_P(WireFormatTest, StatsAndTraceSectionsCompose) {
  QueryResult result;
  result.solver = SolverKind::kPqe;
  result.number = 0.25;
  result.stats.exec_ns = 42;
  result.trace_json = "{\"traceEvents\": []}";
  auto decoded = DecodeQueryResult(
      EncodeQueryResult(result, GetParam(), /*with_stats=*/true,
                        /*with_trace=*/true),
      GetParam(), /*with_stats=*/true, /*with_trace=*/true);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->number, 0.25);
  EXPECT_EQ(decoded->stats.exec_ns, 42u);
  EXPECT_EQ(decoded->trace_json, result.trace_json);
}

TEST_P(WireFormatTest, StatsFlagOffDecodesOldStyleFrames) {
  // Backward compat both ways: a frame encoded WITHOUT the stats section
  // (an old server answering a new client, which then sees kFlagStats
  // clear and decodes accordingly) must round-trip; and a stats-bearing
  // encoding must NOT be accepted by a decoder told no section is there
  // — reject-don't-trust, not garbage in the value fields.
  QueryResult result;
  result.solver = SolverKind::kCount;
  result.count = 99;
  result.stats.exec_ns = 12345;  // Present in the struct, not on the wire.
  const std::string old_style =
      EncodeQueryResult(result, GetParam(), /*with_stats=*/false,
                        /*with_trace=*/false);
  auto decoded = DecodeQueryResult(old_style, GetParam(), false, false);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->count, 99u);
  EXPECT_EQ(decoded->stats.exec_ns, 0u) << "stats absent, not garbage";
  EXPECT_FALSE(decoded->stats.plan_cache_hit);

  const std::string with_stats =
      EncodeQueryResult(result, GetParam(), /*with_stats=*/true,
                        /*with_trace=*/false);
  auto mismatched = DecodeQueryResult(with_stats, GetParam(), false, false);
  if (GetParam() == WireFormat::kNative) {
    // Native is positional: unexpected trailing stats bytes are a
    // protocol violation, rejected rather than misread as a trace.
    EXPECT_FALSE(mismatched.ok());
  } else {
    // JSON is keyed: an unread "stats" field is cleanly ignored, so a
    // stats-flag-unaware decoder still gets the value out.
    ASSERT_TRUE(mismatched.ok()) << mismatched.status();
    EXPECT_EQ(mismatched->count, 99u);
    EXPECT_EQ(mismatched->stats.exec_ns, 0u);
  }
}

TEST_P(WireFormatTest, TraceIdRidesTheRequestAndOldFramesStillDecode) {
  QueryRequest request;
  request.solver = SolverKind::kCount;
  request.deadline_ms = 5;
  request.query = "Q() :- R(A)";
  request.trace_id = "deadbeef01234567";
  auto decoded =
      DecodeQueryRequest(EncodeQueryRequest(request, GetParam()), GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->trace_id, "deadbeef01234567");

  // An id-less request encodes byte-identically to the pre-trace-id
  // layout (the trailing field is simply absent), so old servers decode
  // new clients' untraced requests unchanged — and new servers decode
  // old clients' requests to an empty id.
  request.trace_id.clear();
  auto old_style =
      DecodeQueryRequest(EncodeQueryRequest(request, GetParam()), GetParam());
  ASSERT_TRUE(old_style.ok()) << old_style.status();
  EXPECT_TRUE(old_style->trace_id.empty());
}

TEST_P(WireFormatTest, StatusPayloadRoundTripsAndRejectsTruncation) {
  StatusPayload status;
  status.uptime_ns = ~uint64_t{0} - 17;
  status.queue_depth = 3;
  status.oldest_job_age_ns = 5'000'000'000ull;
  status.active_connections = 8;
  status.requests_total = 1'000'000;
  status.errors_total = 2;
  status.recent_errors = {"bad \"query\"", "deadline exceeded"};
  const std::string encoded = EncodeStatusPayload(status, GetParam());
  auto decoded = DecodeStatusPayload(encoded, GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->uptime_ns, status.uptime_ns);
  EXPECT_EQ(decoded->queue_depth, 3u);
  EXPECT_EQ(decoded->oldest_job_age_ns, 5'000'000'000ull);
  EXPECT_EQ(decoded->active_connections, 8u);
  EXPECT_EQ(decoded->requests_total, 1'000'000u);
  EXPECT_EQ(decoded->errors_total, 2u);
  ASSERT_EQ(decoded->recent_errors.size(), 2u);
  EXPECT_EQ(decoded->recent_errors[0], "bad \"query\"");
  EXPECT_EQ(decoded->recent_errors[1], "deadline exceeded");

  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(DecodeStatusPayload(encoded.substr(0, cut), GetParam()).ok())
        << "prefix of length " << cut << " accepted";
  }
}

TEST_P(WireFormatTest, ErrorAndDeltaAckRoundTrip) {
  auto error = DecodeError(
      EncodeError(Status::DeadlineExceeded("out of \"time\""), GetParam()),
      GetParam());
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(error->message, "out of \"time\"");

  auto ack = DecodeDeltaAck(
      EncodeDeltaAck(DeltaAck{42, 100000}, GetParam()), GetParam());
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->generation, 42u);
  EXPECT_EQ(ack->num_facts, 100000u);
}

TEST_P(WireFormatTest, TruncatedAndTrailingPayloadsAreRejected) {
  QueryRequest request;
  request.query = "Q() :- R(A)";
  const std::string good = EncodeQueryRequest(request, GetParam());
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    auto decoded = DecodeQueryRequest(good.substr(0, cut), GetParam());
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << cut << " accepted";
  }
  auto trailing = DecodeQueryRequest(good + "x", GetParam());
  EXPECT_FALSE(trailing.ok());
}

TEST(Wire, GarbagePayloadIsRejectedNotTrusted) {
  for (const WireFormat format : {WireFormat::kNative, WireFormat::kJson}) {
    EXPECT_FALSE(DecodeQueryResult("\xff\xfe garbage \x01", format, false,
                                   false).ok());
    EXPECT_FALSE(DecodeDeltaAck("{not json", format).ok());
  }
  // JSON with the wrong shape (valid JSON, missing fields).
  EXPECT_FALSE(DecodeQueryRequest("[1,2,3]", WireFormat::kJson).ok());
}

TEST(Wire, FrameHeaderRoundTripsAndValidates) {
  FrameHeader header;
  header.payload_len = 123;
  header.type = FrameType::kDeltaBatch;
  header.format = WireFormat::kJson;
  header.flags = kFlagTrace;
  header.request_id = 0xdeadbeefcafef00dull;
  char bytes[kFrameHeaderSize];
  EncodeFrameHeader(header, bytes);
  auto decoded = DecodeFrameHeader(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->payload_len, 123u);
  EXPECT_EQ(decoded->type, FrameType::kDeltaBatch);
  EXPECT_EQ(decoded->format, WireFormat::kJson);
  EXPECT_EQ(decoded->flags, kFlagTrace);
  EXPECT_EQ(decoded->request_id, header.request_id);

  // An oversized length prefix must be rejected BEFORE anyone allocates.
  header.payload_len = kMaxPayloadBytes + 1;
  EncodeFrameHeader(header, bytes);
  EXPECT_FALSE(DecodeFrameHeader(bytes).ok());

  // Unknown type and unknown format tags are protocol violations.
  header.payload_len = 0;
  EncodeFrameHeader(header, bytes);
  bytes[4] = 99;
  EXPECT_FALSE(DecodeFrameHeader(bytes).ok());
  EncodeFrameHeader(header, bytes);
  bytes[5] = 7;
  EXPECT_FALSE(DecodeFrameHeader(bytes).ok());
}

// ------------------------------------------- delta-text line atomicity --

TEST(DeltaText, IntraLineArityConflictRejectsTheWholeLine) {
  Dictionary dict;
  VersionedDatabase db(Database{});
  // Regression: `New` is unknown to the schema, so the second op's arity
  // used to be validated against nothing — the batch passed per-op
  // checks, then VersionedDatabase::Apply CHECK-aborted on the mismatch
  // with the first op already committed. The line grammar now tracks
  // arities introduced by earlier ops in the SAME line and rejects at
  // parse time, before anything is applied.
  auto batch = ParseDeltaLine("+New(1); +New(1,2)", &dict, db);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("op 2"), std::string::npos)
      << batch.status();
  EXPECT_EQ(db.generation(), 0u) << "nothing may be applied";
  EXPECT_EQ(db.NumFacts(), 0u);

  // The consistent variant parses and applies atomically.
  auto good = ParseDeltaLine("+New(1,2); +New(3,4); -New(1,2)", &dict, db);
  ASSERT_TRUE(good.ok()) << good.status();
  db.Apply(*good);
  EXPECT_EQ(db.generation(), 1u);
  EXPECT_EQ(db.NumFacts(), 1u);
}

TEST(DeltaText, SchemaArityStillWinsOverOpArity) {
  Dictionary dict;
  auto base = LoadDatabase("R(1,2)\n", &dict);
  ASSERT_TRUE(base.ok());
  VersionedDatabase db(std::move(base).ValueOrDie());
  auto bad = ParseDeltaLine("+R(9)", &dict, db);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(db.generation(), 0u);
}

// --------------------------------------------------- async admission --

TEST(AsyncEvalService, QueueFullRejectsInsteadOfQueueing) {
  AsyncEvalService::Options options;
  options.submit_threads = 1;
  options.max_queue_depth = 1;
  AsyncEvalService async(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  int ran = 0;
  const auto blocking_job = [&](EvalService&, const CancelToken&) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    ++ran;
  };
  // First job occupies the lone submitter, second fills the queue, third
  // must be shed at the door.
  ASSERT_TRUE(async.Submit(blocking_job).ok());
  // Wait for the submitter to pick up job 1 so job 2 queues.
  while (async.queue_depth() != 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(async.Submit(blocking_job).ok());
  const Status rejected = async.Submit(blocking_job);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  async.Shutdown();
  EXPECT_EQ(ran, 2) << "accepted jobs must run; rejected ones must not";
}

TEST(AsyncEvalService, ShutdownCancelsQueuedJobsButStillRunsThem) {
  AsyncEvalService::Options options;
  options.submit_threads = 1;
  options.max_queue_depth = 8;
  AsyncEvalService async(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> cancelled{0};
  std::atomic<int> completions{0};
  ASSERT_TRUE(async.Submit([&](EvalService&, const CancelToken&) {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return release; });
                completions.fetch_add(1);
              }).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(async.Submit([&](EvalService&, const CancelToken& cancel) {
                  if (cancel.Expired()) {
                    cancelled.fetch_add(1);
                  }
                  completions.fetch_add(1);
                }).ok());
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  });
  async.Shutdown();  // Cancels the 3 queued tokens, then drains.
  releaser.join();
  EXPECT_EQ(completions.load(), 4) << "every accepted job's completion fires";
  EXPECT_EQ(cancelled.load(), 3) << "queued jobs see their token cancelled";
}

TEST(EvalService, CancelledTokenReportsDeadlineExceededPerQuery) {
  Dictionary dict;
  auto db = LoadDatabase("R(1,2)\nS(1,3)\n", &dict);
  ASSERT_TRUE(db.ok());
  const ConjunctiveQuery query = MustParse("Q() :- R(A,B), S(A,C)");
  EvalService service;
  CancelToken cancel;
  cancel.Cancel();  // Expired before the replay starts.
  auto values = service.EvaluateMany<CountMonoid>(
      CountMonoid{}, {&query}, *db, [](const Fact&) -> uint64_t { return 1; },
      &cancel);
  ASSERT_EQ(values.size(), 1u);
  ASSERT_FALSE(values[0].ok());
  EXPECT_EQ(values[0].status().code(), StatusCode::kDeadlineExceeded);
}

// ----------------------------------------------------------- live server --

struct TestServer {
  Dictionary dict;
  std::unique_ptr<HierarqServer> server;

  /// Builds a server over in-memory database text. `options` may preset
  /// queue/deadline knobs; port stays ephemeral.
  explicit TestServer(const std::string& db_text,
                      const std::string& endo_text = "",
                      HierarqServer::Options options = {}) {
    auto db = LoadDatabase(db_text, &dict);
    EXPECT_TRUE(db.ok()) << db.status();
    Database endo;
    if (!endo_text.empty()) {
      auto loaded = LoadDatabase(endo_text, &dict);
      EXPECT_TRUE(loaded.ok()) << loaded.status();
      endo = std::move(loaded).ValueOrDie();
    }
    server = std::make_unique<HierarqServer>(
        options, VersionedDatabase(std::move(db).ValueOrDie()),
        std::move(endo), &dict);
    const Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
    EXPECT_NE(server->port(), 0);
  }

  HierarqClient Connect(WireFormat format = WireFormat::kNative) {
    HierarqClient client(format);
    const Status connected = client.Connect("127.0.0.1", server->port());
    EXPECT_TRUE(connected.ok()) << connected;
    return client;
  }
};

constexpr const char* kSmallDb = "R(1,2)\nR(1,3)\nR(2,4)\nS(1,5)\nS(2,6)\n";
constexpr const char* kSmallQuery = "Q() :- R(A,B), S(A,C)";

TEST(Server, AnswersCountPingAndMetrics) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();
  EXPECT_TRUE(client.Ping().ok());

  auto result = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  // Reference: the single-threaded evaluator over the same facts.
  Dictionary dict;
  auto db = LoadDatabase(kSmallDb, &dict);
  ASSERT_TRUE(db.ok());
  Evaluator evaluator;
  auto reference = evaluator.Evaluate<CountMonoid>(
      MustParse(kSmallQuery), CountMonoid{}, *db,
      [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(result->count, *reference);

  auto metrics = client.Metrics(WireFormat::kNative);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("async.jobs_accepted"), std::string::npos);
  auto metrics_json = client.Metrics(WireFormat::kJson);
  ASSERT_TRUE(metrics_json.ok());
  EXPECT_EQ(metrics_json->front(), '{');
}

TEST(Server, BothWireFormatsReturnIdenticalResults) {
  TestServer fixture(kSmallDb);
  HierarqClient native = fixture.Connect(WireFormat::kNative);
  HierarqClient json = fixture.Connect(WireFormat::kJson);
  for (const SolverKind solver : {SolverKind::kCount, SolverKind::kPqe,
                                  SolverKind::kExpect}) {
    auto a = native.Query(solver, kSmallQuery);
    auto b = json.Query(solver, kSmallQuery);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->count, b->count);
    EXPECT_EQ(a->number, b->number);  // Bit-exact across framings.
  }
}

TEST(Server, ShapleyAndResilienceMatchDirectSolvers) {
  const std::string exo = "R(1,2)\nR(1,3)\n";
  const std::string endo = "S(1,5)\nS(1,6)\n";
  TestServer fixture(exo, endo);
  HierarqClient client = fixture.Connect();

  auto resilience = client.Query(SolverKind::kResilience, kSmallQuery);
  ASSERT_TRUE(resilience.ok()) << resilience.status();
  EXPECT_EQ(resilience->count, 2u);  // Both endogenous S-facts must go.

  auto shapley = client.Query(SolverKind::kShapley, kSmallQuery);
  ASSERT_TRUE(shapley.ok()) << shapley.status();
  ASSERT_EQ(shapley->shapley.size(), 2u);
  EXPECT_EQ(shapley->shapley[0].fraction, "1/2");
  EXPECT_EQ(shapley->shapley[1].fraction, "1/2");
}

TEST(Server, ConcurrentClientsMatchSingleThreadedReference) {
  // The TSAN target: many clients hammering queries + pings while delta
  // batches rewrite the database through the same front door.
  TestServer fixture(kSmallDb);
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesEach = 25;

  // Reference once, single-threaded.
  Dictionary dict;
  auto db = LoadDatabase(kSmallDb, &dict);
  ASSERT_TRUE(db.ok());
  Evaluator evaluator;
  auto reference = evaluator.Evaluate<CountMonoid>(
      MustParse(kSmallQuery), CountMonoid{}, *db,
      [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(reference.ok());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&fixture, &mismatches, reference = *reference] {
      HierarqClient client = fixture.Connect();
      for (size_t i = 0; i < kQueriesEach; ++i) {
        auto result = client.Query(SolverKind::kCount, kSmallQuery);
        if (!result.ok() || result->count != reference) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // A concurrent writer applying no-net-change delta pairs: the count is
  // +T facts only (T does not appear in the query), so every query's
  // answer stays the reference value whatever the interleaving.
  threads.emplace_back([&fixture] {
    HierarqClient client = fixture.Connect();
    for (int i = 0; i < 20; ++i) {
      auto ack = client.ApplyDelta("+T(" + std::to_string(i) + ",1)");
      EXPECT_TRUE(ack.ok()) << ack.status();
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Server, DeltaBatchesApplyAtomicallyOverTheWire) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();

  auto before = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(before.ok());

  // The regression shape, through the socket: the whole line must be
  // rejected, the generation unchanged, and the server still healthy.
  auto bad = client.ApplyDelta("+New(1); +New(1,2)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fixture.server->database().generation(), 0u);

  auto after = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->count, before->count);

  auto good = client.ApplyDelta("+R(3,7); +S(3,9)");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->generation, 1u);
  auto grown = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->count, before->count + 1);
}

TEST(Server, DeadlineExceededLeavesDatabaseUntouched) {
  // Big enough that annotation alone outlasts a 1 ms budget (the token
  // is armed at ADMISSION), so the replay's first checkpoint cancels —
  // deterministic even on fast machines, more so under TSAN.
  const ConjunctiveQuery query = MustParse("Q() :- R(A,B), S(A,C), T(A,D)");
  Rng rng(7);
  DataGenOptions gen;
  gen.tuples_per_relation = 60000;
  gen.domain_size = 200000;
  const Database big = RandomDatabaseForQuery(query, rng, gen);

  Dictionary dict;
  HierarqServer::Options options;
  HierarqServer server(options, VersionedDatabase(big), Database{}, &dict);
  ASSERT_TRUE(server.Start().ok());
  HierarqClient client(WireFormat::kNative);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  const uint64_t generation_before = server.database().generation();
  auto cut = client.Query(SolverKind::kCount,
                          "Q() :- R(A,B), S(A,C), T(A,D)",
                          /*deadline_ms=*/1);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kDeadlineExceeded)
      << cut.status();
  // Clean cancellation: nothing was mutated and the server still answers.
  EXPECT_EQ(server.database().generation(), generation_before);
  auto retry = client.Query(SolverKind::kCount,
                            "Q() :- R(A,B), S(A,C), T(A,D)");
  EXPECT_TRUE(retry.ok()) << retry.status();
  server.Stop();
}

TEST(Server, QueueFullAnswersResourceExhausted) {
  HierarqServer::Options options;
  options.async.submit_threads = 1;
  options.async.max_queue_depth = 1;
  TestServer fixture(kSmallDb, "", options);

  // Raw pipelining: fire many query frames back-to-back on one socket
  // (the synchronous client can't overrun the queue), then drain. With
  // one submitter and depth 1, at least one of 16 rapid-fire requests
  // must be shed — and every request gets exactly one answer.
  HierarqClient probe = fixture.Connect();  // Ensures the server is up.
  ASSERT_TRUE(probe.Ping().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(fixture.server->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  constexpr uint64_t kRequests = 16;
  QueryRequest request;
  request.solver = SolverKind::kCount;
  request.query = kSmallQuery;
  const std::string payload =
      EncodeQueryRequest(request, WireFormat::kNative);
  for (uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(WriteFrame(fd, FrameType::kQueryRequest,
                           WireFormat::kNative, 0, id, payload)
                    .ok());
  }
  size_t ok_answers = 0;
  size_t shed = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    auto frame = ReadFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status();
    if (frame->header.type == FrameType::kResultFrame) {
      ++ok_answers;
    } else {
      ASSERT_EQ(frame->header.type, FrameType::kErrorFrame);
      auto error = DecodeError(frame->payload, frame->header.format);
      ASSERT_TRUE(error.ok());
      EXPECT_EQ(error->code, StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  ::close(fd);
  EXPECT_EQ(ok_answers + shed, kRequests);
  EXPECT_GE(shed, 1u) << "16 pipelined requests against queue depth 1";
  EXPECT_GE(ok_answers, 1u);
}

TEST(Server, MalformedHeaderGetsErrorFrameThenClose) {
  TestServer fixture(kSmallDb);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(fixture.server->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // 16 bytes of garbage: a wild length under an unknown type tag.
  char garbage[kFrameHeaderSize];
  std::memset(garbage, 0xab, sizeof(garbage));
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  auto frame = ReadFrame(fd);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->header.type, FrameType::kErrorFrame);
  // ...and the server closes: the next read is clean EOF.
  auto eof = ReadFrame(fd);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  ::close(fd);
}

TEST(Server, TraceCaptureAnnouncesPlanSteps) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();
  auto result = client.Query(SolverKind::kCount, kSmallQuery, 0,
                             /*capture_trace=*/true);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(result->trace_json.find("\"plan\""), std::string::npos);
  EXPECT_NE(result->trace_json.find("\"dropped\""), std::string::npos);

  // Without the flag, no trace rides along.
  auto untraced = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(untraced.ok());
  EXPECT_TRUE(untraced->trace_json.empty());
}

TEST(Server, StatsSectionReportsAccountingOverTheWire) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();

  auto first = client.Query(SolverKind::kCount, kSmallQuery, 0,
                            /*capture_trace=*/false, /*capture_stats=*/true);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(client.last_response_had_stats());
  EXPECT_GT(first->stats.steps_total, 0u);
  EXPECT_GT(first->stats.rule1_rows_scanned, 0u);
  EXPECT_GT(first->stats.exec_ns, 0u);
  EXPECT_GT(first->stats.cancel_checkpoints, 0u);
  EXPECT_FALSE(first->stats.plan_cache_hit) << "first sighting of the query";

  auto second = client.Query(SolverKind::kCount, kSmallQuery, 0, false,
                             /*capture_stats=*/true);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->stats.plan_cache_hit) << "same query, cached plan";
  EXPECT_EQ(second->count, first->count);

  // Without the flag the response carries no section and announces none.
  auto plain = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(client.last_response_had_stats());
  EXPECT_EQ(plain->stats.steps_total, 0u);
}

TEST(Server, StatsAndTraceComposeOnOneRequest) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();
  const std::string trace_id = HierarqClient::MintTraceId();
  EXPECT_EQ(trace_id.size(), 16u);
  auto result = client.Query(SolverKind::kCount, kSmallQuery, 0,
                             /*capture_trace=*/true, /*capture_stats=*/true,
                             trace_id);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(client.last_response_had_stats());
  EXPECT_GT(result->stats.steps_total, 0u);
  EXPECT_NE(result->trace_json.find("\"traceEvents\""), std::string::npos);
  // The minted id rode the request and came back in the server's
  // trace envelope — the cross-process correlation handle.
  EXPECT_NE(result->trace_json.find(trace_id), std::string::npos);
}

TEST(Server, StatusFrameReportsHealthAndRecentErrors) {
  TestServer fixture(kSmallDb);
  HierarqClient client = fixture.Connect();

  auto initial = client.ServerStatus();
  ASSERT_TRUE(initial.ok()) << initial.status();
  EXPECT_GE(initial->active_connections, 1u);
  EXPECT_EQ(initial->errors_total, 0u);
  EXPECT_TRUE(initial->recent_errors.empty());

  ASSERT_TRUE(client.Query(SolverKind::kCount, kSmallQuery).ok());
  auto bad = client.Query(SolverKind::kCount, "this is not datalog");
  ASSERT_FALSE(bad.ok());

  auto after = client.ServerStatus();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_GT(after->requests_total, initial->requests_total);
  EXPECT_EQ(after->errors_total, 1u);
  ASSERT_EQ(after->recent_errors.size(), 1u);
  EXPECT_NE(after->recent_errors[0].find("parse"), std::string::npos)
      << after->recent_errors[0];
  EXPECT_GT(after->uptime_ns, 0u);

  // The per-frame-type counters back the fleet view's traffic mix.
  auto metrics = client.Metrics(WireFormat::kNative);
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("server.frames.query"), std::string::npos);
  EXPECT_NE(metrics->find("server.frames.status"), std::string::npos);
  EXPECT_NE(metrics->find("server.error_frames 1"), std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("server.query_ns"), std::string::npos);
}

TEST(Server, SlowQueryLogCapturesStatsAndExplain) {
  HierarqServer::Options options;
  options.slow_query_ms = 0;  // Log EVERY query.
  std::ostringstream sink;
  obs::Logger::Options log_options;
  log_options.sink = &sink;
  obs::Logger logger(log_options);
  options.logger = &logger;
  TestServer fixture(kSmallDb, "", options);
  HierarqClient client = fixture.Connect();
  ASSERT_TRUE(client.Query(SolverKind::kCount, kSmallQuery).ok());

  const std::string log = sink.str();
  EXPECT_NE(log.find("event=slow_query"), std::string::npos) << log;
  EXPECT_NE(log.find("solver=count"), std::string::npos) << log;
  EXPECT_NE(log.find("rule1_rows_scanned="), std::string::npos)
      << "the QueryStats line rides the log event: " << log;
  EXPECT_NE(log.find("EXPLAIN ANALYZE"), std::string::npos) << log;
}

TEST(Server, BadQueryAndBadSolverInputAnswerCleanErrors) {
  TestServer fixture(kSmallDb);  // No endogenous database.
  HierarqClient client = fixture.Connect();
  auto bad_query = client.Query(SolverKind::kCount, "this is not datalog");
  ASSERT_FALSE(bad_query.ok());
  // The connection survives payload-level errors.
  EXPECT_TRUE(client.Ping().ok());
  auto non_hier = client.Query(
      SolverKind::kCount, "Q() :- R(A,B), S(B,C), T(A,C)");
  ASSERT_FALSE(non_hier.ok());
  EXPECT_EQ(non_hier.status().code(), StatusCode::kNotHierarchical);
  EXPECT_TRUE(client.Ping().ok());
}

// ------------------------------------------------- retry + connection cap --

// A scripted one-connection server: answers the first `rejections` query
// frames with kResourceExhausted error frames (echoing the request id),
// then — when `then_answer` — answers count=42; when `close_instead`,
// it reads one frame and slams the connection shut with no response at
// all. Deterministic behavior the retry loop can be pinned against,
// with no queue timing involved.
struct ScriptedServer {
  int listen_fd = -1;
  uint16_t port = 0;
  std::thread thread;

  ScriptedServer(int rejections, bool then_answer, bool close_instead = false) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd, 1), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    EXPECT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                            &len),
              0);
    port = ntohs(bound.sin_port);
    thread = std::thread([this, rejections, then_answer, close_instead] {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        return;
      }
      int remaining = rejections;
      while (true) {
        auto frame = ReadFrame(fd);
        if (!frame.ok()) {
          break;
        }
        if (close_instead) {
          break;  // Hang up mid-request: a transport-level failure.
        }
        if (remaining > 0) {
          --remaining;
          (void)WriteFrame(fd, FrameType::kErrorFrame, WireFormat::kNative,
                           0, frame->header.request_id,
                           EncodeError(Status::ResourceExhausted(
                                           "scripted: queue full"),
                                       WireFormat::kNative));
          continue;
        }
        if (then_answer) {
          QueryResult result;
          result.solver = SolverKind::kCount;
          result.count = 42;
          (void)WriteFrame(fd, FrameType::kResultFrame, WireFormat::kNative,
                           0, frame->header.request_id,
                           EncodeQueryResult(result, WireFormat::kNative,
                                             false, false));
        }
      }
      ::close(fd);
    });
  }

  ~ScriptedServer() {
    if (thread.joinable()) {
      thread.join();
    }
    if (listen_fd >= 0) {
      ::close(listen_fd);
    }
  }
};

TEST(ClientRetry, RetriesTransientQueueFullThenSucceeds) {
  ScriptedServer server(/*rejections=*/2, /*then_answer=*/true);
  HierarqClient::Options options;
  options.max_retries = 5;
  options.backoff_initial_ms = 1;
  options.backoff_cap_ms = 4;
  HierarqClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port).ok());
  auto result = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->count, 42u);
  EXPECT_EQ(client.retries(), 2u);
  client.Close();
}

TEST(ClientRetry, GivesUpAfterMaxRetriesWithTheLastError) {
  ScriptedServer server(/*rejections=*/100, /*then_answer=*/false);
  HierarqClient::Options options;
  options.max_retries = 3;
  options.backoff_initial_ms = 1;
  options.backoff_cap_ms = 2;
  HierarqClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port).ok());
  auto result = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // 1 initial attempt + exactly max_retries retries, no more.
  EXPECT_EQ(client.retries(), 3u);
  client.Close();
}

TEST(ClientRetry, NeverRetriesAfterATransportFailure) {
  ScriptedServer server(/*rejections=*/0, /*then_answer=*/false,
                        /*close_instead=*/true);
  HierarqClient::Options options;
  options.max_retries = 5;
  options.backoff_initial_ms = 1;
  HierarqClient client(options);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port).ok());
  auto result = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_FALSE(result.ok());
  // A torn/absent response is NOT kResourceExhausted: the client cannot
  // know whether the server acted, so re-sending would risk double
  // evaluation — zero retries, the error surfaces as-is.
  EXPECT_NE(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.retries(), 0u);
  client.Close();
}

TEST(ClientRetry, DefaultOptionsNeverRetry) {
  ScriptedServer server(/*rejections=*/1, /*then_answer=*/true);
  HierarqClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port).ok());
  auto result = client.Query(SolverKind::kCount, kSmallQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.retries(), 0u);
  client.Close();
}

TEST(Server, MaxConnectionsRejectsExcessWithConnectionScopedError) {
  HierarqServer::Options options;
  options.max_connections = 1;
  TestServer fixture(kSmallDb, "", options);
  obs::Counter* rejected =
      fixture.server->metrics().GetCounter("server.connections_rejected");
  const uint64_t rejected_before = rejected->Value();

  HierarqClient first = fixture.Connect();
  ASSERT_TRUE(first.Ping().ok());  // The slot is definitely claimed now.

  // The second connection is accepted, answered with ONE error frame
  // (request id 0 — connection-scoped, wire.h), and closed. The client
  // surfaces it from any request.
  HierarqClient second = fixture.Connect();
  const Status rejected_status = second.Ping();
  ASSERT_FALSE(rejected_status.ok());
  EXPECT_EQ(rejected_status.code(), StatusCode::kResourceExhausted)
      << rejected_status;
  EXPECT_GE(rejected->Value(), rejected_before + 1);
  second.Close();

  // Releasing the first connection frees the slot — a later client gets
  // in (the decrement runs when the connection thread unwinds, so poll).
  first.Close();
  Status admitted = Status::Internal("never connected");
  for (int attempt = 0; attempt < 200; ++attempt) {
    HierarqClient retry = fixture.Connect();
    admitted = retry.Ping();
    retry.Close();
    if (admitted.ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(admitted.ok()) << admitted;
}

TEST(Client, ParseHostPortVariants) {
  auto full = ParseHostPort("10.1.2.3:8080");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->first, "10.1.2.3");
  EXPECT_EQ(full->second, 8080);
  auto bare = ParseHostPort("9001");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->first, "127.0.0.1");
  EXPECT_EQ(bare->second, 9001);
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort("host:notaport").ok());
  EXPECT_FALSE(ParseHostPort("host:99999").ok());
}

}  // namespace
}  // namespace hierarq::net
