// Tests for the resilience instantiation (hierarq's answer to the paper's
// concluding Question 2).

#include <gtest/gtest.h>

#include "hierarq/core/resilience.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(Resilience, FalseQueryNeedsNothing) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  auto r = ComputeResilience(q, Database{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
}

TEST(Resilience, SingleWitnessNeedsOneRemoval) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  auto r = ComputeResilience(q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
}

TEST(Resilience, DisjunctionNeedsAllWitnessesRemoved) {
  // Q() :- R(A): k facts ⇒ resilience k.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.AddFactOrDie("R", MakeTuple({i}));
  }
  auto r = ComputeResilience(q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5u);
}

TEST(Resilience, ConjunctionTakesCheapestSide) {
  // Q() :- R(A), S(B): falsify the smaller relation.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.AddFactOrDie("R", MakeTuple({i}));
  }
  for (int i = 0; i < 2; ++i) {
    db.AddFactOrDie("S", MakeTuple({i}));
  }
  auto r = ComputeResilience(q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
}

TEST(Resilience, ExogenousFactsCannotBeRemoved) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
  Database exo;
  exo.AddFactOrDie("R", MakeTuple({1}));
  Database endo;
  endo.AddFactOrDie("S", MakeTuple({1}));
  endo.AddFactOrDie("S", MakeTuple({2}));
  auto r = ComputeResilience(q, exo, endo);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);  // Must take out both S facts; R is protected.
}

TEST(Resilience, FullyExogenousTrueQueryIsUnfalsifiable) {
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  Database exo;
  exo.AddFactOrDie("R", MakeTuple({1}));
  auto r = ComputeResilience(q, exo, Database{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ResilienceMonoid::kInfinity);
}

TEST(Resilience, PaperQueryHandComputed) {
  // Figure 1's D: the single assignment uses R(1,5), S(1,2), T(1,2,4);
  // removing any one of them falsifies Q.
  const ConjunctiveQuery q = MakePaperQuery();
  Database db;
  db.AddFactOrDie("R", MakeTuple({1, 5}));
  db.AddFactOrDie("S", MakeTuple({1, 1}));
  db.AddFactOrDie("S", MakeTuple({1, 2}));
  db.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  auto r = ComputeResilience(q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
}

TEST(Resilience, NonHierarchicalRejected) {
  Database db;
  db.AddFactOrDie("R", MakeTuple({1}));
  auto r = ComputeResilience(MakeQnh(), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotHierarchical);
}

class ResilienceBruteForceParam : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ResilienceBruteForceParam, MatchesSubsetEnumeration) {
  Rng rng(GetParam() * 101 + 7);
  for (int round = 0; round < 10; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.7);
    if (endo.NumFacts() > 14) {
      continue;
    }
    auto fast = ComputeResilience(q, exo, endo);
    ASSERT_TRUE(fast.ok()) << q.ToString();
    EXPECT_EQ(*fast, BruteForceResilience(q, exo, endo)) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceBruteForceParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Resilience, BoundedByEndogenousSize) {
  Rng rng(99);
  for (int round = 0; round < 15; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 10;
    dopts.domain_size = 4;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    auto r = ComputeResilience(q, db);
    ASSERT_TRUE(r.ok());
    if (EvaluateBoolean(q, db)) {
      EXPECT_LE(*r, db.NumFacts());
      EXPECT_GE(*r, 1u);
    } else {
      EXPECT_EQ(*r, 0u);
    }
  }
}

}  // namespace
}  // namespace hierarq
