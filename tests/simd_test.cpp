// Kernel-equivalence tests for util/simd.h and the columnar loops built
// on it: every vector tier must match the scalar reference bit-for-bit
// (the kernels are pure integer math — there is no tolerance to hide
// behind), and the optional sort-by-hash-prefix row reorder must be
// content-neutral.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hierarq/data/columnar.h"
#include "hierarq/data/tuple.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/random.h"
#include "hierarq/util/simd.h"

namespace hierarq {
namespace {

// The tiers available on this host, scalar always included.
std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx512) {
    levels.push_back(simd::Level::kAvx512);
  }
  return levels;
}

// Restores the default dispatch decision after each test so the order
// tests run in cannot leak a forced level.
class SimdTest : public ::testing::Test {
 protected:
  ~SimdTest() override {
    simd::SetLevelForTesting(simd::DetectedLevel() >= simd::Level::kAvx2
                                 ? simd::DetectedLevel()
                                 : simd::Level::kScalar);
  }
};

TEST_F(SimdTest, HashCombineRowsMatchesScalarBitForBitOnEveryTier) {
  Rng rng(0x51bdULL);
  // Ragged sizes exercise every vector-width tail, including 0 and 1.
  for (size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 1000, 4097}) {
    std::vector<int64_t> column(n);
    std::vector<uint64_t> seed_h(n);
    for (size_t i = 0; i < n; ++i) {
      column[i] = rng.UniformInt(-1000000, 1000000);
      seed_h[i] = Mix64(0xabcdef ^ i);
    }

    std::vector<uint64_t> reference = seed_h;
    simd::SetLevelForTesting(simd::Level::kScalar);
    simd::HashCombineRows(reference.data(), column.data(), n);
    // The scalar kernel must itself equal hash.h's HashCombine.
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(reference[i],
                HashCombine(seed_h[i], static_cast<uint64_t>(column[i])));
    }

    for (simd::Level level : AvailableLevels()) {
      simd::SetLevelForTesting(level);
      ASSERT_EQ(simd::ActiveLevel(), level);
      std::vector<uint64_t> h = seed_h;
      simd::HashCombineRows(h.data(), column.data(), n);
      EXPECT_EQ(h, reference) << "n=" << n << " level="
                              << simd::LevelName(level);
    }
  }
}

TEST_F(SimdTest, RowEqualsKeyAgreesWithScalarCompareOnEveryTier) {
  Rng rng(0x7a11ULL);
  for (size_t arity = 1; arity <= 6; ++arity) {
    // Columns with values in a tiny domain so equal and unequal rows both
    // occur; row 0 is duplicated at the end for a guaranteed match.
    const size_t rows = 40;
    std::vector<std::vector<int64_t>> columns(arity);
    for (auto& column : columns) {
      column.resize(rows);
      for (size_t r = 0; r < rows; ++r) {
        column[r] = rng.UniformInt(0, 3);
      }
      column.push_back(column[0]);
    }
    for (size_t probe = 0; probe + 1 < rows; ++probe) {
      std::vector<int64_t> key(arity);
      for (size_t c = 0; c < arity; ++c) {
        key[c] = columns[c][probe];
      }
      for (uint32_t row = 0; row < rows + 1; ++row) {
        bool expected = true;
        for (size_t c = 0; c < arity && expected; ++c) {
          expected = columns[c][row] == key[c];
        }
        for (simd::Level level : AvailableLevels()) {
          simd::SetLevelForTesting(level);
          EXPECT_EQ(simd::RowEqualsKey(columns, row, key.data(), arity),
                    expected)
              << "arity=" << arity << " probe=" << probe << " row=" << row
              << " level=" << simd::LevelName(level);
        }
      }
    }
  }
}

TEST_F(SimdTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kSse2), "sse2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx512), "avx512");
  // SetLevelForTesting clamps to what the host supports — an AVX-512
  // request on a narrower host falls back instead of faulting.
  simd::SetLevelForTesting(simd::Level::kAvx512);
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
            static_cast<int>(simd::DetectedLevel()));
}

// ------------------------------------------- sort-by-hash-prefix reorder --

TEST_F(SimdTest, SortRowsByHashPrefixIsContentNeutral) {
  Rng rng(0x50a7ULL);
  for (size_t arity : {1, 2, 3, 4}) {
    ColumnarStore<uint64_t> store(arity);
    std::vector<std::pair<Tuple, uint64_t>> facts;
    for (size_t i = 0; i < 500; ++i) {
      Tuple key;
      for (size_t c = 0; c < arity; ++c) {
        key.push_back(rng.UniformInt(0, 40));
      }
      const uint64_t value = static_cast<uint64_t>(i) + 1;
      auto [slot, inserted] = store.FindOrInsert(key);
      if (inserted) {
        *slot = value;
        facts.emplace_back(key, value);
      }
    }
    const size_t size_before = store.size();

    store.SortRowsByHashPrefix();

    ASSERT_EQ(store.size(), size_before);
    // Every key still maps to its annotation, through the rebuilt index.
    for (const auto& [key, value] : facts) {
      const uint64_t* found = store.Find(key);
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(*found, value);
    }
    Tuple absent;
    for (size_t c = 0; c < arity; ++c) {
      absent.push_back(1000 + static_cast<Value>(c));
    }
    EXPECT_EQ(store.Find(absent), nullptr);
    // Erase still works against the rebuilt index.
    EXPECT_TRUE(store.Erase(facts.front().first));
    EXPECT_EQ(store.Find(facts.front().first), nullptr);
    EXPECT_EQ(store.size(), size_before - 1);
  }
}

}  // namespace
}  // namespace hierarq
