// Targeted regression tests for the subtle corners of the unified
// algorithm — each encodes a way the implementation could plausibly have
// been wrong.

#include <gtest/gtest.h>

#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/bagset.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/shapley.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TEST(Regression, Rule2MustJoinOnSupportUnion) {
  // Q() :- A1(X), A2(X) with A1 = {1,2}, A2 = {2,3}, all endogenous.
  // Q is true iff both A1(2) and A2(2) are chosen, so
  //   #Sat(k, true) = C(2, k-2) for k >= 2.
  // An (incorrect) intersection-based Rule 2 would lose the one-sided
  // facts A1(1)/A2(3) from the lineage and misreport the false-side
  // counts; the union-based implementation keeps them (a ⊗ 0 ≠ 0).
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- A1(X), A2(X)");
  Database endo;
  endo.AddFactOrDie("A1", MakeTuple({1}));
  endo.AddFactOrDie("A1", MakeTuple({2}));
  endo.AddFactOrDie("A2", MakeTuple({2}));
  endo.AddFactOrDie("A2", MakeTuple({3}));
  auto counts = CountSatBoth(q, Database{}, endo);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->on_true[0], BigUint(0));
  EXPECT_EQ(counts->on_true[1], BigUint(0));
  EXPECT_EQ(counts->on_true[2], BigUint(1));   // {A1(2),A2(2)}.
  EXPECT_EQ(counts->on_true[3], BigUint(2));   // + one of the others.
  EXPECT_EQ(counts->on_true[4], BigUint(1));   // Everything.
  // False side completes the binomials.
  for (size_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(counts->on_true[k] + counts->on_false[k],
              BigUint::Binomial(4, k));
  }
  // Cross-check the whole vector against enumeration.
  const auto brute = BruteForceCountSat(q, Database{}, endo);
  EXPECT_EQ(counts->on_true, brute.on_true);
  EXPECT_EQ(counts->on_false, brute.on_false);
}

TEST(Regression, SatCountPhiOfAndFalseIsTimesZero) {
  // φ(x ∧ ⊥) must equal φ(x) ⊗ 0, NOT φ(⊥) = 0 — retaining the ∧-⊥
  // subtree (no annihilating simplification) is load-bearing.
  const SatCountMonoid<uint64_t> m(2);
  const auto star = m.Star();
  const auto product = m.Times(star, m.Zero());
  // One endogenous fact that can never make the query true: subsets of
  // size 0 and 1 all map to false.
  EXPECT_EQ(product.on_false[0], 1u);
  EXPECT_EQ(product.on_false[1], 1u);
  EXPECT_EQ(product.on_true[0], 0u);
  EXPECT_EQ(product.on_true[1], 0u);
}

TEST(Regression, ExactOpCountForSingleAtomQuery) {
  // Q() :- R(A) over n facts: Rule 1 ⊕-merges n entries into one group —
  // exactly n-1 Plus operations and no Times.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A)");
  for (size_t n : {1, 2, 5, 32}) {
    Database db;
    for (size_t i = 0; i < n; ++i) {
      db.AddFactOrDie("R", MakeTuple({static_cast<Value>(i)}));
    }
    const CountingMonoid<CountMonoid> m{CountMonoid{}};
    auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
        q, m, db, [](const Fact&) -> uint64_t { return 1; });
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, n);
    EXPECT_EQ(m.plus_count(), n - 1);
    EXPECT_EQ(m.times_count(), 0u);
  }
}

TEST(Regression, ExactOpCountForMergeQuery) {
  // Q() :- A1(X), A2(X) with disjoint supports of sizes a and b:
  // Rule 2 performs a+b Times (union join), then Rule 1 a+b-1 Plus.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- A1(X), A2(X)");
  Database db;
  const size_t a = 3;
  const size_t b = 4;
  for (size_t i = 0; i < a; ++i) {
    db.AddFactOrDie("A1", MakeTuple({static_cast<Value>(i)}));
  }
  for (size_t i = 0; i < b; ++i) {
    db.AddFactOrDie("A2", MakeTuple({static_cast<Value>(100 + i)}));
  }
  const CountingMonoid<CountMonoid> m{CountMonoid{}};
  auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
      q, m, db, [](const Fact&) -> uint64_t { return 1; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 0u);  // Disjoint: no shared X value.
  EXPECT_EQ(m.times_count(), a + b);
  EXPECT_EQ(m.plus_count(), a + b - 1);
}

TEST(Regression, PlanIsDeterministic) {
  const ConjunctiveQuery q1 = MakePaperQuery();
  const ConjunctiveQuery q2 = MakePaperQuery();
  auto p1 = EliminationPlan::Build(q1);
  auto p2 = EliminationPlan::Build(q2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->ToString(q1.variables()), p2->ToString(q2.variables()));
}

TEST(Regression, BagMaxProfilePrefixConsistency) {
  // Running with budget θ must agree with budget θ' < θ on the shared
  // prefix (truncation is lossless).
  const ConjunctiveQuery q = MakePaperQuery();
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  Database dr;
  dr.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  dr.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  dr.AddFactOrDie("R", MakeTuple({1, 6}));
  auto big = MaximizeBagSet(q, d, dr, 3);
  ASSERT_TRUE(big.ok());
  for (size_t theta = 0; theta < 3; ++theta) {
    auto small = MaximizeBagSet(q, d, dr, theta);
    ASSERT_TRUE(small.ok());
    for (size_t i = 0; i <= theta; ++i) {
      EXPECT_EQ(small->profile[i], big->profile[i])
          << "theta=" << theta << " i=" << i;
    }
  }
}

TEST(Regression, ExtremeProbabilitiesAreStable) {
  // p = 0 facts act as absent; p = 1 facts as certain. No NaNs, exact
  // endpoints.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(A)");
  TidDatabase db;
  db.AddFactOrDie("R", MakeTuple({1}), 0.0);
  db.AddFactOrDie("S", MakeTuple({1}), 1.0);
  db.AddFactOrDie("R", MakeTuple({2}), 1.0);
  db.AddFactOrDie("S", MakeTuple({2}), 1.0);
  auto p = EvaluateProbability(q, db);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);

  TidDatabase none;
  none.AddFactOrDie("R", MakeTuple({1}), 0.0);
  none.AddFactOrDie("S", MakeTuple({1}), 1.0);
  auto p0 = EvaluateProbability(q, none);
  ASSERT_TRUE(p0.ok());
  EXPECT_DOUBLE_EQ(*p0, 0.0);
}

TEST(Regression, DuplicateAtomSchemasWithSharedTuples) {
  // Three atoms over the same variable set exercise repeated Rule 2.
  const ConjunctiveQuery q = ParseQueryOrDie("Q() :- A(X,Y), B(Y,X), C(X,Y)");
  Database db;
  db.AddFactOrDie("A", MakeTuple({1, 2}));
  db.AddFactOrDie("B", MakeTuple({2, 1}));  // B(Y,X): Y=2, X=1.
  db.AddFactOrDie("C", MakeTuple({1, 2}));
  auto count = BagSetCountHierarchical(q, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  EXPECT_EQ(*count, BagSetCount(q, db));
}

TEST(Regression, ShapleyWithAllFactsExogenousButOne) {
  // n = 1: the single endogenous fact has value Q(Dx ∪ {f}) − Q(Dx).
  const ConjunctiveQuery q = MakePaperQuery();
  Database exo;
  exo.AddFactOrDie("R", MakeTuple({1, 5}));
  exo.AddFactOrDie("S", MakeTuple({1, 2}));
  Database endo;
  endo.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  auto v = ShapleyValue(q, exo, endo, Fact{"T", MakeTuple({1, 2, 4})});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Fraction(1));
}

TEST(Regression, LargeScaleSmoke) {
  // 60k facts through all linear-time instantiations: must simply finish
  // (this is the laptop-scale claim of the reproduction).
  const ConjunctiveQuery q = MakePaperQuery();
  Database db;
  TidDatabase tid;
  for (Value a = 0; a < 200; ++a) {
    for (Value i = 0; i < 100; ++i) {
      db.AddFactOrDie("R", MakeTuple({a, i}));
      db.AddFactOrDie("S", MakeTuple({a, i}));
      db.AddFactOrDie("T", MakeTuple({a, i, 0}));
      tid.AddFactOrDie("R", MakeTuple({a, i}), 0.5);
      tid.AddFactOrDie("S", MakeTuple({a, i}), 0.5);
      tid.AddFactOrDie("T", MakeTuple({a, i, 0}), 0.5);
    }
  }
  ASSERT_EQ(db.NumFacts(), 60000u);
  auto count = BagSetCountHierarchical(q, db);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 200u * 100 * 100);  // Per a: |B|=100 × |(C,D)|=100.
  auto p = EvaluateProbability(q, tid);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(*p, 0.0);
  EXPECT_LE(*p, 1.0);
}

}  // namespace
}  // namespace hierarq
