// Unit tests for string helpers used by the parsers.

#include <gtest/gtest.h>

#include "hierarq/util/strings.h"

namespace hierarq {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("\t\n abc \r\n"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(" a , b ", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, SplitTopLevelRespectsParens) {
  EXPECT_EQ(SplitTopLevel("R(A,B), S(C)", ','),
            (std::vector<std::string>{"R(A,B)", "S(C)"}));
  EXPECT_EQ(SplitTopLevel("f(g(x,y),z), h", ','),
            (std::vector<std::string>{"f(g(x,y),z)", "h"}));
  EXPECT_EQ(SplitTopLevel("plain", ','),
            (std::vector<std::string>{"plain"}));
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hierarchy", "hier"));
  EXPECT_FALSE(StartsWith("hier", "hierarchy"));
  EXPECT_TRUE(EndsWith("query.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "query.txt"));
}

TEST(Strings, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  8 "), 8);
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2.25 "), -2.25);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.5p").ok());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("R"));
  EXPECT_TRUE(IsIdentifier("R1"));
  EXPECT_TRUE(IsIdentifier("_private"));
  EXPECT_TRUE(IsIdentifier("R'"));  // Primed relation names.
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1R"));
  EXPECT_FALSE(IsIdentifier("a b"));
  EXPECT_FALSE(IsIdentifier("'a"));
}

TEST(Strings, LooksLikeVariable) {
  EXPECT_TRUE(LooksLikeVariable("X"));
  EXPECT_TRUE(LooksLikeVariable("Abc"));
  EXPECT_FALSE(LooksLikeVariable("x"));
  EXPECT_FALSE(LooksLikeVariable("1"));
  EXPECT_FALSE(LooksLikeVariable(""));
}

}  // namespace
}  // namespace hierarq
