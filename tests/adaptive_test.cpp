// Tests for the adaptive execution layer (core/adaptive.h).
//
// The differential suite pins the only contract that lets adaptive mode
// default on anywhere: whatever the controller picks per step, results
// equal every fixed configuration — bit-identically for the exact
// monoids (count, bool, resilience), to 1e-11 relative for the floating
// ones (tropical, prob, expectation), across all storage backends. Unit
// tests cover the decision inputs themselves: skew read from shard
// occupancy, the cost model's serial/parallel crossover, and measured
// feedback round-tripping through the plan-cache key (the plan's stable
// address) to flip later decisions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "hierarq/core/adaptive.h"
#include "hierarq/hierarq.h"
#include "hierarq/incremental/incremental_evaluator.h"

namespace hierarq {
namespace {

void ExpectClose(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    EXPECT_EQ(a, b);
    return;
  }
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, 1e-11 * scale);
}

double WeightOf(const Fact& fact) {
  uint64_t h = HashRange(fact.tuple.begin(), fact.tuple.end());
  h = Mix64(h ^ fact.relation.size());
  return (static_cast<double>(h % 999) + 0.5) / 1000.0;
}

ConjunctiveQuery RandomQuery(Rng& rng) {
  RandomHierarchicalOptions opts;
  opts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 4));
  opts.num_roots = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
  return MakeRandomHierarchical(rng, opts);
}

Database RandomInstance(Rng& rng, const ConjunctiveQuery& q) {
  DataGenOptions dopts;
  dopts.tuples_per_relation = static_cast<size_t>(rng.UniformInt(0, 120));
  dopts.domain_size = 2 + static_cast<size_t>(rng.UniformInt(0, 20));
  return RandomDatabaseForQuery(q, rng, dopts);
}

template <TwoMonoid M>
typename M::value_type EvaluateFixed(
    const M& monoid,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    const ConjunctiveQuery& q, const Database& db, StorageKind storage) {
  Evaluator evaluator(storage);
  auto result = evaluator.Evaluate<M>(q, monoid, db, annotator);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : typename M::value_type{};
}

template <TwoMonoid M>
typename M::value_type EvaluateAdaptive(
    const M& monoid,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    const ConjunctiveQuery& q, const Database& db, StorageKind storage) {
  Evaluator::Options options;
  options.storage = storage;
  options.adaptive = true;
  options.intra_query_threads = 8;  // The fan-out cap the controller uses.
  options.parallel_min_rows = 1;    // Let the cost model decide alone.
  Evaluator evaluator(options);
  auto result = evaluator.Evaluate<M>(q, monoid, db, annotator);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : typename M::value_type{};
}

// Adaptive vs every fixed backend on random hierarchical instances. The
// fixed serial configs are themselves equal across backends and thread
// counts (storage_differential_test, parallel_test), so agreeing with
// each backend's serial result transitively pins adaptive against the
// whole fixed grid.
template <TwoMonoid M, typename Check>
void SweepAdaptiveVsFixed(
    const M& monoid,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    uint64_t seed_base, Check check) {
  size_t instances = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed_base + seed);
    const ConjunctiveQuery q = RandomQuery(rng);
    const Database db = RandomInstance(rng, q);
    for (StorageKind storage : kAllStorageKinds) {
      SCOPED_TRACE(std::string(StorageKindName(storage)) +
                   " seed=" + std::to_string(seed) + " " + q.ToString());
      const auto fixed = EvaluateFixed(monoid, annotator, q, db, storage);
      const auto adaptive =
          EvaluateAdaptive(monoid, annotator, q, db, storage);
      check(fixed, adaptive);
      ++instances;
    }
  }
  EXPECT_EQ(instances, 10 * std::size(kAllStorageKinds));
}

template <typename T>
void CheckBitIdentical(const T& a, const T& b) {
  EXPECT_EQ(a, b);
}

TEST(AdaptiveDifferential, CountBitIdentical) {
  SweepAdaptiveVsFixed<CountMonoid>(
      CountMonoid{}, [](const Fact&) -> uint64_t { return 1; }, 0xada0,
      [](uint64_t a, uint64_t b) { CheckBitIdentical(a, b); });
}

TEST(AdaptiveDifferential, BoolBitIdentical) {
  SweepAdaptiveVsFixed<BoolMonoid>(
      BoolMonoid{}, [](const Fact&) { return true; }, 0xada1,
      [](bool a, bool b) { CheckBitIdentical(a, b); });
}

TEST(AdaptiveDifferential, ResilienceBitIdentical) {
  SweepAdaptiveVsFixed<ResilienceMonoid>(
      ResilienceMonoid{},
      [](const Fact& fact) -> uint64_t {
        return WeightOf(fact) < 0.5 ? 1 : ResilienceMonoid::kInfinity;
      },
      0xada2,
      [](uint64_t a, uint64_t b) { CheckBitIdentical(a, b); });
}

TEST(AdaptiveDifferential, TropicalWithinTolerance) {
  SweepAdaptiveVsFixed<TropicalMonoid>(
      TropicalMonoid{}, [](const Fact& fact) { return WeightOf(fact); },
      0xada3, [](double a, double b) { ExpectClose(a, b); });
}

TEST(AdaptiveDifferential, ProbWithinTolerance) {
  SweepAdaptiveVsFixed<ProbMonoid>(
      ProbMonoid{}, [](const Fact& fact) { return WeightOf(fact); }, 0xada4,
      [](double a, double b) { ExpectClose(a, b); });
}

TEST(AdaptiveDifferential, ExpectationWithinTolerance) {
  SweepAdaptiveVsFixed<ExpectationMonoid>(
      ExpectationMonoid{}, [](const Fact& fact) { return WeightOf(fact); },
      0xada5, [](double a, double b) { ExpectClose(a, b); });
}

// A big instance where the cost model's crossover (~3k rows at an 8-way
// budget) actually fires: the controller must choose parallel for the
// large base steps and still produce the serial engine's exact count.
// The thread budget comes from the Options (8), not the host, so the
// choice is deterministic on any CI machine.
TEST(AdaptiveDifferential, BigInstanceGoesParallelAndStaysExact) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0xb16aULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 10000;
  dopts.domain_size = 2500;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });

  Evaluator serial(StorageKind::kFlat);
  auto reference =
      serial.Evaluate<CountMonoid>(q, CountMonoid{}, db, annotate);
  ASSERT_TRUE(reference.ok());

  Evaluator::Options options;
  options.adaptive = true;
  options.intra_query_threads = 8;
  Evaluator adaptive(options);
  auto result =
      adaptive.Evaluate<CountMonoid>(q, CountMonoid{}, db, annotate);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, *reference);

  const AdaptiveController* controller = adaptive.adaptive_controller();
  ASSERT_NE(controller, nullptr);
  EXPECT_GT(controller->parallel_steps(), 0u);
}

// ------------------------------------------------------- stats collector --

TEST(AdaptiveStats, UnshardedLayoutsReportNeutralSkew) {
  AnnotatedRelation<uint64_t> rel;
  rel.Reset(VarSet{0, 1}, StorageKind::kFlat);
  rel.Set(MakeTuple({1, 2}), 1);
  rel.Set(MakeTuple({3, 4}), 1);
  const RelationStats stats = CollectRelationStats(rel);
  EXPECT_EQ(stats.rows, 2u);
  EXPECT_EQ(stats.arity, 2u);
  EXPECT_DOUBLE_EQ(stats.skew, 1.0);
}

TEST(AdaptiveStats, ShardOccupancyDrivesSkew) {
  for (StorageKind kind :
       {StorageKind::kSharded, StorageKind::kShardedColumnar}) {
    SCOPED_TRACE(StorageKindName(kind));
    AnnotatedRelation<uint64_t> rel;
    rel.Reset(VarSet{0}, kind);
    EXPECT_DOUBLE_EQ(CollectRelationStats(rel).skew, 1.0);  // Empty.

    // One row lives in exactly one of the 8 shards: maximal skew.
    rel.Set(MakeTuple({42}), 1);
    const RelationStats single = CollectRelationStats(rel);
    EXPECT_EQ(single.rows, 1u);
    EXPECT_EQ(single.arity, 1u);
    EXPECT_DOUBLE_EQ(single.skew,
                     static_cast<double>(ShardedStore<uint64_t>::kNumShards));

    // Many distinct hash-routed keys spread out: skew falls toward 1.
    for (Value v = 0; v < 4000; ++v) {
      rel.Set(MakeTuple({v}), 1);
    }
    const RelationStats spread = CollectRelationStats(rel);
    EXPECT_EQ(spread.rows, 4000u);
    EXPECT_GE(spread.skew, 1.0);
    EXPECT_LT(spread.skew, 1.5);
  }
}

// ----------------------------------------------------------- cost model --

TEST(AdaptiveChoice, SmallInputsAndUnitBudgetsStaySerial) {
  RelationStats small;
  small.rows = 100;
  small.arity = 2;

  AdaptiveController::Options one_core;
  one_core.hardware_threads = 1;
  const AdaptiveController serial_only(one_core);
  EXPECT_FALSE(serial_only.Choose(nullptr, 0, small).parallel);

  AdaptiveController::Options eight;
  eight.hardware_threads = 8;
  const AdaptiveController budget8(eight);
  // Small input: below min_parallel_rows, and below the crossover anyway.
  EXPECT_FALSE(budget8.Choose(nullptr, 0, small).parallel);

  RelationStats big;
  big.rows = 200000;
  big.arity = 2;
  const StepChoice choice = budget8.Choose(nullptr, 0, big);
  EXPECT_TRUE(choice.parallel);
  EXPECT_EQ(choice.threads, 8u);
  EXPECT_LT(choice.predicted_parallel_ns, choice.predicted_serial_ns);

  // Uniform one-core budget never goes parallel even on huge inputs.
  EXPECT_FALSE(serial_only.Choose(nullptr, 0, big).parallel);
}

TEST(AdaptiveChoice, SkewDiscountsTheParallelEstimate) {
  AdaptiveController::Options opts;
  opts.hardware_threads = 8;
  const AdaptiveController controller(opts);

  RelationStats uniform;
  uniform.rows = 200000;
  uniform.arity = 2;
  uniform.skew = 1.0;
  EXPECT_TRUE(controller.Choose(nullptr, 0, uniform).parallel);

  // All rows in one shard: effective parallelism 1, the latch is pure
  // overhead — the controller must fall back to serial.
  RelationStats skewed = uniform;
  skewed.skew = static_cast<double>(ShardedStore<uint64_t>::kNumShards);
  const StepChoice choice = controller.Choose(nullptr, 0, skewed);
  EXPECT_FALSE(choice.parallel);
  EXPECT_GT(choice.predicted_parallel_ns, choice.predicted_serial_ns);
}

// ------------------------------------------------------ measured feedback --

TEST(AdaptiveFeedback, MeasurementsRoundTripAndFlipDecisions) {
  auto plan = EliminationPlan::Build(MakePaperQuery());
  ASSERT_TRUE(plan.ok());
  AdaptiveController::Options opts;
  opts.hardware_threads = 8;
  AdaptiveController controller(opts);

  RelationStats input;
  input.rows = 5000;
  input.arity = 2;
  // By the calibrated model alone, 5000 rows at an 8-way budget crosses
  // into parallel territory.
  EXPECT_TRUE(controller.Choose(&*plan, 0, input).parallel);

  // Nothing measured yet.
  EXPECT_LT(controller.MeasuredNsPerRow(&*plan, 0, /*parallel=*/true), 0.0);

  // Feed back a terrible measured parallel cost (1000 ns/row wall) for
  // this exact plan step; the next decision must flip to serial.
  controller.RecordMeasured(&*plan, 0, /*parallel=*/true, 5000, 5e-3);
  EXPECT_NEAR(controller.MeasuredNsPerRow(&*plan, 0, true), 1000.0, 1e-6);
  EXPECT_FALSE(controller.Choose(&*plan, 0, input).parallel);

  // The feedback is EWMA, not last-write-wins: a second, cheap sample
  // pulls the estimate down but remembers the first.
  controller.RecordMeasured(&*plan, 0, /*parallel=*/true, 5000, 5e-5);
  const double blended = controller.MeasuredNsPerRow(&*plan, 0, true);
  EXPECT_GT(blended, 10.0);
  EXPECT_LT(blended, 1000.0);

  // Feedback is keyed per plan: a different plan is untouched.
  auto other = EliminationPlan::Build(MakeStarQuery(3));
  ASSERT_TRUE(other.ok());
  EXPECT_LT(controller.MeasuredNsPerRow(&*other, 0, true), 0.0);
  EXPECT_TRUE(controller.Choose(&*other, 0, input).parallel);
}

// End-to-end: an adaptive Evaluator's second evaluation of the same
// query re-decides from costs measured on the first, keyed through the
// plan cache's stable plan address.
TEST(AdaptiveFeedback, EvaluatorFeedsMeasurementsThroughPlanCache) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0xfeedULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 300;
  dopts.domain_size = 60;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });

  Evaluator::Options options;
  options.adaptive = true;
  Evaluator evaluator(options);
  auto first = evaluator.Evaluate<CountMonoid>(q, CountMonoid{}, db,
                                               annotate);
  ASSERT_TRUE(first.ok());

  auto plan = evaluator.GetPlan(q);
  ASSERT_TRUE(plan.ok());
  const AdaptiveController* controller = evaluator.adaptive_controller();
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->serial_steps() + controller->parallel_steps(),
            (*plan)->steps().size());
  // At least one step was big enough (>= 64 rows) to leave a measured
  // ns/row behind, retrievable under the cached plan's address.
  bool any_measured = false;
  for (size_t step = 0; step < (*plan)->steps().size(); ++step) {
    any_measured = any_measured ||
                   controller->MeasuredNsPerRow(*plan, step, false) > 0.0 ||
                   controller->MeasuredNsPerRow(*plan, step, true) > 0.0;
  }
  EXPECT_TRUE(any_measured);

  auto second = evaluator.Evaluate<CountMonoid>(q, CountMonoid{}, db,
                                                annotate);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

// ------------------------------------------------- service + incremental --

TEST(AdaptiveService, AdaptiveIntraRouteMatchesSerial) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0xad5eULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 400;
  dopts.domain_size = 100;
  const Database db = RandomDatabaseForQuery(q, rng, dopts);
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });

  Evaluator serial;
  auto reference =
      serial.Evaluate<CountMonoid>(q, CountMonoid{}, db, annotate);
  ASSERT_TRUE(reference.ok());

  EvalService::Options options;
  options.num_workers = 2;
  options.adaptive = true;
  options.intra_query_min_support = 1;
  EvalService service(options);
  auto results = service.EvaluateMany<CountMonoid>(CountMonoid{}, {&q}, db,
                                                   annotate);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], *reference);
  // Adaptive mode routes the singleton through the intra evaluator even
  // without an explicit intra_query_threads.
  EXPECT_EQ(service.stats().intra_parallel_replays, 1u);
}

TEST(AdaptiveIncremental, AdaptiveMaterializationTracksSerialDeltas) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(0xad11ULL);
  DataGenOptions dopts;
  dopts.tuples_per_relation = 60;
  dopts.domain_size = 12;
  const Database base = RandomDatabaseForQuery(q, rng, dopts);

  VersionedDatabase serial_db(base);
  VersionedDatabase adaptive_db(base);
  IncrementalEvaluator<CountMonoid> serial(
      CountMonoid{}, &serial_db,
      [](const Fact&, double) -> uint64_t { return 1; },
      {StorageKind::kFlat});
  // Explicit threads + adaptive: parallel materialization scatters into
  // the sharded-columnar flavor, then serial delta maintenance must
  // track the plain-serial view exactly.
  IncrementalEvaluator<CountMonoid> adaptive(
      CountMonoid{}, &adaptive_db,
      [](const Fact&, double) -> uint64_t { return 1; },
      {StorageKind::kFlat, /*intra_query_threads=*/4, /*adaptive=*/true});

  auto serial_handle = serial.Attach(q);
  auto adaptive_handle = adaptive.Attach(q);
  ASSERT_TRUE(serial_handle.ok());
  ASSERT_TRUE(adaptive_handle.ok());
  EXPECT_EQ(serial.ResultOf(*serial_handle),
            adaptive.ResultOf(*adaptive_handle));

  for (int round = 0; round < 40; ++round) {
    DeltaBatch batch;
    DeltaOp op;
    op.kind = rng.UniformInt(0, 2) == 0 ? DeltaKind::kDelete
                                        : DeltaKind::kInsert;
    op.fact.relation =
        q.atoms()[static_cast<size_t>(rng.UniformInt(0, 2))].relation();
    const size_t arity =
        q.atoms()[*q.AtomIndexOf(op.fact.relation)].arity();
    for (size_t i = 0; i < arity; ++i) {
      op.fact.tuple.push_back(rng.UniformInt(0, 12));
    }
    batch.ops.push_back(op);
    serial.ApplyDelta(batch);
    adaptive.ApplyDelta(batch);
    ASSERT_EQ(serial.ResultOf(*serial_handle),
              adaptive.ResultOf(*adaptive_handle))
        << "round " << round;
  }
}

}  // namespace
}  // namespace hierarq
