// Experiment P1 — the persistence layer: durability cost end to end.
//
// Not a paper artifact: the paper's algorithmics are orthogonal to
// storage. This emitter tracks the engineering floors the durable server
// relies on across PRs — snapshot write and recover throughput (MB/s and
// facts/s over the CRC-guarded chunk format), WAL append rate (one
// fsynced record per acked batch: the per-update durability tax), and
// the ratio of plain VersionedDatabase::Apply to WAL-append + Apply,
// which is exactly what an acked delta costs over an in-memory one.
//
// Emits BENCH_persist.json. Directories live under /dev/shm when
// available so numbers measure the format, not the disk.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/data/value.h"
#include "hierarq/incremental/delta_text.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/persist/snapshot.h"
#include "hierarq/persist/wal.h"
#include "hierarq/util/random.h"
#include "hierarq/util/timer.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

using persist::RealFileIo;
using persist::RecoverDatabase;
using persist::WalFileName;
using persist::WalWriter;
using persist::WriteSnapshot;

std::string BenchDir(const std::string& tag) {
  RealFileIo io;
  const std::string base =
      io.Exists("/dev/shm") ? "/dev/shm" : std::string(".");
  const std::string dir = base + "/hierarq_bench_persist_" + tag;
  (void)io.MakeDir(dir);
  auto entries = io.ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)io.Remove(dir + "/" + name);
    }
  }
  return dir;
}

void RemoveDir(const std::string& dir) {
  RealFileIo io;
  auto entries = io.ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      (void)io.Remove(dir + "/" + name);
    }
  }
  ::remove(dir.c_str());
}

Database MakeWorkload(size_t total_facts) {
  Rng rng(91);
  DataGenOptions opts;
  opts.tuples_per_relation = total_facts / 3;
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  return RandomDatabaseForQuery(MakePaperQuery(), rng, opts);
}

void Report() {
  bench::PrintHeader(
      "P1: durable persistence (snapshot / recover / WAL)",
      "engineering floors only — durability is orthogonal to the paper");
  bench::JsonReport report("persist", "BENCH_persist.json");
  Dictionary dict;
  const size_t kFacts = 100000;
  VersionedDatabase db(MakeWorkload(kFacts));
  RealFileIo io;

  // Snapshot write throughput.
  const std::string snap_dir = BenchDir("snapshot");
  uint64_t snapshot_bytes = 0;
  const double snapshots_per_sec = bench::MeasureRate([&] {
    auto stats = WriteSnapshot(io, snap_dir, db, dict);
    if (stats.ok()) {
      snapshot_bytes = stats->bytes;
    }
  });
  report.AddRow(
      "snapshot_write/100k",
      {{"snapshots_per_sec", snapshots_per_sec},
       {"mb_per_sec", snapshots_per_sec * snapshot_bytes / 1e6},
       {"facts_per_sec", snapshots_per_sec * db.NumFacts()},
       {"snapshot_bytes", static_cast<double>(snapshot_bytes)}});
  std::printf("  snapshot: %.1f/s (%.1f MB/s, %zu facts, %llu bytes)\n",
              snapshots_per_sec, snapshots_per_sec * snapshot_bytes / 1e6,
              db.NumFacts(),
              static_cast<unsigned long long>(snapshot_bytes));

  // Recover throughput over the same directory.
  const double recovers_per_sec = bench::MeasureRate([&] {
    Dictionary scratch;
    auto recovered = RecoverDatabase(io, snap_dir, &scratch);
    benchmark::DoNotOptimize(recovered.ok());
  });
  report.AddRow(
      "recover/100k",
      {{"recovers_per_sec", recovers_per_sec},
       {"mb_per_sec", recovers_per_sec * snapshot_bytes / 1e6},
       {"facts_per_sec", recovers_per_sec * db.NumFacts()}});
  std::printf("  recover: %.1f/s (%.1f MB/s)\n", recovers_per_sec,
              recovers_per_sec * snapshot_bytes / 1e6);

  // WAL append rate: one fsynced record per acked batch.
  const std::string wal_dir = BenchDir("wal");
  auto writer = WalWriter::Open(&io, wal_dir + "/" + WalFileName(0));
  const std::string line = "+R(123456,654321)@0.5; -S(42,7)";
  uint64_t generation = 0;
  const double appends_per_sec = bench::MeasureRate(
      [&] { (void)writer->Append(++generation, line); });
  report.AddRow("wal_append",
                {{"appends_per_sec", appends_per_sec},
                 {"bytes_per_record",
                  static_cast<double>(
                      persist::EncodeWalRecord(1, line).size())}});
  std::printf("  wal append: %.0f/s\n", appends_per_sec);

  // The durability tax on one applied batch: Apply alone vs
  // WAL-append + Apply (the server's acked path, net/server.cpp).
  VersionedDatabase plain;
  const double apply_only = bench::MeasureRate([&] {
    DeltaBatch batch;
    batch.Insert("R", MakeTuple({1, 2}));
    plain.Apply(batch);
    plain.TruncateLog(plain.generation());
  });
  VersionedDatabase durable;
  const double apply_durable = bench::MeasureRate([&] {
    DeltaBatch batch;
    batch.Insert("R", MakeTuple({1, 2}));
    (void)writer->Append(durable.generation() + 1,
                         RenderDeltaLine(batch, dict));
    durable.Apply(batch);
    durable.TruncateLog(durable.generation());
  });
  report.AddRow("acked_delta_overhead",
                {{"apply_only_per_sec", apply_only},
                 {"apply_durable_per_sec", apply_durable},
                 {"overhead_ratio",
                  apply_durable > 0.0 ? apply_only / apply_durable : 0.0}});
  std::printf("  acked delta: apply=%.0f/s durable=%.0f/s (x%.2f)\n",
              apply_only, apply_durable,
              apply_durable > 0.0 ? apply_only / apply_durable : 0.0);

  (void)writer->Close();
  report.WriteToFile();
  RemoveDir(snap_dir);
  RemoveDir(wal_dir);
}

// ------------------------------------------------- google-benchmark --

void BM_Persist_WalAppend(benchmark::State& state) {
  RealFileIo io;
  const std::string dir = BenchDir("bm_wal");
  auto writer = WalWriter::Open(&io, dir + "/" + WalFileName(0));
  const std::string line = "+R(123456,654321)@0.5";
  uint64_t generation = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(++generation, line).ok());
  }
  (void)writer->Close();
  RemoveDir(dir);
}
BENCHMARK(BM_Persist_WalAppend);

void BM_Persist_Snapshot(benchmark::State& state) {
  Dictionary dict;
  VersionedDatabase db(MakeWorkload(static_cast<size_t>(state.range(0))));
  RealFileIo io;
  const std::string dir = BenchDir("bm_snapshot");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WriteSnapshot(io, dir, db, dict).ok());
  }
  state.counters["num_facts"] = static_cast<double>(db.NumFacts());
  RemoveDir(dir);
}
BENCHMARK(BM_Persist_Snapshot)->Arg(30000)->Arg(100000)->UseRealTime();

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
