// Experiment E4 — Theorem 5.11: Bag-Set Maximization runs in
// O((|D| + |Dr|) · |Dr|²) time and O((|D| + |Dr|) · |Dr|) space.
//
// Two sweeps isolate the two factors:
//   * DataSweep — budget fixed, |D| grows: expect linear;
//   * BudgetSweep — data fixed, θ grows: expect quadratic (the ⊕/⊗
//     max-plus/max-times convolutions cost O(θ²) each).
// A third sweep shows the subset-enumeration brute force exploding.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/core/bagset.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

RepairInstance MakeInstance(const ConjunctiveQuery& q, size_t tuples,
                            uint64_t seed) {
  Rng rng(seed);
  DataGenOptions opts;
  opts.tuples_per_relation = tuples;
  opts.domain_size = std::max<size_t>(8, tuples / 4);
  return RandomRepairInstance(q, rng, opts, 0.7);
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E4: Theorem 5.11 — BagSetMax in O((|D|+|Dr|)·|Dr|^2)",
              "linear in data size; quadratic in the budget/repair size");
  const ConjunctiveQuery q = MakePaperQuery();
  const RepairInstance inst = MakeInstance(q, 6, 11);
  auto algo = MaximizeBagSet(q, inst.d, inst.repair, 4);
  const BagMaxVec brute = BruteForceBagSetMax(q, inst.d, inst.repair, 4);
  PrintRow("optimum, algorithm vs subset enumeration", "equal",
           algo.ok() && algo->profile == brute ? "equal" : "MISMATCH");
  PrintNote("DataSweep: θ=8 fixed, |D| grows -> expect ~linear;");
  PrintNote("BudgetSweep: data fixed, θ grows -> expect ~quadratic.");
}

void BM_BagSetMax_DataSweep(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const RepairInstance inst =
      MakeInstance(q, static_cast<size_t>(state.range(0)), 21);
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, inst.d, inst.repair, 8);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(
      static_cast<int64_t>(inst.d.NumFacts() + inst.repair.NumFacts()));
}
BENCHMARK(BM_BagSetMax_DataSweep)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_BagSetMax_BudgetSweep(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const RepairInstance inst = MakeInstance(q, 1024, 22);
  const size_t budget = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, inst.d, inst.repair, budget);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BagSetMax_BudgetSweep)
    ->RangeMultiplier(2)
    ->Range(2, 128)
    ->Complexity(benchmark::oNSquared);

void BM_BagSetMax_StarQuery(benchmark::State& state) {
  const ConjunctiveQuery q = MakeStarQuery(3);
  const RepairInstance inst =
      MakeInstance(q, static_cast<size_t>(state.range(0)), 23);
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, inst.d, inst.repair, 8);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(
      static_cast<int64_t>(inst.d.NumFacts() + inst.repair.NumFacts()));
}
BENCHMARK(BM_BagSetMax_StarQuery)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

// Brute-force contrast: runtime doubles per candidate repair fact.
void BM_BagSetMax_BruteForce(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const size_t candidates = static_cast<size_t>(state.range(0));
  Database d;
  d.AddFactOrDie("S", MakeTuple({1, 1}));
  Database dr;
  for (size_t i = 0; i < candidates; ++i) {
    if (i % 2 == 0) {
      dr.AddFactOrDie("R", MakeTuple({1, static_cast<Value>(i)}));
    } else {
      dr.AddFactOrDie("T", MakeTuple({1, 1, static_cast<Value>(i)}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceBagSetMax(q, d, dr, candidates));
  }
}
BENCHMARK(BM_BagSetMax_BruteForce)->DenseRange(4, 16, 2);

// The weighted-cost extension has the same asymptotics.
void BM_BagSetMax_WeightedCosts(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const RepairInstance inst =
      MakeInstance(q, static_cast<size_t>(state.range(0)), 24);
  RepairCosts costs;
  size_t i = 0;
  for (const Fact& f : inst.repair.AllFacts()) {
    costs[f] = 1 + (i++ % 3);
  }
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, inst.d, inst.repair, 8, &costs);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BagSetMax_WeightedCosts)->RangeMultiplier(4)->Range(256, 4096);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
