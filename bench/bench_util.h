#ifndef HIERARQ_BENCH_BENCH_UTIL_H_
#define HIERARQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark binaries. Each binary regenerates one
// paper artifact (see DESIGN.md §2 and EXPERIMENTS.md): it first prints a
// human-readable reproduction report (the paper's claimed values next to
// hierarq's measured ones), then runs its google-benchmark timing sweeps.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hierarq/data/storage.h"
#include "hierarq/obs/query_stats.h"
#include "hierarq/obs/trace.h"
#include "hierarq/util/simd.h"
#include "hierarq/util/timer.h"

namespace hierarq::bench {

/// Runs `fn` once to warm up (plan builds, scratch sizing), then
/// repeatedly for at least `seconds` of wall clock; returns invocations
/// per second. The shared harness behind every BENCH_*.json throughput
/// row — keep the warm-up/measure shape identical across emitters so
/// cross-binary numbers stay comparable.
template <typename Fn>
double MeasureRate(Fn&& fn, double seconds = 0.4) {
  fn();
  size_t iterations = 0;
  WallTimer timer;
  do {
    fn();
    ++iterations;
  } while (timer.ElapsedSeconds() < seconds);
  return static_cast<double>(iterations) / timer.ElapsedSeconds();
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n====================================================\n");
  std::printf("Experiment: %s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("====================================================\n");
}

inline void PrintRow(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s paper=%-14s measured=%s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

/// Collects named rows of numeric metrics and writes them as one JSON
/// document, so successive PRs can diff measured throughput machine-to-
/// machine (e.g. BENCH_algorithm1.json records ops/sec per storage
/// backend). The format is flat on purpose:
///   {"benchmark": "...", "storage": "...", "hardware_threads": N,
///    "rows": [{"name": "...", "simd": "...", "metric_a": 1.0, ...}, ...]}
/// The top-level "storage" field is the build's *default* backend; rows
/// measured under an explicit runtime backend append "/<backend>" to
/// their name (see StorageRow) so flat-vs-columnar A/B pairs sit side by
/// side in one document regardless of the build configuration. The
/// top-level "hardware_threads" is std::thread::hardware_concurrency()
/// — the first thing to check before comparing thread-scaling or
/// adaptive rows across machines (a 1-core CI container cannot show a
/// parallel speedup). Each row's "simd" string is the SIMD tier that was
/// *actually dispatched* while the row was measured (simd::ActiveLevel
/// at AddRow time), not the build-time or A/B-requested tier, so
/// adaptive-mode rows are interpretable after the fact; bench_compare
/// joins rows by name and only diffs numeric fields, so the tag never
/// trips the regression tripwire.
class JsonReport {
 public:
  JsonReport(std::string benchmark, std::string path)
      : benchmark_(std::move(benchmark)), path_(std::move(path)) {}

  /// Adds one row, stamping it with the currently dispatched SIMD tier;
  /// metrics render in insertion order.
  void AddRow(const std::string& name,
              std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back(
        Row{name, simd::LevelName(simd::ActiveLevel()), std::move(metrics)});
  }

  /// Writes the document; returns false (with a note on stderr) on I/O
  /// failure so benches never abort over a read-only working directory.
  bool WriteToFile() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark_.c_str());
    std::fprintf(f, "  \"storage\": \"%s\",\n", StorageBackend());
    std::fprintf(f, "  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"simd\": \"%s\"",
                   i == 0 ? "" : ",", rows_[i].name.c_str(),
                   rows_[i].simd.c_str());
      for (const auto& [key, value] : rows_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", path_.c_str());
    return true;
  }

  /// The compile-time *default* storage backend of AnnotatedRelation,
  /// recorded so runs under a non-standard build policy are
  /// self-describing.
  static const char* StorageBackend() {
    return StorageKindName(kDefaultStorageKind);
  }

  /// Row name for a measurement taken under an explicit runtime backend:
  /// "base/<backend>".
  static std::string StorageRow(const std::string& base, StorageKind kind) {
    return base + "/" + StorageKindName(kind);
  }

  /// Row name for a measurement under an explicit backend *and*
  /// intra-query thread count: "base/<backend>/t<threads>". Rows named
  /// this way should also record a numeric "threads" metric so
  /// bench_compare can join thread-scaling sweeps across snapshots.
  static std::string ThreadedRow(const std::string& base, StorageKind kind,
                                 size_t threads) {
    return StorageRow(base, kind) + "/t" + std::to_string(threads);
  }

 private:
  struct Row {
    std::string name;
    /// Dispatched SIMD tier at measurement time (simd::LevelName).
    std::string simd;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string benchmark_;
  std::string path_;
  std::vector<Row> rows_;
};

/// Measures `fn` (a full replay of some workload) untraced and then with
/// a `Tracer` installed, and records both as rows in `report`:
///   "instrumentation/untraced"  replays_per_sec
///   "instrumentation/traced"    replays_per_sec, overhead_ratio
/// `overhead_ratio` is untraced/traced rate (1.0 = free, 1.05 = 5%
/// slower). The untraced row is the one the CI tripwire guards — the
/// disabled emit points (one relaxed load each) must stay invisible; the
/// traced row documents the cost of actually recording.
template <typename Fn>
void AddInstrumentationOverheadRows(JsonReport* report, Fn&& fn) {
  const double untraced = MeasureRate(fn);
  obs::Tracer tracer;
  tracer.Install();
  const double traced = MeasureRate(fn);
  tracer.Uninstall();
  report->AddRow("instrumentation/untraced",
                 {{"replays_per_sec", untraced}});
  report->AddRow("instrumentation/traced",
                 {{"replays_per_sec", traced},
                  {"overhead_ratio", traced > 0.0 ? untraced / traced : 0.0}});
  std::printf("  instrumentation overhead: untraced=%.0f/s traced=%.0f/s "
              "(x%.3f)\n",
              untraced, traced, traced > 0.0 ? untraced / traced : 0.0);
}

/// Same shape for per-query accounting (obs/query_stats.h): `fn` with no
/// collector installed (the default — one thread_local load per run,
/// must stay invisible) versus with a `ScopedQueryStats` collector
/// counting every step:
///   "accounting/off"  replays_per_sec
///   "accounting/on"   replays_per_sec, overhead_ratio
/// The off row is the one the ≤2% budget guards; a regression here means
/// a runner lost its hoisted null check.
template <typename Fn>
void AddAccountingOverheadRows(JsonReport* report, Fn&& fn) {
  const double off = MeasureRate(fn);
  obs::QueryStats stats;
  double on;
  {
    obs::ScopedQueryStats scope(&stats);
    on = MeasureRate(fn);
  }
  report->AddRow("accounting/off", {{"replays_per_sec", off}});
  report->AddRow("accounting/on",
                 {{"replays_per_sec", on},
                  {"overhead_ratio", on > 0.0 ? off / on : 0.0}});
  std::printf("  accounting overhead: off=%.0f/s on=%.0f/s (x%.3f)\n",
              off, on, on > 0.0 ? off / on : 0.0);
}

/// Runs the report function, then google-benchmark.
#define HIERARQ_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                         \
    report_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                             \
    }                                                       \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace hierarq::bench

#endif  // HIERARQ_BENCH_BENCH_UTIL_H_
