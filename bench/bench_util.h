#ifndef HIERARQ_BENCH_BENCH_UTIL_H_
#define HIERARQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark binaries. Each binary regenerates one
// paper artifact (see DESIGN.md §2 and EXPERIMENTS.md): it first prints a
// human-readable reproduction report (the paper's claimed values next to
// hierarq's measured ones), then runs its google-benchmark timing sweeps.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace hierarq::bench {

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n====================================================\n");
  std::printf("Experiment: %s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("====================================================\n");
}

inline void PrintRow(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-44s paper=%-14s measured=%s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

/// Runs the report function, then google-benchmark.
#define HIERARQ_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                         \
    report_fn();                                            \
    ::benchmark::Initialize(&argc, argv);                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { \
      return 1;                                             \
    }                                                       \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace hierarq::bench

#endif  // HIERARQ_BENCH_BENCH_UTIL_H_
