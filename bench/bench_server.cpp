// Experiment N1 — the server front door: end-to-end request throughput
// through hierarq_server's wire protocol (loopback TCP, length-prefixed
// frames, async admission) rather than in-process EvalService calls.
//
// Claims emitted to BENCH_server.json for cross-PR tracking:
//   (a) framing tax: the native binary format beats JSON framing on the
//       same request stream (no number formatting / parsing per frame) —
//       the "server/count/native/*" row should be >= its json sibling;
//   (b) concurrency: throughput holds (1-core CI) or grows (multi-core)
//       as client count rises, because connection threads only read
//       frames and submitters do the evaluation — clients never
//       serialize behind each other's parses.
// Rows: requests/sec per (solver, wire format, client count), plus a
// ping row isolating pure framing + loopback cost from evaluation.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "hierarq/data/database.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/client.h"
#include "hierarq/net/server.h"
#include "hierarq/net/wire.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/data_gen.h"

namespace hierarq {
namespace {

constexpr const char* kQueryText = "Q() :- R(A,B), S(A,C)";

Database MakeWorkload() {
  const ConjunctiveQuery query = ParseQueryOrDie(kQueryText);
  Rng rng(17);
  DataGenOptions gen;
  // Small on purpose: the bench contrasts FRAMING costs (native vs
  // json), so per-request evaluation must not drown the wire tax.
  gen.tuples_per_relation = 200;
  gen.domain_size = 100;
  return RandomDatabaseForQuery(query, rng, gen);
}

/// `clients` threads hammer the server with synchronous count queries in
/// `format` framing for `seconds`; returns total requests/sec. Each
/// thread owns one connection (HierarqClient is single-threaded), so the
/// sweep measures exactly what N independent callers would see.
double MeasureRequestRate(uint16_t port, net::WireFormat format,
                          size_t clients, double seconds) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> requests{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, format] {
      net::HierarqClient client(format);
      if (!client.Connect("127.0.0.1", port).ok()) {
        return;
      }
      // Warm the connection (plan + annotation caches) outside the
      // timed window.
      (void)client.Query(net::SolverKind::kCount, kQueryText);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      uint64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.Query(net::SolverKind::kCount, kQueryText).ok()) {
          break;
        }
        ++mine;
      }
      requests.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_until(deadline);
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  return static_cast<double>(requests.load()) / seconds;
}

double MeasurePingRate(uint16_t port, double seconds) {
  net::HierarqClient client(net::WireFormat::kNative);
  if (!client.Connect("127.0.0.1", port).ok()) {
    return 0.0;
  }
  return bench::MeasureRate([&client] { (void)client.Ping(); }, seconds);
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("N1: hierarq_server — wire-protocol request throughput",
              "native framing >= json framing; clients do not serialize");
  bench::JsonReport report("server", "BENCH_server.json");

  Dictionary dict;
  const Database db = MakeWorkload();
  net::HierarqServer::Options options;
  net::HierarqServer server(options, VersionedDatabase(db), Database{},
                            &dict);
  if (const Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "bench_server: %s\n",
                 started.ToString().c_str());
    return;
  }
  std::printf("  workload: |D| = %zu facts, query %s, loopback port %u\n",
              db.NumFacts(), kQueryText,
              static_cast<unsigned>(server.port()));

  const double ping_rps = MeasurePingRate(server.port(), 0.3);
  PrintRow("ping round-trips (framing + loopback only)", "-",
           std::to_string(ping_rps) + " req/s");
  report.AddRow("server/ping/native/clients_1",
                {{"clients", 1.0}, {"requests_per_sec", ping_rps}});

  double native_1 = 0.0;
  double json_1 = 0.0;
  for (const net::WireFormat format :
       {net::WireFormat::kNative, net::WireFormat::kJson}) {
    const char* format_name =
        format == net::WireFormat::kNative ? "native" : "json";
    for (const size_t clients : {1, 2, 4}) {
      const double rps =
          MeasureRequestRate(server.port(), format, clients, 0.4);
      if (clients == 1) {
        (format == net::WireFormat::kNative ? native_1 : json_1) = rps;
      }
      char measured[64];
      std::snprintf(measured, sizeof(measured), "%9.1f req/s", rps);
      PrintRow("count via " + std::string(format_name) + ", " +
                   std::to_string(clients) + " client(s)",
               "-", measured);
      report.AddRow("server/count/" + std::string(format_name) +
                        "/clients_" + std::to_string(clients),
                    {{"clients", static_cast<double>(clients)},
                     {"requests_per_sec", rps}});
    }
  }
  if (json_1 > 0.0) {
    char measured[64];
    std::snprintf(measured, sizeof(measured), "%.2fx", native_1 / json_1);
    PrintRow("native vs json framing (1 client)", ">= 1x", measured);
  }
  PrintNote("requests_per_sec includes parse + plan-cache hit + replay; "
            "ping row is the framing floor.");

  server.Stop();
  report.WriteToFile();
}

void BM_Server_CountRoundTrip(benchmark::State& state) {
  Dictionary dict;
  net::HierarqServer::Options options;
  net::HierarqServer server(options, VersionedDatabase(MakeWorkload()),
                            Database{}, &dict);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  net::HierarqClient client(state.range(0) == 0 ? net::WireFormat::kNative
                                                : net::WireFormat::kJson);
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    state.SkipWithError("client failed to connect");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.Query(net::SolverKind::kCount, kQueryText));
  }
  state.counters["json"] = static_cast<double>(state.range(0));
  client.Close();
  server.Stop();
}
BENCHMARK(BM_Server_CountRoundTrip)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
