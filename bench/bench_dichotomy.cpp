// Experiments E6 + E7 — Theorem 4.4 and the dichotomy.
//
// E6: the reduction BCBS -> Bag-Set Maximization Decision is correct and
// the exhaustive decision procedure for non-hierarchical queries scales
// exponentially (NP-hardness side, W[1]-hardness in k).
// E7: the crossover — on matched instance sizes, the hierarchical query is
// solved by the unified polynomial algorithm while the non-hierarchical
// one (which Algorithm 1 provably rejects) needs the exponential solver.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/core/bagset.h"
#include "hierarq/reductions/bagset_reduction.h"
#include "hierarq/reductions/bcbs.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Perf-trajectory rows (BENCH_dichotomy.json): the polynomial side of the
/// dichotomy — Bag-Set Maximization on the hierarchical Q_h — per storage
/// backend per scale; the bag-max monoid's vector values stress the
/// backends' annotation payload handling, unlike the scalar monoids of the
/// other emitters.
void EmitThroughputJson() {
  bench::JsonReport report("dichotomy", "BENCH_dichotomy.json");
  const ConjunctiveQuery q = MakeQh();
  constexpr size_t kBudget = 8;

  std::printf("  hierarchical BagSetMax throughput (default storage=%s):\n",
              bench::JsonReport::StorageBackend());
  for (size_t tuples : {1000, 4000, 16000}) {
    Rng rng(75);
    DataGenOptions opts;
    opts.tuples_per_relation = tuples;
    opts.domain_size = std::max<size_t>(4, tuples / 4);
    const RepairInstance inst = RandomRepairInstance(q, rng, opts, 0.6);
    const double num_facts =
        static_cast<double>(inst.d.NumFacts() + inst.repair.NumFacts());

    for (StorageKind kind : kAllStorageKinds) {
      const double solves_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(MaximizeBagSet(q, inst.d, inst.repair,
                                                kBudget, /*costs=*/nullptr,
                                                kind));
      });
      std::printf("    |D|+|Dr| = %-8.0f %-9s %9.0f solves/sec\n", num_facts,
                  StorageKindName(kind), solves_per_sec);
      report.AddRow(bench::JsonReport::StorageRow(
                        "qh_budget8/" + std::to_string(
                                            static_cast<size_t>(num_facts)),
                        kind),
                    {{"num_facts", num_facts},
                     {"solves_per_sec", solves_per_sec},
                     {"ops_per_sec", solves_per_sec * num_facts}});
    }
  }
  report.WriteToFile();
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E6/E7: Theorem 4.4 — NP-hardness and the dichotomy",
              "BagSetMax: poly for hierarchical, NP-complete otherwise");

  // Reduction round-trip on a batch of random graphs.
  Rng rng(71);
  size_t agreements = 0;
  size_t trials = 0;
  for (int round = 0; round < 10; ++round) {
    const size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 1));
    const size_t k = 1 + static_cast<size_t>(rng.UniformInt(0, 1));
    const Graph g = RandomGraph(rng, n, 0.5);
    auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, k);
    if (!inst.ok()) {
      continue;
    }
    ++trials;
    agreements += DecideBagSetMaxBruteForce(MakeQnh(), *inst) ==
                  HasBalancedBiclique(g, k);
  }
  PrintRow("reduction round-trips (BCBS <-> BagSetMax)",
           "all agree",
           std::to_string(agreements) + "/" + std::to_string(trials) +
               " agree");

  // Algorithm 1 must reject the non-hierarchical query.
  auto rejected = MaximizeBagSet(MakeQnh(), Database{}, Database{}, 1);
  PrintRow("Algorithm 1 on Q_nh", "not-hierarchical error",
           rejected.ok() ? "UNEXPECTED SUCCESS"
                         : std::string(StatusCodeName(
                               rejected.status().code())));
  PrintNote("Timing: hierarchical solve grows polynomially; the");
  PrintNote("brute-force decision for Q_nh doubles per repair candidate.");
  EmitThroughputJson();
}

// Polynomial side: hierarchical query, unified algorithm.
void BM_Dichotomy_HierarchicalPoly(benchmark::State& state) {
  const ConjunctiveQuery q = MakeQh();  // E(X,Y), F(Y,Z) — hierarchical.
  Rng rng(72);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(4, opts.tuples_per_relation / 4);
  const RepairInstance inst = RandomRepairInstance(q, rng, opts, 0.6);
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, inst.d, inst.repair, 8);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(
      static_cast<int64_t>(inst.d.NumFacts() + inst.repair.NumFacts()));
}
BENCHMARK(BM_Dichotomy_HierarchicalPoly)
    ->RangeMultiplier(2)
    ->Range(8, 4096)
    ->Complexity(benchmark::oN);

// Exponential side: non-hierarchical query, exhaustive decision on the
// Theorem 4.4 instance family (reduced from G(n, 0.5), k = 2).
void BM_Dichotomy_NonHierarchicalExhaustive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(73);
  const Graph g = RandomGraph(rng, n, 0.5);
  auto inst = ReduceBcbsToBagSetMax(MakeQnh(), g, 2);
  if (!inst.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideBagSetMaxBruteForce(MakeQnh(), *inst));
  }
  state.counters["repair_facts"] =
      static_cast<double>(inst->repair.NumFacts());
}
BENCHMARK(BM_Dichotomy_NonHierarchicalExhaustive)->DenseRange(3, 9, 1);

// The BCBS solver itself (the problem the hardness comes from): C(n,k)
// growth in k — the W[1]-hardness axis.
void BM_Dichotomy_BcbsParameterK(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(74);
  const Graph g = PlantedBicliqueGraph(rng, 24, k, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasBalancedBiclique(g, k));
  }
}
BENCHMARK(BM_Dichotomy_BcbsParameterK)->DenseRange(1, 6, 1);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
