// Experiment E5 — Theorem 5.16: #Sat (and hence Shapley values) in
// O((|Dx| + |Dn|) · |Dn|²) time and O((|Dx| + |Dn|) · |Dn|) space.
//
// Sweeps: |Dn| with |Dx| fixed (expect quadratic), |Dx| with |Dn| fixed
// (expect linear), a BigUint-vs-uint64 counter ablation (exactness tax),
// full Shapley value of one fact, and the subset brute force blowing up.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/shapley.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

struct ShapleyInstance {
  Database exo;
  Database endo;
};

ShapleyInstance MakeInstance(const ConjunctiveQuery& q, size_t tuples,
                             double endo_fraction, uint64_t seed) {
  Rng rng(seed);
  DataGenOptions opts;
  opts.tuples_per_relation = tuples;
  opts.domain_size = std::max<size_t>(8, tuples / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  ShapleyInstance out;
  auto [exo, endo] = SplitExoEndo(db, rng, endo_fraction);
  out.exo = std::move(exo);
  out.endo = std::move(endo);
  return out;
}

/// #Sat with a fast (modular) uint64 counter — the ablation arm.
template <typename Count>
void RunSatCountWith(const ConjunctiveQuery& q, const ShapleyInstance& inst,
                     benchmark::State& state) {
  const size_t n = inst.endo.NumFacts();
  const SatCountMonoid<Count> monoid(n);
  auto combined = inst.exo.UnionWith(inst.endo);
  for (auto _ : state) {
    auto result = RunAlgorithm1OnQuery<SatCountMonoid<Count>>(
        q, monoid, *combined, [&](const Fact& f) {
          return inst.exo.ContainsFact(f) ? monoid.One() : monoid.Star();
        });
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
  state.counters["endo"] = static_cast<double>(n);
}

void EmitThroughputJson();

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E5: Theorem 5.16 — #Sat/Shapley in O((|Dx|+|Dn|)·|Dn|^2)",
              "quadratic in |Dn|, linear in |Dx|; exact BigUint counts");
  const ConjunctiveQuery q = MakePaperQuery();
  const ShapleyInstance inst = MakeInstance(q, 4, 0.8, 31);
  auto fast = CountSatBoth(q, inst.exo, inst.endo);
  const auto slow = BruteForceCountSat(q, inst.exo, inst.endo);
  PrintRow("#Sat vectors, algorithm vs enumeration", "equal",
           fast.ok() && fast->on_true == slow.on_true &&
                   fast->on_false == slow.on_false
               ? "equal"
               : "MISMATCH");
  // Shapley efficiency on the Figure 1 database: Q flips from false to
  // true, so the values must sum to exactly 1.
  Database fig1;
  fig1.AddFactOrDie("R", MakeTuple({1, 5}));
  fig1.AddFactOrDie("S", MakeTuple({1, 1}));
  fig1.AddFactOrDie("S", MakeTuple({1, 2}));
  fig1.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  auto values = AllShapleyValues(q, Database{}, fig1);
  if (values.ok()) {
    Fraction sum;
    for (const auto& [f, v] : *values) {
      sum += v;
    }
    PrintRow("sum of Shapley values on Fig.1 D (efficiency)", "1",
             sum.ToString());
  }
  PrintNote("EndoSweep expects ~quadratic, ExoSweep ~linear growth.");
  EmitThroughputJson();
}

/// Steady-state #Sat throughput (the Shapley inner loop, amortized through
/// one Evaluator) recorded in BENCH_shapley.json for the perf trajectory.
void EmitThroughputJson() {
  bench::JsonReport report("shapley", "BENCH_shapley.json");
  const ConjunctiveQuery q = MakePaperQuery();
  std::printf("  steady-state #Sat throughput (storage=%s):\n",
              bench::JsonReport::StorageBackend());
  for (size_t endo : {16, 32, 64}) {
    const ShapleyInstance inst =
        MakeInstance(q, endo / 3 + 1, 1.0, 35 + endo);
    Evaluator evaluator;
    const double counts_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(CountSat(evaluator, q, inst.exo, inst.endo));
    });
    std::printf("    |Dn| = %-6zu %10.1f #Sat vectors/sec\n",
                inst.endo.NumFacts(), counts_per_sec);
    report.AddRow("satcount/endo_" + std::to_string(inst.endo.NumFacts()),
                  {{"endo_facts", static_cast<double>(inst.endo.NumFacts())},
                   {"exo_facts", static_cast<double>(inst.exo.NumFacts())},
                   {"satcounts_per_sec", counts_per_sec}});
  }
  report.WriteToFile();
}

void BM_SatCount_EndoSweep_BigUint(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  // tuples chosen so |Dn| tracks range(0): endo fraction 1.0.
  const ShapleyInstance inst = MakeInstance(
      q, static_cast<size_t>(state.range(0)) / 3 + 1, 1.0, 32);
  RunSatCountWith<BigUint>(q, inst, state);
}
BENCHMARK(BM_SatCount_EndoSweep_BigUint)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_SatCount_EndoSweep_Uint64(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const ShapleyInstance inst = MakeInstance(
      q, static_cast<size_t>(state.range(0)) / 3 + 1, 1.0, 32);
  RunSatCountWith<uint64_t>(q, inst, state);
}
BENCHMARK(BM_SatCount_EndoSweep_Uint64)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity(benchmark::oNSquared);

void BM_SatCount_ExoSweep(benchmark::State& state) {
  // |Dn| pinned small; |Dx| grows.
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(33);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database big = RandomDatabaseForQuery(q, rng, opts);
  ShapleyInstance inst;
  size_t taken = 0;
  for (const Fact& f : big.AllFacts()) {
    if (taken < 16) {
      inst.endo.AddFactOrDie(f.relation, f.tuple);
      ++taken;
    } else {
      inst.exo.AddFactOrDie(f.relation, f.tuple);
    }
  }
  RunSatCountWith<uint64_t>(q, inst, state);
  state.SetComplexityN(static_cast<int64_t>(inst.exo.NumFacts()));
}
BENCHMARK(BM_SatCount_ExoSweep)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_Shapley_SingleFact(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const ShapleyInstance inst = MakeInstance(
      q, static_cast<size_t>(state.range(0)) / 3 + 1, 1.0, 34);
  const Fact fact = inst.endo.AllFacts().front();
  for (auto _ : state) {
    auto v = ShapleyValue(q, inst.exo, inst.endo, fact);
    benchmark::DoNotOptimize(v);
  }
  state.counters["endo"] = static_cast<double>(inst.endo.NumFacts());
}
BENCHMARK(BM_Shapley_SingleFact)->RangeMultiplier(2)->Range(8, 128);

// Exponential contrast: subset enumeration over |Dn| facts.
void BM_SatCount_BruteForce(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const size_t n = static_cast<size_t>(state.range(0));
  Database endo;
  for (size_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0:
        endo.AddFactOrDie("R", MakeTuple({1, static_cast<Value>(i)}));
        break;
      case 1:
        endo.AddFactOrDie("S", MakeTuple({1, static_cast<Value>(i)}));
        break;
      default:
        endo.AddFactOrDie("T", MakeTuple({1, static_cast<Value>(i), 0}));
        break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceCountSat(q, Database{}, endo));
  }
}
BENCHMARK(BM_SatCount_BruteForce)->DenseRange(4, 16, 2);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
