// Experiment E2 — Examples 5.2-5.4 and the elimination procedure
// (Proposition 5.1): plan construction is polynomial in the query size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/gyo.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E2: Examples 5.2-5.4 — the elimination procedure",
              "Eq.(1) reduces (6 steps); the path query gets stuck; the "
              "disconnected query reduces (3 steps)");

  {
    const ConjunctiveQuery q = MakePaperQuery();
    auto plan = EliminationPlan::Build(q);
    PrintRow("Example 5.2: steps to reduce Eq.(1)", "6",
             plan.ok() ? std::to_string(plan->steps().size()) : "stuck");
    if (plan.ok()) {
      std::printf("%s\n", plan->ToString(q.variables()).c_str());
    }
  }
  {
    const ConjunctiveQuery q =
        ParseQueryOrDie("Q() :- R(A,B), S(B,C), T(C,D)");
    auto plan = EliminationPlan::Build(q);
    PrintRow("Example 5.3: path query R,S,T", "stuck (non-hierarchical)",
             plan.ok() ? "reduced (UNEXPECTED)" : "stuck");
  }
  {
    const ConjunctiveQuery q = ParseQueryOrDie("Q() :- R(A), S(B)");
    auto plan = EliminationPlan::Build(q);
    PrintRow("Example 5.4: disconnected R(A), S(B)", "3 steps",
             plan.ok() ? std::to_string(plan->steps().size()) : "stuck");
  }
  PrintNote("Sweeps: plan construction time vs query size (polynomial).");
}

void BM_Elimination_NestedChain(benchmark::State& state) {
  const ConjunctiveQuery q =
      MakeNestedChain(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto plan = EliminationPlan::Build(q);
    benchmark::DoNotOptimize(plan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Elimination_NestedChain)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_Elimination_Star(benchmark::State& state) {
  const ConjunctiveQuery q =
      MakeStarQuery(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto plan = EliminationPlan::Build(q);
    benchmark::DoNotOptimize(plan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Elimination_Star)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_Elimination_RandomHierarchical(benchmark::State& state) {
  Rng rng(21);
  RandomHierarchicalOptions opts;
  opts.num_variables = static_cast<size_t>(state.range(0));
  const ConjunctiveQuery q = MakeRandomHierarchical(rng, opts);
  for (auto _ : state) {
    auto plan = EliminationPlan::Build(q);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Elimination_RandomHierarchical)
    ->RangeMultiplier(2)
    ->Range(2, 32);

void BM_Hierarchical_Test(benchmark::State& state) {
  const ConjunctiveQuery q =
      MakeNestedChain(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsHierarchical(q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hierarchical_Test)->RangeMultiplier(2)->Range(2, 64);

void BM_Gyo_Acyclicity(benchmark::State& state) {
  const ConjunctiveQuery q =
      MakeNonHierarchicalChain(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsAcyclic(q));
  }
}
BENCHMARK(BM_Gyo_Acyclicity)->RangeMultiplier(2)->Range(2, 32);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
