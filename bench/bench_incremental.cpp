// Experiment I1 — the incremental subsystem: delta-maintained Algorithm 1
// views against from-scratch replay.
//
// The claim (Kara, Nikolic, Olteanu & Zhang: hierarchical queries admit
// constant/sublinear single-tuple update time): a materialized
// IncrementalView absorbs a single-fact DeltaBatch in O(batch · depth)
// monoid operations, while re-running Algorithm 1 costs O(|D|)
// (Theorem 6.7) — so update latency should separate from database size,
// and the gap should grow linearly in |D|.
//
// Emits BENCH_incremental.json: for |D| ∈ {30k, 100k, 300k} and batch
// sizes {1, 16, 256}, the maintained-update rate vs the from-scratch
// replay rate (apply the batch, annotate, replay — what a caller without
// the subsystem would do between queries), for the count monoid (⊕-inverse
// fast path) plus a probability row (group-refold fallback path).
// Acceptance floor tracked across PRs: count @ |D|=100k, batch=1 must hold
// >= 10x. Compare snapshots with tools/bench_compare.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/incremental/incremental_evaluator.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

Database MakeWorkload(size_t total_facts) {
  Rng rng(91);
  DataGenOptions opts;
  opts.tuples_per_relation = total_facts / 3;  // Paper query: R, S, T.
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  return RandomDatabaseForQuery(MakePaperQuery(), rng, opts);
}

/// A deterministic endless update stream: toggles presence of a fixed
/// window of the initial facts (delete present, re-insert absent), so the
/// database size stays within `window` of the start forever.
class ToggleStream {
 public:
  ToggleStream(const Database& db, size_t window) {
    const std::vector<Fact> all = db.AllFacts();
    Rng rng(17);
    const std::vector<size_t> picks =
        rng.SampleWithoutReplacement(all.size(), std::min(window, all.size()));
    for (size_t index : picks) {
      facts_.push_back(all[index]);
    }
    present_.assign(facts_.size(), true);
  }

  DeltaBatch NextBatch(size_t ops) {
    DeltaBatch batch;
    for (size_t i = 0; i < ops; ++i) {
      const Fact& fact = facts_[cursor_];
      if (present_[cursor_]) {
        batch.Delete(fact.relation, fact.tuple);
      } else {
        batch.Insert(fact.relation, fact.tuple, 0.5);
      }
      present_[cursor_] = !present_[cursor_];
      cursor_ = (cursor_ + 1) % facts_.size();
    }
    return batch;
  }

 private:
  std::vector<Fact> facts_;
  std::vector<bool> present_;
  size_t cursor_ = 0;
};

struct PathRates {
  double incremental_batches_per_sec = 0;
  double scratch_batches_per_sec = 0;
  double speedup = 0;
};

/// Measures one (monoid, |D|, batch size) cell: maintained updates vs
/// apply-then-re-evaluate from scratch, over identical toggle streams.
template <TwoMonoid M>
PathRates MeasureCell(const M& monoid,
                      typename IncrementalView<M>::Annotator annotator,
                      const Database& db, size_t batch_size) {
  using K = typename M::value_type;
  PathRates rates;
  {
    VersionedDatabase versioned(db);
    IncrementalEvaluator<M> incremental(monoid, &versioned, annotator);
    auto handle = incremental.Attach(MakePaperQuery());
    HIERARQ_CHECK(handle.ok());
    ToggleStream stream(db, 4096);
    rates.incremental_batches_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(
          incremental.ApplyDelta(stream.NextBatch(batch_size)));
      versioned.TruncateLog(versioned.generation());  // Keep memory flat.
    });
  }
  {
    VersionedDatabase versioned(db);
    const ConjunctiveQuery query = MakePaperQuery();
    Evaluator scratch;
    const std::function<K(const Fact&)> scratch_annotator =
        [&versioned, &annotator](const Fact& fact) {
          return annotator(fact, versioned.WeightOf(fact));
        };
    ToggleStream stream(db, 4096);
    rates.scratch_batches_per_sec = bench::MeasureRate([&] {
      versioned.Apply(stream.NextBatch(batch_size));
      versioned.TruncateLog(versioned.generation());
      benchmark::DoNotOptimize(
          scratch.Evaluate(query, monoid, versioned.facts(),
                           scratch_annotator));
    });
  }
  rates.speedup =
      rates.incremental_batches_per_sec / rates.scratch_batches_per_sec;
  return rates;
}

void AddCellRow(bench::JsonReport& report, const std::string& name,
                size_t num_facts, size_t batch_size, const PathRates& rates) {
  report.AddRow(name,
                {{"num_facts", static_cast<double>(num_facts)},
                 {"batch_size", static_cast<double>(batch_size)},
                 {"incremental_batches_per_sec",
                  rates.incremental_batches_per_sec},
                 {"scratch_batches_per_sec", rates.scratch_batches_per_sec},
                 {"speedup", rates.speedup}});
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("I1: incremental views — update latency vs from-scratch replay",
              "single-tuple updates are O(depth), replay is O(|D|): the "
              "gap grows with |D|");
  bench::JsonReport report("incremental", "BENCH_incremental.json");

  const auto ones = [](const Fact&, double) -> uint64_t { return 1; };
  for (size_t total : {30000u, 100000u, 300000u}) {
    const Database db = MakeWorkload(total);
    std::printf("  |D| = %zu facts\n", db.NumFacts());
    for (size_t batch_size : {1u, 16u, 256u}) {
      const PathRates rates =
          MeasureCell(CountMonoid{}, ones, db, batch_size);
      char measured[128];
      std::snprintf(measured, sizeof(measured),
                    "%9.0f upd/s vs %7.1f replay/s  (%.0fx)",
                    rates.incremental_batches_per_sec * batch_size,
                    rates.scratch_batches_per_sec, rates.speedup);
      PrintRow("    count, batch=" + std::to_string(batch_size),
               batch_size == 1 ? ">= 10x @ 100k" : "grows with |D|/batch",
               measured);
      AddCellRow(report,
                 "update/count/D=" + std::to_string(db.NumFacts()) +
                     "/batch=" + std::to_string(batch_size),
                 db.NumFacts(), batch_size, rates);
    }
  }

  // The non-invertible fallback (PQE): group refolds instead of O(1)
  // inverse updates — still far from O(|D|).
  {
    const Database db = MakeWorkload(100000);
    const auto weights = [](const Fact&, double weight) { return weight; };
    const PathRates rates = MeasureCell(ProbMonoid{}, weights, db, 1);
    char measured[128];
    std::snprintf(measured, sizeof(measured),
                  "%9.0f upd/s vs %7.1f replay/s  (%.0fx)",
                  rates.incremental_batches_per_sec,
                  rates.scratch_batches_per_sec, rates.speedup);
    PrintRow("    pqe (refold fallback), batch=1", "sublinear", measured);
    AddCellRow(report, "update/pqe/D=" + std::to_string(db.NumFacts()) +
                           "/batch=1",
               db.NumFacts(), 1, rates);
  }
  PrintNote("scratch pays annotate + replay per batch (the no-subsystem");
  PrintNote("alternative); the view pays per *changed key* per level.");
  report.WriteToFile();
}

void BM_Incremental_SingleUpdate(benchmark::State& state) {
  const Database db = MakeWorkload(static_cast<size_t>(state.range(0)));
  VersionedDatabase versioned(db);
  IncrementalEvaluator<CountMonoid> incremental(
      CountMonoid{}, &versioned,
      [](const Fact&, double) -> uint64_t { return 1; });
  auto handle = incremental.Attach(MakePaperQuery());
  HIERARQ_CHECK(handle.ok());
  ToggleStream stream(db, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(incremental.ApplyDelta(stream.NextBatch(1)));
    versioned.TruncateLog(versioned.generation());
  }
  state.counters["num_facts"] = static_cast<double>(db.NumFacts());
}
BENCHMARK(BM_Incremental_SingleUpdate)
    ->Arg(30000)
    ->Arg(100000)
    ->Arg(300000)
    ->UseRealTime();

void BM_Incremental_ScratchReplayBaseline(benchmark::State& state) {
  const Database db = MakeWorkload(static_cast<size_t>(state.range(0)));
  VersionedDatabase versioned(db);
  const ConjunctiveQuery query = MakePaperQuery();
  Evaluator scratch;
  const std::function<uint64_t(const Fact&)> annotator =
      [](const Fact&) -> uint64_t { return 1; };
  ToggleStream stream(db, 4096);
  for (auto _ : state) {
    versioned.Apply(stream.NextBatch(1));
    versioned.TruncateLog(versioned.generation());
    benchmark::DoNotOptimize(scratch.Evaluate(
        query, CountMonoid{}, versioned.facts(), annotator));
  }
  state.counters["num_facts"] = static_cast<double>(db.NumFacts());
}
BENCHMARK(BM_Incremental_ScratchReplayBaseline)
    ->Arg(30000)
    ->Arg(100000)
    ->UseRealTime();

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
