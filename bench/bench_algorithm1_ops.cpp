// Experiment E8 — Theorem 6.7: Algorithm 1 performs O(|D|) ⊕/⊗ operations
// regardless of the 2-monoid.
//
// Instruments the counting monoid with the CountingMonoid wrapper and
// prints measured operation counts against |D| for several query shapes.
// The ratio ops/|D| must stay bounded by a small constant as |D| grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/util/timer.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

size_t MeasureOps(const ConjunctiveQuery& q, const Database& db) {
  const CountingMonoid<CountMonoid> monoid{CountMonoid{}};
  auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
      q, monoid, db, [](const Fact&) -> uint64_t { return 1; });
  if (!result.ok()) {
    return 0;
  }
  return monoid.total_count();
}

void EmitThroughputJson();

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E8: Theorem 6.7 — O(|D|) monoid operations",
              "total #(⊕ and ⊗) applications is linear in |D|");
  struct Shape {
    const char* name;
    ConjunctiveQuery query;
  };
  const Shape shapes[] = {
      {"paper query Eq.(1)", MakePaperQuery()},
      {"star(4)", MakeStarQuery(4)},
      {"nested chain(5)", MakeNestedChain(5)},
  };
  for (const Shape& shape : shapes) {
    std::printf("  query: %s\n", shape.name);
    for (size_t tuples : {100, 1000, 10000}) {
      Rng rng(81);
      DataGenOptions opts;
      opts.tuples_per_relation = tuples;
      opts.domain_size = std::max<size_t>(8, tuples / 4);
      const Database db = RandomDatabaseForQuery(shape.query, rng, opts);
      const size_t ops = MeasureOps(shape.query, db);
      char measured[128];
      std::snprintf(measured, sizeof(measured), "%zu ops (%.2f per fact)",
                    ops, static_cast<double>(ops) /
                             static_cast<double>(db.NumFacts()));
      PrintRow("    |D| = " + std::to_string(db.NumFacts()),
               "O(|D|), flat ratio", measured);
    }
  }
  PrintNote("The per-fact ratio stays flat as |D| grows 100x: Theorem 6.7.");
  EmitThroughputJson();
}

/// Measures steady-state Algorithm 1 throughput (amortized through an
/// Evaluator: cached plan, reused relation buffers) and records it in
/// BENCH_algorithm1.json so later PRs have a perf trajectory to compare
/// against. "ops" here are processed facts: evaluations/sec × |D|.
void EmitThroughputJson() {
  bench::JsonReport report("algorithm1_ops", "BENCH_algorithm1.json");
  const ConjunctiveQuery q = MakePaperQuery();
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });

  std::printf("  steady-state throughput (storage=%s):\n",
              bench::JsonReport::StorageBackend());
  // Sizes start where the working set leaves cache — below that the run is
  // annotation-bound and storage choice barely registers.
  for (size_t tuples : {10000, 30000, 100000}) {
    Rng rng(83);
    DataGenOptions opts;
    opts.tuples_per_relation = tuples;
    opts.domain_size = std::max<size_t>(8, tuples / 4);
    const Database db = RandomDatabaseForQuery(q, rng, opts);

    Evaluator evaluator;
    const double evals_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(
          evaluator.Evaluate<CountMonoid>(q, monoid, db, annotate));
    });
    const double facts_per_sec =
        evals_per_sec * static_cast<double>(db.NumFacts());
    std::printf("    |D| = %-8zu %10.0f evals/sec  %12.3e facts/sec\n",
                db.NumFacts(), evals_per_sec, facts_per_sec);
    report.AddRow("paper_query/" + std::to_string(db.NumFacts()),
                  {{"num_facts", static_cast<double>(db.NumFacts())},
                   {"evals_per_sec", evals_per_sec},
                   {"ops_per_sec", facts_per_sec}});
  }
  report.WriteToFile();
}

void BM_Algorithm1_OpCountOverhead(benchmark::State& state) {
  // Timing with the counting wrapper vs without: the wrapper's overhead is
  // a pair of increments, so the delta shows instrumentation cost only.
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(82);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureOps(q, db));
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Algorithm1_OpCountOverhead)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
