// Experiment E8 — Theorem 6.7: Algorithm 1 performs O(|D|) ⊕/⊗ operations
// regardless of the 2-monoid.
//
// Instruments the counting monoid with the CountingMonoid wrapper and
// prints measured operation counts against |D| for several query shapes.
// The ratio ops/|D| must stay bounded by a small constant as |D| grows.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/simd.h"
#include "hierarq/util/timer.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

size_t MeasureOps(const ConjunctiveQuery& q, const Database& db) {
  const CountingMonoid<CountMonoid> monoid{CountMonoid{}};
  auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
      q, monoid, db, [](const Fact&) -> uint64_t { return 1; });
  if (!result.ok()) {
    return 0;
  }
  return monoid.total_count();
}

void EmitThroughputJson();
void EmitThreadScalingRows(bench::JsonReport* report,
                           const ConjunctiveQuery& q, const Database& db);
void EmitAdaptiveRows(bench::JsonReport* report, const ConjunctiveQuery& q,
                      const Database& db);
void EmitSimdKernelRows(bench::JsonReport* report,
                        const ConjunctiveQuery& q, const Database& db);

/// The shared random instance of the paper query at `tuples` facts per
/// relation — seeded identically everywhere so every emitter section
/// (and every PR's snapshot) measures the same database.
Database PaperQueryDatabase(const ConjunctiveQuery& q, size_t tuples) {
  Rng rng(83);
  DataGenOptions opts;
  opts.tuples_per_relation = tuples;
  opts.domain_size = std::max<size_t>(8, tuples / 4);
  return RandomDatabaseForQuery(q, rng, opts);
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E8: Theorem 6.7 — O(|D|) monoid operations",
              "total #(⊕ and ⊗) applications is linear in |D|");
  struct Shape {
    const char* name;
    ConjunctiveQuery query;
  };
  const Shape shapes[] = {
      {"paper query Eq.(1)", MakePaperQuery()},
      {"star(4)", MakeStarQuery(4)},
      {"nested chain(5)", MakeNestedChain(5)},
  };
  for (const Shape& shape : shapes) {
    std::printf("  query: %s\n", shape.name);
    for (size_t tuples : {100, 1000, 10000}) {
      Rng rng(81);
      DataGenOptions opts;
      opts.tuples_per_relation = tuples;
      opts.domain_size = std::max<size_t>(8, tuples / 4);
      const Database db = RandomDatabaseForQuery(shape.query, rng, opts);
      const size_t ops = MeasureOps(shape.query, db);
      char measured[128];
      std::snprintf(measured, sizeof(measured), "%zu ops (%.2f per fact)",
                    ops, static_cast<double>(ops) /
                             static_cast<double>(db.NumFacts()));
      PrintRow("    |D| = " + std::to_string(db.NumFacts()),
               "O(|D|), flat ratio", measured);
    }
  }
  PrintNote("The per-fact ratio stays flat as |D| grows 100x: Theorem 6.7.");
  EmitThroughputJson();
}

/// Measures steady-state Algorithm 1 throughput (amortized through an
/// Evaluator: cached plan, reused relation buffers) per runtime storage
/// backend and records flat-vs-columnar A/B rows in BENCH_algorithm1.json
/// so later PRs have a perf trajectory to compare against. Two measures
/// per (size, backend):
///   * evals_per_sec — full evaluation: base-relation annotation + rule
///     replay (the per-request cost of a cold database);
///   * replays_per_sec — data-phase replay only, against a pre-annotated
///     pool (AssignFrom copy + Rule 1/Rule 2 execution): the measure the
///     columnar projection fast path targets, since annotation matching
///     is identical across backends.
/// "ops" are processed facts: evaluations/sec × |D|.
void EmitThroughputJson() {
  bench::JsonReport report("algorithm1_ops", "BENCH_algorithm1.json");
  const ConjunctiveQuery q = MakePaperQuery();
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };

  std::printf("  steady-state throughput (default storage=%s):\n",
              bench::JsonReport::StorageBackend());
  // Scales target |D| ≈ 30k / 100k / 300k total facts (the paper query
  // has three relations); below that the run is annotation-bound and
  // storage choice barely registers. The biggest instance is built once
  // and shared with the thread-scaling and SIMD sections below.
  const Database big_db = PaperQueryDatabase(q, 100000);
  const auto measure_size = [&](const Database& db) {
    for (StorageKind kind : kAllStorageKinds) {
      Evaluator evaluator(kind);
      const double evals_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(
            evaluator.Evaluate<CountMonoid>(q, monoid, db, annotate));
      });
      const double facts_per_sec =
          evals_per_sec * static_cast<double>(db.NumFacts());

      // Replay-only: annotate once into a shared pool, then re-run the
      // data phase per iteration (the service-layer hot loop).
      auto plan = evaluator.GetPlan(q);
      const AnnotationPool<uint64_t> pool = AnnotateForQuerySet<uint64_t>(
          {&q}, db, annotate, plus, kind);
      const auto bases = ResolveBases<uint64_t>(q, pool);
      const double replays_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(
            evaluator.ReplayPlan(**plan, monoid, q, bases));
      });

      std::printf(
          "    |D| = %-8zu %-9s %9.0f evals/sec  %9.0f replays/sec  "
          "%11.3e facts/sec\n",
          db.NumFacts(), StorageKindName(kind), evals_per_sec,
          replays_per_sec, facts_per_sec);
      report.AddRow(
          bench::JsonReport::StorageRow(
              "paper_query/" + std::to_string(db.NumFacts()), kind),
          {{"num_facts", static_cast<double>(db.NumFacts())},
           {"threads", 1.0},
           {"evals_per_sec", evals_per_sec},
           {"replays_per_sec", replays_per_sec},
           {"ops_per_sec", facts_per_sec}});
    }
  };
  for (size_t tuples : {10000, 33334}) {
    measure_size(PaperQueryDatabase(q, tuples));
  }
  measure_size(big_db);
  EmitThreadScalingRows(&report, q, big_db);
  EmitAdaptiveRows(&report, q, big_db);
  EmitSimdKernelRows(&report, q, big_db);

  // Instrumentation overhead (obs/): the same paper-query replay with
  // the tracer uninstalled (the production default — must be free) and
  // installed (records one step event per elimination step per replay).
  {
    Evaluator evaluator(kDefaultStorageKind);
    auto plan = evaluator.GetPlan(q);
    const AnnotationPool<uint64_t> pool = AnnotateForQuerySet<uint64_t>(
        {&q}, big_db, annotate, plus, kDefaultStorageKind);
    const auto bases = ResolveBases<uint64_t>(q, pool);
    bench::AddInstrumentationOverheadRows(&report, [&] {
      benchmark::DoNotOptimize(
          evaluator.ReplayPlan(**plan, monoid, q, bases));
    });
    // Per-query accounting overhead on the same replay: collector off
    // (the served default unless the client asks or the slow-query log
    // is armed) vs on. The off row carries the ≤2% budget.
    bench::AddAccountingOverheadRows(&report, [&] {
      benchmark::DoNotOptimize(
          evaluator.ReplayPlan(**plan, monoid, q, bases));
    });
  }
  report.WriteToFile();
}

/// Intra-query thread scaling: replay-only throughput of the single
/// biggest instance (|D| ≈ 300k) per backend × thread count — the
/// threads×backend rows the parallel Rule 1/Rule 2 fan-out
/// (core/parallel.h) targets. threads=1 is the bit-identical serial
/// engine; shard-parallel runs are deterministic for any thread count.
/// Note: scaling only shows on hosts with that many physical cores
/// (hardware_concurrency is recorded on every row).
void EmitThreadScalingRows(bench::JsonReport* report,
                           const ConjunctiveQuery& q, const Database& db) {
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const double hw =
      static_cast<double>(std::thread::hardware_concurrency());

  std::printf("  intra-query thread scaling (|D| = %zu, hw threads=%.0f):\n",
              db.NumFacts(), hw);
  for (StorageKind kind : {StorageKind::kFlat, StorageKind::kColumnar}) {
    const AnnotationPool<uint64_t> pool =
        AnnotateForQuerySet<uint64_t>({&q}, db, annotate, plus, kind);
    const auto bases = ResolveBases<uint64_t>(q, pool);
    for (size_t threads : {1, 2, 4, 8}) {
      Evaluator::Options options;
      options.storage = kind;
      options.intra_query_threads = threads;
      Evaluator evaluator(options);
      auto plan = evaluator.GetPlan(q);
      const double replays_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(
            evaluator.ReplayPlan(**plan, monoid, q, bases));
      });
      std::printf("    %-9s threads=%zu  %9.0f replays/sec\n",
                  StorageKindName(kind), threads, replays_per_sec);
      report->AddRow(
          bench::JsonReport::ThreadedRow(
              "paper_query/" + std::to_string(db.NumFacts()) + "/replay",
              kind, threads),
          {{"num_facts", static_cast<double>(db.NumFacts())},
           {"threads", static_cast<double>(threads)},
           {"hardware_threads", hw},
           {"replays_per_sec", replays_per_sec}});
    }
  }
}

/// Adaptive-mode replay (Evaluator::Options::adaptive) against a small
/// freshly measured grid of hand-tuned fixed configurations on the same
/// instance. The "vs_best_fixed" metric is adaptive/best throughput —
/// the acceptance band is >= ~0.9 (within 10% of the best fixed point)
/// and never below 0.5 (never worse than 2x). Measured side by side in
/// one process so the comparison is not polluted by machine drift
/// between snapshot runs.
void EmitAdaptiveRows(bench::JsonReport* report, const ConjunctiveQuery& q,
                      const Database& db) {
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());

  struct Fixed {
    StorageKind kind;
    size_t threads;
  };
  std::vector<Fixed> grid = {{StorageKind::kColumnar, 1},
                             {StorageKind::kFlat, 1}};
  if (hw > 1) {
    grid.push_back({StorageKind::kColumnar, std::min<size_t>(hw, 8)});
    grid.push_back({StorageKind::kSharded, std::min<size_t>(hw, 8)});
  }

  const auto measure = [&](const Evaluator::Options& options) {
    // The annotation pool adopts the evaluator's backend so the fixed
    // configs are measured at their own best, not through a foreign
    // base layout.
    const AnnotationPool<uint64_t> pool = AnnotateForQuerySet<uint64_t>(
        {&q}, db, annotate, plus, options.storage);
    const auto bases = ResolveBases<uint64_t>(q, pool);
    Evaluator evaluator(options);
    auto plan = evaluator.GetPlan(q);
    return bench::MeasureRate([&] {
      benchmark::DoNotOptimize(
          evaluator.ReplayPlan(**plan, monoid, q, bases));
    });
  };

  std::printf("  adaptive vs hand-tuned fixed configs (|D| = %zu):\n",
              db.NumFacts());
  double best_fixed = 0.0;
  for (const Fixed& fixed : grid) {
    Evaluator::Options options;
    options.storage = fixed.kind;
    options.intra_query_threads = fixed.threads;
    const double rate = measure(options);
    std::printf("    fixed %-9s t%zu %9.1f replays/sec\n",
                StorageKindName(fixed.kind), fixed.threads, rate);
    best_fixed = std::max(best_fixed, rate);
  }

  Evaluator::Options adaptive_options;
  adaptive_options.storage = StorageKind::kColumnar;
  adaptive_options.adaptive = true;
  const double adaptive_rate = measure(adaptive_options);
  const double vs_best =
      best_fixed > 0.0 ? adaptive_rate / best_fixed : 0.0;
  std::printf("    adaptive          %9.1f replays/sec  (%.2fx of best "
              "fixed)\n",
              adaptive_rate, vs_best);
  report->AddRow(
      "paper_query/" + std::to_string(db.NumFacts()) + "/replay/adaptive",
      {{"num_facts", static_cast<double>(db.NumFacts())},
       {"hardware_threads", static_cast<double>(hw)},
       {"replays_per_sec", adaptive_rate},
       {"best_fixed_replays_per_sec", best_fixed},
       {"vs_best_fixed", vs_best}});
}

/// SIMD A/B on identical rows: the batched Mix64 hash-fold kernel (the
/// columnar backend's hottest loop) per available tier, plus the
/// end-to-end columnar replay under forced-scalar vs best dispatch.
/// Kernel rows isolate the vectorization win from the probe- and
/// copy-bound remainder of a replay.
void EmitSimdKernelRows(bench::JsonReport* report,
                        const ConjunctiveQuery& q, const Database& db) {
  const simd::Level best = simd::DetectedLevel() >= simd::Level::kAvx2
                               ? simd::DetectedLevel()
                               : simd::Level::kScalar;
  constexpr size_t kRows = 300000;
  constexpr size_t kColumns = 3;
  std::vector<int64_t> column(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    column[i] = static_cast<int64_t>(Mix64(i));
  }
  std::vector<uint64_t> hashes(kRows, kHashRangeSeed);

  std::printf("  simd hash-fold kernel (%zu rows x %zu columns):\n", kRows,
              kColumns);
  for (simd::Level level : {simd::Level::kScalar, best}) {
    simd::SetLevelForTesting(level);
    const double folds_per_sec = bench::MeasureRate([&] {
      for (size_t c = 0; c < kColumns; ++c) {
        simd::HashCombineRows(hashes.data(), column.data(), kRows);
      }
      benchmark::DoNotOptimize(hashes.data());
    });
    std::printf("    %-7s %9.1f folds/sec\n", simd::LevelName(level),
                folds_per_sec);
    report->AddRow(std::string("simd_hash_fold/") + simd::LevelName(level),
                   {{"rows", static_cast<double>(kRows)},
                    {"columns", static_cast<double>(kColumns)},
                    {"folds_per_sec", folds_per_sec}});
    if (best == simd::Level::kScalar) {
      break;  // No vector tier on this host; one row is the whole story.
    }
  }

  // End-to-end columnar replay, forced scalar vs best dispatch.
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };
  const AnnotationPool<uint64_t> pool = AnnotateForQuerySet<uint64_t>(
      {&q}, db, annotate, plus, StorageKind::kColumnar);
  const auto bases = ResolveBases<uint64_t>(q, pool);
  Evaluator evaluator(StorageKind::kColumnar);
  auto plan = evaluator.GetPlan(q);
  for (simd::Level level : {simd::Level::kScalar, best}) {
    simd::SetLevelForTesting(level);
    const double replays_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(
          evaluator.ReplayPlan(**plan, monoid, q, bases));
    });
    std::printf("    columnar replay %-7s %9.1f replays/sec\n",
                simd::LevelName(level), replays_per_sec);
    report->AddRow(std::string("simd_columnar_replay/") +
                       simd::LevelName(level),
                   {{"num_facts", static_cast<double>(db.NumFacts())},
                    {"replays_per_sec", replays_per_sec}});
    if (best == simd::Level::kScalar) {
      break;
    }
  }
  simd::SetLevelForTesting(best);  // Restore dispatch for later benches.
}

void BM_Algorithm1_OpCountOverhead(benchmark::State& state) {
  // Timing with the counting wrapper vs without: the wrapper's overhead is
  // a pair of increments, so the delta shows instrumentation cost only.
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(82);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureOps(q, db));
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Algorithm1_OpCountOverhead)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
