// Experiment E8 — Theorem 6.7: Algorithm 1 performs O(|D|) ⊕/⊗ operations
// regardless of the 2-monoid.
//
// Instruments the counting monoid with the CountingMonoid wrapper and
// prints measured operation counts against |D| for several query shapes.
// The ratio ops/|D| must stay bounded by a small constant as |D| grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/util/timer.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

size_t MeasureOps(const ConjunctiveQuery& q, const Database& db) {
  const CountingMonoid<CountMonoid> monoid{CountMonoid{}};
  auto result = RunAlgorithm1OnQuery<CountingMonoid<CountMonoid>>(
      q, monoid, db, [](const Fact&) -> uint64_t { return 1; });
  if (!result.ok()) {
    return 0;
  }
  return monoid.total_count();
}

void EmitThroughputJson();

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E8: Theorem 6.7 — O(|D|) monoid operations",
              "total #(⊕ and ⊗) applications is linear in |D|");
  struct Shape {
    const char* name;
    ConjunctiveQuery query;
  };
  const Shape shapes[] = {
      {"paper query Eq.(1)", MakePaperQuery()},
      {"star(4)", MakeStarQuery(4)},
      {"nested chain(5)", MakeNestedChain(5)},
  };
  for (const Shape& shape : shapes) {
    std::printf("  query: %s\n", shape.name);
    for (size_t tuples : {100, 1000, 10000}) {
      Rng rng(81);
      DataGenOptions opts;
      opts.tuples_per_relation = tuples;
      opts.domain_size = std::max<size_t>(8, tuples / 4);
      const Database db = RandomDatabaseForQuery(shape.query, rng, opts);
      const size_t ops = MeasureOps(shape.query, db);
      char measured[128];
      std::snprintf(measured, sizeof(measured), "%zu ops (%.2f per fact)",
                    ops, static_cast<double>(ops) /
                             static_cast<double>(db.NumFacts()));
      PrintRow("    |D| = " + std::to_string(db.NumFacts()),
               "O(|D|), flat ratio", measured);
    }
  }
  PrintNote("The per-fact ratio stays flat as |D| grows 100x: Theorem 6.7.");
  EmitThroughputJson();
}

/// Measures steady-state Algorithm 1 throughput (amortized through an
/// Evaluator: cached plan, reused relation buffers) per runtime storage
/// backend and records flat-vs-columnar A/B rows in BENCH_algorithm1.json
/// so later PRs have a perf trajectory to compare against. Two measures
/// per (size, backend):
///   * evals_per_sec — full evaluation: base-relation annotation + rule
///     replay (the per-request cost of a cold database);
///   * replays_per_sec — data-phase replay only, against a pre-annotated
///     pool (AssignFrom copy + Rule 1/Rule 2 execution): the measure the
///     columnar projection fast path targets, since annotation matching
///     is identical across backends.
/// "ops" are processed facts: evaluations/sec × |D|.
void EmitThroughputJson() {
  bench::JsonReport report("algorithm1_ops", "BENCH_algorithm1.json");
  const ConjunctiveQuery q = MakePaperQuery();
  const CountMonoid monoid;
  const auto annotate = std::function<uint64_t(const Fact&)>(
      [](const Fact&) -> uint64_t { return 1; });
  const auto plus = [](uint64_t a, uint64_t b) { return a + b; };

  std::printf("  steady-state throughput (default storage=%s):\n",
              bench::JsonReport::StorageBackend());
  // Scales target |D| ≈ 30k / 100k / 300k total facts (the paper query
  // has three relations); below that the run is annotation-bound and
  // storage choice barely registers.
  for (size_t tuples : {10000, 33334, 100000}) {
    Rng rng(83);
    DataGenOptions opts;
    opts.tuples_per_relation = tuples;
    opts.domain_size = std::max<size_t>(8, tuples / 4);
    const Database db = RandomDatabaseForQuery(q, rng, opts);

    for (StorageKind kind : kAllStorageKinds) {
      Evaluator evaluator(kind);
      const double evals_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(
            evaluator.Evaluate<CountMonoid>(q, monoid, db, annotate));
      });
      const double facts_per_sec =
          evals_per_sec * static_cast<double>(db.NumFacts());

      // Replay-only: annotate once into a shared pool, then re-run the
      // data phase per iteration (the service-layer hot loop).
      auto plan = evaluator.GetPlan(q);
      const AnnotationPool<uint64_t> pool = AnnotateForQuerySet<uint64_t>(
          {&q}, db, annotate, plus, kind);
      const auto bases = ResolveBases<uint64_t>(q, pool);
      const double replays_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(
            evaluator.ReplayPlan(**plan, monoid, q, bases));
      });

      std::printf(
          "    |D| = %-8zu %-9s %9.0f evals/sec  %9.0f replays/sec  "
          "%11.3e facts/sec\n",
          db.NumFacts(), StorageKindName(kind), evals_per_sec,
          replays_per_sec, facts_per_sec);
      report.AddRow(
          bench::JsonReport::StorageRow(
              "paper_query/" + std::to_string(db.NumFacts()), kind),
          {{"num_facts", static_cast<double>(db.NumFacts())},
           {"evals_per_sec", evals_per_sec},
           {"replays_per_sec", replays_per_sec},
           {"ops_per_sec", facts_per_sec}});
    }
  }
  report.WriteToFile();
}

void BM_Algorithm1_OpCountOverhead(benchmark::State& state) {
  // Timing with the counting wrapper vs without: the wrapper's overhead is
  // a pair of increments, so the delta shows instrumentation cost only.
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(82);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureOps(q, db));
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Algorithm1_OpCountOverhead)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
