// Experiment E10 — the resilience instantiation (paper §7, Question 2).
//
// Resilience of hierarchical queries via the fourth 2-monoid
// (ℕ ∪ {∞}, +, min): linear-time, validated against subset enumeration.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/core/resilience.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Perf-trajectory rows (BENCH_resilience.json): steady-state resilience
/// solves per second through an Evaluator, one row per storage backend per
/// scale, so the flat-vs-columnar A/B covers the (ℕ∪{∞}, +, min)
/// instantiation too.
void EmitThroughputJson() {
  bench::JsonReport report("resilience", "BENCH_resilience.json");
  const ConjunctiveQuery q = MakePaperQuery();

  std::printf("  steady-state resilience throughput (default storage=%s):\n",
              bench::JsonReport::StorageBackend());
  for (size_t tuples : {10000, 30000, 100000}) {
    Rng rng(18);
    DataGenOptions opts;
    opts.tuples_per_relation = tuples;
    opts.domain_size = std::max<size_t>(8, tuples / 4);
    const Database db = RandomDatabaseForQuery(q, rng, opts);
    const auto [exo, endo] = SplitExoEndo(db, rng, 0.5);

    for (StorageKind kind : kAllStorageKinds) {
      Evaluator evaluator(kind);
      const double solves_per_sec = bench::MeasureRate([&] {
        benchmark::DoNotOptimize(ComputeResilience(evaluator, q, exo, endo));
      });
      std::printf("    |D| = %-8zu %-9s %9.0f solves/sec\n", db.NumFacts(),
                  StorageKindName(kind), solves_per_sec);
      report.AddRow(
          bench::JsonReport::StorageRow(
              "paper_query/" + std::to_string(db.NumFacts()), kind),
          {{"num_facts", static_cast<double>(db.NumFacts())},
           {"solves_per_sec", solves_per_sec},
           {"ops_per_sec",
            solves_per_sec * static_cast<double>(db.NumFacts())}});
    }
  }
  report.WriteToFile();
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E10: resilience via a fourth 2-monoid (Question 2)",
              "(ℕ∪{∞}, +, min) instantiates Algorithm 1 for resilience");
  Rng rng(15);
  size_t agree = 0;
  size_t trials = 0;
  for (int round = 0; round < 10; ++round) {
    RandomHierarchicalOptions qopts;
    qopts.num_variables = 1 + static_cast<size_t>(rng.UniformInt(0, 3));
    const ConjunctiveQuery q = MakeRandomHierarchical(rng, qopts);
    DataGenOptions dopts;
    dopts.tuples_per_relation = 4;
    dopts.domain_size = 3;
    const Database db = RandomDatabaseForQuery(q, rng, dopts);
    if (db.NumFacts() > 14) {
      continue;
    }
    ++trials;
    auto fast = ComputeResilience(q, db);
    agree += fast.ok() &&
             *fast == BruteForceResilience(q, Database{}, db);
  }
  PrintRow("resilience, algorithm vs subset enumeration",
           "all agree",
           std::to_string(agree) + "/" + std::to_string(trials) + " agree");
  PrintNote("Timing sweep: expect ~linear in |D| (O(1) monoid ops).");
  EmitThroughputJson();
}

void BM_Resilience_DataSweep(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  Rng rng(16);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  for (auto _ : state) {
    auto r = ComputeResilience(q, db);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Resilience_DataSweep)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_Resilience_WithExogenous(benchmark::State& state) {
  const ConjunctiveQuery q = MakeStarQuery(3);
  Rng rng(17);
  DataGenOptions opts;
  opts.tuples_per_relation = static_cast<size_t>(state.range(0));
  opts.domain_size = std::max<size_t>(8, opts.tuples_per_relation / 4);
  const Database db = RandomDatabaseForQuery(q, rng, opts);
  const auto [exo, endo] = SplitExoEndo(db, rng, 0.5);
  for (auto _ : state) {
    auto r = ComputeResilience(q, exo, endo);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Resilience_WithExogenous)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity(benchmark::oN);

void BM_Resilience_BruteForce(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const size_t n = static_cast<size_t>(state.range(0));
  Database db;
  db.AddFactOrDie("S", MakeTuple({1, 1}));
  for (size_t i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      db.AddFactOrDie("R", MakeTuple({1, static_cast<Value>(i)}));
    } else {
      db.AddFactOrDie("T", MakeTuple({1, 1, static_cast<Value>(i)}));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceResilience(q, Database{}, db));
  }
}
BENCHMARK(BM_Resilience_BruteForce)->DenseRange(4, 16, 2);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
