// Experiment E3 — Theorem 5.8: Probabilistic Query Evaluation over
// tuple-independent databases runs in O(|D|) for hierarchical queries.
//
// Sweeps |D| across three hierarchical query shapes and lets
// google-benchmark fit the complexity (expect linear, i.e. o(N) with small
// constants; hashing makes it linear amortized). A companion sweep shows
// the possible-worlds brute force exploding exponentially on the *same*
// problem, which is the gap the Dalvi–Suciu specialization closes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/core/pqe.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

TidDatabase MakeTid(const ConjunctiveQuery& q, size_t tuples_per_relation,
                    uint64_t seed) {
  Rng rng(seed);
  DataGenOptions opts;
  opts.tuples_per_relation = tuples_per_relation;
  opts.domain_size = std::max<size_t>(8, tuples_per_relation / 4);
  return RandomTidForQuery(q, rng, opts);
}

void EmitThroughputJson();

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E3: Theorem 5.8 — PQE in O(|D|)",
              "hierarchical PQE = Dalvi-Suciu, linear data complexity");
  const ConjunctiveQuery q = MakePaperQuery();
  // Correctness spot check against possible worlds.
  const TidDatabase small = MakeTid(q, 4, 7);
  auto fast = EvaluateProbability(q, small);
  const double slow = BruteForcePqe(q, small);
  PrintRow("Pr[Q] algorithm vs possible worlds",
           "equal", fast.ok() && std::abs(*fast - slow) < 1e-9
                        ? "equal (|diff|<1e-9)"
                        : "MISMATCH");
  PrintNote("timing sweeps below; expect ~linear ns/op growth for the");
  PrintNote("unified algorithm and ~2^u growth for the brute force");
  PrintNote("(u = number of uncertain facts).");
  EmitThroughputJson();
}

/// Steady-state PQE throughput (amortized through an Evaluator) recorded
/// in BENCH_pqe.json so the perf trajectory spans the solver entry points,
/// not just raw Algorithm 1 (BENCH_algorithm1.json).
void EmitThroughputJson() {
  bench::JsonReport report("pqe", "BENCH_pqe.json");
  const ConjunctiveQuery q = MakePaperQuery();
  std::printf("  steady-state PQE throughput (storage=%s):\n",
              bench::JsonReport::StorageBackend());
  Evaluator evaluator;
  for (size_t tuples : {10000, 30000, 100000}) {
    const TidDatabase db = MakeTid(q, tuples, 42);
    const double evals_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(EvaluateProbability(evaluator, q, db));
    });
    const double facts_per_sec =
        evals_per_sec * static_cast<double>(db.NumFacts());
    std::printf("    |D| = %-8zu %10.0f evals/sec  %12.3e facts/sec\n",
                db.NumFacts(), evals_per_sec, facts_per_sec);
    report.AddRow("paper_query/" + std::to_string(db.NumFacts()),
                  {{"num_facts", static_cast<double>(db.NumFacts())},
                   {"evals_per_sec", evals_per_sec},
                   {"facts_per_sec", facts_per_sec}});
  }
  report.WriteToFile();
}

void BM_Pqe_PaperQuery(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const size_t tuples = static_cast<size_t>(state.range(0));
  const TidDatabase db = MakeTid(q, tuples, 42);
  for (auto _ : state) {
    auto p = EvaluateProbability(q, db);
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
  state.counters["facts"] = static_cast<double>(db.NumFacts());
}
BENCHMARK(BM_Pqe_PaperQuery)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_Pqe_StarQuery(benchmark::State& state) {
  const ConjunctiveQuery q = MakeStarQuery(4);
  const TidDatabase db = MakeTid(q, static_cast<size_t>(state.range(0)), 43);
  for (auto _ : state) {
    auto p = EvaluateProbability(q, db);
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Pqe_StarQuery)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

void BM_Pqe_NestedChain(benchmark::State& state) {
  const ConjunctiveQuery q = MakeNestedChain(5);
  const TidDatabase db = MakeTid(q, static_cast<size_t>(state.range(0)), 44);
  for (auto _ : state) {
    auto p = EvaluateProbability(q, db);
    benchmark::DoNotOptimize(p);
  }
  state.SetComplexityN(static_cast<int64_t>(db.NumFacts()));
}
BENCHMARK(BM_Pqe_NestedChain)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oN);

// The exponential contrast: brute-force possible worlds on u uncertain
// facts. Runtime doubles per unit of u.
void BM_Pqe_BruteForceWorlds(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const size_t u = static_cast<size_t>(state.range(0));
  Rng rng(45);
  TidDatabase db;
  // u uncertain facts spread over the three relations.
  for (size_t i = 0; i < u; ++i) {
    const double p = 0.5;
    switch (i % 3) {
      case 0:
        db.AddFactOrDie("R", MakeTuple({1, static_cast<Value>(i)}), p);
        break;
      case 1:
        db.AddFactOrDie("S", MakeTuple({1, static_cast<Value>(i)}), p);
        break;
      default:
        db.AddFactOrDie("T", MakeTuple({1, static_cast<Value>(i), 0}), p);
        break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForcePqe(q, db));
  }
  state.SetComplexityN(static_cast<int64_t>(u));
}
BENCHMARK(BM_Pqe_BruteForceWorlds)->DenseRange(4, 18, 2);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
