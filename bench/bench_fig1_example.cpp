// Experiment E1 — Figure 1 + Eq. (1) running example (paper §1-§2).
//
// Regenerates the paper's only worked data artifact: the Bag-Set
// Maximization instance of Figure 1 for Q() :- R(A,B), S(A,C), T(A,C,D),
// with budget θ = 2. Expected: Q(D) = 1; the sub-optimal repair
// {R(1,6), R(1,7)} reaches 3; the optimal repair reaches 4.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/core/bagset.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"
#include "hierarq/engine/join.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

Database Fig1D() {
  Database d;
  d.AddFactOrDie("R", MakeTuple({1, 5}));
  d.AddFactOrDie("S", MakeTuple({1, 1}));
  d.AddFactOrDie("S", MakeTuple({1, 2}));
  d.AddFactOrDie("T", MakeTuple({1, 2, 4}));
  return d;
}

Database Fig1Dr() {
  Database dr;
  dr.AddFactOrDie("R", MakeTuple({1, 6}));
  dr.AddFactOrDie("R", MakeTuple({1, 7}));
  dr.AddFactOrDie("T", MakeTuple({1, 1, 4}));
  dr.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  return dr;
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("E1: Figure 1 running example",
              "Q(D)=1; repair {R(1,6),R(1,7)} gives 3; optimum at θ=2 is 4");

  const ConjunctiveQuery q = MakePaperQuery();
  const Database d = Fig1D();
  const Database dr = Fig1Dr();

  PrintRow("Q(D) under bag-set semantics", "1",
           std::to_string(BagSetCount(q, d)));

  Database with_rr = d;
  with_rr.AddFactOrDie("R", MakeTuple({1, 6}));
  with_rr.AddFactOrDie("R", MakeTuple({1, 7}));
  PrintRow("Q(D + R(1,6) + R(1,7))", "3",
           std::to_string(BagSetCount(q, with_rr)));

  Database with_rt = d;
  with_rt.AddFactOrDie("R", MakeTuple({1, 6}));
  with_rt.AddFactOrDie("T", MakeTuple({1, 2, 9}));
  PrintRow("Q(D + R(1,6) + T(1,2,9))", "4",
           std::to_string(BagSetCount(q, with_rt)));

  auto opt = MaximizeBagSet(q, d, dr, 2);
  PrintRow("Bag-Set Maximization optimum (θ=2)", "4",
           opt.ok() ? std::to_string(opt->max_multiplicity) : "ERROR");
  if (opt.ok()) {
    PrintRow("  budget profile q(0),q(1),q(2)", "1,2,4",
             std::to_string(opt->profile[0]) + "," +
                 std::to_string(opt->profile[1]) + "," +
                 std::to_string(opt->profile[2]));
  }

  auto witness = ExtractOptimalRepair(q, d, dr, 2);
  if (witness.ok()) {
    std::string facts;
    for (const Fact& f : *witness) {
      if (!facts.empty()) {
        facts += "+";
      }
      facts += f.ToString();
    }
    // Optimal repairs are not unique: the paper names {R(1,6), T(1,2,9)};
    // {R(1,6), T(1,1,4)} also reaches 4 (B∈{5,6} × (C,D)∈{(1,4),(2,4)}).
    PrintRow("extracted optimal repair (any optimum ok)",
             "e.g. R(1,6)+T(1,2,9)", facts);
  }

  // Companion §2 instantiations on the same data.
  auto res = ComputeResilience(q, d);
  PrintRow("resilience of Q on D (extension)", "1 (by inspection)",
           res.ok() ? std::to_string(*res) : "ERROR");
  PrintNote("(the unique assignment uses R(1,5), S(1,2), T(1,2,4); "
            "removing any one of them falsifies Q)");
}

void BM_Fig1_MaximizeBagSet(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const Database d = Fig1D();
  const Database dr = Fig1Dr();
  for (auto _ : state) {
    auto result = MaximizeBagSet(q, d, dr, 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fig1_MaximizeBagSet);

void BM_Fig1_ExtractRepair(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const Database d = Fig1D();
  const Database dr = Fig1Dr();
  for (auto _ : state) {
    auto result = ExtractOptimalRepair(q, d, dr, 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Fig1_ExtractRepair);

void BM_Fig1_JoinEngineCount(benchmark::State& state) {
  const ConjunctiveQuery q = MakePaperQuery();
  const Database d = Fig1D();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BagSetCount(q, d));
  }
}
BENCHMARK(BM_Fig1_JoinEngineCount);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
