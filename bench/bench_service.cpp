// Experiment S1 — the service layer: multi-query batching and worker
// scaling on top of Algorithm 1's phase split.
//
// Two claims, both emitted to BENCH_service.json for cross-PR tracking:
//   (a) batching: a group of queries over one database performs one
//       base-relation annotation pass per distinct atom signature instead
//       of one per atom — on the 8-query family below, 3 passes instead of
//       14 — and that shows up as wall-clock on annotation-bound runs;
//   (b) scaling: replays are independent, so batch throughput grows with
//       the worker count (near-linearly until the machine runs out of
//       cores; the JSON records hardware_concurrency so readers can judge
//       the ceiling — a 1-core container will show a flat line, that is
//       the hardware, not the service).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/query/parser.h"
#include "hierarq/service/eval_service.h"
#include "hierarq/util/timer.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

namespace hierarq {
namespace {

/// Eight hierarchical queries over the paper query's relations R, S, T —
/// heavy atom overlap (14 atoms, 3 distinct annotation signatures), the
/// shape a server sees when many clients query one database.
std::vector<ConjunctiveQuery> MakeQueryFamily() {
  std::vector<ConjunctiveQuery> out;
  for (const char* text : {
           "R(A,B), S(A,C), T(A,C,D)",
           "R(A,B), S(A,C)",
           "R(A,B)",
           "S(A,C), T(A,C,D)",
           "T(A,C,D)",
           "R(A,B), T(A,C,D)",
           "S(A,C)",
           "R(A,B), S(A,B)",
       }) {
    out.push_back(ParseQueryOrDie(text));
  }
  return out;
}

std::vector<const ConjunctiveQuery*> Pointers(
    const std::vector<ConjunctiveQuery>& queries) {
  std::vector<const ConjunctiveQuery*> out;
  for (const ConjunctiveQuery& q : queries) {
    out.push_back(&q);
  }
  return out;
}

Database MakeWorkload(size_t tuples_per_relation) {
  Rng rng(91);
  DataGenOptions opts;
  opts.tuples_per_relation = tuples_per_relation;
  opts.domain_size = std::max<size_t>(8, tuples_per_relation / 4);
  return RandomDatabaseForQuery(MakePaperQuery(), rng, opts);
}

std::function<uint64_t(const Fact&)> OneAnnotator() {
  return [](const Fact&) -> uint64_t { return 1; };
}

/// Batched queries/sec through a service with `workers` workers on the
/// given database (measured over >= `seconds` of wall clock).
double MeasureBatchThroughput(EvalService& service,
                              const std::vector<ConjunctiveQuery>& queries,
                              const Database& db, double seconds) {
  const CountMonoid monoid;
  const auto query_ptrs = Pointers(queries);
  const auto annotator = OneAnnotator();
  const double batches_per_sec = bench::MeasureRate(
      [&] {
        benchmark::DoNotOptimize(service.EvaluateMany<CountMonoid>(
            monoid, query_ptrs, db, annotator));
      },
      seconds);
  return batches_per_sec * static_cast<double>(queries.size());
}

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  using bench::PrintRow;
  PrintHeader("S1: EvalService — multi-query batching + worker scaling",
              "one annotation pass per (database, monoid) group; "
              "throughput scales with workers");
  bench::JsonReport report("service", "BENCH_service.json");
  const std::vector<ConjunctiveQuery> queries = MakeQueryFamily();
  const Database db = MakeWorkload(40000);  // ~120k facts over R, S, T.
  const size_t hardware =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::printf("  workload: |D| = %zu facts, %zu queries per batch "
              "(hardware_concurrency = %zu)\n",
              db.NumFacts(), queries.size(), hardware);

  // ---- (a) The batching win: annotation passes and wall clock. --------
  const CountMonoid monoid;
  const auto annotator = OneAnnotator();
  Evaluator one_by_one;
  // Warm-up for plan builds, then one timed sweep of the whole family.
  for (const ConjunctiveQuery& q : queries) {
    benchmark::DoNotOptimize(
        one_by_one.Evaluate<CountMonoid>(q, monoid, db, annotator));
  }
  WallTimer serial_timer;
  for (const ConjunctiveQuery& q : queries) {
    benchmark::DoNotOptimize(
        one_by_one.Evaluate<CountMonoid>(q, monoid, db, annotator));
  }
  const double serial_ms = serial_timer.ElapsedMillis();

  EvalService batched_service(EvalService::Options{.num_workers = 1});
  benchmark::DoNotOptimize(batched_service.EvaluateMany<CountMonoid>(
      monoid, Pointers(queries), db, annotator));
  WallTimer batched_timer;
  benchmark::DoNotOptimize(batched_service.EvaluateMany<CountMonoid>(
      monoid, Pointers(queries), db, annotator));
  const double batched_ms = batched_timer.ElapsedMillis();
  const ServiceStats stats = batched_service.stats();
  const size_t scans_per_batch = stats.annotation_scans / stats.groups;
  size_t total_atoms = 0;
  for (const ConjunctiveQuery& q : queries) {
    total_atoms += q.num_atoms();
  }

  PrintRow("annotation passes, one query at a time",
           std::to_string(total_atoms) + " (one/atom)",
           std::to_string(total_atoms));
  PrintRow("annotation passes, batched group",
           "3 (one/signature)", std::to_string(scans_per_batch));
  PrintRow("8-query batch wall clock (1 worker)", "< one-by-one",
           std::to_string(batched_ms) + " ms vs " +
               std::to_string(serial_ms) + " ms");
  report.AddRow("batching/one_by_one",
                {{"annotation_scans", static_cast<double>(total_atoms)},
                 {"batch_ms", serial_ms}});
  report.AddRow("batching/service",
                {{"annotation_scans", static_cast<double>(scans_per_batch)},
                 {"batch_ms", batched_ms}});

  // ---- (c) Zero-copy singleton replay. -------------------------------
  // A single-query group makes every pool entry a singleton, so the
  // replay *moves* the annotations into worker scratch instead of copying
  // — the copy was the service's main single-query overhead versus a bare
  // Evaluator. Both paths below annotate per call; the residual gap is
  // service plumbing.
  {
    const ConjunctiveQuery& single = queries.front();  // 3 atoms.
    Evaluator bare;
    const double bare_qps = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(
          bare.Evaluate<CountMonoid>(single, monoid, db, annotator));
    });
    EvalService move_service(EvalService::Options{.num_workers = 1});
    const std::vector<const ConjunctiveQuery*> single_ptr = {&single};
    const double service_qps = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(move_service.EvaluateMany<CountMonoid>(
          monoid, single_ptr, db, annotator));
    });
    const ServiceStats move_stats = move_service.stats();
    const double moves_per_batch =
        static_cast<double>(move_stats.singleton_moves) /
        static_cast<double>(move_stats.batches);
    char measured[96];
    std::snprintf(measured, sizeof(measured),
                  "%7.1f q/s vs bare %7.1f q/s (%.0f moves/batch)",
                  service_qps, bare_qps, moves_per_batch);
    PrintRow("single-query batch, zero-copy replay", "~bare evaluator",
             measured);
    report.AddRow("singleton/bare_evaluator", {{"queries_per_sec", bare_qps}});
    report.AddRow("singleton/service_moved",
                  {{"queries_per_sec", service_qps},
                   {"moves_per_batch", moves_per_batch},
                   {"service_vs_bare", service_qps / bare_qps}});
  }

  // ---- (b) Worker scaling. -------------------------------------------
  PrintNote("batched throughput by worker count (queries/sec):");
  double base = 0.0;
  for (size_t workers : {1, 2, 4, 8}) {
    EvalService service(EvalService::Options{.num_workers = workers});
    const double qps = MeasureBatchThroughput(service, queries, db, 0.6);
    if (workers == 1) {
      base = qps;
    }
    const double speedup = base > 0 ? qps / base : 0.0;
    char measured[96];
    std::snprintf(measured, sizeof(measured), "%9.1f q/s  (%.2fx vs 1)",
                  qps, speedup);
    PrintRow("    workers = " + std::to_string(workers),
             workers <= hardware ? "~linear to #cores" : "flat past #cores",
             measured);
    report.AddRow("scaling/workers_" + std::to_string(workers),
                  {{"workers", static_cast<double>(workers)},
                   {"threads", 1.0},  // Intra-query parallelism off here.
                   {"hardware_concurrency", static_cast<double>(hardware)},
                   {"num_facts", static_cast<double>(db.NumFacts())},
                   {"queries_per_sec", qps},
                   {"speedup_vs_1", speedup}});
  }
  PrintNote("speedup is bounded by hardware_concurrency; the JSON records");
  PrintNote("it so cross-machine comparisons stay honest.");

  // ---- (c) Single-huge-replay routing: intra-query threads. -----------
  // One query per batch means across-query fan-out has nothing to split;
  // intra_query_threads > 1 instead shards the replay's Rule 1/Rule 2
  // steps (core/parallel.h) across the same pool.
  PrintNote("single-query batch by intra-query threads (replays/sec):");
  const ConjunctiveQuery& single = queries.front();
  for (size_t threads : {1, 2, 4, 8}) {
    EvalService::Options intra_options;
    intra_options.num_workers = std::max<size_t>(threads, 1);
    intra_options.intra_query_threads = threads;
    intra_options.intra_query_min_support = 1;
    EvalService service(intra_options);
    const auto annotate = OneAnnotator();
    const double replays_per_sec = bench::MeasureRate([&] {
      benchmark::DoNotOptimize(service.EvaluateMany<CountMonoid>(
          monoid, {&single}, db, annotate));
    });
    const size_t intra_replays = service.stats().intra_parallel_replays;
    char measured[96];
    std::snprintf(measured, sizeof(measured),
                  "%9.1f replays/s  (%zu intra-routed)", replays_per_sec,
                  intra_replays);
    PrintRow("    threads = " + std::to_string(threads),
             threads <= hardware ? "~linear to #cores" : "flat past #cores",
             measured);
    report.AddRow("intra_query/threads_" + std::to_string(threads),
                  {{"threads", static_cast<double>(threads)},
                   {"hardware_concurrency", static_cast<double>(hardware)},
                   {"num_facts", static_cast<double>(db.NumFacts())},
                   {"replays_per_sec", replays_per_sec},
                   {"intra_replays", static_cast<double>(intra_replays)}});
  }
  report.WriteToFile();
}

void BM_Service_Batch8Queries(benchmark::State& state) {
  const std::vector<ConjunctiveQuery> queries = MakeQueryFamily();
  const Database db = MakeWorkload(10000);
  const CountMonoid monoid;
  const auto annotator = OneAnnotator();
  EvalService service(
      EvalService::Options{.num_workers = static_cast<size_t>(state.range(0))});
  const auto query_ptrs = Pointers(queries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.EvaluateMany<CountMonoid>(
        monoid, query_ptrs, db, annotator));
  }
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["queries_per_batch"] = static_cast<double>(queries.size());
}
BENCHMARK(BM_Service_Batch8Queries)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_Service_SharedPlanCacheLookup(benchmark::State& state) {
  // Steady-state cost of the shared-lock plan lookup (the per-request
  // query-phase overhead a server pays).
  SharedPlanCache cache;
  const ConjunctiveQuery q = MakePaperQuery();
  benchmark::DoNotOptimize(cache.GetPlan(q));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.GetPlan(q));
  }
}
BENCHMARK(BM_Service_SharedPlanCacheLookup);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
