// Experiment E9 — per-operation costs of the 2-monoid instantiations
// (paper §5.4-§5.6 complexity bookkeeping).
//
// The probability/resilience/Boolean/counting operations are O(1); the
// bag-max and #Sat operations are convolutions costing O(L²) in the vector
// length L (= θ+1 resp. |Dn|+1). The length sweeps below expose the
// quadratic per-op growth that drives Theorems 5.11 / 5.16.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/provenance.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/util/random.h"

namespace hierarq {
namespace {

void Report() {
  using bench::PrintHeader;
  using bench::PrintNote;
  PrintHeader("E9: monoid operation costs",
              "⊕/⊗: O(1) scalar monoids; O(L²) convolution monoids");
  PrintNote("Sweeps below fit complexity per operation; L = vector length.");
}

void BM_ProbMonoid_Ops(benchmark::State& state) {
  const ProbMonoid m;
  Rng rng(91);
  const double a = rng.UniformDouble();
  const double b = rng.UniformDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(a, b));
    benchmark::DoNotOptimize(m.Times(a, b));
  }
}
BENCHMARK(BM_ProbMonoid_Ops);

void BM_ResilienceMonoid_Ops(benchmark::State& state) {
  const ResilienceMonoid m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(3, 4));
    benchmark::DoNotOptimize(m.Times(3, 4));
  }
}
BENCHMARK(BM_ResilienceMonoid_Ops);

void BM_CountMonoid_Ops(benchmark::State& state) {
  const CountMonoid m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(123, 456));
    benchmark::DoNotOptimize(m.Times(123, 456));
  }
}
BENCHMARK(BM_CountMonoid_Ops);

void BM_BagMaxMonoid_PlusByLength(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  const BagMaxMonoid m(budget);
  Rng rng(92);
  BagMaxVec a(m.vector_length());
  BagMaxVec b(m.vector_length());
  uint64_t acc_a = 0;
  uint64_t acc_b = 0;
  for (size_t i = 0; i < m.vector_length(); ++i) {
    acc_a += static_cast<uint64_t>(rng.UniformInt(0, 3));
    acc_b += static_cast<uint64_t>(rng.UniformInt(0, 3));
    a[i] = acc_a;
    b[i] = acc_b;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BagMaxMonoid_PlusByLength)
    ->RangeMultiplier(2)
    ->Range(4, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_BagMaxMonoid_TimesByLength(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  const BagMaxMonoid m(budget);
  const BagMaxVec a = m.One();
  const BagMaxVec b = m.Star();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Times(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BagMaxMonoid_TimesByLength)
    ->RangeMultiplier(2)
    ->Range(4, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_SatCountMonoid_Uint64PlusByLength(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SatCountMonoid<uint64_t> m(n);
  const auto a = m.Star();
  const auto b = m.Star();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SatCountMonoid_Uint64PlusByLength)
    ->RangeMultiplier(2)
    ->Range(4, 1024)
    ->Complexity(benchmark::oNSquared);

void BM_SatCountMonoid_BigUintPlusByLength(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const SatCountMonoid<BigUint> m(n);
  // Build realistic (binomially large) operands by ⊕-folding stars.
  auto a = m.Zero();
  for (size_t i = 0; i < n; ++i) {
    a = m.Plus(a, m.Star());
  }
  const auto b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SatCountMonoid_BigUintPlusByLength)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

void BM_ProvMonoid_Join(benchmark::State& state) {
  const ProvMonoid m;
  const auto a = ProvTree::Leaf(1);
  const auto b = ProvTree::Leaf(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Plus(a, b));
  }
}
BENCHMARK(BM_ProvMonoid_Join);

}  // namespace
}  // namespace hierarq

HIERARQ_BENCH_MAIN(hierarq::Report)
