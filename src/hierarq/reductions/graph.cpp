#include "hierarq/reductions/graph.h"

#include "hierarq/util/logging.h"

namespace hierarq {

Graph::Graph(size_t num_vertices) : n_(num_vertices) {
  adjacency_.assign(n_ * n_, false);
}

void Graph::AddEdge(size_t u, size_t v) {
  HIERARQ_CHECK_LT(u, n_);
  HIERARQ_CHECK_LT(v, n_);
  HIERARQ_CHECK_NE(u, v) << "self-loops are not allowed";
  if (adjacency_[Index(u, v)]) {
    return;
  }
  adjacency_[Index(u, v)] = true;
  adjacency_[Index(v, u)] = true;
  ++num_edges_;
}

bool Graph::HasEdge(size_t u, size_t v) const {
  HIERARQ_CHECK_LT(u, n_);
  HIERARQ_CHECK_LT(v, n_);
  return adjacency_[Index(u, v)];
}

std::vector<std::pair<size_t, size_t>> Graph::Edges() const {
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(num_edges_);
  for (size_t u = 0; u < n_; ++u) {
    for (size_t v = u + 1; v < n_; ++v) {
      if (adjacency_[Index(u, v)]) {
        out.emplace_back(u, v);
      }
    }
  }
  return out;
}

Graph Graph::Complete(size_t n) {
  Graph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      g.AddEdge(u, v);
    }
  }
  return g;
}

Graph Graph::CompleteBipartite(size_t a, size_t b) {
  Graph g(a + b);
  for (size_t u = 0; u < a; ++u) {
    for (size_t v = a; v < a + b; ++v) {
      g.AddEdge(u, v);
    }
  }
  return g;
}

std::string Graph::ToString() const {
  std::string out =
      "Graph(n=" + std::to_string(n_) + ", m=" + std::to_string(num_edges_) +
      ", edges={";
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{" + std::to_string(u) + "," + std::to_string(v) + "}";
  }
  return out + "})";
}

}  // namespace hierarq
