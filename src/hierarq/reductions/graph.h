#ifndef HIERARQ_REDUCTIONS_GRAPH_H_
#define HIERARQ_REDUCTIONS_GRAPH_H_

/// \file graph.h
/// \brief Simple undirected graphs (no self-loops) for the BCBS problem.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hierarq {

class Graph {
 public:
  explicit Graph(size_t num_vertices);

  size_t NumVertices() const { return n_; }
  size_t NumEdges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; self-loops are rejected with a CHECK
  /// (the BCBS reduction requires a self-loop-free graph). Duplicate adds
  /// are no-ops.
  void AddEdge(size_t u, size_t v);

  bool HasEdge(size_t u, size_t v) const;

  /// All edges as (u, v) pairs with u < v, in deterministic order.
  std::vector<std::pair<size_t, size_t>> Edges() const;

  /// The complete graph K_n.
  static Graph Complete(size_t n);
  /// The complete bipartite graph K_{a,b} (vertices 0..a-1 vs a..a+b-1).
  static Graph CompleteBipartite(size_t a, size_t b);

  std::string ToString() const;

 private:
  size_t Index(size_t u, size_t v) const { return u * n_ + v; }

  size_t n_;
  size_t num_edges_ = 0;
  std::vector<bool> adjacency_;  // n × n matrix.
};

}  // namespace hierarq

#endif  // HIERARQ_REDUCTIONS_GRAPH_H_
