#include "hierarq/reductions/bcbs.h"

#include <algorithm>
#include <functional>

#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

/// Calls `fn(subset)` for every k-subset of {0..n-1}; `fn` returns true to
/// stop early. Returns whether the enumeration was stopped.
bool ForEachSubset(size_t n, size_t k,
                   const std::function<bool(const std::vector<size_t>&)>& fn) {
  if (k > n) {
    return false;
  }
  std::vector<size_t> subset(k);
  for (size_t i = 0; i < k; ++i) {
    subset[i] = i;
  }
  while (true) {
    if (fn(subset)) {
      return true;
    }
    // Advance to the next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] != i + n - k) {
        ++subset[i];
        for (size_t j = i + 1; j < k; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        break;
      }
      if (i == 0) {
        return false;
      }
    }
    if (k == 0) {
      return false;
    }
  }
}

}  // namespace

bool IsBiclique(const Graph& graph, const std::vector<size_t>& left,
                const std::vector<size_t>& right) {
  for (size_t u : left) {
    for (size_t v : right) {
      if (u == v || !graph.HasEdge(u, v)) {
        return false;
      }
    }
  }
  return true;
}

std::optional<BicliqueWitness> FindBalancedBiclique(const Graph& graph,
                                                    size_t k) {
  if (k == 0) {
    return BicliqueWitness{};  // Trivially present.
  }
  const size_t n = graph.NumVertices();
  std::optional<BicliqueWitness> found;
  ForEachSubset(n, k, [&](const std::vector<size_t>& left) {
    // Common neighborhood of `left`. No self-loops, so members of `left`
    // exclude themselves automatically.
    std::vector<size_t> common;
    for (size_t v = 0; v < n; ++v) {
      bool adjacent_to_all = true;
      for (size_t u : left) {
        if (!graph.HasEdge(u, v) && u != v) {
          adjacent_to_all = false;
          break;
        }
        if (u == v) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) {
        common.push_back(v);
      }
    }
    if (common.size() >= k) {
      BicliqueWitness witness;
      witness.left = left;
      witness.right.assign(common.begin(), common.begin() +
                                               static_cast<ptrdiff_t>(k));
      HIERARQ_CHECK(IsBiclique(graph, witness.left, witness.right));
      found = std::move(witness);
      return true;
    }
    return false;
  });
  return found;
}

bool HasBalancedBiclique(const Graph& graph, size_t k) {
  return FindBalancedBiclique(graph, k).has_value();
}

}  // namespace hierarq
