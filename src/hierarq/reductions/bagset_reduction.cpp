#include "hierarq/reductions/bagset_reduction.h"

#include "hierarq/engine/join.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/util/logging.h"

namespace hierarq {

Result<BagSetMaxDecisionInstance> ReduceBcbsToBagSetMax(
    const ConjunctiveQuery& query, const Graph& graph, size_t k) {
  const auto violation = FindHierarchyViolation(query);
  if (!violation.has_value()) {
    return Status::InvalidArgument(
        "the Theorem 4.4 reduction requires a non-hierarchical query");
  }
  for (const Atom& atom : query.atoms()) {
    if (atom.HasConstants()) {
      return Status::InvalidArgument(
          "the reduction is defined for constant-free queries");
    }
  }

  const VarId a_var = violation->a;
  const VarId b_var = violation->b;
  const size_t r_atom = violation->r_atom;
  const size_t t_atom = violation->t_atom;
  const size_t n = graph.NumVertices();
  if (n == 0) {
    return Status::InvalidArgument("empty graph");
  }
  const Value fixed_vertex = 0;  // The arbitrary vertex `a` of the proof.

  // Instantiates atom `atom` under the assignment A := va, B := vb, all
  // other variables := fixed_vertex.
  const auto instantiate = [&](const Atom& atom, Value va, Value vb) {
    Tuple tuple;
    tuple.reserve(atom.arity());
    for (const Term& term : atom.terms()) {
      const VarId v = term.var();
      if (v == a_var) {
        tuple.push_back(va);
      } else if (v == b_var) {
        tuple.push_back(vb);
      } else {
        tuple.push_back(fixed_vertex);
      }
    }
    return tuple;
  };

  BagSetMaxDecisionInstance out;
  out.budget = 2 * k;
  out.target = static_cast<uint64_t>(k) * static_cast<uint64_t>(k);

  // D: S-facts and P_i-facts for every edge-consistent assignment
  // (both orientations of each undirected edge).
  for (const auto& [u, v] : graph.Edges()) {
    for (const auto& [va, vb] : {std::pair<Value, Value>(u, v),
                                 std::pair<Value, Value>(v, u)}) {
      for (size_t i = 0; i < query.num_atoms(); ++i) {
        if (i == r_atom || i == t_atom) {
          continue;
        }
        HIERARQ_RETURN_NOT_OK(
            out.d.AddFact(query.atoms()[i].relation(),
                          instantiate(query.atoms()[i], va, vb))
                .status());
      }
    }
  }
  // Ensure the R and T relations exist (empty) in D for clarity.

  // Dr: all R-facts (choice of A) and all T-facts (choice of B).
  for (size_t vertex = 0; vertex < n; ++vertex) {
    HIERARQ_RETURN_NOT_OK(
        out.repair
            .AddFact(query.atoms()[r_atom].relation(),
                     instantiate(query.atoms()[r_atom],
                                 static_cast<Value>(vertex), fixed_vertex))
            .status());
    HIERARQ_RETURN_NOT_OK(
        out.repair
            .AddFact(query.atoms()[t_atom].relation(),
                     instantiate(query.atoms()[t_atom], fixed_vertex,
                                 static_cast<Value>(vertex)))
            .status());
  }
  return out;
}

bool DecideBagSetMaxBruteForce(const ConjunctiveQuery& query,
                               const BagSetMaxDecisionInstance& instance) {
  std::vector<Fact> candidates;
  for (const Fact& fact : instance.repair.AllFacts()) {
    if (!instance.d.ContainsFact(fact)) {
      candidates.push_back(fact);
    }
  }
  HIERARQ_CHECK_LE(candidates.size(), 28u)
      << "brute-force decision instance too large";

  const uint64_t worlds = uint64_t{1} << candidates.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    if (static_cast<size_t>(__builtin_popcountll(mask)) > instance.budget) {
      continue;
    }
    Database repaired = instance.d;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((mask >> i) & 1) {
        repaired.AddFactOrDie(candidates[i].relation, candidates[i].tuple);
      }
    }
    if (BagSetCount(query, repaired) >= instance.target) {
      return true;
    }
  }
  return false;
}

}  // namespace hierarq
