#ifndef HIERARQ_REDUCTIONS_BCBS_H_
#define HIERARQ_REDUCTIONS_BCBS_H_

/// \file bcbs.h
/// \brief The Balanced Complete Bipartite Subgraph problem
/// ([Garey & Johnson GT24]; "bipartite clique").
///
/// BCBS asks whether a graph contains a complete bipartite subgraph whose
/// two (disjoint) parts each have size k. It is NP-complete and its
/// natural parameterization by k is W[1]-hard [Lin'18] — the paper's
/// Theorem 4.4 reduces it to Bag-Set Maximization Decision for every
/// non-hierarchical SJF-BCQ.

#include <optional>
#include <vector>

#include "hierarq/reductions/graph.h"

namespace hierarq {

/// A witness: two disjoint vertex sets fully connected across.
struct BicliqueWitness {
  std::vector<size_t> left;
  std::vector<size_t> right;
};

/// Exhaustive BCBS solver: enumerates k-subsets for the left part and
/// checks the common neighborhood. O(C(n,k) · n · k) — the exponential
/// baseline the W[1]-hardness predicts.
std::optional<BicliqueWitness> FindBalancedBiclique(const Graph& graph,
                                                    size_t k);

/// Decision wrapper.
bool HasBalancedBiclique(const Graph& graph, size_t k);

/// Checks a claimed witness (used by tests and by the reduction
/// round-trip).
bool IsBiclique(const Graph& graph, const std::vector<size_t>& left,
                const std::vector<size_t>& right);

}  // namespace hierarq

#endif  // HIERARQ_REDUCTIONS_BCBS_H_
