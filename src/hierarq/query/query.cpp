#include "hierarq/query/query.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "hierarq/util/logging.h"

namespace hierarq {

VarId VariableTable::Intern(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<VarId>(i);
    }
  }
  names_.push_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

std::optional<VarId> VariableTable::Find(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<VarId>(i);
    }
  }
  return std::nullopt;
}

const std::string& VariableTable::Name(VarId id) const {
  HIERARQ_CHECK_LT(id, names_.size());
  return names_[id];
}

Atom::Atom(std::string relation, std::vector<Term> terms)
    : relation_(std::move(relation)), terms_(std::move(terms)) {
  for (const Term& t : terms_) {
    if (t.is_variable()) {
      vars_.Insert(t.var());
    } else {
      has_constants_ = true;
    }
  }
}

std::vector<size_t> Atom::PositionsOf(VarId v) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].is_variable() && terms_[i].var() == v) {
      out.push_back(i);
    }
  }
  return out;
}

std::string Atom::ToString(const VariableTable& vars) const {
  std::string out = relation_ + "(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    if (terms_[i].is_variable()) {
      out += vars.Name(terms_[i].var());
    } else {
      out += std::to_string(terms_[i].constant());
    }
  }
  out += ")";
  return out;
}

Result<ConjunctiveQuery> ConjunctiveQuery::Create(std::vector<Atom> atoms,
                                                  VariableTable variables) {
  std::unordered_set<std::string> seen;
  for (const Atom& atom : atoms) {
    if (!seen.insert(atom.relation()).second) {
      return Status::InvalidArgument(
          "query is not self-join-free: relation '" + atom.relation() +
          "' appears in two atoms");
    }
  }
  ConjunctiveQuery query;
  query.atoms_ = std::move(atoms);
  query.variables_ = std::move(variables);
  query.atoms_of_.assign(query.variables_.size(), {});
  for (size_t i = 0; i < query.atoms_.size(); ++i) {
    for (VarId v : query.atoms_[i].vars()) {
      query.all_vars_.Insert(v);
      HIERARQ_CHECK_LT(v, query.atoms_of_.size())
          << "atom references a variable missing from the VariableTable";
      query.atoms_of_[v].push_back(i);
    }
  }
  return query;
}

const std::vector<size_t>& ConjunctiveQuery::AtomsOf(VarId v) const {
  HIERARQ_CHECK_LT(v, atoms_of_.size());
  return atoms_of_[v];
}

std::optional<size_t> ConjunctiveQuery::AtomIndexOf(
    const std::string& name) const {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].relation() == name) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<std::vector<size_t>> ConjunctiveQuery::ConnectedComponents()
    const {
  // Union-find over atom indices, uniting atoms that share a variable.
  std::vector<size_t> parent(atoms_.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = i;
  }
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

  for (const auto& owners : atoms_of_) {
    for (size_t i = 1; i < owners.size(); ++i) {
      unite(owners[0], owners[i]);
    }
  }

  std::unordered_map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    groups[find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(groups.size());
  // Deterministic order: by smallest atom index in the component.
  std::vector<size_t> roots;
  for (const auto& [root, members] : groups) {
    roots.push_back(members.front());
  }
  std::sort(roots.begin(), roots.end());
  for (size_t head : roots) {
    out.push_back(groups[find(head)]);
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Q() :- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += atoms_[i].ToString(variables_);
  }
  return out;
}

}  // namespace hierarq
