#ifndef HIERARQ_QUERY_ELIMINATION_H_
#define HIERARQ_QUERY_ELIMINATION_H_

/// \file elimination.h
/// \brief The elimination procedure for hierarchical queries
/// (paper Proposition 5.1) compiled into a reusable plan.
///
/// The procedure repeatedly applies:
///   * Rule 1 — eliminate a "private" variable Y occurring in exactly one
///     atom R(X): replace R(X) by R'(X \ {Y});
///   * Rule 2 — merge two atoms R1(X), R2(X) with the same variable set
///     into one atom R'(X);
/// and succeeds (reduces the query to a single nullary atom) iff the query
/// is hierarchical. `EliminationPlan::Build` runs the procedure once on the
/// query *structure* and records the step sequence; Algorithm 1
/// (core/algorithm1.h) then replays the plan over any K-annotated database,
/// using ⊕ for Rule 1 and ⊗ for Rule 2. Splitting plan from execution keeps
/// the per-monoid executors trivial and makes the step sequence testable
/// against the paper's worked Examples 5.2–5.4.

#include <string>
#include <vector>

#include "hierarq/query/query.h"
#include "hierarq/query/var_set.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Which rule of Proposition 5.1 a step applies.
enum class EliminationRule {
  kProjectVariable,  ///< Rule 1: ⊕-aggregate a private variable away.
  kMergeAtoms,       ///< Rule 2: ⊗-combine two atoms over equal schemas.
};

/// One recorded elimination step. Atom ids index a growing space:
/// ids [0, num_base_atoms) are the query's atoms in order; each step mints
/// the next id for its result.
struct EliminationStep {
  EliminationRule rule;

  // Rule 1 fields.
  size_t source_atom = 0;  ///< Valid when rule == kProjectVariable.
  VarId variable = 0;      ///< The eliminated private variable.
  /// Position of `variable` in the source atom's (sorted) schema, computed
  /// once at plan build so Algorithm 1's inner loop never searches for it.
  size_t drop_pos = 0;

  // Rule 2 fields.
  size_t left_atom = 0;   ///< Valid when rule == kMergeAtoms.
  size_t right_atom = 0;  ///< Valid when rule == kMergeAtoms.

  size_t result_atom = 0;  ///< Freshly minted atom id.
};

/// A compiled elimination plan for a hierarchical SJF-BCQ.
class EliminationPlan {
 public:
  /// Runs the elimination procedure on `query`. Fails with
  /// kNotHierarchical — including a concrete violation witness in the
  /// message — iff the procedure gets stuck (Proposition 5.1).
  static Result<EliminationPlan> Build(const ConjunctiveQuery& query);

  const std::vector<EliminationStep>& steps() const { return steps_; }

  /// Number of atoms in the source query; plan-atom ids below this value
  /// denote base relations (in query atom order).
  size_t num_base_atoms() const { return num_base_atoms_; }

  /// Total number of plan-atom ids (base + intermediate results).
  size_t num_atoms() const { return vars_.size(); }

  /// Id of the final nullary atom whose annotation is the algorithm output.
  /// For a query that is already `Q() :- R()`, this is atom 0 and the plan
  /// has no steps.
  size_t final_atom() const { return final_atom_; }

  /// Variable set (schema) of any plan atom.
  const VarSet& vars_of(size_t atom_id) const;

  /// Display name of any plan atom (base relation name, or derived name
  /// with one prime per derivation, mirroring the paper's notation).
  const std::string& name_of(size_t atom_id) const;

  /// Renders the step sequence in the style of Example 5.2.
  std::string ToString(const VariableTable& variables) const;

 private:
  std::vector<EliminationStep> steps_;
  std::vector<VarSet> vars_;         // Indexed by plan-atom id.
  std::vector<std::string> names_;   // Indexed by plan-atom id.
  size_t num_base_atoms_ = 0;
  size_t final_atom_ = 0;
};

}  // namespace hierarq

#endif  // HIERARQ_QUERY_ELIMINATION_H_
