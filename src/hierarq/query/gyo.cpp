#include "hierarq/query/gyo.h"

#include <map>
#include <vector>

#include "hierarq/query/hierarchical.h"

namespace hierarq {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kHierarchical:
      return "hierarchical";
    case QueryClass::kAcyclicOnly:
      return "acyclic-only";
    case QueryClass::kCyclic:
      return "cyclic";
  }
  return "?";
}

bool IsAcyclic(const ConjunctiveQuery& query) {
  // GYO ear removal on variable sets:
  //   Rule 1: drop a variable occurring in exactly one atom;
  //   Rule 2 (relaxed): absorb atom X into atom Y when vars(X) ⊆ vars(Y).
  // The query is acyclic iff this reduces to a single empty atom.
  std::vector<VarSet> live;
  for (const Atom& atom : query.atoms()) {
    live.push_back(atom.vars());
  }

  bool changed = true;
  while (changed && live.size() > 1) {
    changed = false;

    // Rule 2 (absorption). Run it before Rule 1 — it strictly shrinks the
    // atom count and keeps the occurrence map small.
    for (size_t i = 0; i < live.size() && !changed; ++i) {
      for (size_t j = 0; j < live.size() && !changed; ++j) {
        if (i != j && live[i].IsSubsetOf(live[j])) {
          live.erase(live.begin() + static_cast<ptrdiff_t>(i));
          changed = true;
        }
      }
    }
    if (changed) {
      continue;
    }

    // Rule 1 (private variable removal).
    std::map<VarId, size_t> occurrences;
    for (const VarSet& vars : live) {
      for (VarId v : vars) {
        occurrences[v] += 1;
      }
    }
    for (auto& vars : live) {
      for (VarId v : vars) {
        if (occurrences[v] == 1) {
          vars.Erase(v);
          changed = true;
          break;
        }
      }
      if (changed) {
        break;
      }
    }
  }

  if (live.size() != 1) {
    return false;
  }
  // A single atom is always acyclic: its private variables all drop.
  return true;
}

QueryClass Classify(const ConjunctiveQuery& query) {
  if (IsHierarchical(query)) {
    return QueryClass::kHierarchical;
  }
  if (IsAcyclic(query)) {
    return QueryClass::kAcyclicOnly;
  }
  return QueryClass::kCyclic;
}

}  // namespace hierarq
