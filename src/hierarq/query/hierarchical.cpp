#include "hierarq/query/hierarchical.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

using Signature = std::vector<size_t>;  // Sorted atom indices.

bool IsSubset(const Signature& a, const Signature& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool IsDisjoint(const Signature& a, const Signature& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      return false;
    }
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

}  // namespace

std::string HierarchyViolation::ToString(const ConjunctiveQuery& query) const {
  const VariableTable& vars = query.variables();
  return "variables " + vars.Name(a) + " and " + vars.Name(b) +
         " violate the hierarchical property via atoms " +
         query.atoms()[r_atom].ToString(vars) + ", " +
         query.atoms()[s_atom].ToString(vars) + ", " +
         query.atoms()[t_atom].ToString(vars);
}

std::optional<HierarchyViolation> FindHierarchyViolation(
    const ConjunctiveQuery& query) {
  const VarSet& all = query.AllVars();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      const VarId x = all[i];
      const VarId y = all[j];
      const Signature& at_x = query.AtomsOf(x);
      const Signature& at_y = query.AtomsOf(y);
      if (IsSubset(at_x, at_y) || IsSubset(at_y, at_x) ||
          IsDisjoint(at_x, at_y)) {
        continue;
      }
      // Violation: extract witness atoms.
      HierarchyViolation v;
      v.a = x;
      v.b = y;
      // r: contains x, not y. s: contains both. t: contains y, not x.
      for (size_t atom : at_x) {
        if (!std::binary_search(at_y.begin(), at_y.end(), atom)) {
          v.r_atom = atom;
          break;
        }
      }
      for (size_t atom : at_x) {
        if (std::binary_search(at_y.begin(), at_y.end(), atom)) {
          v.s_atom = atom;
          break;
        }
      }
      for (size_t atom : at_y) {
        if (!std::binary_search(at_x.begin(), at_x.end(), atom)) {
          v.t_atom = atom;
          break;
        }
      }
      return v;
    }
  }
  return std::nullopt;
}

bool IsHierarchical(const ConjunctiveQuery& query) {
  return !FindHierarchyViolation(query).has_value();
}

size_t HierarchyForest::NodeOf(VarId v) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].var == v) {
      return i;
    }
  }
  HIERARQ_LOG(Fatal) << "variable " << v << " not in hierarchy forest";
  return 0;
}

VarSet HierarchyForest::PathToRoot(size_t i) const {
  VarSet out;
  std::optional<size_t> cur = i;
  while (cur.has_value()) {
    out.Insert(nodes[*cur].var);
    cur = nodes[*cur].parent;
  }
  return out;
}

std::string HierarchyForest::ToString(const VariableTable& vars) const {
  std::string out;
  // Depth-first rendering, one "var(children...)" clause per root.
  auto render = [&](auto&& self, size_t node) -> std::string {
    std::string s = vars.Name(nodes[node].var);
    if (!nodes[node].children.empty()) {
      s += "(";
      for (size_t k = 0; k < nodes[node].children.size(); ++k) {
        if (k > 0) {
          s += " ";
        }
        s += self(self, nodes[node].children[k]);
      }
      s += ")";
    }
    return s;
  };
  for (size_t k = 0; k < roots.size(); ++k) {
    if (k > 0) {
      out += " | ";
    }
    out += render(render, roots[k]);
  }
  return out;
}

bool ForestRealizesQuery(const HierarchyForest& forest,
                         const ConjunctiveQuery& query) {
  for (const Atom& atom : query.atoms()) {
    if (atom.vars().empty()) {
      continue;  // Nullary/constant-only atoms impose no tree constraint.
    }
    bool found = false;
    for (size_t i = 0; i < forest.nodes.size() && !found; ++i) {
      found = forest.PathToRoot(i) == atom.vars();
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

Result<HierarchyForest> BuildHierarchyForest(const ConjunctiveQuery& query) {
  if (auto violation = FindHierarchyViolation(query)) {
    return Status::NotHierarchical(violation->ToString(query));
  }

  // Group variables by their at(X) signature. std::map gives deterministic
  // iteration order.
  std::map<Signature, std::vector<VarId>> groups;
  for (VarId v : query.AllVars()) {
    groups[query.AtomsOf(v)].push_back(v);
  }

  HierarchyForest forest;
  std::unordered_map<VarId, size_t> node_of;

  // For each group: find the parent group = minimal strict superset
  // signature. For hierarchical queries all strict supersets are nested, so
  // "minimal size" identifies it uniquely.
  struct GroupInfo {
    const Signature* sig;
    const std::vector<VarId>* vars;
    const Signature* parent_sig = nullptr;
  };
  std::vector<GroupInfo> infos;
  for (const auto& [sig, vars] : groups) {
    GroupInfo info;
    info.sig = &sig;
    info.vars = &vars;
    for (const auto& [other_sig, other_vars] : groups) {
      if (other_sig.size() > sig.size() && IsSubset(sig, other_sig)) {
        if (info.parent_sig == nullptr ||
            other_sig.size() < info.parent_sig->size()) {
          info.parent_sig = &other_sig;
        }
      }
    }
    infos.push_back(info);
  }

  // Create chains for groups in order of decreasing signature size so that
  // parents exist before children. (Equal sizes cannot be ancestors of one
  // another.)
  std::sort(infos.begin(), infos.end(),
            [](const GroupInfo& a, const GroupInfo& b) {
              if (a.sig->size() != b.sig->size()) {
                return a.sig->size() > b.sig->size();
              }
              return *a.sig < *b.sig;
            });

  // Bottom (deepest) node of each realized group, keyed by signature.
  std::map<Signature, size_t> bottom_of;

  for (const GroupInfo& info : infos) {
    std::vector<VarId> chain = *info.vars;
    std::sort(chain.begin(), chain.end());
    std::optional<size_t> parent;
    if (info.parent_sig != nullptr) {
      auto it = bottom_of.find(*info.parent_sig);
      HIERARQ_CHECK(it != bottom_of.end())
          << "parent group not yet realized (internal ordering bug)";
      parent = it->second;
    }
    for (VarId v : chain) {
      HierarchyNode node;
      node.var = v;
      node.parent = parent;
      const size_t index = forest.nodes.size();
      forest.nodes.push_back(node);
      node_of[v] = index;
      if (parent.has_value()) {
        forest.nodes[*parent].children.push_back(index);
      } else if (v == chain.front()) {
        forest.roots.push_back(index);
      }
      parent = index;
    }
    bottom_of[*info.sig] = *parent;
  }

  HIERARQ_CHECK(ForestRealizesQuery(forest, query))
      << "constructed hierarchy forest does not realize " << query.ToString();
  return forest;
}

}  // namespace hierarq
