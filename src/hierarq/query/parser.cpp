#include "hierarq/query/parser.h"

#include <string>
#include <vector>

#include "hierarq/util/logging.h"
#include "hierarq/util/strings.h"

namespace hierarq {

namespace {

/// Parses "R(A,B,3)" into an Atom, interning variables into `vars`.
Result<Atom> ParseAtom(std::string_view text, VariableTable& vars) {
  text = TrimView(text);
  const size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return Status::ParseError("malformed atom: '" + std::string(text) + "'");
  }
  const std::string relation = Trim(text.substr(0, open));
  if (!IsIdentifier(relation)) {
    return Status::ParseError("invalid relation name: '" + relation + "'");
  }
  const std::string_view body = text.substr(open + 1,
                                            text.size() - open - 2);
  std::vector<Term> terms;
  if (!TrimView(body).empty()) {
    for (const std::string& piece : SplitTopLevel(body, ',')) {
      if (piece.empty()) {
        return Status::ParseError("empty term in atom '" +
                                  std::string(text) + "'");
      }
      if (LooksLikeVariable(piece)) {
        terms.push_back(Term::Var(vars.Intern(piece)));
      } else {
        HIERARQ_ASSIGN_OR_RETURN(int64_t value, ParseInt64(piece));
        terms.push_back(Term::Const(value));
      }
    }
  }
  return Atom(relation, std::move(terms));
}

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  std::string_view body = TrimView(text);
  // Strip an optional trailing period.
  if (!body.empty() && body.back() == '.') {
    body.remove_suffix(1);
    body = TrimView(body);
  }
  // Strip an optional "Q() :-" head.
  const size_t turnstile = body.find(":-");
  if (turnstile != std::string_view::npos) {
    const std::string_view head = TrimView(body.substr(0, turnstile));
    if (!head.empty()) {
      // Validate the head shape "ident()".
      const size_t open = head.find('(');
      if (open == std::string_view::npos || head.back() != ')' ||
          !TrimView(head.substr(open + 1, head.size() - open - 2)).empty()) {
        return Status::ParseError(
            "query head must be a nullary atom like 'Q()', got: '" +
            std::string(head) + "'");
      }
      if (!IsIdentifier(Trim(head.substr(0, open)))) {
        return Status::ParseError("invalid head predicate name");
      }
    }
    body = TrimView(body.substr(turnstile + 2));
  }
  if (body.empty()) {
    return Status::ParseError("query has no atoms");
  }

  VariableTable vars;
  std::vector<Atom> atoms;
  for (const std::string& piece : SplitTopLevel(body, ',')) {
    if (piece.empty()) {
      return Status::ParseError("empty atom in query body");
    }
    HIERARQ_ASSIGN_OR_RETURN(Atom atom, ParseAtom(piece, vars));
    atoms.push_back(std::move(atom));
  }
  return ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
}

ConjunctiveQuery ParseQueryOrDie(std::string_view text) {
  Result<ConjunctiveQuery> result = ParseQuery(text);
  HIERARQ_CHECK(result.ok()) << "ParseQueryOrDie(\"" << std::string(text)
                             << "\"): " << result.status().ToString();
  return std::move(result).ValueOrDie();
}

}  // namespace hierarq
