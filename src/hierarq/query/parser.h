#ifndef HIERARQ_QUERY_PARSER_H_
#define HIERARQ_QUERY_PARSER_H_

/// \file parser.h
/// \brief Datalog-style text syntax for SJF-BCQs.
///
/// Grammar (whitespace-insensitive):
///
///   query  := [ head ":-" ] atoms [ "." ]
///   head   := ident "(" ")"
///   atoms  := atom { "," atom }
///   atom   := ident "(" [ term { "," term } ] ")"
///   term   := VARIABLE | INTEGER
///
/// Identifiers starting with an uppercase letter are variables; integer
/// literals are constants. Example: "Q() :- R(A,B), S(A,C), T(A,C,D)."
/// is the paper's running query, Eq. (1).

#include <string_view>

#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Parses a query. Fails with kParseError on malformed input and with
/// kInvalidArgument when the query is not self-join-free.
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

/// Parses a query and aborts on failure; for tests and examples with
/// string literals that are known to be valid.
ConjunctiveQuery ParseQueryOrDie(std::string_view text);

}  // namespace hierarq

#endif  // HIERARQ_QUERY_PARSER_H_
