#ifndef HIERARQ_QUERY_QUERY_H_
#define HIERARQ_QUERY_QUERY_H_

/// \file query.h
/// \brief Self-join-free Boolean conjunctive queries (SJF-BCQs), paper §3.
///
/// A query is a set of atoms `R(t1, ..., tk)` whose terms are variables or
/// constants. The paper's development is variable-only; constants are a
/// convenience extension (they act as selections when a database is
/// annotated) and do not participate in the hierarchical property.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hierarq/query/var_set.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Interns variable names to dense VarIds, per query.
class VariableTable {
 public:
  /// Returns the id of `name`, interning it on first sight.
  VarId Intern(const std::string& name);
  /// Returns the id of `name` if known.
  std::optional<VarId> Find(const std::string& name) const;
  /// Returns the name of `id`. Precondition: id was interned.
  const std::string& Name(VarId id) const;
  /// Number of interned variables.
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

/// One term of an atom: a variable or an integer constant.
class Term {
 public:
  static Term Var(VarId id) { return Term(true, static_cast<int64_t>(id)); }
  static Term Const(int64_t value) { return Term(false, value); }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }
  VarId var() const { return static_cast<VarId>(payload_); }
  int64_t constant() const { return payload_; }

  bool operator==(const Term& other) const {
    return is_variable_ == other.is_variable_ && payload_ == other.payload_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

 private:
  Term(bool is_variable, int64_t payload)
      : is_variable_(is_variable), payload_(payload) {}

  bool is_variable_;
  int64_t payload_;
};

/// An atom R(t1, ..., tk). Terms are ordered (positional schema); `vars()`
/// is the *set* of variables, which is what all hierarchical-query theory
/// operates on.
class Atom {
 public:
  Atom(std::string relation, std::vector<Term> terms);

  const std::string& relation() const { return relation_; }
  const std::vector<Term>& terms() const { return terms_; }
  size_t arity() const { return terms_.size(); }
  const VarSet& vars() const { return vars_; }
  bool HasConstants() const { return has_constants_; }

  /// Positions (0-based) where `v` occurs.
  std::vector<size_t> PositionsOf(VarId v) const;

  std::string ToString(const VariableTable& vars) const;

 private:
  std::string relation_;
  std::vector<Term> terms_;
  VarSet vars_;
  bool has_constants_ = false;
};

/// A self-join-free Boolean conjunctive query (paper Eq. (12)).
///
/// Invariants (validated by `Validate()` / the builder): all atoms carry
/// distinct relation symbols (self-join-freeness).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Builds a query; fails if two atoms share a relation symbol.
  static Result<ConjunctiveQuery> Create(std::vector<Atom> atoms,
                                         VariableTable variables);

  const std::vector<Atom>& atoms() const { return atoms_; }
  const VariableTable& variables() const { return variables_; }

  size_t num_atoms() const { return atoms_.size(); }

  /// vars(Q): the set of all variables in the query.
  const VarSet& AllVars() const { return all_vars_; }

  /// at(Y): indices (into atoms()) of the atoms containing variable `v`.
  const std::vector<size_t>& AtomsOf(VarId v) const;

  /// Index of the atom with relation `name`, if any.
  std::optional<size_t> AtomIndexOf(const std::string& name) const;

  /// Partition of atom indices into connected components (atoms connected
  /// iff they transitively share variables; paper §5.1).
  std::vector<std::vector<size_t>> ConnectedComponents() const;

  /// True iff every pair of atoms is connected.
  bool IsConnected() const { return ConnectedComponents().size() <= 1; }

  /// Renders "Q() :- R(A,B), S(A,C)".
  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;
  VariableTable variables_;
  VarSet all_vars_;
  std::vector<std::vector<size_t>> atoms_of_;  // Indexed by VarId.
};

}  // namespace hierarq

#endif  // HIERARQ_QUERY_QUERY_H_
