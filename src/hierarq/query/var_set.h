#ifndef HIERARQ_QUERY_VAR_SET_H_
#define HIERARQ_QUERY_VAR_SET_H_

/// \file var_set.h
/// \brief Variable identifiers and sets of variables.
///
/// Variables are interned per-query into dense `VarId`s (see
/// VariableTable in query.h). A `VarSet` is a sorted, duplicate-free set of
/// `VarId`s with the set algebra the hierarchical-query machinery needs:
/// the hierarchical property is literally defined through subset /
/// disjointness tests on `at(X)`-style sets (paper §1), and the elimination
/// procedure of Proposition 5.1 manipulates atom variable-sets.

#include <cstdint>
#include <initializer_list>
#include <string>

#include "hierarq/util/hash.h"
#include "hierarq/util/inlined_vector.h"

namespace hierarq {

/// Dense per-query variable identifier.
using VarId = uint32_t;

/// A sorted set of variable ids (small-buffer optimized: query arities are
/// small constants).
class VarSet {
 public:
  using Storage = InlinedVector<VarId, 8>;
  using const_iterator = Storage::const_iterator;

  VarSet() = default;
  VarSet(std::initializer_list<VarId> init) {
    for (VarId v : init) {
      Insert(v);
    }
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  VarId operator[](size_t i) const { return items_[i]; }

  /// Inserts `v`; no-op if already present. Returns true if inserted.
  bool Insert(VarId v) {
    size_t pos = LowerBound(v);
    if (pos < items_.size() && items_[pos] == v) {
      return false;
    }
    items_.push_back(v);  // Grow, then shift into place.
    for (size_t i = items_.size() - 1; i > pos; --i) {
      items_[i] = items_[i - 1];
    }
    items_[pos] = v;
    return true;
  }

  /// Removes `v` if present. Returns true if removed.
  bool Erase(VarId v) {
    size_t pos = LowerBound(v);
    if (pos >= items_.size() || items_[pos] != v) {
      return false;
    }
    items_.erase_at(pos);
    return true;
  }

  bool Contains(VarId v) const {
    size_t pos = LowerBound(v);
    return pos < items_.size() && items_[pos] == v;
  }

  /// True iff every element of *this is in `other`.
  bool IsSubsetOf(const VarSet& other) const {
    if (size() > other.size()) {
      return false;
    }
    size_t j = 0;
    for (VarId v : items_) {
      while (j < other.size() && other[j] < v) {
        ++j;
      }
      if (j == other.size() || other[j] != v) {
        return false;
      }
    }
    return true;
  }

  bool IsDisjointFrom(const VarSet& other) const {
    size_t i = 0;
    size_t j = 0;
    while (i < size() && j < other.size()) {
      if (items_[i] == other[j]) {
        return false;
      }
      if (items_[i] < other[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return true;
  }

  VarSet Union(const VarSet& other) const {
    VarSet out = *this;
    for (VarId v : other) {
      out.Insert(v);
    }
    return out;
  }

  VarSet Intersect(const VarSet& other) const {
    VarSet out;
    for (VarId v : items_) {
      if (other.Contains(v)) {
        out.items_.push_back(v);  // Already sorted: we iterate in order.
      }
    }
    return out;
  }

  VarSet Minus(const VarSet& other) const {
    VarSet out;
    for (VarId v : items_) {
      if (!other.Contains(v)) {
        out.items_.push_back(v);
      }
    }
    return out;
  }

  bool operator==(const VarSet& other) const { return items_ == other.items_; }
  bool operator!=(const VarSet& other) const { return items_ != other.items_; }
  /// Lexicographic; lets VarSet key ordered containers.
  bool operator<(const VarSet& other) const { return items_ < other.items_; }

  /// Renders as "{X0,X3}" using raw ids (names live in VariableTable).
  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += std::to_string(items_[i]);
    }
    out += "}";
    return out;
  }

 private:
  size_t LowerBound(VarId v) const {
    size_t lo = 0;
    size_t hi = items_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (items_[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  Storage items_;
};

struct VarSetHash {
  size_t operator()(const VarSet& s) const {
    return static_cast<size_t>(HashRange(s.begin(), s.end()));
  }
};

}  // namespace hierarq

#endif  // HIERARQ_QUERY_VAR_SET_H_
