#include "hierarq/query/elimination.h"

#include <algorithm>
#include <map>

#include "hierarq/query/hierarchical.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

/// Live atom during planning.
struct LiveAtom {
  size_t id;
  VarSet vars;
};

}  // namespace

Result<EliminationPlan> EliminationPlan::Build(const ConjunctiveQuery& query) {
  if (query.atoms().empty()) {
    return Status::InvalidArgument("cannot build a plan for an empty query");
  }

  EliminationPlan plan;
  plan.num_base_atoms_ = query.num_atoms();

  std::vector<LiveAtom> live;
  for (size_t i = 0; i < query.num_atoms(); ++i) {
    plan.vars_.push_back(query.atoms()[i].vars());
    plan.names_.push_back(query.atoms()[i].relation());
    live.push_back(LiveAtom{i, query.atoms()[i].vars()});
  }

  auto mint = [&plan](const VarSet& vars, const std::string& name) {
    plan.vars_.push_back(vars);
    plan.names_.push_back(name + "'");
    return plan.vars_.size() - 1;
  };

  while (!(live.size() == 1 && live.front().vars.empty())) {
    // Rule 1: find the smallest variable that occurs in exactly one live
    // atom. (Scanning in id order makes plans deterministic.)
    bool applied = false;
    std::map<VarId, std::vector<size_t>> occurrences;  // var -> live indices
    for (size_t i = 0; i < live.size(); ++i) {
      for (VarId v : live[i].vars) {
        occurrences[v].push_back(i);
      }
    }
    for (const auto& [var, owners] : occurrences) {
      if (owners.size() == 1) {
        const size_t idx = owners.front();
        EliminationStep step;
        step.rule = EliminationRule::kProjectVariable;
        step.source_atom = live[idx].id;
        step.variable = var;
        step.drop_pos = live[idx].vars.size();
        for (size_t pos = 0; pos < live[idx].vars.size(); ++pos) {
          if (live[idx].vars[pos] == var) {
            step.drop_pos = pos;
            break;
          }
        }
        HIERARQ_CHECK_LT(step.drop_pos, live[idx].vars.size());
        VarSet result_vars = live[idx].vars;
        result_vars.Erase(var);
        step.result_atom = mint(result_vars, plan.names_[live[idx].id]);
        plan.steps_.push_back(step);
        live[idx] = LiveAtom{step.result_atom, result_vars};
        applied = true;
        break;
      }
    }
    if (applied) {
      continue;
    }

    // Rule 2: find the first pair of live atoms with identical variable
    // sets (pairs scanned in id order).
    for (size_t i = 0; i < live.size() && !applied; ++i) {
      for (size_t j = i + 1; j < live.size() && !applied; ++j) {
        if (live[i].vars == live[j].vars) {
          EliminationStep step;
          step.rule = EliminationRule::kMergeAtoms;
          step.left_atom = live[i].id;
          step.right_atom = live[j].id;
          step.result_atom = mint(live[i].vars, plan.names_[live[i].id]);
          plan.steps_.push_back(step);
          live[i] = LiveAtom{step.result_atom, plan.vars_[step.result_atom]};
          live.erase(live.begin() + static_cast<ptrdiff_t>(j));
          applied = true;
        }
      }
    }
    if (applied) {
      continue;
    }

    // Stuck: Proposition 5.1 says the query is not hierarchical. Surface
    // the concrete pairwise violation as the error message.
    std::string detail = "elimination procedure is stuck";
    if (auto violation = FindHierarchyViolation(query)) {
      detail += ": " + violation->ToString(query);
    }
    return Status::NotHierarchical(detail);
  }

  plan.final_atom_ = live.front().id;
  return plan;
}

const VarSet& EliminationPlan::vars_of(size_t atom_id) const {
  HIERARQ_CHECK_LT(atom_id, vars_.size());
  return vars_[atom_id];
}

const std::string& EliminationPlan::name_of(size_t atom_id) const {
  HIERARQ_CHECK_LT(atom_id, names_.size());
  return names_[atom_id];
}

std::string EliminationPlan::ToString(const VariableTable& variables) const {
  auto atom_str = [&](size_t id) {
    std::string s = name_of(id) + "(";
    const VarSet& vs = vars_of(id);
    for (size_t i = 0; i < vs.size(); ++i) {
      if (i > 0) {
        s += ",";
      }
      s += variables.Name(vs[i]);
    }
    return s + ")";
  };
  std::string out;
  for (const EliminationStep& step : steps_) {
    if (step.rule == EliminationRule::kProjectVariable) {
      out += "Rule 1: project " + variables.Name(step.variable) + " out of " +
             atom_str(step.source_atom) + " -> " + atom_str(step.result_atom);
    } else {
      out += "Rule 2: merge " + atom_str(step.left_atom) + " and " +
             atom_str(step.right_atom) + " -> " + atom_str(step.result_atom);
    }
    out += "\n";
  }
  out += "Final atom: " + atom_str(final_atom_);
  return out;
}

}  // namespace hierarq
