#ifndef HIERARQ_QUERY_GYO_H_
#define HIERARQ_QUERY_GYO_H_

/// \file gyo.h
/// \brief GYO ear-removal: acyclicity of conjunctive queries.
///
/// The paper (§5.1) contrasts its elimination procedure with GYO: GYO's
/// Rule 2 is relaxed to absorb an atom R1(X) into any atom R2(Y) with
/// X ⊆ Y. Hence hierarchical ⟹ acyclic but not conversely — e.g. the
/// non-hierarchical path query Q() :- R(X), S(X,Y), T(Y) is acyclic. This
/// module exists to (a) verify that strict inclusion experimentally and
/// (b) explain the paper's remark that a *distributive* 2-monoid would let
/// Algorithm 1 solve all acyclic queries, contradicting hardness — see the
/// dichotomy tests.

#include "hierarq/query/query.h"

namespace hierarq {

/// Classification of an SJF-BCQ, computed by RunGyo/IsHierarchical.
enum class QueryClass {
  kHierarchical,     ///< Hierarchical (hence also acyclic).
  kAcyclicOnly,      ///< Acyclic but not hierarchical (e.g. path query).
  kCyclic,           ///< Not even acyclic (e.g. triangle query).
};

const char* QueryClassName(QueryClass c);

/// True iff the query hypergraph is (alpha-)acyclic, decided by GYO
/// ear removal.
bool IsAcyclic(const ConjunctiveQuery& query);

/// Classifies the query (hierarchical / acyclic-only / cyclic).
QueryClass Classify(const ConjunctiveQuery& query);

}  // namespace hierarq

#endif  // HIERARQ_QUERY_GYO_H_
