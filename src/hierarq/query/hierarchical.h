#ifndef HIERARQ_QUERY_HIERARCHICAL_H_
#define HIERARQ_QUERY_HIERARCHICAL_H_

/// \file hierarchical.h
/// \brief The hierarchical property of SJF-BCQs (paper §1, §5.1).
///
/// A query Q is hierarchical iff for every pair of variables X, Y one of
/// `at(X) ⊆ at(Y)`, `at(Y) ⊆ at(X)`, `at(X) ∩ at(Y) = ∅` holds, where
/// `at(Z)` is the set of atoms containing Z. This file implements:
///  * the direct pairwise test,
///  * extraction of a *violation witness* — the variables A, B and atoms
///    R(A,..), S(A,B,..), T(B,..) used both by tests and by the Theorem 4.4
///    hardness reduction, which needs exactly this shape, and
///  * hierarchy trees (Proposition 5.5): for each connected component a
///    rooted tree on its variables such that every atom's variable set is a
///    root-to-node path.

#include <optional>
#include <string>
#include <vector>

#include "hierarq/query/query.h"

namespace hierarq {

/// Witness that a query is not hierarchical: variables `a`, `b` and atom
/// indices such that a ∈ r_atom ∩ s_atom \ t_atom and
/// b ∈ s_atom ∩ t_atom \ r_atom.
struct HierarchyViolation {
  VarId a = 0;
  VarId b = 0;
  size_t r_atom = 0;  ///< Contains a, not b.
  size_t s_atom = 0;  ///< Contains both a and b.
  size_t t_atom = 0;  ///< Contains b, not a.

  std::string ToString(const ConjunctiveQuery& query) const;
};

/// Direct pairwise test of the hierarchical property; O(|vars|^2 · |atoms|).
bool IsHierarchical(const ConjunctiveQuery& query);

/// Returns a violation witness, or nullopt when the query is hierarchical.
std::optional<HierarchyViolation> FindHierarchyViolation(
    const ConjunctiveQuery& query);

/// One node of a hierarchy tree.
struct HierarchyNode {
  VarId var;
  std::optional<size_t> parent;   ///< Index into HierarchyForest::nodes.
  std::vector<size_t> children;   ///< Indices into HierarchyForest::nodes.
};

/// Rooted forest on vars(Q) per Proposition 5.5: one tree per connected
/// component with at least one variable. (Components without variables —
/// nullary atoms — contribute no tree.)
struct HierarchyForest {
  std::vector<HierarchyNode> nodes;
  std::vector<size_t> roots;  ///< Node indices of the tree roots.

  /// Node index of `v`. Precondition: v occurs in the query.
  size_t NodeOf(VarId v) const;

  /// The variable set along the path from node `i` to its root (inclusive).
  VarSet PathToRoot(size_t i) const;

  std::string ToString(const VariableTable& vars) const;
};

/// Builds the hierarchy forest. Fails with kNotHierarchical when the query
/// is not hierarchical (Proposition 5.5 guarantees existence exactly then).
///
/// Construction: for a hierarchical query, `at(X)` sets that intersect are
/// nested, so ordering variables by decreasing |at(X)| (chaining equal
/// signatures arbitrarily-but-deterministically) yields the parent relation
/// "smallest strict superset signature".
Result<HierarchyForest> BuildHierarchyForest(const ConjunctiveQuery& query);

/// Checks the Proposition 5.5 property for a given forest: every atom's
/// variable set equals PathToRoot(node) for some node. Used by tests and
/// by BuildHierarchyForest's internal self-check.
bool ForestRealizesQuery(const HierarchyForest& forest,
                         const ConjunctiveQuery& query);

}  // namespace hierarq

#endif  // HIERARQ_QUERY_HIERARCHICAL_H_
