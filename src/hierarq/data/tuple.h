#ifndef HIERARQ_DATA_TUPLE_H_
#define HIERARQ_DATA_TUPLE_H_

/// \file tuple.h
/// \brief Tuples of domain values.

#include <initializer_list>
#include <string>

#include "hierarq/data/value.h"
#include "hierarq/util/inlined_vector.h"

namespace hierarq {

/// A tuple of domain values; inline storage covers common arities.
using Tuple = InlinedVector<Value, 4>;
using TupleHash = InlinedVectorHash<Value, 4>;

inline Tuple MakeTuple(std::initializer_list<Value> values) {
  return Tuple(values);
}

/// Renders "(v1,v2,...)" with numeric values.
inline std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace hierarq

#endif  // HIERARQ_DATA_TUPLE_H_
