#ifndef HIERARQ_DATA_LOADER_H_
#define HIERARQ_DATA_LOADER_H_

/// \file loader.h
/// \brief Text format for database instances.
///
/// One fact per line; '#' starts a comment; blank lines are skipped.
///
///   R(1, 5)
///   S(1, 2) @ 0.5      # optional probability annotation (TID databases)
///   T(alice, bob)      # symbolic values are interned via a Dictionary
///
/// Values that parse as integers are stored as themselves; all other
/// identifiers are interned. The probability annotation is only legal when
/// loading a TID database.

#include <string_view>

#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/data/value.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Parses one value token under the loader's conventions: integers map to
/// themselves (guarded against the symbolic range), identifiers intern
/// via `dict`. Shared by the file loader and the CLI's update-command
/// parser so value syntax can never drift between the two.
Result<Value> ParseValue(const std::string& token, Dictionary* dict);

/// Parses a set database. `dict` may be null when the text is all-numeric.
Result<Database> LoadDatabase(std::string_view text, Dictionary* dict);

/// Parses a TID database; facts without '@' default to probability 1.
Result<TidDatabase> LoadTidDatabase(std::string_view text, Dictionary* dict);

/// File-reading wrappers.
Result<Database> LoadDatabaseFromFile(const std::string& path,
                                      Dictionary* dict);
Result<TidDatabase> LoadTidDatabaseFromFile(const std::string& path,
                                            Dictionary* dict);

}  // namespace hierarq

#endif  // HIERARQ_DATA_LOADER_H_
