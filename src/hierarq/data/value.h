#ifndef HIERARQ_DATA_VALUE_H_
#define HIERARQ_DATA_VALUE_H_

/// \file value.h
/// \brief Domain values and the string dictionary.
///
/// Database values come from a countably infinite domain Dom (paper §3).
/// hierarq represents them as 64-bit integers: integer data maps to itself,
/// and symbolic data (strings) is interned into a `Dictionary` that assigns
/// ids in a reserved high range so that the two never collide.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hierarq {

/// A domain value.
using Value = int64_t;

/// First id handed out for interned symbolic values; numeric literals in
/// loaded data must stay below this (checked by the loader).
constexpr Value kFirstSymbolicValue = int64_t{1} << 40;

/// Bidirectional string <-> Value interning for symbolic data.
class Dictionary {
 public:
  /// Returns the value for `text`, interning it on first sight.
  Value Intern(const std::string& text);

  /// Returns the value of `text` if already interned.
  std::optional<Value> Find(const std::string& text) const;

  /// True iff `value` denotes an interned symbol (vs a numeric literal).
  static bool IsSymbolic(Value value) { return value >= kFirstSymbolicValue; }

  /// Renders a value: the symbol text for interned values (when this
  /// dictionary knows it), the decimal rendering otherwise.
  std::string Render(Value value) const;

  size_t size() const { return symbols_.size(); }

 private:
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_VALUE_H_
