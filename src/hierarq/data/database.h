#ifndef HIERARQ_DATA_DATABASE_H_
#define HIERARQ_DATA_DATABASE_H_

/// \file database.h
/// \brief Set database instances (paper §3): sets of facts over a schema.

#include <map>
#include <string>
#include <vector>

#include "hierarq/data/relation.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// One fact R(v1,...,vk): a relation name plus a tuple.
struct Fact {
  std::string relation;
  Tuple tuple;

  bool operator==(const Fact& other) const {
    return relation == other.relation && tuple == other.tuple;
  }
  bool operator!=(const Fact& other) const { return !(*this == other); }
  /// Deterministic order: by relation name, then tuple.
  bool operator<(const Fact& other) const {
    if (relation != other.relation) {
      return relation < other.relation;
    }
    return tuple < other.tuple;
  }

  std::string ToString() const { return relation + TupleToString(tuple); }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : f.relation) {
      h = HashCombine(h, static_cast<uint64_t>(c));
    }
    return static_cast<size_t>(
        HashCombine(h, TupleHash{}(f.tuple)));
  }
};

/// A set database instance: named relations holding duplicate-free tuples.
/// Relations are created lazily on first insert; arity is fixed by the
/// first fact of each relation (subsequent mismatches are rejected).
class Database {
 public:
  /// Adds a fact; creates the relation on first use. Returns
  /// InvalidArgument on arity mismatch with an existing relation. The
  /// boolean result is true iff the fact was new.
  Result<bool> AddFact(const std::string& relation, const Tuple& tuple);

  /// AddFact for trusted callers (CHECK on arity mismatch).
  bool AddFactOrDie(const std::string& relation, const Tuple& tuple);

  bool ContainsFact(const std::string& relation, const Tuple& tuple) const;
  bool ContainsFact(const Fact& fact) const {
    return ContainsFact(fact.relation, fact.tuple);
  }

  /// Removes a fact if present; true iff removed.
  bool EraseFact(const Fact& fact);

  /// The relation named `name`, or nullptr when absent.
  const Relation* FindRelation(const std::string& name) const;

  /// All relations, keyed by name (deterministic order).
  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Total number of facts |D|.
  size_t NumFacts() const;

  /// All facts in deterministic order.
  std::vector<Fact> AllFacts() const;

  /// Set union with `other` (this ∪ other), as a new database.
  Result<Database> UnionWith(const Database& other) const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_DATABASE_H_
