#ifndef HIERARQ_DATA_RELATION_H_
#define HIERARQ_DATA_RELATION_H_

/// \file relation.h
/// \brief Set-semantics relations: duplicate-free bags of same-arity tuples.
///
/// Iteration order is insertion order (deterministic), membership is O(1)
/// via a hash index.

#include <string>
#include <unordered_set>
#include <vector>

#include "hierarq/data/tuple.h"
#include "hierarq/util/result.h"

namespace hierarq {

class Relation {
 public:
  Relation() = default;
  Relation(std::string name, size_t arity)
      : name_(std::move(name)), arity_(arity) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts `tuple`; duplicate inserts are no-ops. Returns true if the
  /// tuple was new. Fails (false + unchanged relation) never — arity is
  /// checked with a CHECK because a mismatch is a programming error.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return index_.find(tuple) != index_.end();
  }

  /// Removes `tuple` if present; returns true if removed. O(n) tail
  /// compaction is avoided by swap-with-last, so iteration order after an
  /// erase is *not* insertion order anymore.
  bool Erase(const Tuple& tuple);

  /// Tuples in deterministic order.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  std::string ToString() const;

 private:
  std::string name_;
  size_t arity_ = 0;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> index_;
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_RELATION_H_
