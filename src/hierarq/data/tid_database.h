#ifndef HIERARQ_DATA_TID_DATABASE_H_
#define HIERARQ_DATA_TID_DATABASE_H_

/// \file tid_database.h
/// \brief Tuple-independent probabilistic databases (paper §1).
///
/// Each fact carries a marginal probability and all facts are independent
/// events. This is the input type of Probabilistic Query Evaluation.

#include <unordered_map>
#include <vector>

#include "hierarq/data/database.h"

namespace hierarq {

class TidDatabase {
 public:
  /// Adds a fact with probability `p` (clamped to [0,1]); re-adding an
  /// existing fact overwrites its probability.
  Status AddFact(const std::string& relation, const Tuple& tuple, double p);
  void AddFactOrDie(const std::string& relation, const Tuple& tuple,
                    double p);

  /// Probability of a fact; absent facts have probability 0.
  double Probability(const Fact& fact) const;

  /// The deterministic skeleton (all facts, ignoring probabilities).
  const Database& facts() const { return facts_; }

  size_t NumFacts() const { return facts_.NumFacts(); }

  /// All facts in deterministic order, paired with probabilities.
  std::vector<std::pair<Fact, double>> AllFacts() const;

 private:
  Database facts_;
  std::unordered_map<Fact, double, FactHash> probabilities_;
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_TID_DATABASE_H_
