#include "hierarq/data/relation.h"

#include <algorithm>

#include "hierarq/util/logging.h"

namespace hierarq {

bool Relation::Insert(const Tuple& tuple) {
  HIERARQ_CHECK_EQ(tuple.size(), arity_)
      << "arity mismatch inserting into " << name_;
  if (!index_.insert(tuple).second) {
    return false;
  }
  tuples_.push_back(tuple);
  return true;
}

bool Relation::Erase(const Tuple& tuple) {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    return false;
  }
  index_.erase(it);
  auto pos = std::find(tuples_.begin(), tuples_.end(), tuple);
  HIERARQ_CHECK(pos != tuples_.end());
  *pos = tuples_.back();
  tuples_.pop_back();
  return true;
}

std::string Relation::ToString() const {
  std::string out = name_ + "{";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += TupleToString(tuples_[i]);
  }
  out += "}";
  return out;
}

}  // namespace hierarq
