#ifndef HIERARQ_DATA_COLUMNAR_H_
#define HIERARQ_DATA_COLUMNAR_H_

/// \file columnar.h
/// \brief `ColumnarStore` — column-major storage for annotated relations.
///
/// The flat backend (util/flat_map.h) keys its table by whole tuples, so
/// Rule 1's drop-one-variable projection re-hashes and re-compares every
/// surviving position of every fact *through the tuple*, touching bytes
/// the projection is about to discard. `ColumnarStore` decomposes a
/// relation by schema position instead:
///
///   * one dense `std::vector<Value>` per schema position (row r's key is
///     `columns_[0][r], ..., columns_[arity-1][r]`);
///   * one dense `std::vector<K>` of annotations, parallel to the rows;
///   * a row-id hash index: a robin-hood open-addressing table whose
///     slots hold row ids, probed with a per-row hash folded over the
///     columns. Key compares walk `columns_[c][row]` — column-strided
///     loops over contiguous arrays, the layout SIMD key compares want.
///
/// The column loops run on the vector kernels of util/simd.h (batched
/// Mix64 hash folds over 2/4 rows per instruction, probe-key compares
/// against gathered column lanes; scalar fallback, runtime-dispatched),
/// and the batch probe loops of the Rule 2 native prefetch the index
/// slots a few rows ahead so the random-access meta/row loads overlap.
/// All tiers produce bit-identical hashes — the kernels are pure integer
/// math — so results do not depend on the host's vector width.
///
/// Rows are appended by inserts and removed one at a time only by `Erase`
/// (the incremental subsystem deletes single facts from materialized
/// relations): the erased row swaps with the last row so the columns stay
/// dense, and the index entry of the swapped row is re-pointed while the
/// erased row's slot is removed by robin-hood backward-shift — the index
/// never needs tombstones. The per-row hash is folded column-by-column
/// with the same `HashCombine` sequence `HashRange` applies to a whole
/// tuple, so tuple-keyed probes (`Find(const Tuple&)`) and batch
/// column-wise hashing agree on every key.
///
/// The payoff is in the Algorithm 1 natives:
///   * `ProjectDropInto` (Rule 1) batch-hashes only the *surviving*
///     columns — the dropped column's bytes are never read — then
///     ⊕-merges rows into the result;
///   * `JoinUnionInto` (Rule 2) batch-hashes each side once, probes the
///     other side per row, and builds the result's index with
///     compare-free inserts (output keys are unique by Lemma 6.6's
///     union-of-supports argument, so equality checks are unnecessary).
///
/// Pointer validity matches FlatMap: pointers returned by
/// `Find`/`FindOrInsert` are invalidated by the next mutating call.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hierarq/data/tuple.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/simd.h"

namespace hierarq {

template <typename K>
class ColumnarStore {
 public:
  ColumnarStore() = default;
  explicit ColumnarStore(size_t arity) { Reset(arity); }

  // Copies transfer the rows and the index but not the per-run hash
  // scratch buffers — AssignFrom-driven replay copies (the service hot
  // path) must not pay for dead scratch bandwidth. Moves stay wholesale.
  ColumnarStore(const ColumnarStore& other)
      : columns_(other.columns_),
        values_(other.values_),
        meta_(other.meta_),
        rows_(other.rows_) {}
  ColumnarStore& operator=(const ColumnarStore& other) {
    columns_ = other.columns_;
    values_ = other.values_;
    meta_ = other.meta_;
    rows_ = other.rows_;
    return *this;
  }
  ColumnarStore(ColumnarStore&&) = default;
  ColumnarStore& operator=(ColumnarStore&&) = default;

  size_t arity() const { return columns_.size(); }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Drops all rows and re-targets the store at `arity` positions. Kept
  /// columns and the index keep their allocations (buffer-reuse entry
  /// point, like FlatMap::Clear).
  void Reset(size_t arity) {
    Clear();
    columns_.resize(arity);
  }

  /// Removes all rows but keeps column, value, and index allocations.
  void Clear() {
    for (std::vector<Value>& column : columns_) {
      column.clear();
    }
    values_.clear();  // Destroys annotations, releasing any heap they own.
    if (!meta_.empty()) {
      std::fill(meta_.begin(), meta_.end(), uint8_t{0});
    }
  }

  /// Pre-sizes columns, values, and the row-id index for `count` rows so
  /// inserts proceed without reallocation or index growth.
  void Reserve(size_t count) {
    for (std::vector<Value>& column : columns_) {
      column.reserve(count);
    }
    values_.reserve(count);
    size_t needed = kMinCapacity;
    while (needed * kMaxLoadDen < count * kMaxLoadNum) {
      needed *= 2;
    }
    if (needed > meta_.size()) {
      RebuildIndex(needed);
    }
  }

  /// Returns the annotation of `key`, or nullptr when absent.
  const K* Find(const Tuple& key) const {
    HIERARQ_CHECK_EQ(key.size(), arity());
    const uint32_t row = FindRow(HashRange(key.begin(), key.end()),
                                 [&](uint32_t r) { return RowEquals(r, key); });
    return row == kNoRow ? nullptr : &values_[row].value;
  }

  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  /// Combined find-else-insert (one probe sequence): returns the
  /// annotation slot of `key` and whether it was just inserted
  /// (value-initialized; the caller assigns the real annotation).
  std::pair<K*, bool> FindOrInsert(const Tuple& key) {
    HIERARQ_CHECK_EQ(key.size(), arity());
    auto [row, inserted] = FindOrInsertRow(
        HashRange(key.begin(), key.end()),
        [&](uint32_t r) { return RowEquals(r, key); },
        [&] {
          for (size_t c = 0; c < columns_.size(); ++c) {
            columns_[c].push_back(key[c]);
          }
          values_.emplace_back();
        });
    return {&values_[row].value, inserted};
  }

  /// Sets the annotation of `key` (inserting or overwriting).
  void Set(const Tuple& key, K value) {
    *FindOrInsert(key).first = std::move(value);
  }

  /// Inserts `value` at `key`, or combines with the existing annotation
  /// via `combine(existing, value)`.
  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    auto [slot, inserted] = FindOrInsert(key);
    if (inserted) {
      *slot = std::move(value);
    } else {
      *slot = combine(*slot, value);
    }
  }

  /// Removes `key` if present; true iff removed. The erased row swaps with
  /// the last row (columns stay dense, row ids stay < size()); the index
  /// removes the erased slot by backward-shift and re-points the swapped
  /// row's slot at its new id. O(arity + probe chain).
  bool Erase(const Tuple& key) {
    HIERARQ_CHECK_EQ(key.size(), arity());
    if (values_.empty() || meta_.empty()) {
      return false;
    }
    // Locate the slot (not just the row): the backward-shift needs it.
    const size_t mask = meta_.size() - 1;
    size_t index = HashRange(key.begin(), key.end()) & mask;
    uint8_t distance = 1;
    while (true) {
      const uint8_t slot = meta_[index];
      if (slot == 0 || slot < distance) {
        return false;  // Robin-hood invariant: key would sit here.
      }
      if (slot == distance && RowEquals(rows_[index], key)) {
        break;
      }
      index = (index + 1) & mask;
      ++distance;
    }
    const uint32_t row = rows_[index];

    // Backward-shift the erased slot out of the index.
    size_t hole = index;
    while (true) {
      const size_t next = (hole + 1) & mask;
      if (meta_[next] <= 1) {
        break;
      }
      rows_[hole] = rows_[next];
      meta_[hole] = meta_[next] - 1;
      hole = next;
    }
    meta_[hole] = 0;

    // Swap-remove the row; re-point the moved row's index entry.
    const uint32_t last = static_cast<uint32_t>(values_.size()) - 1;
    if (row != last) {
      uint64_t moved_hash = kHashRangeSeed;
      for (std::vector<Value>& column : columns_) {
        column[row] = column[last];
        moved_hash =
            HashCombine(moved_hash, static_cast<uint64_t>(column[row]));
      }
      values_[row] = std::move(values_[last]);
      // Row ids are unique, so scanning the moved row's probe chain for id
      // `last` finds exactly its slot.
      size_t probe = moved_hash & mask;
      while (meta_[probe] == 0 || rows_[probe] != last) {
        probe = (probe + 1) & mask;
      }
      rows_[probe] = row;
    }
    for (std::vector<Value>& column : columns_) {
      column.pop_back();
    }
    values_.pop_back();
    return true;
  }

  /// Visits every row as (key, annotation), materializing keys into one
  /// scratch tuple reused across rows. Row order is insertion order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    Tuple key;
    key.resize(arity());
    const size_t n = size();
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        key[c] = columns_[c][r];
      }
      fn(static_cast<const Tuple&>(key), values_[r].value);
    }
  }

  /// Rule 1 native: ⊕-projects the position `drop_pos` out of this store
  /// into `out` (already Reset to arity-1). Phase 1 folds per-row hashes
  /// over the surviving columns only — the dropped column is never read —
  /// in column-strided passes; phase 2 appends or ⊕-merges each row.
  template <typename Plus>
  void ProjectDropInto(size_t drop_pos, Plus plus, ColumnarStore* out) const {
    HIERARQ_CHECK_LT(drop_pos, arity());
    HIERARQ_CHECK_EQ(out->arity(), arity() - 1);
    out->Reserve(size());

    std::vector<size_t> survivors;
    survivors.reserve(arity() - 1);
    for (size_t c = 0; c < arity(); ++c) {
      if (c != drop_pos) {
        survivors.push_back(c);
      }
    }
    ComputeRowHashes(survivors, &hash_scratch_);

    const size_t n = size();
    for (size_t r = 0; r < n; ++r) {
      if (r + kProbeAhead < n) {
        out->PrefetchProbe(hash_scratch_[r + kProbeAhead]);
      }
      auto [row, inserted] = out->FindOrInsertRow(
          hash_scratch_[r],
          [&](uint32_t q) {
            for (size_t j = 0; j < survivors.size(); ++j) {
              if (out->columns_[j][q] != columns_[survivors[j]][r]) {
                return false;
              }
            }
            return true;
          },
          [&] {
            for (size_t j = 0; j < survivors.size(); ++j) {
              out->columns_[j].push_back(columns_[survivors[j]][r]);
            }
            out->values_.push_back(values_[r]);
          });
      if (!inserted) {
        out->values_[row].value =
            plus(out->values_[row].value, values_[r].value);
      }
    }
  }

  /// Rule 2 native: out(x) = left(x) ⊗ right(x) over the *union* of
  /// supports (absent side contributes `zero`; only absent-absent pairs
  /// are skipped — Lemma 6.6). Output keys are unique by construction, so
  /// the result index is built with compare-free inserts.
  template <typename Times>
  static void JoinUnionInto(const ColumnarStore& left,
                            const ColumnarStore& right, Times times,
                            const K& zero, ColumnarStore* out) {
    HIERARQ_CHECK_EQ(left.arity(), right.arity());
    HIERARQ_CHECK_EQ(out->arity(), left.arity());
    out->Reserve(left.size() + right.size());  // Lemma 6.6 bound.
    const size_t arity = left.arity();

    // Both probe loops walk rows in order with fully precomputed hashes,
    // so the index lines each probe will touch are known kProbeAhead rows
    // early — prefetching them overlaps the random meta/row loads that
    // dominate large joins.
    left.ComputeAllRowHashes(&left.hash_scratch_);
    const size_t nl = left.size();
    for (size_t r = 0; r < nl; ++r) {
      if (r + kProbeAhead < nl) {
        right.PrefetchProbe(left.hash_scratch_[r + kProbeAhead]);
      }
      const uint32_t other =
          right.FindRow(left.hash_scratch_[r], [&](uint32_t q) {
            return RowsEqual(left, r, right, q, arity);
          });
      out->AppendUnique(
          left.hash_scratch_[r], left, r,
          times(left.values_[r].value,
                other == kNoRow ? zero : right.values_[other].value));
    }

    right.ComputeAllRowHashes(&right.hash_scratch_);
    const size_t nr = right.size();
    for (size_t r = 0; r < nr; ++r) {
      if (r + kProbeAhead < nr) {
        left.PrefetchProbe(right.hash_scratch_[r + kProbeAhead]);
      }
      const uint32_t shared =
          left.FindRow(right.hash_scratch_[r], [&](uint32_t q) {
            return RowsEqual(right, r, left, q, arity);
          });
      if (shared == kNoRow) {
        out->AppendUnique(right.hash_scratch_[r], right, r,
                          times(zero, right.values_[r].value));
      }
    }
  }

  /// Hints the cache that a probe for `hash` is imminent: touches the
  /// index line the probe sequence starts at. Purely advisory.
  void PrefetchProbe(uint64_t hash) const {
    if (meta_.empty()) {
      return;
    }
    const size_t index = hash & (meta_.size() - 1);
    simd::PrefetchRead(meta_.data() + index);
    simd::PrefetchRead(rows_.data() + index);
  }

  /// Read-only access to one column's dense value vector, and to one
  /// row's annotation — the surface the intra-query parallel runner
  /// (core/parallel.h) scans rows through without materializing tuples.
  const std::vector<Value>& column(size_t c) const { return columns_[c]; }
  const K& row_value(uint32_t row) const { return values_[row].value; }

  /// Public probe with a caller-supplied hash and equality: returns the
  /// matching row id or `kNoRowId`. The parallel Rule 2 probes one side's
  /// rows against the other store this way, with batch-precomputed
  /// hashes.
  template <typename Eq>
  uint32_t FindRowHashed(uint64_t hash, Eq eq) const {
    return FindRow(hash, eq);
  }
  static constexpr uint32_t kNoRowId = ~uint32_t{0};

  /// `Find` with the key's hash precomputed (`hash` must equal
  /// `HashRange` over `key`): the cross-backend probe the parallel Rule 2
  /// uses when the probed side is columnar.
  const K* FindWithHash(uint64_t hash, const Tuple& key) const {
    HIERARQ_CHECK_EQ(key.size(), arity());
    const uint32_t row =
        FindRow(hash, [&](uint32_t r) { return RowEquals(r, key); });
    return row == kNoRow ? nullptr : &values_[row].value;
  }

  /// `FindOrInsert` with the key's hash precomputed (`hash` must equal
  /// `HashRange` over `key`) — the per-shard insert path of
  /// `ShardedColumnarStore`, whose callers route by an already-computed
  /// hash and must not fold it a second time.
  std::pair<K*, bool> FindOrInsertHashed(uint64_t hash, const Tuple& key) {
    HIERARQ_CHECK_EQ(key.size(), arity());
    auto [row, inserted] = FindOrInsertRow(
        hash, [&](uint32_t r) { return RowEquals(r, key); },
        [&] {
          for (size_t c = 0; c < columns_.size(); ++c) {
            columns_[c].push_back(key[c]);
          }
          values_.emplace_back();
        });
    return {&values_[row].value, inserted};
  }

  /// `Merge` with the key's hash precomputed (same contract as
  /// `FindOrInsertHashed`).
  template <typename Combine>
  void MergeHashed(uint64_t hash, const Tuple& key, K value, Combine combine) {
    auto [slot, inserted] = FindOrInsertHashed(hash, key);
    if (inserted) {
      *slot = std::move(value);
    } else {
      *slot = combine(*slot, value);
    }
  }

  /// Batch per-row hashes over selected columns (`HashRange` over those
  /// positions, vector kernels) into `*hashes` — the public face of the
  /// internal fold, reused by the parallel Rule 1 partitioner.
  void HashRowsInto(const std::vector<size_t>& cols,
                    std::vector<uint64_t>* hashes) const {
    ComputeRowHashes(cols, hashes);
  }
  void HashAllRowsInto(std::vector<uint64_t>* hashes) const {
    ComputeAllRowHashes(hashes);
  }

  /// Optional row reorder for cache-linear probing: sorts rows by the
  /// index slot their hash homes to (hash & index mask — the probe
  /// address prefix), so a row-order scan that probes an equally-sized
  /// index walks it monotonically instead of randomly, then rebuilds this
  /// store's own index over the new row ids. Content-neutral: the same
  /// keys map to the same annotations; only row ids and ForEach order
  /// change (callers must already not rely on those). Worth its O(n log n)
  /// only before repeated large probe sweeps.
  void SortRowsByHashPrefix() {
    const size_t n = size();
    if (n <= 1) {
      return;
    }
    ComputeAllRowHashes(&hash_scratch_);
    const size_t mask = meta_.empty() ? ~size_t{0} : meta_.size() - 1;
    std::vector<uint32_t> order(n);
    for (size_t r = 0; r < n; ++r) {
      order[r] = static_cast<uint32_t>(r);
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t slot_a = hash_scratch_[a] & mask;
      const uint64_t slot_b = hash_scratch_[b] & mask;
      return slot_a != slot_b ? slot_a < slot_b : a < b;
    });
    std::vector<Value> column_scratch(n);
    for (std::vector<Value>& column : columns_) {
      for (size_t r = 0; r < n; ++r) {
        column_scratch[r] = column[order[r]];
      }
      column.swap(column_scratch);
    }
    std::vector<Slot> value_scratch(n);
    for (size_t r = 0; r < n; ++r) {
      value_scratch[r] = std::move(values_[order[r]]);
    }
    values_.swap(value_scratch);
    RebuildIndex(std::max(meta_.size(), kMinCapacity));
  }

 private:
  static constexpr uint32_t kNoRow = ~uint32_t{0};
  /// How many rows ahead the batch loops prefetch their next probes; deep
  /// enough to cover a memory load, shallow enough to stay in flight.
  static constexpr size_t kProbeAhead = 16;
  static constexpr size_t kMinCapacity = 8;
  // Same 7/8 load policy as FlatMap; denser tables iterate cheaper and
  // robin-hood keeps probe variance low at high load.
  static constexpr size_t kMaxLoadNum = 8;
  static constexpr size_t kMaxLoadDen = 7;
  static constexpr uint8_t kMaxDistance = 255;

  bool RowEquals(uint32_t row, const Tuple& key) const {
    return simd::RowEqualsKey(columns_, row, key.data(), columns_.size());
  }

  static bool RowsEqual(const ColumnarStore& a, size_t ra,
                        const ColumnarStore& b, size_t rb, size_t arity) {
    for (size_t c = 0; c < arity; ++c) {
      if (a.columns_[c][ra] != b.columns_[c][rb]) {
        return false;
      }
    }
    return true;
  }

  /// Folds per-row hashes over `cols` (in the given order) into
  /// `*hashes`, one column-strided vector-kernel pass per column
  /// (util/simd.h). Matches HashRange(values in that column order)
  /// exactly on every tier.
  void ComputeRowHashes(const std::vector<size_t>& cols,
                        std::vector<uint64_t>* hashes) const {
    hashes->assign(size(), kHashRangeSeed);
    const size_t n = size();
    for (size_t c : cols) {
      simd::HashCombineRows(hashes->data(), columns_[c].data(), n);
    }
  }

  void ComputeAllRowHashes(std::vector<uint64_t>* hashes) const {
    hashes->assign(size(), kHashRangeSeed);
    const size_t n = size();
    for (const std::vector<Value>& col : columns_) {
      simd::HashCombineRows(hashes->data(), col.data(), n);
    }
  }

  bool IndexNeedsGrowth() const {
    return (values_.size() + 1) * kMaxLoadNum > meta_.size() * kMaxLoadDen;
  }

  /// Probes the index for a row with the given key hash; `eq(row)` settles
  /// equality. Returns kNoRow when absent.
  template <typename Eq>
  uint32_t FindRow(uint64_t hash, Eq eq) const {
    if (values_.empty() || meta_.empty()) {
      return kNoRow;
    }
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;
    while (true) {
      const uint8_t slot = meta_[index];
      if (slot == 0 || slot < distance) {
        return kNoRow;  // Robin-hood invariant: key would sit here.
      }
      if (slot == distance && eq(rows_[index])) {
        return rows_[index];
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  /// One probe sequence for find-else-insert. When inserting, `append()`
  /// must push the new row's column values and annotation (its id is
  /// values_.size() at call time); it runs before any index displacement
  /// so an overflow-triggered rebuild sees complete column data.
  template <typename Eq, typename Append>
  std::pair<uint32_t, bool> FindOrInsertRow(uint64_t hash, Eq eq,
                                            Append append) {
    if (IndexNeedsGrowth()) {
      RebuildIndex(meta_.empty() ? kMinCapacity : meta_.size() * 2);
    }
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;
    while (true) {
      // Overflow check first, before any branch can store `distance`:
      // stored metadata must stay <= kMaxDistance - 1, the invariant
      // InsertDisplaced, InsertUniqueNoGrow, and FindRow's termination
      // argument rely on.
      if (distance == kMaxDistance) {
        RebuildIndex(meta_.size() * 2);
        return FindOrInsertRow(hash, eq, append);
      }
      const uint8_t slot = meta_[index];
      if (slot == 0) {
        const uint32_t row = NextRowId();
        append();
        meta_[index] = distance;
        rows_[index] = row;
        return {row, true};
      }
      if (slot == distance && eq(rows_[index])) {
        return {rows_[index], false};
      }
      if (slot < distance) {
        // Claim the richer slot; push the displaced id further along.
        const uint32_t row = NextRowId();
        append();
        const uint32_t displaced_row = rows_[index];
        const uint8_t displaced_distance = slot;
        rows_[index] = row;
        meta_[index] = distance;
        InsertDisplaced(displaced_row, displaced_distance,
                        (index + 1) & mask);
        return {row, true};
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  /// Appends one row copied from `src`'s row `r` plus its annotation and
  /// indexes it, relying on the caller's guarantee that the key is not yet
  /// present — no equality checks on the probe path (Rule 2's compare-free
  /// result build).
  void AppendUnique(uint64_t hash, const ColumnarStore& src, size_t r,
                    K value) {
    if (IndexNeedsGrowth()) {
      RebuildIndex(meta_.empty() ? kMinCapacity : meta_.size() * 2);
    }
    const uint32_t row = NextRowId();
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(src.columns_[c][r]);
    }
    values_.push_back(Slot{std::move(value)});
    if (!InsertUniqueNoGrow(hash, row)) {
      RebuildIndex(meta_.size() * 2);  // Re-indexes every row, incl. `row`.
    }
  }

  uint32_t NextRowId() const {
    HIERARQ_CHECK_LT(values_.size(), static_cast<size_t>(kNoRow));
    return static_cast<uint32_t>(values_.size());
  }

  /// Continues a robin-hood displacement chain. On a kMaxDistance
  /// overflow the whole index is rebuilt (covering the in-flight row,
  /// whose column data is already committed).
  void InsertDisplaced(uint32_t row, uint8_t distance, size_t index) {
    const size_t mask = meta_.size() - 1;
    ++distance;
    while (true) {
      if (distance == kMaxDistance) {
        RebuildIndex(meta_.size() * 2);
        return;
      }
      const uint8_t slot = meta_[index];
      if (slot == 0) {
        meta_[index] = distance;
        rows_[index] = row;
        return;
      }
      if (slot < distance) {
        std::swap(rows_[index], row);
        std::swap(meta_[index], distance);
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  /// Inserts with no equality checks (row ids are unique); returns false
  /// when the probe chain overflows kMaxDistance.
  bool InsertUniqueNoGrow(uint64_t hash, uint32_t row) {
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;
    while (true) {
      if (distance == kMaxDistance) {
        return false;
      }
      const uint8_t slot = meta_[index];
      if (slot == 0) {
        meta_[index] = distance;
        rows_[index] = row;
        return true;
      }
      if (slot < distance) {
        std::swap(rows_[index], row);
        std::swap(meta_[index], distance);
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  /// Rebuilds the row-id index at `new_capacity` slots from the committed
  /// rows, batch-recomputing their hashes column-wise. Doubles further on
  /// (astronomically unlikely) probe-chain overflow.
  void RebuildIndex(size_t new_capacity) {
    ComputeAllRowHashes(&hash_rebuild_scratch_);
    while (true) {
      meta_.assign(new_capacity, 0);
      rows_.assign(new_capacity, 0);
      bool ok = true;
      const size_t n = size();
      for (size_t row = 0; row < n && ok; ++row) {
        ok = InsertUniqueNoGrow(hash_rebuild_scratch_[row],
                                static_cast<uint32_t>(row));
      }
      if (ok) {
        return;
      }
      new_capacity *= 2;
    }
  }

  /// One-field wrapper so `values_` never becomes the bit-packed
  /// std::vector<bool> specialization (whose operator[] returns a proxy,
  /// breaking the K* slot contract) when K is bool (BoolMonoid).
  struct Slot {
    K value;
  };

  std::vector<std::vector<Value>> columns_;  // One per schema position.
  std::vector<Slot> values_;                 // Annotation of each row.
  std::vector<uint8_t> meta_;   // 0 = empty, else probe distance + 1.
  std::vector<uint32_t> rows_;  // Row id per occupied slot; ∥ meta_.
  // Per-row hash scratch for the batch passes; mutable so const sources
  // of ProjectDropInto/JoinUnionInto reuse their buffer across steps.
  mutable std::vector<uint64_t> hash_scratch_;
  std::vector<uint64_t> hash_rebuild_scratch_;
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_COLUMNAR_H_
