#ifndef HIERARQ_DATA_SHARDED_H_
#define HIERARQ_DATA_SHARDED_H_

/// \file sharded.h
/// \brief `ShardedStore` — a hash-sharded relation backend for intra-query
/// parallelism.
///
/// Rule 1's ⊕-aggregation and Rule 2's union-join partition perfectly by
/// key hash: two keys can only collide in the result if they are equal,
/// and equal keys hash equally. `ShardedStore` makes that partition
/// physical: `kNumShards` (a power of two) independent robin-hood tables
/// (`FlatMap`), with every key routed by the *top* bits of its already-
/// computed 64-bit hash — the bottom bits keep addressing slots inside
/// the shard, so routing and in-shard probing never share bits.
///
/// The payoff (core/parallel.h): a parallel Algorithm 1 step gives each
/// worker exclusive ownership of one output shard. Workers accumulate
/// lock-free — no two workers ever touch the same shard — and because the
/// shard of a key depends only on its hash, the result is *deterministic
/// for any thread count*: shard s always receives exactly the same keys
/// merged in exactly the same order, whether one worker processes all
/// shards or eight workers process one each. Serial callers see an
/// ordinary store: `ForEach` walks shards in index order, and every
/// single-key operation routes to its shard transparently, so the backend
/// is runtime-selectable (`StorageKind::kSharded`) like the other three
/// and participates in the same cross-backend differential suite.
///
/// Pointer validity matches FlatMap: pointers returned by
/// `Find`/`FindOrInsert` are invalidated by the next mutating call on the
/// *same shard* (mutations elsewhere never move another shard's entries —
/// that isolation is what the parallel runner builds on).
///
/// `ShardedColumnarStore` applies the identical partition with a
/// `ColumnarStore` per shard: the same top-bits routing and the same
/// one-worker-per-shard ownership, but each shard keeps its rows
/// column-major — so parallel scatter phases run the SIMD batch-hash and
/// gathered-lane compare kernels (util/simd.h) the flat shards cannot.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "hierarq/data/columnar.h"
#include "hierarq/data/tuple.h"
#include "hierarq/util/flat_map.h"
#include "hierarq/util/logging.h"

namespace hierarq {

template <typename K>
class ShardedStore {
 public:
  /// log2 of the shard count. Eight shards saturate the intra-query
  /// thread counts the engine targets (per-step parallelism beyond 8 is
  /// annotation- or memory-bound long before shard count binds) while
  /// keeping the per-shard constant overhead of small relations trivial.
  static constexpr size_t kShardBits = 3;
  static constexpr size_t kNumShards = size_t{1} << kShardBits;

  using Shard = FlatMap<Tuple, K, TupleHash>;

  /// Which shard owns a key with this hash: the top kShardBits bits —
  /// disjoint from the low bits FlatMap's probe addressing consumes.
  static constexpr size_t ShardOfHash(uint64_t hash) {
    return static_cast<size_t>(hash >> (64 - kShardBits));
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.size();
    }
    return total;
  }
  bool empty() const { return size() == 0; }

  /// Direct shard access — the parallel runner's ownership handle: task j
  /// mutates shard(j) and nothing else.
  Shard& shard(size_t s) {
    HIERARQ_CHECK_LT(s, kNumShards);
    return shards_[s];
  }
  const Shard& shard(size_t s) const {
    HIERARQ_CHECK_LT(s, kNumShards);
    return shards_[s];
  }

  const K* Find(const Tuple& key) const {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].FindHashed(hash, key);
  }
  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  std::pair<K*, bool> FindOrInsert(const Tuple& key) {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].FindOrInsertHashed(hash, key);
  }

  void Set(const Tuple& key, K value) {
    *FindOrInsert(key).first = std::move(value);
  }

  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    const uint64_t hash = TupleHash{}(key);
    shards_[ShardOfHash(hash)].MergeHashed(hash, key, std::move(value),
                                           combine);
  }

  bool Erase(const Tuple& key) {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].EraseHashed(hash, key);
  }

  /// Pre-sizes every shard for its expected slice of `count` keys. Hashed
  /// routing spreads keys near-uniformly, so each shard receives about
  /// count / kNumShards of them; the +1/8 slack keeps ordinary imbalance
  /// from triggering a mid-fill growth rehash (and a skewed shard simply
  /// grows, as any FlatMap does).
  void Reserve(size_t count) {
    const size_t per_shard = count / kNumShards;
    const size_t sized = per_shard + per_shard / 8 + 1;
    for (Shard& shard : shards_) {
      shard.Reserve(sized);
    }
  }

  /// Removes all entries; every shard keeps its slot array for reuse.
  void Clear() {
    for (Shard& shard : shards_) {
      shard.Clear();
    }
  }

  /// Visits every entry, shards in index order, slot order within a shard
  /// — deterministic for a fixed shard count, independent of how many
  /// threads filled the store.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& shard : shards_) {
      shard.ForEach(fn);
    }
  }

 private:
  Shard shards_[kNumShards];
};

/// `ShardedStore`'s partition over columnar shards: identical routing
/// (`ShardOfHash` = top kShardBits bits), identical determinism argument,
/// but each shard is a `ColumnarStore` — per-shard batch hashing and key
/// compares run the vector kernels. Unlike the flat shards, columnar
/// shards are arity-typed, so the store carries `Reset(arity)` like
/// `ColumnarStore` does; `AnnotatedRelation::Reset` forwards the schema
/// size the same way it does for the unsharded columnar backend.
template <typename K>
class ShardedColumnarStore {
 public:
  static constexpr size_t kShardBits = ShardedStore<K>::kShardBits;
  static constexpr size_t kNumShards = ShardedStore<K>::kNumShards;

  using Shard = ColumnarStore<K>;

  static constexpr size_t ShardOfHash(uint64_t hash) {
    return ShardedStore<K>::ShardOfHash(hash);
  }

  size_t arity() const { return shards_[0].arity(); }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.size();
    }
    return total;
  }
  bool empty() const { return size() == 0; }

  /// Direct shard access — the parallel runner's ownership handle: task j
  /// mutates shard(j) and nothing else.
  Shard& shard(size_t s) {
    HIERARQ_CHECK_LT(s, kNumShards);
    return shards_[s];
  }
  const Shard& shard(size_t s) const {
    HIERARQ_CHECK_LT(s, kNumShards);
    return shards_[s];
  }

  /// Drops all rows and re-targets every shard at `arity` positions.
  void Reset(size_t arity) {
    for (Shard& shard : shards_) {
      shard.Reset(arity);
    }
  }

  const K* Find(const Tuple& key) const {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].FindWithHash(hash, key);
  }
  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  std::pair<K*, bool> FindOrInsert(const Tuple& key) {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].FindOrInsertHashed(hash, key);
  }

  void Set(const Tuple& key, K value) {
    *FindOrInsert(key).first = std::move(value);
  }

  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    const uint64_t hash = TupleHash{}(key);
    shards_[ShardOfHash(hash)].MergeHashed(hash, key, std::move(value),
                                           combine);
  }

  bool Erase(const Tuple& key) {
    const uint64_t hash = TupleHash{}(key);
    return shards_[ShardOfHash(hash)].Erase(key);
  }

  /// Pre-sizes every shard for its expected slice of `count` keys (same
  /// +1/8 slack policy as ShardedStore).
  void Reserve(size_t count) {
    const size_t per_shard = count / kNumShards;
    const size_t sized = per_shard + per_shard / 8 + 1;
    for (Shard& shard : shards_) {
      shard.Reserve(sized);
    }
  }

  /// Removes all rows; every shard keeps its column/index allocations.
  void Clear() {
    for (Shard& shard : shards_) {
      shard.Clear();
    }
  }

  /// Visits every entry, shards in index order, rows in insertion order
  /// within a shard — deterministic for a fixed shard count, independent
  /// of how many threads filled the store.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Shard& shard : shards_) {
      shard.ForEach(fn);
    }
  }

 private:
  Shard shards_[kNumShards];
};

}  // namespace hierarq

#endif  // HIERARQ_DATA_SHARDED_H_
