#include "hierarq/data/value.h"

namespace hierarq {

Value Dictionary::Intern(const std::string& text) {
  auto it = index_.find(text);
  if (it != index_.end()) {
    return it->second;
  }
  const Value value = kFirstSymbolicValue + static_cast<Value>(symbols_.size());
  symbols_.push_back(text);
  index_.emplace(text, value);
  return value;
}

std::optional<Value> Dictionary::Find(const std::string& text) const {
  auto it = index_.find(text);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Dictionary::Render(Value value) const {
  if (IsSymbolic(value)) {
    const size_t index = static_cast<size_t>(value - kFirstSymbolicValue);
    if (index < symbols_.size()) {
      return symbols_[index];
    }
  }
  return std::to_string(value);
}

}  // namespace hierarq
