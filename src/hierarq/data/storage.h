#ifndef HIERARQ_DATA_STORAGE_H_
#define HIERARQ_DATA_STORAGE_H_

/// \file storage.h
/// \brief The storage-backend selector for `AnnotatedRelation`.
///
/// Five layouts implement the relation interface
/// (`Find`/`FindOrInsert`/`Merge`/`Reset`/`AssignFrom`):
///
///   * `kBaseline` — `std::unordered_map<Tuple, K>`: the reference
///     implementation; one heap node per fact, pointer-chasing probes.
///   * `kFlat`     — `FlatMap` (util/flat_map.h): open-addressing
///     robin-hood table keyed by whole tuples stored inline.
///   * `kColumnar` — `ColumnarStore` (data/columnar.h): one value vector
///     per schema position plus a row-id hash index, so Rule 1
///     projections touch only the surviving columns.
///   * `kSharded`  — `ShardedStore` (data/sharded.h): a power-of-two set
///     of independent FlatMap shards routed by the top bits of the key
///     hash, so intra-query parallel Rule 1/Rule 2 steps
///     (core/parallel.h) accumulate lock-free, one worker per shard.
///   * `kShardedColumnar` — `ShardedColumnarStore` (data/sharded.h): the
///     same hash-sharded partition with a `ColumnarStore` per shard, so
///     parallel steps keep the lock-free shard ownership *and* the SIMD
///     batch-hash/compare kernels columnar execution gets.
///
/// All five are always compiled in; the backend is selected *at runtime*
/// per relation (threaded as an engine option through `Evaluator`,
/// `EvalService` and `hierarq_cli --storage=...`), so A/B comparison runs
/// need no rebuild. The compile-time policy — CMake options
/// `HIERARQ_STORAGE_BASELINE` / (default flat) / `HIERARQ_STORAGE_COLUMNAR`
/// — only picks which backend newly created relations default to.

#include <optional>
#include <string_view>

namespace hierarq {

/// Which layout an `AnnotatedRelation` stores its support in.
enum class StorageKind : unsigned char {
  kBaseline = 0,  ///< std::unordered_map reference backend.
  kFlat = 1,      ///< Tuple-keyed open-addressing FlatMap.
  kColumnar = 2,  ///< Column vectors + row-id hash index.
  kSharded = 3,   ///< Hash-sharded FlatMap shards (intra-query parallel).
  kShardedColumnar = 4,  ///< Hash-sharded ColumnarStore shards.
};

/// The backend relations default to, fixed by the compile-time policy.
inline constexpr StorageKind kDefaultStorageKind =
#if defined(HIERARQ_STORAGE_DEFAULT_BASELINE)
    StorageKind::kBaseline;
#elif defined(HIERARQ_STORAGE_DEFAULT_COLUMNAR)
    StorageKind::kColumnar;
#else
    StorageKind::kFlat;
#endif

/// "baseline" / "flat" / "columnar" / "sharded" / "sharded_columnar" —
/// the spelling of the CLI flag and of the per-row storage tags in
/// BENCH_*.json.
const char* StorageKindName(StorageKind kind);

/// Inverse of `StorageKindName`; nullopt for unknown spellings.
std::optional<StorageKind> ParseStorageKind(std::string_view name);

/// All backends, in enum order — the iteration axis of the cross-backend
/// differential tests and the per-backend bench emitters.
inline constexpr StorageKind kAllStorageKinds[] = {
    StorageKind::kBaseline, StorageKind::kFlat, StorageKind::kColumnar,
    StorageKind::kSharded, StorageKind::kShardedColumnar};

}  // namespace hierarq

#endif  // HIERARQ_DATA_STORAGE_H_
