#ifndef HIERARQ_DATA_ANNOTATED_H_
#define HIERARQ_DATA_ANNOTATED_H_

/// \file annotated.h
/// \brief K-annotated relations and databases (paper §2, §5.3).
///
/// A K-annotated relation associates each fact with a value from a
/// 2-monoid's domain K. Facts whose annotation is the monoid zero are
/// simply *absent* — supports are what the algorithm stores and what
/// Lemma 6.6's size argument counts. Keys are tuples ordered by the
/// relation's schema, which is the atom's variable set in ascending VarId
/// order (atom term order, duplicate variables, and constants are resolved
/// once, when the base database is annotated).
///
/// `AnnotatedRelation` is a facade over five interchangeable storage
/// backends (data/storage.h), selected **at runtime** per relation:
/// the std::unordered_map baseline, the tuple-keyed open-addressing
/// `FlatMap` (util/flat_map.h), the column-major `ColumnarStore`
/// (data/columnar.h), and the hash-sharded `ShardedStore` /
/// `ShardedColumnarStore` pair (data/sharded.h, the substrates of
/// intra-query parallel steps — core/parallel.h). All backends implement
/// the same narrow interface —
/// `Find` / `FindOrInsert` / `Merge` / `Erase` / `Reset` / `AssignFrom`
/// plus the Algorithm 1 bulk operations `ProjectDropInto` (Rule 1) and
/// `JoinUnionInto` (Rule 2) — and are proven interchangeable by the
/// cross-backend differential suite (tests/storage_differential_test.cpp).

#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hierarq/data/columnar.h"
#include "hierarq/data/database.h"
#include "hierarq/data/sharded.h"
#include "hierarq/data/storage.h"
#include "hierarq/data/tuple.h"
#include "hierarq/query/query.h"
#include "hierarq/query/var_set.h"
#include "hierarq/util/flat_map.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Gives std::unordered_map the FlatMap surface, so the baseline backend
/// plugs into AnnotatedRelation's dispatch like the other two layouts.
template <typename Key, typename Mapped, typename Hash>
class StdMapAdapter {
 public:
  using Map = std::unordered_map<Key, Mapped, Hash>;
  using const_iterator = typename Map::const_iterator;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }

  const Mapped* Find(const Key& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  std::pair<Mapped*, bool> FindOrInsert(const Key& key) {
    auto [it, inserted] = map_.try_emplace(key);
    return {&it->second, inserted};
  }

  void Set(const Key& key, Mapped value) { map_[key] = std::move(value); }

  bool Erase(const Key& key) { return map_.erase(key) > 0; }

  template <typename Combine>
  void Merge(const Key& key, Mapped value, Combine combine) {
    auto [slot, inserted] = FindOrInsert(key);
    if (inserted) {
      *slot = std::move(value);
    } else {
      *slot = combine(*slot, value);
    }
  }

  void Reserve(size_t count) { map_.reserve(count); }
  void Clear() { map_.clear(); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const auto& [key, value] : map_) {
      fn(key, value);
    }
  }

 private:
  Map map_;
};

/// A relation annotated with values from K, keyed by tuples over `schema`,
/// stored in the backend named by `storage()`.
template <typename K>
class AnnotatedRelation {
 public:
  AnnotatedRelation() : AnnotatedRelation(VarSet{}) {}
  explicit AnnotatedRelation(VarSet schema,
                             StorageKind storage = kDefaultStorageKind)
      : schema_(std::move(schema)), storage_(storage) {
    ResetColumnarArity();
  }

  const VarSet& schema() const { return schema_; }
  StorageKind storage() const { return storage_; }

  /// |supp(R)| — the number of stored (non-zero) facts.
  size_t size() const {
    return Visit([](const auto& store) { return store.size(); });
  }
  bool empty() const { return size() == 0; }

  /// Sets the annotation of `key` (inserting or overwriting).
  void Set(const Tuple& key, K value) {
    HIERARQ_CHECK_EQ(key.size(), schema_.size());
    Visit([&](auto& store) { store.Set(key, std::move(value)); });
  }

  /// Returns the annotation of `key`, or nullptr when `key` is not in the
  /// support (i.e. its annotation is the monoid zero).
  const K* Find(const Tuple& key) const {
    return Visit([&](const auto& store) { return store.Find(key); });
  }

  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  /// Finds the annotation of `key`, inserting a value-initialized slot when
  /// absent; the bool is true iff the slot was just inserted (the caller
  /// must then assign a real annotation). One probe sequence total on every
  /// backend.
  std::pair<K*, bool> FindOrInsert(const Tuple& key) {
    return Visit([&](auto& store) { return store.FindOrInsert(key); });
  }

  /// Inserts `value` at `key`, or combines it with the existing annotation
  /// via `combine(existing, value)`. Used by annotation (⊕-merging
  /// duplicate keys) and by Algorithm 1's Rule 1.
  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    Visit([&](auto& store) { store.Merge(key, std::move(value), combine); });
  }

  /// Removes `key` from the support if present; true iff removed. The
  /// single-fact mutation of the incremental subsystem
  /// (incremental/incremental_view.h) — batch evaluation still drops
  /// whole relations via `Clear`.
  bool Erase(const Tuple& key) {
    HIERARQ_CHECK_EQ(key.size(), schema_.size());
    return Visit([&](auto& store) { return store.Erase(key); });
  }

  /// Pre-sizes the backend so `count` insertions proceed without
  /// rehashing.
  void Reserve(size_t count) {
    Visit([&](auto& store) { store.Reserve(count); });
  }

  /// Releases all entries (frees intermediate relations eagerly). The
  /// backend keeps its buffers, so a relation reused across evaluations
  /// (core/evaluator.h) reaches steady state allocation-free.
  void Clear() {
    Visit([](auto& store) { store.Clear(); });
  }

  /// Switches the storage backend, dropping all entries when the kind
  /// actually changes (entries never migrate implicitly — callers switch
  /// before filling).
  void SetStorage(StorageKind storage) {
    if (storage_ == storage) {
      return;
    }
    Clear();
    storage_ = storage;
    ResetColumnarArity();
  }

  /// Re-targets this relation at `schema`, dropping all entries but
  /// keeping the backend's buffers — the buffer-reuse entry point.
  void Reset(const VarSet& schema) {
    schema_ = schema;
    if (storage_ == StorageKind::kColumnar ||
        storage_ == StorageKind::kShardedColumnar) {
      ResetColumnarArity();
    } else {
      Clear();
    }
  }

  /// Reset with an explicit backend choice — how `Evaluator` applies its
  /// engine-level storage option to scratch relations.
  void Reset(const VarSet& schema, StorageKind storage) {
    SetStorage(storage);
    Reset(schema);
  }

  /// Replaces this relation's contents with a copy of `other`'s entries,
  /// re-labelled with `schema` (same arity as `other`'s schema), adopting
  /// `other`'s storage backend. This is the replay side of shared
  /// annotation (service/eval_service.h): one annotated base relation
  /// serves every query atom with the same annotation signature, and each
  /// replay copies it out under its own query's variable names. Copying
  /// the backend wholesale is a flat memcpy-like assignment — no per-entry
  /// rehash — where re-annotating would re-match and re-hash every base
  /// tuple.
  void AssignFrom(const AnnotatedRelation& other, const VarSet& schema) {
    HIERARQ_CHECK_EQ(schema.size(), other.schema_.size());
    schema_ = schema;
    if (storage_ != other.storage_) {
      Clear();  // Drop the outgoing backend's entries before switching.
      storage_ = other.storage_;
    }
    other.Visit([&](const auto& store) {
      StoreOf<std::remove_cvref_t<decltype(store)>>() = store;
    });
  }

  /// Move flavour of `AssignFrom`: steals `other`'s backend wholesale
  /// (leaving it empty) instead of copying every entry. The zero-copy
  /// replay path of the service layer — when a shared annotation-pool
  /// entry serves exactly one query in a batch group, the worker adopts it
  /// instead of duplicating it (see EvalService).
  void AdoptFrom(AnnotatedRelation&& other, const VarSet& schema) {
    HIERARQ_CHECK_EQ(schema.size(), other.schema_.size());
    *this = std::move(other);
    schema_ = schema;
  }

  /// Visits every stored fact as (key, annotation). Visit order is
  /// backend-defined (hash-layout order for the map backends, insertion
  /// order for columnar) — callers must not rely on it beyond "each fact
  /// exactly once".
  template <typename Fn>
  void ForEach(Fn fn) const {
    Visit([&](const auto& store) { store.ForEach(fn); });
  }

  /// Algorithm 1 Rule 1: ⊕-projects schema position `drop_pos` out of
  /// this relation into `out` (already Reset to the surviving schema).
  /// Columnar-to-columnar runs the layout-aware native (only surviving
  /// columns are read); any other backend pairing takes the generic
  /// iterate-and-merge path.
  template <typename Plus>
  void ProjectDropInto(size_t drop_pos, Plus plus,
                       AnnotatedRelation* out) const {
    HIERARQ_CHECK_LT(drop_pos, schema_.size());
    HIERARQ_CHECK_EQ(out->schema_.size() + 1, schema_.size());
    if (storage_ == StorageKind::kColumnar &&
        out->storage_ == StorageKind::kColumnar) {
      columnar_.ProjectDropInto(drop_pos, plus, &out->columnar_);
      return;
    }
    out->Reserve(size());
    Tuple projected;
    ForEach([&](const Tuple& key, const K& value) {
      projected.clear();
      for (size_t i = 0; i < key.size(); ++i) {
        if (i != drop_pos) {
          projected.push_back(key[i]);
        }
      }
      auto [slot, inserted] = out->FindOrInsert(projected);
      if (inserted) {
        *slot = value;
      } else {
        *slot = plus(*slot, value);
      }
    });
  }

  /// Algorithm 1 Rule 2: out(x) = left(x) ⊗ right(x) over the *union* of
  /// supports. A 2-monoid guarantees only 0 ⊗ 0 = 0 (Definition 5.6), not
  /// annihilation, so one-sided facts contribute `times(value, zero)` /
  /// `times(zero, value)`; only absent-absent pairs are skipped
  /// (Lemma 6.6). All-columnar operands run the native with compare-free
  /// result indexing; otherwise the generic union loop runs.
  template <typename Times>
  static void JoinUnionInto(const AnnotatedRelation& left,
                            const AnnotatedRelation& right, Times times,
                            const K& zero, AnnotatedRelation* out) {
    HIERARQ_CHECK(left.schema_ == right.schema_)
        << "Rule 2 requires equal schemas";
    HIERARQ_CHECK(out->schema_ == left.schema_);
    if (left.storage_ == StorageKind::kColumnar &&
        right.storage_ == StorageKind::kColumnar &&
        out->storage_ == StorageKind::kColumnar) {
      ColumnarStore<K>::JoinUnionInto(left.columnar_, right.columnar_, times,
                                      zero, &out->columnar_);
      return;
    }
    out->Reserve(left.size() + right.size());  // Lemma 6.6 bound.
    left.ForEach([&](const Tuple& key, const K& value) {
      const K* other = right.Find(key);
      out->Set(key, times(value, other != nullptr ? *other : zero));
    });
    right.ForEach([&](const Tuple& key, const K& value) {
      // Keys shared with the left leg are already final; the combined
      // find-or-insert detects them in the same probe sequence an insert
      // would need.
      auto [slot, inserted] = out->FindOrInsert(key);
      if (inserted) {
        *slot = times(zero, value);
      }
    });
  }

  /// Direct access to the active backend for layout-aware callers (the
  /// intra-query parallel runner, core/parallel.h, scans rows and owns
  /// shards through these). CHECKs that the named backend is the active
  /// one.
  const FlatMap<Tuple, K, TupleHash>& flat_store() const {
    HIERARQ_CHECK(storage_ == StorageKind::kFlat);
    return flat_;
  }
  const ColumnarStore<K>& columnar_store() const {
    HIERARQ_CHECK(storage_ == StorageKind::kColumnar);
    return columnar_;
  }
  const ShardedStore<K>& sharded_store() const {
    HIERARQ_CHECK(storage_ == StorageKind::kSharded);
    return sharded_;
  }
  ShardedStore<K>& mutable_sharded_store() {
    HIERARQ_CHECK(storage_ == StorageKind::kSharded);
    return sharded_;
  }
  const ShardedColumnarStore<K>& sharded_columnar_store() const {
    HIERARQ_CHECK(storage_ == StorageKind::kShardedColumnar);
    return sharded_columnar_;
  }
  ShardedColumnarStore<K>& mutable_sharded_columnar_store() {
    HIERARQ_CHECK(storage_ == StorageKind::kShardedColumnar);
    return sharded_columnar_;
  }

 private:
  using BaselineStore = StdMapAdapter<Tuple, K, TupleHash>;
  using FlatStore = FlatMap<Tuple, K, TupleHash>;

  /// Applies `fn` to the active backend. The single dispatch point: a new
  /// StorageKind that misses a case here dies loudly on first use instead
  /// of silently returning empty results.
  template <typename Fn>
  decltype(auto) Visit(Fn fn) {
    switch (storage_) {
      case StorageKind::kBaseline:
        return fn(baseline_);
      case StorageKind::kFlat:
        return fn(flat_);
      case StorageKind::kColumnar:
        return fn(columnar_);
      case StorageKind::kSharded:
        return fn(sharded_);
      case StorageKind::kShardedColumnar:
        return fn(sharded_columnar_);
    }
    HIERARQ_CHECK(false) << "unhandled StorageKind "
                         << static_cast<int>(storage_);
    return fn(flat_);  // Unreachable; satisfies the return type.
  }
  template <typename Fn>
  decltype(auto) Visit(Fn fn) const {
    switch (storage_) {
      case StorageKind::kBaseline:
        return fn(baseline_);
      case StorageKind::kFlat:
        return fn(flat_);
      case StorageKind::kColumnar:
        return fn(columnar_);
      case StorageKind::kSharded:
        return fn(sharded_);
      case StorageKind::kShardedColumnar:
        return fn(sharded_columnar_);
    }
    HIERARQ_CHECK(false) << "unhandled StorageKind "
                         << static_cast<int>(storage_);
    return fn(flat_);  // Unreachable; satisfies the return type.
  }

  /// The member of the given backend type — lets AssignFrom copy the
  /// source's active store into the matching slot generically.
  template <typename Store>
  Store& StoreOf() {
    if constexpr (std::is_same_v<Store, BaselineStore>) {
      return baseline_;
    } else if constexpr (std::is_same_v<Store, FlatStore>) {
      return flat_;
    } else if constexpr (std::is_same_v<Store, ShardedStore<K>>) {
      return sharded_;
    } else if constexpr (std::is_same_v<Store, ShardedColumnarStore<K>>) {
      return sharded_columnar_;
    } else {
      static_assert(std::is_same_v<Store, ColumnarStore<K>>);
      return columnar_;
    }
  }

  /// The columnar layouts are arity-typed: (re)target them at the current
  /// schema width whenever one becomes (or stays) the active backend.
  void ResetColumnarArity() {
    if (storage_ == StorageKind::kColumnar) {
      columnar_.Reset(schema_.size());
    } else if (storage_ == StorageKind::kShardedColumnar) {
      sharded_columnar_.Reset(schema_.size());
    }
  }

  VarSet schema_;
  StorageKind storage_ = kDefaultStorageKind;
  // Exactly one backend is active (named by storage_); the others stay
  // empty. Keeping all five as members makes backend switches and
  // AssignFrom adoption trivial at the cost of a few empty shells per
  // relation — relations are few (2x query atoms), so this is noise.
  BaselineStore baseline_;
  FlatStore flat_;
  ColumnarStore<K> columnar_;
  ShardedStore<K> sharded_;
  ShardedColumnarStore<K> sharded_columnar_;
};

/// A K-annotated database instance for a query: one annotated relation per
/// query atom, indexed by atom position.
template <typename K>
struct AnnotatedDatabase {
  std::vector<AnnotatedRelation<K>> relations;

  /// |D| in the sense of Definition 6.5: the sum of relation supports.
  size_t TotalSupport() const {
    size_t total = 0;
    for (const auto& rel : relations) {
      total += rel.size();
    }
    return total;
  }
};

/// Annotates one atom's relation into `out` (whose schema must already be
/// the atom's variable set). Each tuple of `relation` is matched against
/// the atom pattern: constant terms must be equal and repeated variables
/// must bind consistently; matching tuples are projected onto the atom's
/// variable set (ascending VarId order) to form the key. Non-matching
/// tuples are skipped — they can never contribute a satisfying assignment.
///
/// Duplicate keys — e.g. literally duplicated facts in a bag of tuples —
/// are combined with `combine(existing, fresh)`; callers evaluating over a
/// 2-monoid pass ⊕ so duplicates merge instead of aborting.
template <typename K, typename Combine>
void AnnotateAtom(const Atom& atom, const Relation& relation,
                  const std::function<K(const Fact&)>& annotator,
                  Combine combine, AnnotatedRelation<K>* out) {
  HIERARQ_CHECK(out->schema() == atom.vars());
  // Resolve each schema variable's occurrence positions once — the tuple
  // loop below runs |relation| times and must not allocate per tuple.
  std::vector<std::vector<size_t>> var_positions;
  var_positions.reserve(atom.vars().size());
  for (VarId v : atom.vars()) {
    var_positions.push_back(atom.PositionsOf(v));
  }
  // One Fact reused across tuples: the relation-name string is built once,
  // only the tuple payload changes per iteration.
  Fact fact{atom.relation(), Tuple{}};
  for (const Tuple& tuple : relation.tuples()) {
    if (tuple.size() != atom.arity()) {
      continue;  // Arity mismatch: cannot match the atom.
    }
    // Match the tuple against the atom pattern.
    bool matches = true;
    for (size_t i = 0; i < atom.terms().size() && matches; ++i) {
      const Term& term = atom.terms()[i];
      if (term.is_constant()) {
        matches = term.constant() == tuple[i];
      }
    }
    // Repeated variables must bind to equal values.
    if (matches) {
      for (const std::vector<size_t>& positions : var_positions) {
        for (size_t i = 1; i < positions.size() && matches; ++i) {
          matches = tuple[positions[i]] == tuple[positions[0]];
        }
        if (!matches) {
          break;
        }
      }
    }
    if (!matches) {
      continue;
    }
    // Project onto the schema (ascending VarId order).
    Tuple key;
    key.reserve(var_positions.size());
    for (const std::vector<size_t>& positions : var_positions) {
      key.push_back(tuple[positions.front()]);
    }
    fact.tuple = tuple;
    out->Merge(key, annotator(fact), combine);
  }
}

/// Builds the K-annotated database for `query` from the facts of `facts`,
/// annotating each fact f with `annotator(f)` and ⊕-combining duplicate
/// keys with `combine`. Relations are stored in the `storage` backend.
///
/// Atoms whose relation is absent from `facts` produce empty (all-zero)
/// annotated relations, which is the correct semantics.
template <typename K, typename Combine>
AnnotatedDatabase<K> AnnotateForQuery(
    const ConjunctiveQuery& query, const Database& facts,
    const std::function<K(const Fact&)>& annotator, Combine combine,
    StorageKind storage = kDefaultStorageKind) {
  AnnotatedDatabase<K> out;
  out.relations.reserve(query.num_atoms());
  for (const Atom& atom : query.atoms()) {
    AnnotatedRelation<K> annotated(atom.vars(), storage);
    const Relation* relation = facts.FindRelation(atom.relation());
    if (relation != nullptr) {
      annotated.Reserve(relation->size());
      AnnotateAtom(atom, *relation, annotator, combine, &annotated);
    }
    out.relations.push_back(std::move(annotated));
  }
  return out;
}

/// AnnotateForQuery without an explicit combiner: duplicate keys keep the
/// latest annotation. Set databases cannot produce duplicate keys (atom
/// matching plus projection is injective on a duplicate-free relation), so
/// the combiner only matters for bag-like inputs — monoid-aware callers
/// (core/algorithm1.h, core/evaluator.h) pass ⊕ explicitly.
template <typename K>
AnnotatedDatabase<K> AnnotateForQuery(
    const ConjunctiveQuery& query, const Database& facts,
    const std::function<K(const Fact&)>& annotator,
    StorageKind storage = kDefaultStorageKind) {
  return AnnotateForQuery<K>(
      query, facts, annotator,
      [](const K&, const K& fresh) { return fresh; }, storage);
}

}  // namespace hierarq

#endif  // HIERARQ_DATA_ANNOTATED_H_
