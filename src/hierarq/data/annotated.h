#ifndef HIERARQ_DATA_ANNOTATED_H_
#define HIERARQ_DATA_ANNOTATED_H_

/// \file annotated.h
/// \brief K-annotated relations and databases (paper §2, §5.3).
///
/// A K-annotated relation associates each fact with a value from a
/// 2-monoid's domain K. Facts whose annotation is the monoid zero are
/// simply *absent* — supports are what the algorithm stores and what
/// Lemma 6.6's size argument counts. Keys are tuples ordered by the
/// relation's schema, which is the atom's variable set in ascending VarId
/// order (atom term order, duplicate variables, and constants are resolved
/// once, when the base database is annotated).

#include <functional>
#include <unordered_map>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/tuple.h"
#include "hierarq/query/query.h"
#include "hierarq/query/var_set.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// A relation annotated with values from K, keyed by tuples over `schema`.
template <typename K>
class AnnotatedRelation {
 public:
  using Map = std::unordered_map<Tuple, K, TupleHash>;
  using const_iterator = typename Map::const_iterator;

  AnnotatedRelation() = default;
  explicit AnnotatedRelation(VarSet schema) : schema_(std::move(schema)) {}

  const VarSet& schema() const { return schema_; }
  /// |supp(R)| — the number of stored (non-zero) facts.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Sets the annotation of `key` (inserting or overwriting).
  void Set(const Tuple& key, K value) {
    HIERARQ_CHECK_EQ(key.size(), schema_.size());
    entries_[key] = std::move(value);
  }

  /// Returns the annotation of `key`, or nullptr when `key` is not in the
  /// support (i.e. its annotation is the monoid zero).
  const K* Find(const Tuple& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  /// Inserts `value` at `key`, or combines it with the existing annotation
  /// via `combine(existing, value)`. Used by Algorithm 1's Rule 1
  /// (⊕-aggregation).
  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, std::move(value));
    } else {
      it->second = combine(it->second, value);
    }
  }

  /// Releases all entries (frees intermediate relations eagerly).
  void Clear() { entries_.clear(); }

 private:
  VarSet schema_;
  Map entries_;
};

/// A K-annotated database instance for a query: one annotated relation per
/// query atom, indexed by atom position.
template <typename K>
struct AnnotatedDatabase {
  std::vector<AnnotatedRelation<K>> relations;

  /// |D| in the sense of Definition 6.5: the sum of relation supports.
  size_t TotalSupport() const {
    size_t total = 0;
    for (const auto& rel : relations) {
      total += rel.size();
    }
    return total;
  }
};

/// Builds the K-annotated database for `query` from the facts of `facts`,
/// annotating each fact f with `annotator(f)`.
///
/// For every atom R(t1..tk) of the query, each tuple of relation R in
/// `facts` is matched against the atom: constant terms must be equal and
/// repeated variables must bind consistently; matching tuples are projected
/// onto the atom's variable set (ascending VarId order) to form the key.
/// Non-matching tuples are skipped — they can never contribute a satisfying
/// assignment.
///
/// Atoms whose relation is absent from `facts` produce empty (all-zero)
/// annotated relations, which is the correct semantics.
template <typename K>
AnnotatedDatabase<K> AnnotateForQuery(
    const ConjunctiveQuery& query, const Database& facts,
    const std::function<K(const Fact&)>& annotator) {
  AnnotatedDatabase<K> out;
  out.relations.reserve(query.num_atoms());
  for (const Atom& atom : query.atoms()) {
    AnnotatedRelation<K> annotated(atom.vars());
    const Relation* relation = facts.FindRelation(atom.relation());
    if (relation != nullptr) {
      for (const Tuple& tuple : relation->tuples()) {
        if (tuple.size() != atom.arity()) {
          continue;  // Arity mismatch: cannot match the atom.
        }
        // Match the tuple against the atom pattern.
        bool matches = true;
        for (size_t i = 0; i < atom.terms().size() && matches; ++i) {
          const Term& term = atom.terms()[i];
          if (term.is_constant()) {
            matches = term.constant() == tuple[i];
          }
        }
        // Repeated variables must bind to equal values.
        if (matches) {
          for (VarId v : atom.vars()) {
            const std::vector<size_t> positions = atom.PositionsOf(v);
            for (size_t i = 1; i < positions.size() && matches; ++i) {
              matches = tuple[positions[i]] == tuple[positions[0]];
            }
            if (!matches) {
              break;
            }
          }
        }
        if (!matches) {
          continue;
        }
        // Project onto the schema (ascending VarId order).
        Tuple key;
        key.reserve(atom.vars().size());
        for (VarId v : atom.vars()) {
          key.push_back(tuple[atom.PositionsOf(v).front()]);
        }
        HIERARQ_CHECK(!annotated.Contains(key))
            << "duplicate key while annotating " << atom.relation();
        annotated.Set(key, annotator(Fact{atom.relation(), tuple}));
      }
    }
    out.relations.push_back(std::move(annotated));
  }
  return out;
}

}  // namespace hierarq

#endif  // HIERARQ_DATA_ANNOTATED_H_
