#ifndef HIERARQ_DATA_ANNOTATED_H_
#define HIERARQ_DATA_ANNOTATED_H_

/// \file annotated.h
/// \brief K-annotated relations and databases (paper §2, §5.3).
///
/// A K-annotated relation associates each fact with a value from a
/// 2-monoid's domain K. Facts whose annotation is the monoid zero are
/// simply *absent* — supports are what the algorithm stores and what
/// Lemma 6.6's size argument counts. Keys are tuples ordered by the
/// relation's schema, which is the atom's variable set in ascending VarId
/// order (atom term order, duplicate variables, and constants are resolved
/// once, when the base database is annotated).
///
/// Storage is the open-addressing `FlatMap` (util/flat_map.h); define
/// HIERARQ_ANNOTATED_STD_MAP (CMake option HIERARQ_STORAGE_BASELINE) to
/// fall back to the std::unordered_map baseline for A/B comparison runs.

#include <functional>
#include <utility>
#include <vector>

#ifdef HIERARQ_ANNOTATED_STD_MAP
#include <unordered_map>
#endif

#include "hierarq/data/database.h"
#include "hierarq/data/tuple.h"
#include "hierarq/query/query.h"
#include "hierarq/query/var_set.h"
#include "hierarq/util/flat_map.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/result.h"

namespace hierarq {

#ifdef HIERARQ_ANNOTATED_STD_MAP
/// Gives std::unordered_map the FlatMap surface, so the baseline swap is a
/// single type alias rather than per-method dispatch in AnnotatedRelation.
template <typename Key, typename Mapped, typename Hash>
class StdMapAdapter {
 public:
  using Map = std::unordered_map<Key, Mapped, Hash>;
  using const_iterator = typename Map::const_iterator;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }

  const Mapped* Find(const Key& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  std::pair<Mapped*, bool> FindOrInsert(const Key& key) {
    auto [it, inserted] = map_.try_emplace(key);
    return {&it->second, inserted};
  }

  void Set(const Key& key, Mapped value) { map_[key] = std::move(value); }

  template <typename Combine>
  void Merge(const Key& key, Mapped value, Combine combine) {
    auto [slot, inserted] = FindOrInsert(key);
    if (inserted) {
      *slot = std::move(value);
    } else {
      *slot = combine(*slot, value);
    }
  }

  void Reserve(size_t count) { map_.reserve(count); }
  void Clear() { map_.clear(); }

 private:
  Map map_;
};
#endif

/// A relation annotated with values from K, keyed by tuples over `schema`.
template <typename K>
class AnnotatedRelation {
 public:
#ifdef HIERARQ_ANNOTATED_STD_MAP
  using Map = StdMapAdapter<Tuple, K, TupleHash>;
#else
  using Map = FlatMap<Tuple, K, TupleHash>;
#endif
  using const_iterator = typename Map::const_iterator;

  AnnotatedRelation() = default;
  explicit AnnotatedRelation(VarSet schema) : schema_(std::move(schema)) {}

  const VarSet& schema() const { return schema_; }
  /// |supp(R)| — the number of stored (non-zero) facts.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Sets the annotation of `key` (inserting or overwriting).
  void Set(const Tuple& key, K value) {
    HIERARQ_CHECK_EQ(key.size(), schema_.size());
    entries_.Set(key, std::move(value));
  }

  /// Returns the annotation of `key`, or nullptr when `key` is not in the
  /// support (i.e. its annotation is the monoid zero).
  const K* Find(const Tuple& key) const { return entries_.Find(key); }

  bool Contains(const Tuple& key) const { return Find(key) != nullptr; }

  /// Finds the annotation of `key`, inserting a value-initialized slot when
  /// absent; the bool is true iff the slot was just inserted (the caller
  /// must then assign a real annotation). One probe sequence total — the
  /// entry point Algorithm 1 uses for Rule 1's ⊕-merge and for the
  /// right-minus-left leg of Rule 2's union-of-supports iteration.
  std::pair<K*, bool> FindOrInsert(const Tuple& key) {
    return entries_.FindOrInsert(key);
  }

  /// Inserts `value` at `key`, or combines it with the existing annotation
  /// via `combine(existing, value)`. Used by Algorithm 1's Rule 1
  /// (⊕-aggregation).
  template <typename Combine>
  void Merge(const Tuple& key, K value, Combine combine) {
    entries_.Merge(key, std::move(value), combine);
  }

  /// Pre-sizes the table so `count` insertions proceed without rehashing.
  void Reserve(size_t count) { entries_.Reserve(count); }

  /// Releases all entries (frees intermediate relations eagerly). The
  /// underlying table keeps its slot array, so a relation reused across
  /// evaluations (core/evaluator.h) reaches steady state allocation-free.
  void Clear() { entries_.Clear(); }

  /// Re-targets this relation at `schema`, dropping all entries but keeping
  /// the table's capacity — the buffer-reuse entry point.
  void Reset(const VarSet& schema) {
    schema_ = schema;
    Clear();
  }

  /// Replaces this relation's contents with a copy of `other`'s entries,
  /// re-labelled with `schema` (same arity as `other`'s schema). This is
  /// the replay side of shared annotation (service/eval_service.h): one
  /// annotated base relation serves every query atom with the same
  /// annotation signature, and each replay copies it out under its own
  /// query's variable names. Copying the table is a flat memcpy-like
  /// assignment — no per-entry rehash — where re-annotating would re-match
  /// and re-hash every base tuple.
  void AssignFrom(const AnnotatedRelation& other, const VarSet& schema) {
    HIERARQ_CHECK_EQ(schema.size(), other.schema_.size());
    schema_ = schema;
    entries_ = other.entries_;
  }

 private:
  VarSet schema_;
  Map entries_;
};

/// A K-annotated database instance for a query: one annotated relation per
/// query atom, indexed by atom position.
template <typename K>
struct AnnotatedDatabase {
  std::vector<AnnotatedRelation<K>> relations;

  /// |D| in the sense of Definition 6.5: the sum of relation supports.
  size_t TotalSupport() const {
    size_t total = 0;
    for (const auto& rel : relations) {
      total += rel.size();
    }
    return total;
  }
};

/// Annotates one atom's relation into `out` (whose schema must already be
/// the atom's variable set). Each tuple of `relation` is matched against
/// the atom pattern: constant terms must be equal and repeated variables
/// must bind consistently; matching tuples are projected onto the atom's
/// variable set (ascending VarId order) to form the key. Non-matching
/// tuples are skipped — they can never contribute a satisfying assignment.
///
/// Duplicate keys — e.g. literally duplicated facts in a bag of tuples —
/// are combined with `combine(existing, fresh)`; callers evaluating over a
/// 2-monoid pass ⊕ so duplicates merge instead of aborting.
template <typename K, typename Combine>
void AnnotateAtom(const Atom& atom, const Relation& relation,
                  const std::function<K(const Fact&)>& annotator,
                  Combine combine, AnnotatedRelation<K>* out) {
  HIERARQ_CHECK(out->schema() == atom.vars());
  // Resolve each schema variable's occurrence positions once — the tuple
  // loop below runs |relation| times and must not allocate per tuple.
  std::vector<std::vector<size_t>> var_positions;
  var_positions.reserve(atom.vars().size());
  for (VarId v : atom.vars()) {
    var_positions.push_back(atom.PositionsOf(v));
  }
  // One Fact reused across tuples: the relation-name string is built once,
  // only the tuple payload changes per iteration.
  Fact fact{atom.relation(), Tuple{}};
  for (const Tuple& tuple : relation.tuples()) {
    if (tuple.size() != atom.arity()) {
      continue;  // Arity mismatch: cannot match the atom.
    }
    // Match the tuple against the atom pattern.
    bool matches = true;
    for (size_t i = 0; i < atom.terms().size() && matches; ++i) {
      const Term& term = atom.terms()[i];
      if (term.is_constant()) {
        matches = term.constant() == tuple[i];
      }
    }
    // Repeated variables must bind to equal values.
    if (matches) {
      for (const std::vector<size_t>& positions : var_positions) {
        for (size_t i = 1; i < positions.size() && matches; ++i) {
          matches = tuple[positions[i]] == tuple[positions[0]];
        }
        if (!matches) {
          break;
        }
      }
    }
    if (!matches) {
      continue;
    }
    // Project onto the schema (ascending VarId order).
    Tuple key;
    key.reserve(var_positions.size());
    for (const std::vector<size_t>& positions : var_positions) {
      key.push_back(tuple[positions.front()]);
    }
    fact.tuple = tuple;
    out->Merge(key, annotator(fact), combine);
  }
}

/// Builds the K-annotated database for `query` from the facts of `facts`,
/// annotating each fact f with `annotator(f)` and ⊕-combining duplicate
/// keys with `combine`.
///
/// Atoms whose relation is absent from `facts` produce empty (all-zero)
/// annotated relations, which is the correct semantics.
template <typename K, typename Combine>
AnnotatedDatabase<K> AnnotateForQuery(
    const ConjunctiveQuery& query, const Database& facts,
    const std::function<K(const Fact&)>& annotator, Combine combine) {
  AnnotatedDatabase<K> out;
  out.relations.reserve(query.num_atoms());
  for (const Atom& atom : query.atoms()) {
    AnnotatedRelation<K> annotated(atom.vars());
    const Relation* relation = facts.FindRelation(atom.relation());
    if (relation != nullptr) {
      annotated.Reserve(relation->size());
      AnnotateAtom(atom, *relation, annotator, combine, &annotated);
    }
    out.relations.push_back(std::move(annotated));
  }
  return out;
}

/// AnnotateForQuery without an explicit combiner: duplicate keys keep the
/// latest annotation. Set databases cannot produce duplicate keys (atom
/// matching plus projection is injective on a duplicate-free relation), so
/// the combiner only matters for bag-like inputs — monoid-aware callers
/// (core/algorithm1.h, core/evaluator.h) pass ⊕ explicitly.
template <typename K>
AnnotatedDatabase<K> AnnotateForQuery(
    const ConjunctiveQuery& query, const Database& facts,
    const std::function<K(const Fact&)>& annotator) {
  return AnnotateForQuery<K>(query, facts, annotator,
                             [](const K&, const K& fresh) { return fresh; });
}

}  // namespace hierarq

#endif  // HIERARQ_DATA_ANNOTATED_H_
