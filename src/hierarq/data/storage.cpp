#include "hierarq/data/storage.h"

namespace hierarq {

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kBaseline:
      return "baseline";
    case StorageKind::kFlat:
      return "flat";
    case StorageKind::kColumnar:
      return "columnar";
    case StorageKind::kSharded:
      return "sharded";
    case StorageKind::kShardedColumnar:
      return "sharded_columnar";
  }
  return "unknown";
}

std::optional<StorageKind> ParseStorageKind(std::string_view name) {
  if (name == "baseline" || name == "std" || name == "map") {
    return StorageKind::kBaseline;
  }
  if (name == "flat") {
    return StorageKind::kFlat;
  }
  if (name == "columnar" || name == "column") {
    return StorageKind::kColumnar;
  }
  if (name == "sharded" || name == "shard") {
    return StorageKind::kSharded;
  }
  if (name == "sharded_columnar" || name == "sharded-columnar" ||
      name == "shardcol") {
    return StorageKind::kShardedColumnar;
  }
  return std::nullopt;
}

}  // namespace hierarq
