#include "hierarq/data/database.h"

#include "hierarq/util/logging.h"

namespace hierarq {

Result<bool> Database::AddFact(const std::string& relation,
                               const Tuple& tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    it = relations_.emplace(relation, Relation(relation, tuple.size())).first;
  } else if (it->second.arity() != tuple.size()) {
    return Status::InvalidArgument(
        "arity mismatch for relation '" + relation + "': expected " +
        std::to_string(it->second.arity()) + ", got " +
        std::to_string(tuple.size()));
  }
  return it->second.Insert(tuple);
}

bool Database::AddFactOrDie(const std::string& relation, const Tuple& tuple) {
  Result<bool> result = AddFact(relation, tuple);
  HIERARQ_CHECK(result.ok()) << result.status().ToString();
  return result.ValueOrDie();
}

bool Database::ContainsFact(const std::string& relation,
                            const Tuple& tuple) const {
  const Relation* rel = FindRelation(relation);
  return rel != nullptr && rel->Contains(tuple);
}

bool Database::EraseFact(const Fact& fact) {
  auto it = relations_.find(fact.relation);
  if (it == relations_.end()) {
    return false;
  }
  return it->second.Erase(fact.tuple);
}

const Relation* Database::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::NumFacts() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) {
    total += relation.size();
  }
  return total;
}

std::vector<Fact> Database::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(NumFacts());
  for (const auto& [name, relation] : relations_) {
    for (const Tuple& tuple : relation.tuples()) {
      out.push_back(Fact{name, tuple});
    }
  }
  return out;
}

Result<Database> Database::UnionWith(const Database& other) const {
  Database out = *this;
  for (const auto& [name, relation] : other.relations_) {
    for (const Tuple& tuple : relation.tuples()) {
      HIERARQ_RETURN_NOT_OK(out.AddFact(name, tuple).status());
    }
  }
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, relation] : relations_) {
    if (!out.empty()) {
      out += "\n";
    }
    out += relation.ToString();
  }
  return out;
}

}  // namespace hierarq
