#include "hierarq/data/tid_database.h"

#include <algorithm>

#include "hierarq/util/logging.h"

namespace hierarq {

Status TidDatabase::AddFact(const std::string& relation, const Tuple& tuple,
                            double p) {
  HIERARQ_RETURN_NOT_OK(facts_.AddFact(relation, tuple).status());
  probabilities_[Fact{relation, tuple}] = std::clamp(p, 0.0, 1.0);
  return Status::OK();
}

void TidDatabase::AddFactOrDie(const std::string& relation,
                               const Tuple& tuple, double p) {
  const Status status = AddFact(relation, tuple, p);
  HIERARQ_CHECK(status.ok()) << status.ToString();
}

double TidDatabase::Probability(const Fact& fact) const {
  auto it = probabilities_.find(fact);
  return it == probabilities_.end() ? 0.0 : it->second;
}

std::vector<std::pair<Fact, double>> TidDatabase::AllFacts() const {
  std::vector<std::pair<Fact, double>> out;
  out.reserve(NumFacts());
  for (const Fact& fact : facts_.AllFacts()) {
    out.emplace_back(fact, Probability(fact));
  }
  return out;
}

}  // namespace hierarq
