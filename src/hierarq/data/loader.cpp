#include "hierarq/data/loader.h"

#include <fstream>
#include <sstream>

#include "hierarq/util/strings.h"

namespace hierarq {

Result<Value> ParseValue(const std::string& token, Dictionary* dict) {
  Result<int64_t> as_int = ParseInt64(token);
  if (as_int.ok()) {
    if (*as_int >= kFirstSymbolicValue) {
      return Status::ParseError("numeric value too large (collides with the "
                                "symbolic range): " + token);
    }
    return *as_int;
  }
  if (!IsIdentifier(token)) {
    return Status::ParseError("invalid value token: '" + token + "'");
  }
  if (dict == nullptr) {
    return Status::InvalidArgument(
        "symbolic value '" + token + "' requires a Dictionary");
  }
  return dict->Intern(token);
}

namespace {

struct ParsedFact {
  std::string relation;
  Tuple tuple;
  double probability = 1.0;
  bool has_probability = false;
};

Result<ParsedFact> ParseFactLine(std::string_view line, Dictionary* dict) {
  ParsedFact out;
  std::string_view body = line;
  // Optional "@ prob" suffix.
  const size_t at = body.find('@');
  if (at != std::string_view::npos) {
    HIERARQ_ASSIGN_OR_RETURN(out.probability,
                             ParseDouble(body.substr(at + 1)));
    out.has_probability = true;
    body = body.substr(0, at);
  }
  body = TrimView(body);
  const size_t open = body.find('(');
  if (open == std::string_view::npos || body.back() != ')') {
    return Status::ParseError("malformed fact: '" + std::string(line) + "'");
  }
  out.relation = Trim(body.substr(0, open));
  if (!IsIdentifier(out.relation)) {
    return Status::ParseError("invalid relation name: '" + out.relation +
                              "'");
  }
  const std::string_view args = body.substr(open + 1, body.size() - open - 2);
  if (!TrimView(args).empty()) {
    for (const std::string& token : Split(args, ',')) {
      HIERARQ_ASSIGN_OR_RETURN(Value value, ParseValue(token, dict));
      out.tuple.push_back(value);
    }
  }
  return out;
}

/// Invokes `sink(fact)` for each fact line of `text`.
template <typename Sink>
Status ForEachFactLine(std::string_view text, Dictionary* dict, Sink sink) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = TrimView(line);
    if (line.empty()) {
      continue;
    }
    Result<ParsedFact> fact = ParseFactLine(line, dict);
    if (!fact.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) + ": " +
                                fact.status().message());
    }
    HIERARQ_RETURN_NOT_OK(sink(*fact));
    if (start == text.size() + 1) {
      break;
    }
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

Result<Database> LoadDatabase(std::string_view text, Dictionary* dict) {
  Database db;
  Status status =
      ForEachFactLine(text, dict, [&db](const ParsedFact& fact) -> Status {
        if (fact.has_probability) {
          return Status::InvalidArgument(
              "probability annotation ('@') is only valid in TID databases: " +
              fact.relation);
        }
        return db.AddFact(fact.relation, fact.tuple).status();
      });
  if (!status.ok()) {
    return status;
  }
  return db;
}

Result<TidDatabase> LoadTidDatabase(std::string_view text, Dictionary* dict) {
  TidDatabase db;
  Status status =
      ForEachFactLine(text, dict, [&db](const ParsedFact& fact) -> Status {
        return db.AddFact(fact.relation, fact.tuple, fact.probability);
      });
  if (!status.ok()) {
    return status;
  }
  return db;
}

Result<Database> LoadDatabaseFromFile(const std::string& path,
                                      Dictionary* dict) {
  HIERARQ_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return LoadDatabase(text, dict);
}

Result<TidDatabase> LoadTidDatabaseFromFile(const std::string& path,
                                            Dictionary* dict) {
  HIERARQ_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return LoadTidDatabase(text, dict);
}

}  // namespace hierarq
