#include "hierarq/workload/query_gen.h"

#include <algorithm>
#include <string>
#include <vector>

#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/util/logging.h"

namespace hierarq {

ConjunctiveQuery MakePaperQuery() {
  return ParseQueryOrDie("Q() :- R(A,B), S(A,C), T(A,C,D).");
}

ConjunctiveQuery MakeQnh() {
  return ParseQueryOrDie("Q() :- R(X), S(X,Y), T(Y).");
}

ConjunctiveQuery MakeQh() {
  return ParseQueryOrDie("Q() :- E(X,Y), F(Y,Z).");
}

ConjunctiveQuery MakeNestedChain(size_t depth) {
  HIERARQ_CHECK_GE(depth, 1u);
  VariableTable vars;
  std::vector<Atom> atoms;
  std::vector<Term> terms;
  for (size_t i = 1; i <= depth; ++i) {
    terms.push_back(Term::Var(vars.Intern("X" + std::to_string(i))));
    atoms.emplace_back("R" + std::to_string(i), terms);
  }
  auto query = ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
  HIERARQ_CHECK(query.ok());
  return std::move(query).ValueOrDie();
}

ConjunctiveQuery MakeStarQuery(size_t branches) {
  HIERARQ_CHECK_GE(branches, 1u);
  VariableTable vars;
  const VarId hub = vars.Intern("X");
  std::vector<Atom> atoms;
  atoms.emplace_back("R0", std::vector<Term>{Term::Var(hub)});
  for (size_t i = 1; i <= branches; ++i) {
    const VarId leaf = vars.Intern("Y" + std::to_string(i));
    atoms.emplace_back(
        "R" + std::to_string(i),
        std::vector<Term>{Term::Var(hub), Term::Var(leaf)});
  }
  auto query = ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
  HIERARQ_CHECK(query.ok());
  return std::move(query).ValueOrDie();
}

ConjunctiveQuery MakeNonHierarchicalChain(size_t links) {
  HIERARQ_CHECK_GE(links, 1u);
  VariableTable vars;
  std::vector<Atom> atoms;
  std::vector<VarId> xs;
  for (size_t i = 1; i <= links + 1; ++i) {
    xs.push_back(vars.Intern("X" + std::to_string(i)));
  }
  for (size_t i = 0; i <= links; ++i) {
    atoms.emplace_back("R" + std::to_string(i + 1),
                       std::vector<Term>{Term::Var(xs[i])});
  }
  for (size_t i = 0; i < links; ++i) {
    atoms.emplace_back(
        "S" + std::to_string(i + 1),
        std::vector<Term>{Term::Var(xs[i]), Term::Var(xs[i + 1])});
  }
  auto query = ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
  HIERARQ_CHECK(query.ok());
  ConjunctiveQuery out = std::move(query).ValueOrDie();
  HIERARQ_CHECK(!IsHierarchical(out));
  return out;
}

ConjunctiveQuery MakeRandomHierarchical(
    Rng& rng, const RandomHierarchicalOptions& opts) {
  const size_t n = std::max<size_t>(opts.num_variables, 1);
  const size_t roots = std::min(std::max<size_t>(opts.num_roots, 1), n);

  // Random forest: node i's parent is a uniformly random earlier node of
  // the same tree; the first `roots` nodes are the roots.
  std::vector<std::optional<size_t>> parent(n);
  std::vector<size_t> tree_of(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < roots) {
      parent[i] = std::nullopt;
      tree_of[i] = i;
    } else {
      const size_t p =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
      parent[i] = p;
      tree_of[i] = tree_of[p];
    }
  }
  std::vector<bool> is_leaf(n, true);
  for (size_t i = roots; i < n; ++i) {
    is_leaf[*parent[i]] = false;
  }

  VariableTable vars;
  std::vector<VarId> var_of(n);
  for (size_t i = 0; i < n; ++i) {
    var_of[i] = vars.Intern("X" + std::to_string(i));
  }

  std::vector<Atom> atoms;
  size_t next_relation = 0;
  const auto emit_atom = [&](size_t node) {
    // Variables along the path node -> root.
    std::vector<VarId> path;
    std::optional<size_t> cur = node;
    while (cur.has_value()) {
      path.push_back(var_of[*cur]);
      cur = parent[*cur];
    }
    if (opts.shuffle_term_order) {
      rng.Shuffle(path);
    }
    std::vector<Term> terms;
    terms.reserve(path.size());
    for (VarId v : path) {
      terms.push_back(Term::Var(v));
    }
    atoms.emplace_back("R" + std::to_string(next_relation++), terms);
    if (rng.Bernoulli(opts.twin_atom_prob)) {
      std::vector<Term> twin_terms = terms;
      if (opts.shuffle_term_order) {
        rng.Shuffle(twin_terms);
      }
      atoms.emplace_back("R" + std::to_string(next_relation++), twin_terms);
    }
  };

  for (size_t i = 0; i < n; ++i) {
    if (is_leaf[i]) {
      emit_atom(i);
    } else if (rng.Bernoulli(opts.extra_atom_prob)) {
      emit_atom(i);
    }
  }

  auto query = ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
  HIERARQ_CHECK(query.ok()) << query.status().ToString();
  ConjunctiveQuery out = std::move(query).ValueOrDie();
  HIERARQ_CHECK(IsHierarchical(out))
      << "generator produced a non-hierarchical query: " << out.ToString();
  return out;
}

ConjunctiveQuery MakeRandomQuery(Rng& rng, size_t num_atoms,
                                 size_t num_variables, size_t max_arity) {
  HIERARQ_CHECK_GE(num_atoms, 1u);
  HIERARQ_CHECK_GE(num_variables, 1u);
  HIERARQ_CHECK_GE(max_arity, 1u);
  VariableTable vars;
  std::vector<VarId> pool;
  for (size_t i = 0; i < num_variables; ++i) {
    pool.push_back(vars.Intern("X" + std::to_string(i)));
  }

  std::vector<Atom> atoms;
  std::vector<bool> used(num_variables, false);
  for (size_t i = 0; i < num_atoms; ++i) {
    const size_t arity = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(max_arity)));
    // Draw distinct variables for the atom (bounded by the pool size).
    const size_t distinct = std::min(arity, num_variables);
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(num_variables, distinct);
    std::vector<Term> terms;
    for (size_t p : picks) {
      terms.push_back(Term::Var(pool[p]));
      used[p] = true;
    }
    atoms.emplace_back("R" + std::to_string(i), std::move(terms));
  }
  // Ensure every variable occurs somewhere: extend the last atoms.
  for (size_t p = 0; p < num_variables; ++p) {
    if (!used[p]) {
      std::vector<Term> terms{Term::Var(pool[p])};
      atoms.emplace_back("U" + std::to_string(p), std::move(terms));
    }
  }
  auto query = ConjunctiveQuery::Create(std::move(atoms), std::move(vars));
  HIERARQ_CHECK(query.ok());
  return std::move(query).ValueOrDie();
}

}  // namespace hierarq
