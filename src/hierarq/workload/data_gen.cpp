#include "hierarq/workload/data_gen.h"

#include <memory>

#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

/// Draws one value, uniform or Zipf.
Value DrawValue(Rng& rng, const DataGenOptions& opts,
                const ZipfDistribution* zipf) {
  if (zipf != nullptr) {
    return static_cast<Value>(zipf->Sample(rng));
  }
  return rng.UniformInt(0, static_cast<int64_t>(opts.domain_size) - 1);
}

/// Fills one relation with up to `opts.tuples_per_relation` random tuples.
void FillRelation(Database& db, const std::string& name, size_t arity,
                  Rng& rng, const DataGenOptions& opts,
                  const ZipfDistribution* zipf) {
  // Cap retries so tight domains terminate (|Dom|^arity may be < target).
  const size_t target = opts.tuples_per_relation;
  size_t attempts = 0;
  size_t inserted = 0;
  const size_t max_attempts = target * 8 + 64;
  while (inserted < target && attempts < max_attempts) {
    ++attempts;
    Tuple tuple;
    tuple.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      tuple.push_back(DrawValue(rng, opts, zipf));
    }
    auto added = db.AddFact(name, tuple);
    HIERARQ_CHECK(added.ok());
    if (*added) {
      ++inserted;
    }
  }
}

}  // namespace

Database RandomDatabaseForQuery(const ConjunctiveQuery& query, Rng& rng,
                                const DataGenOptions& opts) {
  std::unique_ptr<ZipfDistribution> zipf;
  if (opts.zipf_skew > 0.0) {
    zipf = std::make_unique<ZipfDistribution>(opts.domain_size,
                                              opts.zipf_skew);
  }
  Database db;
  for (const Atom& atom : query.atoms()) {
    FillRelation(db, atom.relation(), atom.arity(), rng, opts, zipf.get());
  }
  return db;
}

TidDatabase RandomTidForQuery(const ConjunctiveQuery& query, Rng& rng,
                              const DataGenOptions& opts, double p_min,
                              double p_max) {
  const Database facts = RandomDatabaseForQuery(query, rng, opts);
  TidDatabase out;
  for (const Fact& fact : facts.AllFacts()) {
    const double p = p_min + (p_max - p_min) * rng.UniformDouble();
    out.AddFactOrDie(fact.relation, fact.tuple, p);
  }
  return out;
}

RepairInstance RandomRepairInstance(const ConjunctiveQuery& query, Rng& rng,
                                    const DataGenOptions& opts,
                                    double in_d_prob) {
  const Database facts = RandomDatabaseForQuery(query, rng, opts);
  RepairInstance out;
  for (const Fact& fact : facts.AllFacts()) {
    if (rng.Bernoulli(in_d_prob)) {
      out.d.AddFactOrDie(fact.relation, fact.tuple);
    } else {
      out.repair.AddFactOrDie(fact.relation, fact.tuple);
    }
  }
  return out;
}

std::pair<Database, Database> SplitExoEndo(const Database& db, Rng& rng,
                                           double endogenous_prob) {
  Database exo;
  Database endo;
  for (const Fact& fact : db.AllFacts()) {
    if (rng.Bernoulli(endogenous_prob)) {
      endo.AddFactOrDie(fact.relation, fact.tuple);
    } else {
      exo.AddFactOrDie(fact.relation, fact.tuple);
    }
  }
  return {std::move(exo), std::move(endo)};
}

Graph RandomGraph(Rng& rng, size_t n, double edge_prob) {
  Graph g(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(edge_prob)) {
        g.AddEdge(u, v);
      }
    }
  }
  return g;
}

Graph PlantedBicliqueGraph(Rng& rng, size_t n, size_t k, double noise_prob) {
  HIERARQ_CHECK_GE(n, 2 * k);
  Graph g = RandomGraph(rng, n, noise_prob);
  const std::vector<size_t> picks = rng.SampleWithoutReplacement(n, 2 * k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = k; j < 2 * k; ++j) {
      g.AddEdge(picks[i], picks[j]);
    }
  }
  return g;
}

}  // namespace hierarq
