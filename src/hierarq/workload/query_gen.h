#ifndef HIERARQ_WORKLOAD_QUERY_GEN_H_
#define HIERARQ_WORKLOAD_QUERY_GEN_H_

/// \file query_gen.h
/// \brief Query families and random hierarchical-query generation.
///
/// The fixed families are the shapes used throughout the paper and the
/// benchmarks; the random generator draws a hierarchy forest first and
/// reads atoms off root-to-node paths, so it produces hierarchical queries
/// *by construction* (Proposition 5.5), covering both elimination rules.

#include "hierarq/query/query.h"
#include "hierarq/util/random.h"

namespace hierarq {

/// The paper's running example, Eq. (1):
///   Q() :- R(A,B), S(A,C), T(A,C,D).
ConjunctiveQuery MakePaperQuery();

/// The canonical non-hierarchical (but acyclic) query of §1:
///   Q() :- R(X), S(X,Y), T(Y).
ConjunctiveQuery MakeQnh();

/// The hierarchical two-atom query of §1:  Q() :- E(X,Y), F(Y,Z).
ConjunctiveQuery MakeQh();

/// Nested chain of `depth` atoms: R1(X1), R2(X1,X2), ..., Rd(X1..Xd).
/// Hierarchical; exercises long Rule 1 cascades.
ConjunctiveQuery MakeNestedChain(size_t depth);

/// Star: R0(X), R1(X,Y1), ..., Rb(X,Yb). Hierarchical; exercises Rule 2
/// after the leaf projections.
ConjunctiveQuery MakeStarQuery(size_t branches);

/// Non-hierarchical chain of 2k+1 atoms:
///   R1(X1), S1(X1,X2), R2(X2), S2(X2,X3), ..., Rk+1(Xk+1)
/// (k >= 1 links; k = 1 gives MakeQnh up to renaming).
ConjunctiveQuery MakeNonHierarchicalChain(size_t links);

/// Options for the random hierarchical generator.
struct RandomHierarchicalOptions {
  size_t num_variables = 5;       ///< Nodes of the hierarchy forest.
  size_t num_roots = 1;           ///< Connected components with variables.
  double extra_atom_prob = 0.35;  ///< P(extra atom at a non-leaf node).
  double twin_atom_prob = 0.25;   ///< P(second atom with the same var set).
  bool shuffle_term_order = true; ///< Randomize positional schemas.
};

/// Draws a random hierarchical query. Every leaf contributes an atom (so
/// every variable occurs), interior nodes contribute extra atoms with
/// probability `extra_atom_prob`, and any emitted atom is duplicated under
/// a fresh relation name with probability `twin_atom_prob` (exercising
/// Rule 2). The result is hierarchical by construction; the generator
/// CHECKs it.
ConjunctiveQuery MakeRandomHierarchical(Rng& rng,
                                        const RandomHierarchicalOptions& opts);

/// Draws a random SJF-BCQ with `num_atoms` atoms over `num_variables`
/// variables with arities in [1, max_arity]; makes no structural promise
/// (useful for classifier tests). Every variable is used at least once.
ConjunctiveQuery MakeRandomQuery(Rng& rng, size_t num_atoms,
                                 size_t num_variables, size_t max_arity);

}  // namespace hierarq

#endif  // HIERARQ_WORKLOAD_QUERY_GEN_H_
