#ifndef HIERARQ_WORKLOAD_DATA_GEN_H_
#define HIERARQ_WORKLOAD_DATA_GEN_H_

/// \file data_gen.h
/// \brief Random database / TID / repair-instance / graph generators.
///
/// All generators take an explicit `Rng` and are fully deterministic given
/// the seed; benchmark tables cite the seeds they use.

#include <cstddef>

#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/reductions/graph.h"
#include "hierarq/util/random.h"

namespace hierarq {

/// Options for random fact generation.
struct DataGenOptions {
  size_t tuples_per_relation = 100;
  size_t domain_size = 32;   ///< Values are drawn from [0, domain_size).
  double zipf_skew = 0.0;    ///< 0 = uniform; > 0 = Zipf-distributed values.
};

/// A random set database over the query's schema (one relation per atom,
/// with the atom's arity). Duplicate draws are discarded, so relations may
/// end up slightly smaller than requested when the domain is tight.
Database RandomDatabaseForQuery(const ConjunctiveQuery& query, Rng& rng,
                                const DataGenOptions& opts);

/// A random TID database: facts as above, probabilities uniform in
/// [p_min, p_max].
TidDatabase RandomTidForQuery(const ConjunctiveQuery& query, Rng& rng,
                              const DataGenOptions& opts, double p_min = 0.05,
                              double p_max = 0.95);

/// A Bag-Set Maximization input: facts are generated as above and each
/// lands in D with probability `in_d_prob`, in the repair database
/// otherwise.
struct RepairInstance {
  Database d;
  Database repair;
};
RepairInstance RandomRepairInstance(const ConjunctiveQuery& query, Rng& rng,
                                    const DataGenOptions& opts,
                                    double in_d_prob = 0.5);

/// Splits `db` into (exogenous, endogenous) parts: each fact is endogenous
/// with probability `endogenous_prob`.
std::pair<Database, Database> SplitExoEndo(const Database& db, Rng& rng,
                                           double endogenous_prob);

/// Erdős–Rényi G(n, p).
Graph RandomGraph(Rng& rng, size_t n, double edge_prob);

/// G(n, p) noise plus a planted balanced k-biclique (on random disjoint
/// vertex sets), for positive BCBS instances.
Graph PlantedBicliqueGraph(Rng& rng, size_t n, size_t k, double noise_prob);

}  // namespace hierarq

#endif  // HIERARQ_WORKLOAD_DATA_GEN_H_
