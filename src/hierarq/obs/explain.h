#ifndef HIERARQ_OBS_EXPLAIN_H_
#define HIERARQ_OBS_EXPLAIN_H_

/// \file explain.h
/// \brief EXPLAIN ANALYZE: the terminal exporter of a traced evaluation.
///
/// Takes the `EliminationPlan` that ran and the step events a `Tracer`
/// recorded while it ran, and renders the plan as a tree — the final
/// nullary atom at the root, each step's result atom a node over its
/// input atoms, base atoms as leaves — with exactly one line per
/// elimination step carrying what the trace observed: result backend,
/// thread fan-out, rows in/out, wall time, SIMD tier, and the
/// serial/parallel decision (with the cost model's predictions when the
/// adaptive controller made it). `hierarq_cli --explain` prints this
/// after the command's normal output.
///
/// The tree shape needs no search: plan atom ids are minted in step
/// order, so atom `num_base_atoms() + i` is exactly step i's result and
/// every atom id below `num_base_atoms()` is a base leaf. When the same
/// plan replayed several times inside one trace (service batches,
/// update-mode refolds), each step line shows its *last* execution and
/// flags the run count.

#include <string>
#include <vector>

#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"

namespace hierarq::obs {

/// Renders the EXPLAIN ANALYZE tree for `plan` from `events` (typically
/// `Tracer::Snapshot()`). Every plan step appears exactly once; steps
/// with no recorded event render as "(not executed)". `variables` is the
/// query's table, for schema labels.
std::string RenderExplainAnalyze(const EliminationPlan& plan,
                                 const VariableTable& variables,
                                 const std::vector<TraceEvent>& events);

/// "1.5us" / "2.35ms" — shared duration pretty-printer (CLI ack lines
/// use it too).
std::string FormatNs(double ns);

}  // namespace hierarq::obs

#endif  // HIERARQ_OBS_EXPLAIN_H_
