#include "hierarq/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <limits>
#include <utility>

#include "hierarq/util/logging.h"

namespace hierarq::obs {

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Quantile(double q) const {
  const uint64_t count = Count();
  if (count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // 0-indexed rank in the sorted sample; walk buckets until the
  // cumulative count covers it, then place the rank proportionally
  // between the bucket's bounds.
  const double rank = q * static_cast<double>(count - 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = BucketCount(i);
    if (n == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + n) > rank) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
      return lo + within * (hi - lo);
    }
    cumulative += n;
  }
  // Concurrent observers can make count run ahead of the bucket sums;
  // answer with the highest populated bound rather than overrun.
  for (size_t i = kNumBuckets; i > 0; --i) {
    if (BucketCount(i - 1) > 0) {
      return static_cast<double>(BucketUpperBound(i - 1));
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments resolved into function-local statics
  // may be touched during static destruction; a leaked registry has no
  // teardown order to lose against.
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(gauges_.find(name) == gauges_.end() &&
                histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(counters_.find(name) == counters_.end() &&
                histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(counters_.find(name) == counters_.end() &&
                gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n",
                  name.c_str(), counter->Value());
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %" PRId64 "\n", name.c_str(),
                  gauge->Value());
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%" PRIu64 " sum=%" PRIu64,
                  name.c_str(), hist->Count(), hist->Sum());
    out += line;
    if (hist->Count() > 0) {
      // Quantile(NaN on empty) renders "nan" — skip the noise instead.
      std::snprintf(line, sizeof(line), " p50=%.6g p90=%.6g p99=%.6g",
                    hist->Quantile(0.50), hist->Quantile(0.90),
                    hist->Quantile(0.99));
      out += line;
    }
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line), " [%" PRIu64 ",%" PRIu64 "]=%" PRIu64,
                    Histogram::BucketLowerBound(i),
                    Histogram::BucketUpperBound(i), n);
      out += line;
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  // Every 64-bit integer rides as a DECIMAL STRING: counters count ns
  // and rows past 2^53, where a JSON consumer parsing them as doubles
  // would silently round. Quantiles are genuine doubles (estimates
  // anyway) and are omitted for empty histograms — "no data" must stay
  // distinguishable from "all zeros".
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  char buf[192];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": \"%" PRIu64 "\"",
                  first ? "" : ",", name.c_str(), counter->Value());
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": \"%" PRId64 "\"",
                  first ? "" : ",", name.c_str(), gauge->Value());
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const uint64_t count = hist->Count();
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": \"%" PRIu64
                  "\", \"sum\": \"%" PRIu64 "\"",
                  first ? "" : ",", name.c_str(), count, hist->Sum());
    out += buf;
    first = false;
    if (count > 0) {
      std::snprintf(buf, sizeof(buf),
                    ", \"p50\": %.6g, \"p90\": %.6g, \"p99\": %.6g",
                    hist->Quantile(0.50), hist->Quantile(0.90),
                    hist->Quantile(0.99));
      out += buf;
    }
    out += ", \"buckets\": {";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%s\"%" PRIu64 "\": \"%" PRIu64 "\"",
                    first_bucket ? "" : ", ", Histogram::BucketLowerBound(i),
                    n);
      out += buf;
      first_bucket = false;
    }
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

}  // namespace hierarq::obs
