#include "hierarq/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "hierarq/util/logging.h"

namespace hierarq::obs {

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments resolved into function-local statics
  // may be touched during static destruction; a leaked registry has no
  // teardown order to lose against.
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(gauges_.find(name) == gauges_.end() &&
                histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(counters_.find(name) == counters_.end() &&
                histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  HIERARQ_CHECK(counters_.find(name) == counters_.end() &&
                gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered as a different kind";
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n",
                  name.c_str(), counter->Value());
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %" PRId64 "\n", name.c_str(),
                  gauge->Value());
    out += line;
  }
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%" PRIu64 " sum=%" PRIu64,
                  name.c_str(), hist->Count(), hist->Sum());
    out += line;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line), " [%" PRIu64 ",%" PRIu64 "]=%" PRIu64,
                    Histogram::BucketLowerBound(i),
                    Histogram::BucketUpperBound(i), n);
      out += line;
    }
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  char buf[192];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %" PRIu64,
                  first ? "" : ",", name.c_str(), counter->Value());
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %" PRId64,
                  first ? "" : ",", name.c_str(), gauge->Value());
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"buckets\": {",
                  first ? "" : ",", name.c_str(), hist->Count(), hist->Sum());
    out += buf;
    first = false;
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = hist->BucketCount(i);
      if (n == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf), "%s\"%" PRIu64 "\": %" PRIu64,
                    first_bucket ? "" : ", ", Histogram::BucketLowerBound(i),
                    n);
      out += buf;
      first_bucket = false;
    }
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

}  // namespace hierarq::obs
