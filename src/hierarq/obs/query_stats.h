#ifndef HIERARQ_OBS_QUERY_STATS_H_
#define HIERARQ_OBS_QUERY_STATS_H_

/// \file query_stats.h
/// \brief Per-evaluation resource accounting (`QueryStats`).
///
/// The metrics registry answers "what has this process done"; a served
/// client asks "what did *my* query cost". `QueryStats` is that answer:
/// one plain struct of counters for a single evaluation — rows scanned
/// and emitted per rule, how many elimination steps ran and how many of
/// them went parallel, how often the cancellation gate was polled, how
/// long the request waited in the admission queue versus executing, and
/// whether the plan came out of a cache. The server attaches it to the
/// result frame (net/wire.h, flag-gated so old clients never see it) and
/// the slow-query log (obs/log.h) renders it next to the query text.
///
/// Collection follows the `ScopedCancel` idiom exactly (core/cancel.h):
/// a `ScopedQueryStats` guard installs a collector pointer in a
/// thread_local for the scope of one evaluation, and every Algorithm 1
/// runner bumps it through one hoisted null check per run. Evaluation may
/// run on a different thread from the caller (a service pool worker), so
/// the installer is whoever wraps the actual `ReplayPlan`/`Evaluate`
/// call — `EvalService::EvaluateGroup` installs it beside the cancel
/// token. With no collector installed the cost is one thread_local load
/// per step loop, which is what keeps disabled accounting invisible (the
/// bench suite's accounting-overhead row guards this).
///
/// A collector is written by exactly one evaluation thread at a time;
/// fields that other layers fill (queue_wait_ns from the async admission
/// queue, plan_cache_hit from the planner) are written before or after
/// the evaluation runs, never concurrently with it.

#include <cstdint>
#include <string>

namespace hierarq::obs {

/// Everything one evaluation cost. All counters are cumulative within
/// one evaluation; `Reset()` (or value-initialization) starts a fresh
/// request.
struct QueryStats {
  // Per-rule row traffic. "scanned" counts step input support (Rule 2:
  // |left| + |right|, the union-scan bound of Lemma 6.6); "emitted"
  // counts result support.
  uint64_t rule1_rows_scanned = 0;
  uint64_t rule1_rows_emitted = 0;
  uint64_t rule2_rows_scanned = 0;
  uint64_t rule2_rows_emitted = 0;

  // Step mix: every elimination step is exactly one of serial/parallel.
  uint64_t steps_total = 0;
  uint64_t steps_serial = 0;
  uint64_t steps_parallel = 0;

  /// Cancellation checkpoints polled (one per step loop iteration).
  uint64_t cancel_checkpoints = 0;

  /// Wall time spent queued behind the async admission door before a
  /// submitter picked the job up (0 for direct evaluation).
  uint64_t queue_wait_ns = 0;
  /// Wall time inside the Algorithm 1 run itself.
  uint64_t exec_ns = 0;

  /// The evaluation reused a cached `EliminationPlan` (Evaluator private
  /// cache or the service's SharedPlanCache) instead of building one.
  bool plan_cache_hit = false;

  void Reset() { *this = QueryStats{}; }

  /// One step's accounting; called by every runner behind its hoisted
  /// null check.
  void RecordStep(uint8_t rule, uint64_t rows_in, uint64_t rows_out,
                  bool parallel) {
    if (rule == 1) {
      rule1_rows_scanned += rows_in;
      rule1_rows_emitted += rows_out;
    } else {
      rule2_rows_scanned += rows_in;
      rule2_rows_emitted += rows_out;
    }
    ++steps_total;
    if (parallel) {
      ++steps_parallel;
    } else {
      ++steps_serial;
    }
  }

  /// key=value rendering, single line — the form the slow-query log and
  /// `hierarq_cli client --stats` print.
  std::string Render() const {
    std::string out;
    out.reserve(256);
    const auto field = [&out](const char* key, uint64_t value) {
      if (!out.empty()) {
        out += ' ';
      }
      out += key;
      out += '=';
      out += std::to_string(value);
    };
    field("rule1_rows_scanned", rule1_rows_scanned);
    field("rule1_rows_emitted", rule1_rows_emitted);
    field("rule2_rows_scanned", rule2_rows_scanned);
    field("rule2_rows_emitted", rule2_rows_emitted);
    field("steps", steps_total);
    field("serial_steps", steps_serial);
    field("parallel_steps", steps_parallel);
    field("cancel_checkpoints", cancel_checkpoints);
    field("queue_wait_ns", queue_wait_ns);
    field("exec_ns", exec_ns);
    out += " plan_cache_hit=";
    out += plan_cache_hit ? "true" : "false";
    return out;
  }
};

namespace query_stats_internal {

/// The collector watching this thread's current evaluation, if any.
inline thread_local QueryStats* g_current = nullptr;

}  // namespace query_stats_internal

/// The runner-side gate: the collector to bump, or nullptr (the
/// overwhelmingly common case — one thread_local load).
inline QueryStats* CurrentQueryStats() {
  return query_stats_internal::g_current;
}

/// Installs `stats` as this thread's collector for the enclosing scope
/// (restoring the previous one on exit, so nested evaluations compose —
/// mirror of `ScopedCancel`). Pass nullptr to run a scope uncollected.
class ScopedQueryStats {
 public:
  explicit ScopedQueryStats(QueryStats* stats)
      : previous_(query_stats_internal::g_current) {
    query_stats_internal::g_current = stats;
  }
  ~ScopedQueryStats() { query_stats_internal::g_current = previous_; }

  ScopedQueryStats(const ScopedQueryStats&) = delete;
  ScopedQueryStats& operator=(const ScopedQueryStats&) = delete;

 private:
  QueryStats* const previous_;
};

}  // namespace hierarq::obs

#endif  // HIERARQ_OBS_QUERY_STATS_H_
