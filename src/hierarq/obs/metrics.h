#ifndef HIERARQ_OBS_METRICS_H_
#define HIERARQ_OBS_METRICS_H_

/// \file metrics.h
/// \brief Process-wide metrics: named counters, gauges, and log-2-bucket
/// histograms behind one `MetricsRegistry`.
///
/// Every subsystem used to invent its own counters (`ServiceStats`
/// atomics, `WorkerPool::parallel_for_calls`, per-view `Stats` structs);
/// this registry is the one place they all land, so the CLI's
/// `--metrics`, the tests, and the future server's `/metrics` endpoint
/// read a single catalog. Design constraints, in order:
///
///   1. **The hot path pays one relaxed atomic, or nothing.**
///      `Counter::Add` is a relaxed `fetch_add` on a cache-line-padded
///      shard picked per thread, so N workers bumping the same counter
///      never contend on one line; when metrics are globally disabled
///      (`SetMetricsEnabled(false)`) it is a single relaxed bool load and
///      an early return. Aggregation (summing the shards) happens only at
///      scrape time.
///   2. **Stable handles.** `GetCounter`/`GetGauge`/`GetHistogram`
///      return pointers that stay valid for the registry's lifetime
///      (instruments live behind unique_ptr), so call sites resolve a
///      name once — typically into a function-local static — and never
///      touch the name map again.
///   3. **Two export formats.** `RenderText` for humans (`hierarq_cli
///      --metrics`), `RenderJson` for machines; both render instruments
///      in name order so diffs are stable.
///
/// `MetricsRegistry::Global()` is the process-wide registry every
/// subsystem defaults to; `EvalService` additionally owns a private
/// instance so per-service snapshots (`ServiceStats`) don't bleed across
/// services in one process.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace hierarq::obs {

namespace metrics_internal {

/// The global on/off switch. Defaults on: instruments are cheap enough
/// to leave running; the switch exists for overhead experiments (the
/// bench instrumentation-overhead row) and belt-and-braces kill switches.
inline std::atomic<bool> g_metrics_enabled{true};

}  // namespace metrics_internal

inline bool MetricsEnabled() {
  return metrics_internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

inline void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_metrics_enabled.store(enabled,
                                            std::memory_order_relaxed);
}

/// A monotonically increasing counter, sharded across cache lines so
/// concurrent writers from different threads (the worker pool, service
/// callers) never bounce one line. Reads sum the shards — exact, because
/// shard values only grow and `Value` is a snapshot like any counter
/// scrape.
class Counter {
 public:
  static constexpr size_t kNumShards = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Hot path: one relaxed fetch_add on this thread's shard (nothing at
  /// all when metrics are disabled).
  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) {
      return;
    }
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Scrape-time aggregate of all shards.
  uint64_t Value() const;

  /// Zeroes every shard (tests and per-run deltas).
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Threads round-robin onto shards at first use; the assignment is
  /// sticky per thread, so a thread always hits the same (warm) line.
  static size_t ThisThreadShard() {
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t shard =
        next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
    return shard;
  }

  Shard shards_[kNumShards];
};

/// A point-in-time signed value (queue depths, pool sizes). Single
/// atomic — gauges are set/adjusted rarely compared to counters.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    if (!MetricsEnabled()) {
      return;
    }
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    if (!MetricsEnabled()) {
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over uint64 values with power-of-two buckets: bucket 0
/// holds exact zeros and bucket i >= 1 holds [2^(i-1), 2^i - 1], so 65
/// buckets cover the whole range with ~2x resolution — plenty for
/// latency-in-ns and batch-size distributions, at a fixed 65-atomic
/// footprint and a branchless `std::bit_width` on the observe path.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// The bucket index `value` lands in.
  static size_t BucketOf(uint64_t value) {
    return static_cast<size_t>(std::bit_width(value));
  }

  /// Smallest value of bucket `i` (0 for bucket 0).
  static uint64_t BucketLowerBound(size_t i) {
    return i == 0 ? 0 : uint64_t{1} << (i - 1);
  }

  /// Largest value of bucket `i`.
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) {
      return 0;
    }
    if (i >= kNumBuckets - 1) {
      return UINT64_MAX;
    }
    return (uint64_t{1} << i) - 1;
  }

  void Observe(uint64_t value) {
    if (!MetricsEnabled()) {
      return;
    }
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimated `q`-quantile (q in [0,1]): finds the bucket holding the
  /// rank and interpolates linearly inside it, so the error is bounded
  /// by the bucket's ~2x width. NaN on an empty histogram — renderers
  /// must not invent a bucket-0 answer for "no data".
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Owns named instruments. Lookup takes a mutex (resolve handles once);
/// the instruments themselves are lock-free. Names are dotted paths by
/// convention: "<subsystem>.<what>", e.g. "planner.plan_cache_hits".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (engine core, worker pool, incremental
  /// layer). Never destroyed, so handles resolved into static locals stay
  /// valid through static teardown.
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument. The returned pointer is
  /// stable for the registry's lifetime. A name identifies exactly one
  /// instrument kind — re-requesting it as a different kind is a CHECK
  /// failure, not a silent alias.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Human-readable dump, one instrument per line in name order:
  ///   counter planner.plans_built 3
  ///   gauge workerpool.queue_depth 0
  ///   histogram service.group_size count=2 sum=9 p50=4.5 p90=6.3
  ///     p99=6.93 [4,7]=2   (one line)
  /// (histograms list only their non-empty buckets; the p* estimates are
  /// omitted entirely when the histogram is empty).
  std::string RenderText() const;

  /// Machine-readable dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"count": "C", "sum": "S", "p50": ...,
  /// "buckets": {"lo": "n"}}}}. All 64-bit integers are DECIMAL STRINGS
  /// (ns counters exceed 2^53, the double-exact limit); quantiles are
  /// doubles and absent for empty histograms.
  std::string RenderJson() const;

  /// Zeroes every instrument (handles stay valid) — per-run deltas.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hierarq::obs

#endif  // HIERARQ_OBS_METRICS_H_
