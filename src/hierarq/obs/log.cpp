#include "hierarq/obs/log.h"

#include <chrono>
#include <cstdio>
#include <iostream>

#include "hierarq/obs/trace.h"

namespace hierarq::obs {

namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping (the log's values are arbitrary — query text,
/// peer-supplied error messages).
void AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// key=value values quote only when they must (spaces, quotes, '=',
/// control bytes) so the common line stays clean.
void AppendKvValue(std::string* out, std::string_view value) {
  bool needs_quotes = value.empty();
  for (const char c : value) {
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x20) {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out->append(value);
    return;
  }
  *out += '"';
  AppendEscaped(out, value);
  *out += '"';
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

Logger::Logger(Options options)
    : min_level_(options.min_level),
      json_(options.json),
      sink_(options.sink != nullptr ? options.sink : &std::cerr),
      never_drop_errors_(options.never_drop_errors),
      rate_per_sec_(options.rate_per_sec),
      burst_(options.burst != 0 ? options.burst
                                : (options.rate_per_sec != 0
                                       ? options.rate_per_sec
                                       : 0)),
      tokens_(static_cast<double>(burst_)),
      last_refill_ns_(Tracer::NowNs()) {}

void Logger::Configure(Options options) {
  min_level_.store(options.min_level, std::memory_order_relaxed);
  json_ = options.json;
  sink_ = options.sink != nullptr ? options.sink : &std::cerr;
  never_drop_errors_ = options.never_drop_errors;
  rate_per_sec_ = options.rate_per_sec;
  burst_ = options.burst != 0
               ? options.burst
               : (options.rate_per_sec != 0 ? options.rate_per_sec : 0);
  tokens_ = static_cast<double>(burst_);
  last_refill_ns_ = Tracer::NowNs();
}

Logger& Logger::Global() {
  static Logger* const logger = new Logger(Options{});
  return *logger;
}

bool Logger::Admit(LogLevel level) {
  if (rate_per_sec_ == 0) {
    return true;
  }
  if (never_drop_errors_ && level >= LogLevel::kError) {
    return true;
  }
  std::lock_guard<std::mutex> lock(bucket_mutex_);
  const uint64_t now = Tracer::NowNs();
  const uint64_t elapsed = now - last_refill_ns_;
  last_refill_ns_ = now;
  tokens_ += static_cast<double>(elapsed) * 1e-9 *
             static_cast<double>(rate_per_sec_);
  const double cap = static_cast<double>(burst_);
  if (tokens_ > cap) {
    tokens_ = cap;
  }
  if (tokens_ < 1.0) {
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (level < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!Admit(level)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Per-thread buffer: the whole line is formatted lock-free, and the
  // buffer's capacity survives across calls on this thread.
  thread_local std::string line;
  line.clear();
  if (json_) {
    line += "{\"ts_ns\":\"";
    line += std::to_string(WallNowNs());
    line += "\",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"event\":\"";
    AppendEscaped(&line, event);
    line += '"';
    for (const LogField& field : fields) {
      line += ",\"";
      AppendEscaped(&line, field.key);
      line += "\":\"";
      AppendEscaped(&line, field.value);
      line += '"';
    }
    line += "}\n";
  } else {
    line += "ts_ns=";
    line += std::to_string(WallNowNs());
    line += " level=";
    line += LogLevelName(level);
    line += " event=";
    AppendKvValue(&line, event);
    for (const LogField& field : fields) {
      line += ' ';
      line.append(field.key);
      line += '=';
      AppendKvValue(&line, field.value);
    }
    line += '\n';
  }
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_->write(line.data(), static_cast<std::streamsize>(line.size()));
  sink_->flush();
}

}  // namespace hierarq::obs
