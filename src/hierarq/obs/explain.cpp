#include "hierarq/obs/explain.h"

#include <cstdio>
#include <map>

#include "hierarq/util/logging.h"

namespace hierarq::obs {

std::string FormatNs(double ns) {
  char buf[32];
  if (ns < 0) {
    return "?";
  }
  if (ns < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  }
  return buf;
}

namespace {

/// The last observed execution of one step, plus how often it ran.
struct StepObservation {
  TraceStepArgs args;
  uint64_t dur_ns = 0;
  size_t runs = 0;
};

std::string AtomString(const EliminationPlan& plan,
                       const VariableTable& variables, size_t atom_id) {
  std::string s = plan.name_of(atom_id) + "(";
  const VarSet& vs = plan.vars_of(atom_id);
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) {
      s += ",";
    }
    s += variables.Name(vs[i]);
  }
  return s + ")";
}

/// The bracketed measurement suffix of one step line.
std::string StepDetails(const StepObservation* obs) {
  if (obs == nullptr || obs->runs == 0) {
    return "[not executed]";
  }
  const TraceStepArgs& a = obs->args;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "[backend=%s threads=%u rows %llu -> %llu time=%s simd=%s",
                StorageKindName(a.backend), a.threads,
                static_cast<unsigned long long>(a.rows_in),
                static_cast<unsigned long long>(a.rows_out),
                FormatNs(static_cast<double>(obs->dur_ns)).c_str(),
                simd::LevelName(a.simd));
  std::string out = buf;
  const char* chosen = a.parallel ? "parallel" : "serial";
  if (a.adaptive && a.predicted_serial_ns >= 0.0) {
    out += " chose ";
    out += chosen;
    out += " (pred serial=" + FormatNs(a.predicted_serial_ns) +
           " parallel=" + FormatNs(a.predicted_parallel_ns) + ")";
  } else {
    out += " ";
    out += chosen;
    out += " (fixed)";
  }
  if (obs->runs > 1) {
    char runs[32];
    std::snprintf(runs, sizeof(runs), " x%zu runs, last shown", obs->runs);
    out += runs;
  }
  return out + "]";
}

/// Renders `atom_id`'s subtree. `prefix` is this node's connector line;
/// `child_prefix` is what its children's connectors hang off.
void RenderAtom(const EliminationPlan& plan, const VariableTable& variables,
                const std::map<uint32_t, StepObservation>& observed,
                size_t atom_id, const std::string& prefix,
                const std::string& child_prefix, std::string* out) {
  *out += prefix;
  if (atom_id < plan.num_base_atoms()) {
    *out += AtomString(plan, variables, atom_id) + "  [base]\n";
    return;
  }
  // Atom ids are minted in step order: this atom is step si's result.
  const size_t si = atom_id - plan.num_base_atoms();
  HIERARQ_CHECK_LT(si, plan.steps().size());
  const EliminationStep& step = plan.steps()[si];

  auto it = observed.find(static_cast<uint32_t>(si));
  const StepObservation* obs = it == observed.end() ? nullptr : &it->second;

  char head[64];
  std::snprintf(head, sizeof(head), "#%zu ", si + 1);
  *out += head;
  *out += AtomString(plan, variables, atom_id);
  std::vector<size_t> children;
  if (step.rule == EliminationRule::kProjectVariable) {
    *out += " <- rule 1: project " + variables.Name(step.variable) +
            " out of " + plan.name_of(step.source_atom);
    children = {step.source_atom};
  } else {
    *out += " <- rule 2: merge " + plan.name_of(step.left_atom) + " * " +
            plan.name_of(step.right_atom);
    children = {step.left_atom, step.right_atom};
  }
  *out += "  " + StepDetails(obs) + "\n";

  for (size_t i = 0; i < children.size(); ++i) {
    const bool last = i + 1 == children.size();
    RenderAtom(plan, variables, observed, children[i],
               child_prefix + (last ? "`- " : "|- "),
               child_prefix + (last ? "   " : "|  "), out);
  }
}

}  // namespace

std::string RenderExplainAnalyze(const EliminationPlan& plan,
                                 const VariableTable& variables,
                                 const std::vector<TraceEvent>& events) {
  // Last execution per step index; events arrive time-sorted from
  // Snapshot, so overwriting keeps the most recent.
  std::map<uint32_t, StepObservation> observed;
  for (const TraceEvent& event : events) {
    if (event.kind != TraceEvent::Kind::kStep) {
      continue;
    }
    StepObservation& obs = observed[event.step.step_index];
    obs.args = event.step;
    obs.dur_ns = event.dur_ns;
    ++obs.runs;
  }

  char head[96];
  std::snprintf(head, sizeof(head),
                "EXPLAIN ANALYZE  (%zu steps, %zu base atoms)\n",
                plan.steps().size(), plan.num_base_atoms());
  std::string out = head;
  RenderAtom(plan, variables, observed, plan.final_atom(), "", "", &out);
  return out;
}

}  // namespace hierarq::obs
