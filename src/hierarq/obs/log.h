#ifndef HIERARQ_OBS_LOG_H_
#define HIERARQ_OBS_LOG_H_

/// \file log.h
/// \brief Structured logging: leveled key=value / JSON event lines.
///
/// The server's operational narrative — startup, shutdown, slow queries,
/// protocol errors — needs to be grep-able by a human AND parseable by a
/// collector, which raw printf lines are not. A `Logger` emits one line
/// per event in one of two sink formats over the SAME call sites:
///
///   key=value   ts_ns=171234 level=info event=listening port=9000
///   JSON        {"ts_ns":"171234","level":"info","event":"listening",...}
///
/// Three properties matter at server scale and are built in rather than
/// bolted on at every call site:
///
///   * **Per-thread buffering.** Each call formats its full line into a
///     thread_local buffer and hands the sink ONE write under the sink
///     mutex, so lines from concurrent connection threads never
///     interleave mid-line and the lock covers an append, not the
///     formatting.
///   * **Token-bucket rate limiting.** An error loop (a peer replaying a
///     malformed frame forever) must not turn the log into the DoS
///     amplifier. The bucket admits `burst` lines instantly and refills
///     at `rate_per_sec`; beyond that, lines are counted in `dropped()`
///     instead of written. Level kError and above can be exempted
///     (`Options.never_drop_errors`).
///   * **Levels.** Lines below `min_level` cost one atomic load and
///     nothing else.
///
/// Values are strings; helpers format integers at the call site
/// (`std::to_string`) — the log path is not hot enough to warrant a
/// type-erased field system, and strings keep both sinks trivial.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace hierarq::obs {

enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

/// One structured field. The value is owned: call sites routinely pass
/// `std::to_string(...)` temporaries.
struct LogField {
  std::string_view key;
  std::string value;
};

class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    /// false = key=value lines, true = one JSON object per line.
    bool json = false;
    /// Where lines go. nullptr = std::cerr. The stream must outlive the
    /// logger; writes are serialized by the logger's sink mutex.
    std::ostream* sink = nullptr;
    /// Token bucket: sustained lines/second admitted. 0 = unlimited.
    uint64_t rate_per_sec = 0;
    /// Bucket capacity (instantaneous burst). 0 with rate set = rate.
    uint64_t burst = 0;
    /// kError lines bypass the bucket — an operator debugging an outage
    /// needs the errors most exactly when the volume spikes.
    bool never_drop_errors = true;
  };

  Logger() : Logger(Options{}) {}
  explicit Logger(Options options);

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Emits one event line: a `ts_ns`/`level`/`event` prefix plus
  /// `fields` in order. Thread-safe; below-level calls return after one
  /// atomic load; rate-limited calls bump `dropped()` and return.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  void Debug(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kDebug, event, fields);
  }
  void Info(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kInfo, event, fields);
  }
  void Warn(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kWarn, event, fields);
  }
  void Error(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kError, event, fields);
  }

  /// Lines suppressed by the token bucket since construction.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  LogLevel min_level() const { return min_level_.load(std::memory_order_relaxed); }
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }

  /// The process-wide logger (stderr, key=value, info). Tools reconfigure
  /// it once at startup via `Configure` — before spawning threads.
  static Logger& Global();
  /// Re-applies `options` to this logger. NOT thread-safe against
  /// concurrent Log calls; startup-time only.
  void Configure(Options options);

 private:
  bool Admit(LogLevel level);

  std::atomic<LogLevel> min_level_;
  bool json_;
  std::ostream* sink_;
  bool never_drop_errors_;
  std::mutex sink_mutex_;

  // Token bucket, guarded by bucket_mutex_ (refill needs read-modify-
  // write of two fields; contention is bounded by the admitted rate).
  std::mutex bucket_mutex_;
  uint64_t rate_per_sec_;
  uint64_t burst_;
  double tokens_;
  uint64_t last_refill_ns_;

  std::atomic<uint64_t> dropped_{0};
};

}  // namespace hierarq::obs

#endif  // HIERARQ_OBS_LOG_H_
