#include "hierarq/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace hierarq::obs {

std::atomic<Tracer*> Tracer::current_{nullptr};

namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(size_t capacity_per_thread)
    : capacity_(capacity_per_thread > 0 ? capacity_per_thread : 1),
      id_(NextTracerId()) {}

Tracer::~Tracer() { Uninstall(); }

uint64_t Tracer::NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

Tracer::Ring* Tracer::ThisThreadRing() {
  // Keyed on the tracer id, not the pointer: a new tracer allocated at a
  // dead one's address must not inherit its rings.
  thread_local uint64_t cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id == id_) {
    return cached_ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring* ring = rings_.back().get();
  ring->events.resize(capacity_);
  ring->tid = static_cast<uint32_t>(rings_.size() - 1);
  cached_id = id_;
  cached_ring = ring;
  return ring;
}

void Tracer::Push(const TraceEvent& event) {
  Ring* ring = ThisThreadRing();
  TraceEvent& slot = ring->events[ring->next];
  slot = event;
  slot.tid = ring->tid;
  ring->next = ring->next + 1 == capacity_ ? 0 : ring->next + 1;
  ++ring->total;
}

void Tracer::EmitSpan(const char* name, const char* cat, uint64_t start_ns,
                      uint64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.kind = TraceEvent::Kind::kSpan;
  event.ts_ns = start_ns;
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  Push(event);
}

void Tracer::EmitStep(uint64_t start_ns, uint64_t end_ns,
                      const TraceStepArgs& args) {
  TraceEvent event;
  event.name = args.rule == 1 ? "rule1_project" : "rule2_merge";
  event.cat = "step";
  event.kind = TraceEvent::Kind::kStep;
  event.ts_ns = start_ns;
  event.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  event.step = args;
  Push(event);
}

void Tracer::EmitInstant(const char* name, const char* arg_name, double arg) {
  TraceEvent event;
  event.name = name;
  event.kind = TraceEvent::Kind::kInstant;
  event.ts_ns = NowNs();
  event.arg_name = arg_name;
  event.arg = arg;
  Push(event);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const size_t kept = ring->total < capacity_
                            ? static_cast<size_t>(ring->total)
                            : capacity_;
    // Chronological replay of the ring: the oldest retained event sits at
    // the write cursor once the ring has wrapped, at 0 before.
    const size_t start = ring->total < capacity_ ? 0 : ring->next;
    for (size_t i = 0; i < kept; ++i) {
      out.push_back(ring->events[(start + i) % capacity_]);
    }
  }
  // Parents before children: earlier start first, and at equal starts the
  // longer (enclosing) duration first.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) {
                return a.ts_ns < b.ts_ns;
              }
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    if (ring->total > capacity_) {
      dropped += ring->total - capacity_;
    }
  }
  return dropped;
}

namespace {

void AppendStepArgsJson(const TraceStepArgs& step, std::string* out) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"step\": %u, \"rule\": %u, \"backend\": \"%s\", \"simd\": \"%s\", "
      "\"adaptive\": %s, \"parallel\": %s, \"threads\": %u, "
      "\"rows_in\": %llu, \"rows_out\": %llu",
      step.step_index, static_cast<unsigned>(step.rule),
      StorageKindName(step.backend), simd::LevelName(step.simd),
      step.adaptive ? "true" : "false", step.parallel ? "true" : "false",
      step.threads, static_cast<unsigned long long>(step.rows_in),
      static_cast<unsigned long long>(step.rows_out));
  *out += buf;
  if (step.predicted_serial_ns >= 0.0 || step.predicted_parallel_ns >= 0.0) {
    std::snprintf(buf, sizeof(buf),
                  ", \"predicted_serial_ns\": %.1f, "
                  "\"predicted_parallel_ns\": %.1f",
                  step.predicted_serial_ns, step.predicted_parallel_ns);
    *out += buf;
  }
  *out += "}";
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& out, int pid,
                              const std::string& trace_id) const {
  const std::vector<TraceEvent> events = Snapshot();
  // "dropped" tells validators (tools/check_trace.py) the rings wrapped:
  // step coverage can then only be checked as <=, not ==, because the
  // overwritten window may have held the missing step events.
  out << "{\"displayTimeUnit\": \"ns\", \"dropped\": " << dropped();
  if (!trace_id.empty()) {
    // Ids are hex tokens minted by HierarqClient — no escaping needed.
    out << ", \"trace_id\": \"" << trace_id << "\"";
  }
  out << ", \"traceEvents\": [";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i == 0 ? "\n" : ",\n");
    // Chrome's ts/dur are microseconds; keep ns resolution as fractions.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"cat\": \"%s\", \"pid\": %d, "
                  "\"tid\": %u, \"ts\": %.3f",
                  event.name, event.cat, pid, event.tid,
                  static_cast<double>(event.ts_ns) / 1000.0);
    out << buf;
    switch (event.kind) {
      case TraceEvent::Kind::kSpan:
        std::snprintf(buf, sizeof(buf),
                      ", \"ph\": \"X\", \"dur\": %.3f, \"args\": {}}",
                      static_cast<double>(event.dur_ns) / 1000.0);
        out << buf;
        break;
      case TraceEvent::Kind::kStep: {
        std::snprintf(buf, sizeof(buf),
                      ", \"ph\": \"X\", \"dur\": %.3f, \"args\": ",
                      static_cast<double>(event.dur_ns) / 1000.0);
        out << buf;
        std::string args;
        AppendStepArgsJson(event.step, &args);
        out << args << "}";
        break;
      }
      case TraceEvent::Kind::kInstant:
        std::snprintf(buf, sizeof(buf),
                      ", \"ph\": \"i\", \"s\": \"g\", \"args\": "
                      "{\"%s\": %.6g}}",
                      event.arg_name != nullptr ? event.arg_name : "value",
                      event.arg);
        out << buf;
        break;
    }
  }
  out << "\n]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path, int pid,
                                  const std::string& trace_id) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "Tracer: cannot open %s\n", path.c_str());
    return false;
  }
  WriteChromeTrace(out, pid, trace_id);
  return out.good();
}

}  // namespace hierarq::obs
