#ifndef HIERARQ_OBS_TRACE_H_
#define HIERARQ_OBS_TRACE_H_

/// \file trace.h
/// \brief Low-overhead span tracing for the engine's per-step decisions.
///
/// The adaptive engine (core/adaptive.h) picks a backend and thread count
/// for every elimination step; this tracer is how those decisions become
/// visible. The design is a classic in-memory flight recorder:
///
///   * **Install-to-enable.** There is one process-wide current tracer
///     (an atomic pointer). When none is installed, every emit point —
///     including the RAII `Span` guard — is a single relaxed load and a
///     branch; no clock is read, no memory is written. The disabled
///     configuration is the production default, and the bench suite's
///     instrumentation-overhead row keeps it honest.
///   * **Per-thread ring buffers.** Each emitting thread owns a
///     fixed-size ring of trivially-copyable `TraceEvent`s, registered
///     lazily on first emit; recording is a couple of stores with no
///     locking or allocation. When a ring wraps, the oldest events are
///     overwritten and counted in `dropped()` — a flight recorder keeps
///     the most recent window, it never stalls the engine.
///   * **Two exporters.** `WriteChromeTrace` renders the Chrome
///     trace-event JSON that chrome://tracing / Perfetto load
///     (`hierarq_cli --trace=FILE`); `Snapshot` hands the raw events to
///     in-process consumers — obs/explain.h turns them into the terminal
///     EXPLAIN ANALYZE tree.
///
/// Contracts: `Snapshot`/`WriteChromeTrace` are meant for quiesced
/// tracers (no concurrent emitters — e.g. after the evaluation returned);
/// they lock only against ring registration. A `Tracer` must outlive any
/// `Span` opened while it was installed, and uninstalls itself on
/// destruction if still current. Timestamps come from a process-global
/// steady-clock epoch (`NowNs`), so events from different tracers and
/// subsystems share one timeline.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hierarq/data/storage.h"
#include "hierarq/util/simd.h"

namespace hierarq::obs {

/// Everything one elimination step reports: which rule ran where, how
/// big it was, and — when the adaptive controller drove it — what the
/// cost model predicted for each side of the serial/parallel choice.
struct TraceStepArgs {
  uint32_t step_index = 0;
  uint8_t rule = 1;  ///< 1 = ⊕-project (Rule 1), 2 = ⊗-merge (Rule 2).
  /// Result backend the step materialized into.
  StorageKind backend = kDefaultStorageKind;
  simd::Level simd = simd::Level::kScalar;  ///< Dispatched SIMD tier.
  bool adaptive = false;  ///< Decided by AdaptiveController vs fixed flags.
  bool parallel = false;  ///< Took the sharded scatter vs the serial native.
  uint32_t threads = 1;   ///< Fan-out width (1 when serial).
  uint64_t rows_in = 0;   ///< Input support (Rule 2: |left| + |right|).
  uint64_t rows_out = 0;  ///< Result support.
  /// Cost-model estimates (ns) behind an adaptive decision; negative
  /// when the step ran under fixed flags and nothing was predicted.
  double predicted_serial_ns = -1.0;
  double predicted_parallel_ns = -1.0;
};

/// One recorded event. Trivially copyable on purpose: rings copy these
/// by value, and names are string literals with static storage duration
/// (emit sites pass `"literal"` names — never a dynamic buffer).
struct TraceEvent {
  enum class Kind : uint8_t {
    kSpan,     ///< A named duration (Chrome "X").
    kStep,     ///< An elimination step with `step` args (Chrome "X").
    kInstant,  ///< A point annotation with one numeric arg (Chrome "i").
  };

  const char* name = "";
  const char* cat = "hierarq";
  Kind kind = Kind::kSpan;
  uint32_t tid = 0;       ///< Ring-local thread id (registration order).
  uint64_t ts_ns = 0;     ///< Start, on the NowNs timeline.
  uint64_t dur_ns = 0;    ///< Zero for instants.
  const char* arg_name = nullptr;  ///< Instant payload label, if any.
  double arg = 0.0;                ///< Instant payload value.
  TraceStepArgs step;              ///< Valid when kind == kStep.
};

/// The flight recorder. Construct, `Install()`, run the workload,
/// quiesce, then `Snapshot()` / `WriteChromeTrace*()`.
class Tracer {
 public:
  /// `capacity_per_thread` is the ring size each emitting thread gets;
  /// the default keeps ~16k most-recent events per thread (~1.6 MB).
  explicit Tracer(size_t capacity_per_thread = size_t{1} << 14);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The installed tracer, or nullptr — the emit-site gate. One relaxed
  /// atomic load; every instrumentation point starts here.
  static Tracer* Current() {
    return current_.load(std::memory_order_acquire);
  }

  /// Makes this tracer current (replacing any other). Not reference
  /// counted: the caller owns the lifetime ordering.
  void Install() { current_.store(this, std::memory_order_release); }

  /// Clears the current tracer if it is this one.
  void Uninstall() {
    Tracer* self = this;
    current_.compare_exchange_strong(self, nullptr,
                                     std::memory_order_acq_rel);
  }

  /// Nanoseconds since a process-global steady-clock epoch. Cheap enough
  /// to double as the engine's step timer (core/adaptive.h feeds the
  /// same reading to both the trace and the controller's EWMA).
  static uint64_t NowNs();

  /// Records a completed duration [start_ns, end_ns).
  void EmitSpan(const char* name, const char* cat, uint64_t start_ns,
                uint64_t end_ns);

  /// Records one elimination step (named rule1_project / rule2_merge).
  void EmitStep(uint64_t start_ns, uint64_t end_ns,
                const TraceStepArgs& args);

  /// Records a point annotation, e.g. ("plan", "steps", 4).
  void EmitInstant(const char* name, const char* arg_name, double arg);

  /// All retained events, merged across threads and sorted by
  /// (ts ascending, duration descending) — i.e. parents before their
  /// children. Call only when emitters are quiesced.
  std::vector<TraceEvent> Snapshot() const;

  /// Events overwritten by ring wraparound, across all threads.
  uint64_t dropped() const;

  size_t capacity_per_thread() const { return capacity_; }

  /// Chrome trace-event JSON ({"traceEvents": [...]}) of Snapshot().
  /// `pid` labels every event's process track — cross-process stitching
  /// (client = 1, server = 2) renders as two process lanes in one
  /// timeline. A non-empty `trace_id` is stamped into the envelope as a
  /// top-level "trace_id" field, correlating the file with log lines.
  void WriteChromeTrace(std::ostream& out, int pid = 1,
                        const std::string& trace_id = "") const;

  /// WriteChromeTrace to `path`; false (with a note on stderr) on I/O
  /// failure.
  bool WriteChromeTraceFile(const std::string& path, int pid = 1,
                            const std::string& trace_id = "") const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  ///< Sized to capacity_ lazily.
    size_t next = 0;                 ///< Write cursor.
    uint64_t total = 0;              ///< Events ever pushed.
    uint32_t tid = 0;                ///< Registration order, 0-based.
  };

  /// This thread's ring, registering it on first use. The lookup is a
  /// thread_local cache keyed on the tracer's unique id, so steady-state
  /// emits never take the mutex.
  Ring* ThisThreadRing();

  void Push(const TraceEvent& event);

  static std::atomic<Tracer*> current_;

  const size_t capacity_;
  const uint64_t id_;  ///< Process-unique, keys the thread-local cache.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span guard: marks a region on the current tracer, compiling down
/// to one relaxed load when none is installed. The tracer sampled at
/// construction is the one written at destruction, so a span straddling
/// an install/uninstall stays consistent.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "hierarq")
      : tracer_(Tracer::Current()),
        name_(name),
        cat_(cat),
        start_ns_(tracer_ != nullptr ? Tracer::NowNs() : 0) {}

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->EmitSpan(name_, cat_, start_ns_, Tracer::NowNs());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* const tracer_;
  const char* const name_;
  const char* const cat_;
  const uint64_t start_ns_;
};

}  // namespace hierarq::obs

#endif  // HIERARQ_OBS_TRACE_H_
