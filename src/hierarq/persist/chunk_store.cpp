#include "hierarq/persist/chunk_store.h"

#include <utility>

#include "hierarq/persist/codec.h"

namespace hierarq::persist {

namespace {

// Four-byte magics, read/written as little-endian u32s.
constexpr uint32_t kManifestMagic = 0x464D5148;  // "HQMF"
constexpr uint32_t kChunkMagic = 0x4B435148;     // "HQCK"
constexpr uint32_t kDictMagic = 0x43445148;      // "HQDC"

/// Appends the CRC of everything accumulated so far — the last four
/// bytes of every persisted structure.
void SealWithCrc(std::string* out) {
  const uint32_t crc = Crc32(*out);
  PutU32(out, crc);
}

/// Splits off and verifies the trailing CRC; returns the body.
Result<std::string_view> CheckCrc(std::string_view bytes,
                                  const char* what) {
  if (bytes.size() < 4) {
    return Status::InvalidArgument(std::string(what) +
                                   ": too short to hold a CRC");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  ByteReader tail(bytes.substr(bytes.size() - 4));
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t stored, tail.U32());
  const uint32_t actual = Crc32(body);
  if (stored != actual) {
    return Status::InvalidArgument(std::string(what) + ": CRC mismatch");
  }
  return body;
}

}  // namespace

std::string EncodeManifest(const Manifest& manifest) {
  std::string out;
  PutU32(&out, kManifestMagic);
  PutU32(&out, manifest.version);
  PutU64(&out, manifest.generation);
  PutStr(&out, manifest.wal_file);
  PutStr(&out, manifest.dict_file);
  PutU64(&out, manifest.dict_bytes);
  PutU32(&out, manifest.dict_crc);
  PutU32(&out, static_cast<uint32_t>(manifest.chunks.size()));
  for (const ChunkInfo& chunk : manifest.chunks) {
    PutStr(&out, chunk.file);
    PutStr(&out, chunk.relation);
    PutU32(&out, chunk.arity);
    PutU64(&out, chunk.rows);
    PutU64(&out, chunk.bytes);
    PutU32(&out, chunk.crc);
  }
  SealWithCrc(&out);
  return out;
}

Result<Manifest> DecodeManifest(std::string_view bytes) {
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view body,
                           CheckCrc(bytes, "manifest"));
  ByteReader reader(body);
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kManifestMagic) {
    return Status::InvalidArgument("manifest: bad magic");
  }
  Manifest manifest;
  HIERARQ_ASSIGN_OR_RETURN(manifest.version, reader.U32());
  if (manifest.version != kFormatVersion) {
    return Status::InvalidArgument(
        "manifest: unsupported format version " +
        std::to_string(manifest.version) + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  HIERARQ_ASSIGN_OR_RETURN(manifest.generation, reader.U64());
  HIERARQ_ASSIGN_OR_RETURN(manifest.wal_file, reader.Str());
  HIERARQ_ASSIGN_OR_RETURN(manifest.dict_file, reader.Str());
  HIERARQ_ASSIGN_OR_RETURN(manifest.dict_bytes, reader.U64());
  HIERARQ_ASSIGN_OR_RETURN(manifest.dict_crc, reader.U32());
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t num_chunks, reader.U32());
  manifest.chunks.reserve(num_chunks);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    ChunkInfo chunk;
    HIERARQ_ASSIGN_OR_RETURN(chunk.file, reader.Str());
    HIERARQ_ASSIGN_OR_RETURN(chunk.relation, reader.Str());
    HIERARQ_ASSIGN_OR_RETURN(chunk.arity, reader.U32());
    HIERARQ_ASSIGN_OR_RETURN(chunk.rows, reader.U64());
    HIERARQ_ASSIGN_OR_RETURN(chunk.bytes, reader.U64());
    HIERARQ_ASSIGN_OR_RETURN(chunk.crc, reader.U32());
    manifest.chunks.push_back(std::move(chunk));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("manifest: trailing bytes");
  }
  return manifest;
}

std::string EncodeRelationChunk(const Relation& relation,
                                const VersionedDatabase& db) {
  const size_t arity = relation.arity();
  const auto& tuples = relation.tuples();
  std::string out;
  out.reserve(64 + tuples.size() * (arity + 1) * 8);
  PutU32(&out, kChunkMagic);
  PutU32(&out, kFormatVersion);
  PutStr(&out, relation.name());
  PutU32(&out, static_cast<uint32_t>(arity));
  PutU64(&out, tuples.size());
  // Column-major: one contiguous vector per column position, the
  // ColumnarStore layout — a future lazy loader can map single columns.
  for (size_t column = 0; column < arity; ++column) {
    for (const Tuple& tuple : tuples) {
      PutI64(&out, tuple[column]);
    }
  }
  // The annotation vector rides only when it carries information.
  bool weighted = false;
  for (const Tuple& tuple : tuples) {
    if (db.WeightOf(Fact{relation.name(), tuple}) != 1.0) {
      weighted = true;
      break;
    }
  }
  out.push_back(weighted ? 1 : 0);
  if (weighted) {
    for (const Tuple& tuple : tuples) {
      PutF64(&out, db.WeightOf(Fact{relation.name(), tuple}));
    }
  }
  SealWithCrc(&out);
  return out;
}

Status DecodeRelationChunk(
    std::string_view bytes, const ChunkInfo& expected,
    const std::vector<Value>& symbol_remap, Database* facts,
    std::unordered_map<Fact, double, FactHash>* weights) {
  if (bytes.size() != expected.bytes) {
    return Status::InvalidArgument(
        "chunk " + expected.file + ": size " +
        std::to_string(bytes.size()) + " != manifest's " +
        std::to_string(expected.bytes));
  }
  // Two guards on purpose: the manifest CRC covers the whole file (did
  // we read the file the manifest committed?), the trailing CRC covers
  // the body (is the file itself intact?).
  if (Crc32(bytes) != expected.crc) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": CRC mismatch with manifest");
  }
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view body,
                           CheckCrc(bytes, "chunk"));
  ByteReader reader(body);
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kChunkMagic) {
    return Status::InvalidArgument("chunk " + expected.file + ": bad magic");
  }
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": unsupported format version " +
                                   std::to_string(version));
  }
  HIERARQ_ASSIGN_OR_RETURN(const std::string relation, reader.Str());
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t arity, reader.U32());
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t rows, reader.U64());
  if (relation != expected.relation || arity != expected.arity ||
      rows != expected.rows) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": header disagrees with manifest");
  }
  // Columns are fixed-width, so the whole grid is bounds-checked up
  // front: a lying row count cannot walk the reader off the buffer.
  if (reader.remaining() < rows * arity * 8) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": truncated column data");
  }
  const auto remap = [&](Value value) -> Result<Value> {
    if (!Dictionary::IsSymbolic(value)) {
      return value;
    }
    const uint64_t index =
        static_cast<uint64_t>(value - kFirstSymbolicValue);
    if (index >= symbol_remap.size()) {
      return Status::InvalidArgument(
          "chunk " + expected.file + ": symbolic value " +
          std::to_string(value) + " has no dictionary entry");
    }
    return symbol_remap[static_cast<size_t>(index)];
  };
  std::vector<Tuple> tuples(rows);
  for (auto& tuple : tuples) {
    tuple.resize(arity);
  }
  for (uint32_t column = 0; column < arity; ++column) {
    for (uint64_t row = 0; row < rows; ++row) {
      HIERARQ_ASSIGN_OR_RETURN(const int64_t raw, reader.I64());
      HIERARQ_ASSIGN_OR_RETURN(tuples[row][column], remap(raw));
    }
  }
  HIERARQ_ASSIGN_OR_RETURN(const uint8_t weighted, reader.U8());
  if (weighted > 1) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": bad annotation flag");
  }
  std::vector<double> row_weights;
  if (weighted == 1) {
    row_weights.resize(static_cast<size_t>(rows), 1.0);
    for (uint64_t row = 0; row < rows; ++row) {
      HIERARQ_ASSIGN_OR_RETURN(row_weights[row], reader.F64());
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("chunk " + expected.file +
                                   ": trailing bytes");
  }
  // All validation passed — only now touch the output database, so a
  // corrupt chunk never leaves a half-loaded relation behind.
  for (uint64_t row = 0; row < rows; ++row) {
    HIERARQ_ASSIGN_OR_RETURN(const bool fresh,
                             facts->AddFact(relation, tuples[row]));
    if (!fresh) {
      return Status::InvalidArgument("chunk " + expected.file +
                                     ": duplicate tuple at row " +
                                     std::to_string(row));
    }
    if (weighted == 1 && row_weights[row] != 1.0) {
      weights->emplace(Fact{relation, tuples[row]}, row_weights[row]);
    }
  }
  return Status::OK();
}

std::string EncodeDictionaryChunk(const Dictionary& dict) {
  std::string out;
  PutU32(&out, kDictMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    PutStr(&out, dict.Render(kFirstSymbolicValue + static_cast<Value>(i)));
  }
  SealWithCrc(&out);
  return out;
}

Result<std::vector<Value>> DecodeDictionaryChunk(std::string_view bytes,
                                                 Dictionary* dict) {
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view body,
                           CheckCrc(bytes, "dictionary chunk"));
  ByteReader reader(body);
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t magic, reader.U32());
  if (magic != kDictMagic) {
    return Status::InvalidArgument("dictionary chunk: bad magic");
  }
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t version, reader.U32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "dictionary chunk: unsupported format version " +
        std::to_string(version));
  }
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t symbols, reader.U64());
  // Each entry needs >= 4 bytes (its length prefix), so this rejects a
  // hostile count before any allocation sized by it.
  if (symbols > reader.remaining() / 4) {
    return Status::InvalidArgument("dictionary chunk: symbol count " +
                                   std::to_string(symbols) +
                                   " exceeds the buffer");
  }
  std::vector<Value> remap;
  remap.reserve(static_cast<size_t>(symbols));
  for (uint64_t i = 0; i < symbols; ++i) {
    HIERARQ_ASSIGN_OR_RETURN(const std::string symbol, reader.Str());
    remap.push_back(dict->Intern(symbol));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("dictionary chunk: trailing bytes");
  }
  return remap;
}

}  // namespace hierarq::persist
