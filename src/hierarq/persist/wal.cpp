#include "hierarq/persist/wal.h"

#include <utility>

#include "hierarq/persist/codec.h"

namespace hierarq::persist {

namespace {

/// Guards the payload-length prefix before any allocation: a WAL line
/// is one delta batch, far below this; anything larger is garbage bytes
/// being misread as a length.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

}  // namespace

std::string EncodeWalRecord(uint64_t generation, std::string_view line) {
  std::string body;
  PutU64(&body, generation);
  body.append(line);
  std::string record;
  record.reserve(body.size() + 8);
  PutU32(&record, static_cast<uint32_t>(line.size()));
  PutU32(&record, Crc32(body));
  record.append(body);
  return record;
}

Result<WalWriter> WalWriter::Open(FileIo* io, std::string path) {
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t file,
                           io->OpenForWrite(path, /*truncate=*/false));
  WalWriter writer(io, std::move(path), file);
  writer.open_ = true;
  return writer;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (open_) {
      (void)io_->Close(file_);
    }
    io_ = other.io_;
    path_ = std::move(other.path_);
    file_ = other.file_;
    open_ = other.open_;
    appended_ = other.appended_;
    other.open_ = false;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (open_) {
    (void)io_->Close(file_);
    open_ = false;
  }
}

Status WalWriter::Append(uint64_t generation, std::string_view line) {
  if (!open_) {
    return Status::Internal("WAL writer is closed");
  }
  // One Write call per record: the kernel appends atomically enough for
  // a single writer, and the CRC framing catches whatever a crash tears.
  HIERARQ_RETURN_NOT_OK(io_->Write(file_, EncodeWalRecord(generation, line)));
  // The durability point — only after this fsync may the caller apply
  // and ack the batch.
  HIERARQ_RETURN_NOT_OK(io_->Sync(file_));
  ++appended_;
  return Status::OK();
}

Status WalWriter::Close() {
  if (!open_) {
    return Status::OK();
  }
  open_ = false;
  return io_->Close(file_);
}

Result<std::vector<WalRecord>> ReadWal(FileIo& io, const std::string& path,
                                       WalReadStats* stats) {
  WalReadStats local;
  WalReadStats* out = stats != nullptr ? stats : &local;
  *out = WalReadStats{};
  std::vector<WalRecord> records;
  Result<std::string> bytes = io.ReadFile(path);
  if (!bytes.ok()) {
    if (bytes.status().Is(StatusCode::kNotFound)) {
      return records;  // No appends since the snapshot.
    }
    return bytes.status();
  }
  ByteReader reader(*bytes);
  while (!reader.AtEnd()) {
    const size_t record_start = reader.position();
    const auto truncate_here = [&]() {
      out->torn_tail = true;
      out->truncated_bytes = bytes->size() - record_start;
      return records;
    };
    // Any decode failure from here on is a torn or corrupt tail — stop
    // at the last good record instead of erroring.
    Result<uint32_t> payload_len = reader.U32();
    Result<uint32_t> crc =
        payload_len.ok() ? reader.U32() : payload_len.status();
    if (!crc.ok() || *payload_len > kMaxRecordBytes ||
        reader.remaining() < 8 + *payload_len) {
      return truncate_here();
    }
    const std::string_view body =
        std::string_view(*bytes).substr(reader.position(), 8 + *payload_len);
    if (Crc32(body) != *crc) {
      return truncate_here();
    }
    ByteReader body_reader(body);
    WalRecord record;
    HIERARQ_ASSIGN_OR_RETURN(record.generation, body_reader.U64());
    record.line = std::string(body.substr(8));
    reader.Skip(body.size());
    records.push_back(std::move(record));
    ++out->records;
  }
  return records;
}

}  // namespace hierarq::persist
