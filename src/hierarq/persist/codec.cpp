#include "hierarq/persist/codec.h"

#include <bit>
#include <cstring>

namespace hierarq::persist {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  static const CrcTable table;
  uint32_t crc = ~seed;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ table.entries[(crc ^ static_cast<uint8_t>(c)) & 0xFF];
  }
  return ~crc;
}

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, int64_t value) {
  PutU64(out, static_cast<uint64_t>(value));
}

void PutF64(std::string* out, double value) {
  PutU64(out, std::bit_cast<uint64_t>(value));
}

void PutStr(std::string* out, std::string_view value) {
  PutU32(out, static_cast<uint32_t>(value.size()));
  out->append(value);
}

Result<std::string_view> ByteReader::Take(size_t n) {
  if (remaining() < n) {
    return Status::InvalidArgument(
        "truncated buffer: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(position_) + ", have " + std::to_string(remaining()));
  }
  const std::string_view piece = bytes_.substr(position_, n);
  position_ += n;
  return piece;
}

Result<uint8_t> ByteReader::U8() {
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view piece, Take(1));
  return static_cast<uint8_t>(piece[0]);
}

Result<uint32_t> ByteReader::U32() {
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view piece, Take(4));
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(piece[i]);
  }
  return value;
}

Result<uint64_t> ByteReader::U64() {
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view piece, Take(8));
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>(piece[i]);
  }
  return value;
}

Result<int64_t> ByteReader::I64() {
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t value, U64());
  return static_cast<int64_t>(value);
}

Result<double> ByteReader::F64() {
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t value, U64());
  return std::bit_cast<double>(value);
}

Result<std::string> ByteReader::Str() {
  HIERARQ_ASSIGN_OR_RETURN(const uint32_t length, U32());
  HIERARQ_ASSIGN_OR_RETURN(const std::string_view piece, Take(length));
  return std::string(piece);
}

}  // namespace hierarq::persist
