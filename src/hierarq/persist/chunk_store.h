#ifndef HIERARQ_PERSIST_CHUNK_STORE_H_
#define HIERARQ_PERSIST_CHUNK_STORE_H_

/// \file chunk_store.h
/// \brief CRC32-guarded chunk encoding for snapshots: per-relation
/// column vectors + annotation vectors, a dictionary chunk, and the
/// versioned manifest that binds them to one generation.
///
/// A snapshot is a set of files in the data directory, every one
/// published via `AtomicWriteFile` (write-temp + fsync + rename):
///
///     chunk-<G>-<k>.hq   relation k's tuples, column-major (the
///                        ColumnarStore layout: one contiguous i64
///                        vector per column position), plus the per-row
///                        annotation (weight) vector when any weight
///                        differs from the default 1.0
///     dict-<G>.hq        the string dictionary, symbols in id order
///     wal-<G>.log        the delta log for generations > G (see wal.h)
///     MANIFEST           the commit record: generation, file list with
///                        per-file byte counts and CRCs
///     MANIFEST.1         the previous snapshot's manifest, kept so
///                        recovery can fall back if the newest snapshot
///                        is damaged ("newest *valid* snapshot")
///
/// Every chunk and the manifest carry a trailing CRC32 over their whole
/// body, so a reader rejects bit-flips and truncation before parsing a
/// single field. File names embed the generation, so a crashed snapshot
/// can never alias files into a different snapshot's namespace.
///
/// Symbolic values are stored as raw interned ids PLUS the dictionary
/// chunk; decoding re-interns each symbol into the live dictionary and
/// remaps ids through the returned table, so recovery composes with a
/// dictionary that already holds other symbols (e.g. an --endo load).

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/relation.h"
#include "hierarq/data/value.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/util/result.h"

namespace hierarq::persist {

/// Bumped when the on-disk layout changes; decoders reject other
/// versions with a clean error instead of misparsing.
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr char kManifestName[] = "MANIFEST";
inline constexpr char kPreviousManifestName[] = "MANIFEST.1";

/// One chunk file as the manifest records it.
struct ChunkInfo {
  std::string file;      ///< Name within the data dir, e.g. "chunk-3-0.hq".
  std::string relation;  ///< Relation the chunk holds.
  uint32_t arity = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;  ///< Exact file size — a mismatch is corruption.
  uint32_t crc = 0;    ///< CRC32 of the whole file.
};

struct Manifest {
  uint32_t version = kFormatVersion;
  uint64_t generation = 0;
  std::string wal_file;   ///< Log of batches past `generation`.
  std::string dict_file;  ///< Dictionary chunk ("" = no symbols).
  uint64_t dict_bytes = 0;
  uint32_t dict_crc = 0;
  std::vector<ChunkInfo> chunks;
};

std::string EncodeManifest(const Manifest& manifest);
/// Rejects truncation, CRC mismatch, bad magic, and unknown versions.
Result<Manifest> DecodeManifest(std::string_view bytes);

/// Serializes `relation`'s tuples column-major with weights from `db`.
std::string EncodeRelationChunk(const Relation& relation,
                                const VersionedDatabase& db);

/// Validates `bytes` (CRC first, then structure), checks the relation
/// name against `expected`, remaps symbolic values through
/// `symbol_remap`, and inserts facts/weights. Order-preserving: tuples
/// land in `facts` in chunk order, which is the writer's tuples() order
/// — what makes recovery bit-identical to the never-crashed state.
Status DecodeRelationChunk(std::string_view bytes,
                           const ChunkInfo& expected,
                           const std::vector<Value>& symbol_remap,
                           Database* facts,
                           std::unordered_map<Fact, double, FactHash>* weights);

std::string EncodeDictionaryChunk(const Dictionary& dict);

/// Re-interns each stored symbol into `dict`; entry i of the returned
/// table is the live id of stored id `kFirstSymbolicValue + i`.
Result<std::vector<Value>> DecodeDictionaryChunk(std::string_view bytes,
                                                 Dictionary* dict);

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_CHUNK_STORE_H_
