#ifndef HIERARQ_PERSIST_CODEC_H_
#define HIERARQ_PERSIST_CODEC_H_

/// \file codec.h
/// \brief Byte-level encoding for the persistence layer: little-endian
/// primitives, length-prefixed strings, and CRC32.
///
/// Every on-disk structure (chunks, manifest, WAL records) is built from
/// these four primitives and guarded by `Crc32` so that a torn tail, a
/// stale sector, or a flipped bit is *detected* — the recovery layer's
/// contract is "reject, then fall back", never "trust and crash".
///
/// The reader is bounds-checked: over-reads return a Status instead of
/// touching out-of-range memory, which is what keeps corrupt-input
/// handling UB-free under ASan/UBSan.

#include <cstdint>
#include <string>
#include <string_view>

#include "hierarq/util/result.h"

namespace hierarq::persist {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `bytes`,
/// continuing from `seed` (pass a previous result to chain buffers).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

void PutU32(std::string* out, uint32_t value);
void PutU64(std::string* out, uint64_t value);
void PutI64(std::string* out, int64_t value);
void PutF64(std::string* out, double value);
/// u32 length + raw bytes.
void PutStr(std::string* out, std::string_view value);

/// A bounds-checked forward cursor over an immutable byte buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();

  /// Advances past `n` bytes (clamped to the end).
  void Skip(size_t n) {
    position_ = n < remaining() ? position_ + n : bytes_.size();
  }

  size_t position() const { return position_; }
  size_t remaining() const { return bytes_.size() - position_; }
  bool AtEnd() const { return position_ == bytes_.size(); }

 private:
  Result<std::string_view> Take(size_t n);

  std::string_view bytes_;
  size_t position_ = 0;
};

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_CODEC_H_
