#ifndef HIERARQ_PERSIST_WAL_H_
#define HIERARQ_PERSIST_WAL_H_

/// \file wal.h
/// \brief The write-ahead delta log: append-only, per-record CRC
/// framing, torn-tail truncation on read.
///
/// Each record carries one `DeltaBatch` in the textual grammar of
/// incremental/delta_text.h — the same encoding `hierarq_cli update`
/// reads from stdin and `kDeltaBatch` wire frames carry — stamped with
/// the generation the batch moves the database TO:
///
///     ┌────────────────┬─────────┬────────────────┬───────────────┐
///     │ u32 payload len│ u32 crc │ u64 generation │ payload bytes │
///     └────────────────┴─────────┴────────────────┴───────────────┘
///       crc = CRC32(generation_le || payload), little-endian
///
/// The writer appends one record and fsyncs before the caller applies
/// (and acks) the batch — ack implies durable. The reader walks records
/// until the first torn or corrupt one and STOPS there: a crash mid-
/// append leaves a partial tail record, which is by construction an
/// unacked batch, so dropping it recovers exactly the acked state.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hierarq/persist/fault_io.h"
#include "hierarq/util/result.h"

namespace hierarq::persist {

/// One decoded log record.
struct WalRecord {
  uint64_t generation = 0;  ///< Generation the batch moves the db TO.
  std::string line;         ///< The delta-text payload.
};

/// Encodes one record (framing above) — shared by writer, tests, bench.
std::string EncodeWalRecord(uint64_t generation, std::string_view line);

class WalWriter {
 public:
  /// Opens `path` for appending (creating it if missing).
  static Result<WalWriter> Open(FileIo* io, std::string path);

  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record and fsyncs. After OK, the record survives any
  /// crash; after an error the tail may be torn — the caller must NOT
  /// ack (recovery truncates the tear).
  Status Append(uint64_t generation, std::string_view line);

  uint64_t appended() const { return appended_; }
  const std::string& path() const { return path_; }

  Status Close();

 private:
  WalWriter(FileIo* io, std::string path, uint64_t file)
      : io_(io), path_(std::move(path)), file_(file) {}

  FileIo* io_ = nullptr;
  std::string path_;
  uint64_t file_ = 0;
  bool open_ = false;
  uint64_t appended_ = 0;
};

struct WalReadStats {
  size_t records = 0;          ///< Valid records decoded.
  size_t truncated_bytes = 0;  ///< Bytes dropped at the first bad record.
  bool torn_tail = false;      ///< Whether truncation happened.
};

/// Reads every valid record of `path`, truncating at the first torn or
/// CRC-corrupt one (never an error — that is the crash-recovery
/// contract). A missing file reads as empty.
Result<std::vector<WalRecord>> ReadWal(FileIo& io, const std::string& path,
                                       WalReadStats* stats);

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_WAL_H_
