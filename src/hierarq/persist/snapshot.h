#ifndef HIERARQ_PERSIST_SNAPSHOT_H_
#define HIERARQ_PERSIST_SNAPSHOT_H_

/// \file snapshot.h
/// \brief Snapshot + log-replay durability for `VersionedDatabase`.
///
/// `WriteSnapshot` captures the database at its current generation G as
/// CRC-guarded chunks plus a manifest (chunk_store.h), and rotates the
/// WAL: records for generations > G accumulate in `wal-<G>.log`
/// (wal.h). Every file is published atomically, the manifest last — the
/// manifest rename IS the snapshot's commit point, and the previous
/// manifest is retained as `MANIFEST.1` so one damaged snapshot never
/// loses the directory.
///
/// `Recover` inverts it: load the newest *valid* snapshot (MANIFEST,
/// falling back to MANIFEST.1), then replay the WAL chain — the
/// snapshot's own log, then any later `wal-<G'>.log` a newer (possibly
/// corrupt) snapshot had rotated to — truncating at the first torn or
/// corrupt record. The result is the database at the last durable
/// generation: every batch whose WAL append was fsynced (i.e. every
/// ACKED batch) survives; a torn tail record is by construction an
/// unacked batch and is dropped.
///
/// `Recover` returns the database AT the snapshot generation plus the
/// replayed tail as parsed batches, so callers can attach incremental
/// views against the snapshot state and stream the tail through them —
/// view recovery without re-deriving anything (the PR 4 detached-reader
/// catch-up, end to end). `RecoverDatabase` is the convenience that
/// just wants the final state.

#include <cstdint>
#include <string>
#include <vector>

#include "hierarq/data/value.h"
#include "hierarq/incremental/delta.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/util/result.h"

namespace hierarq::persist {

/// File-name helpers — the data directory's naming scheme. Generations
/// are embedded so a crashed snapshot can never alias another's files.
std::string ChunkFileName(uint64_t generation, size_t index);
std::string DictFileName(uint64_t generation);
std::string WalFileName(uint64_t generation);

struct SnapshotStats {
  uint64_t generation = 0;
  size_t relations = 0;
  size_t facts = 0;
  uint64_t bytes = 0;  ///< Total bytes written (chunks + dict + manifest).
};

/// Writes a full snapshot of `db` into `dir` (created if missing) and
/// rotates the WAL. On success the snapshot is durably committed; on
/// failure the previous snapshot is untouched (stray temp/partial files
/// are swept by the next successful snapshot).
Result<SnapshotStats> WriteSnapshot(FileIo& io, const std::string& dir,
                                    const VersionedDatabase& db,
                                    const Dictionary& dict);

struct RecoverResult {
  /// The database AT `snapshot_generation` — the tail is NOT applied.
  VersionedDatabase db;
  /// Parsed WAL batches past the snapshot, in order; applying tail[i]
  /// moves the db to generation snapshot_generation + i + 1.
  std::vector<DeltaBatch> tail;
  uint64_t snapshot_generation = 0;
  /// snapshot_generation + tail.size() — the last durable generation.
  uint64_t recovered_generation = 0;
  size_t wal_records = 0;          ///< Valid records replayed.
  size_t wal_truncated_bytes = 0;  ///< Torn/corrupt tail bytes dropped.
  bool used_fallback_manifest = false;  ///< MANIFEST was invalid; MANIFEST.1 won.
};

/// Loads the newest valid snapshot of `dir` and replays its WAL chain.
/// New symbols intern into `dict` (ids are remapped, so a pre-populated
/// dictionary is fine). kNotFound when the directory holds no manifest
/// at all; kInvalidArgument when manifests exist but none is loadable.
Result<RecoverResult> Recover(FileIo& io, const std::string& dir,
                              Dictionary* dict);

/// Recover + apply the tail: the database at the last durable
/// generation. `detail`, when non-null, receives the full RecoverResult
/// (with `db` moved out of).
Result<VersionedDatabase> RecoverDatabase(FileIo& io, const std::string& dir,
                                          Dictionary* dict,
                                          RecoverResult* detail = nullptr);

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_SNAPSHOT_H_
