#ifndef HIERARQ_PERSIST_FAULT_IO_H_
#define HIERARQ_PERSIST_FAULT_IO_H_

/// \file fault_io.h
/// \brief The file-I/O seam of the persistence layer, and its
/// deterministic fault-injecting implementation.
///
/// Everything the chunk store and the WAL do to the filesystem goes
/// through a `FileIo`, so tests can interpose `FaultInjectingIo` and die
/// at any chosen operation — a short write mid-chunk, a failed fsync, a
/// crash between temp-write and rename, a silent bit-flip — and then
/// prove that `Recover` (run through a fresh `RealFileIo`, like a
/// restarted process) still reaches the last durable generation.
///
/// The contract `AtomicWriteFile` builds on these primitives is the
/// entwine chunk-storage idiom: write `<path>.tmp`, fsync it, rename it
/// over `path`, fsync the parent directory. A reader therefore either
/// sees the old complete file or the new complete file, never a torn
/// one; torn *temp* files are invisible garbage that the next snapshot
/// sweep removes.
///
/// Write handles are opaque `uint64_t` tokens (valid until `Close`) so a
/// `FaultInjectingIo` can wrap a delegate without owning descriptors.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hierarq/util/random.h"
#include "hierarq/util/result.h"
#include "hierarq/util/status.h"

namespace hierarq::persist {

class FileIo {
 public:
  virtual ~FileIo() = default;

  /// Creates one directory level; succeeding on an already-existing
  /// directory (callers create parents outermost-first).
  virtual Status MakeDir(const std::string& path) = 0;

  /// Entry names (no paths) in `path`, sorted; "." and ".." excluded.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  /// Removes a file (not a directory). Missing files are OK — removal
  /// is cleanup, and cleanup must be idempotent across crashes.
  virtual Status Remove(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Durably persists a previous Rename in `path` (fsync of the
  /// directory itself — without it the rename may not survive a crash).
  virtual Status SyncDir(const std::string& path) = 0;

  /// The whole file, or kNotFound when it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Opens `path` for writing: truncate-or-create when `truncate`,
  /// append-or-create otherwise (the WAL). Returns an opaque handle.
  virtual Result<uint64_t> OpenForWrite(const std::string& path,
                                        bool truncate) = 0;
  /// Writes all of `bytes` (loops over partial writes).
  virtual Status Write(uint64_t file, std::string_view bytes) = 0;
  /// fsync(2) — the durability point of every write path.
  virtual Status Sync(uint64_t file) = 0;
  virtual Status Close(uint64_t file) = 0;
};

/// The production implementation: thin POSIX wrappers, handles are fds.
class RealFileIo : public FileIo {
 public:
  Status MakeDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> OpenForWrite(const std::string& path,
                                bool truncate) override;
  Status Write(uint64_t file, std::string_view bytes) override;
  Status Sync(uint64_t file) override;
  Status Close(uint64_t file) override;
};

/// Wraps a delegate and injects faults at chosen points of the
/// *mutating* operation sequence (Write, Sync, Rename, Remove — the ops
/// whose loss or corruption a crash can cause). Operations are numbered
/// from 1 in call order, so a schedule is just "which op dies": run a
/// workload once fault-free, read `mutating_ops()`, then replay it with
/// `crash_at_op` drawn from [1, mutating_ops()].
///
/// Fault semantics:
///   - `crash_at_op`: the op does NOT complete — a crashing Write first
///     writes a seeded prefix of its buffer (a short write: exactly what
///     a dying process leaves behind), a crashing Sync/Rename/Remove
///     does nothing — and every subsequent operation fails too (the
///     process is dead). Recovery then runs through a fresh RealFileIo.
///   - `fail_sync_at_op`: that op, if a Sync, reports failure once
///     without crashing (a transient EIO the caller must surface).
///   - `flip_bit_at_op`: that op, if a Write, flips one seeded bit of
///     its buffer and then succeeds — silent corruption the CRC layer
///     must catch at read time.
class FaultInjectingIo : public FileIo {
 public:
  struct Options {
    uint64_t seed = 1;          ///< Drives short-write lengths, bit picks.
    uint64_t crash_at_op = 0;   ///< 1-based mutating-op index; 0 = never.
    uint64_t fail_sync_at_op = 0;
    uint64_t flip_bit_at_op = 0;
  };

  FaultInjectingIo(FileIo* delegate, Options options)
      : delegate_(delegate), options_(options), rng_(options.seed) {}

  /// Mutating operations observed so far (fault-free runs size the
  /// crash-schedule space).
  uint64_t mutating_ops() const { return ops_; }
  bool crashed() const { return crashed_; }

  Status MakeDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<uint64_t> OpenForWrite(const std::string& path,
                                bool truncate) override;
  Status Write(uint64_t file, std::string_view bytes) override;
  Status Sync(uint64_t file) override;
  Status Close(uint64_t file) override;

 private:
  /// Advances the op counter; returns the fault to apply to THIS op.
  enum class Fault { kNone, kCrash, kFailSync, kFlipBit };
  Fault NextOp();
  Status Crashed() const {
    return Status::Internal("injected crash: process is dead");
  }

  FileIo* delegate_;
  Options options_;
  Rng rng_;
  uint64_t ops_ = 0;
  bool crashed_ = false;
};

/// Durably publishes `bytes` as `path` via write-temp + fsync + rename +
/// directory fsync. On any failure the destination is untouched (the
/// temp file may remain; snapshot sweeps remove strays).
Status AtomicWriteFile(FileIo& io, const std::string& path,
                       std::string_view bytes);

/// The directory part of `path` ("." when there is none).
std::string DirName(const std::string& path);

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_FAULT_IO_H_
