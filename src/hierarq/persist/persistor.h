#ifndef HIERARQ_PERSIST_PERSISTOR_H_
#define HIERARQ_PERSIST_PERSISTOR_H_

/// \file persistor.h
/// \brief `Persistor` — the server-facing durability lifecycle over one
/// data directory.
///
/// The lower layers are policy-free mechanisms (chunk_store.h writes
/// snapshots, wal.h appends records, snapshot.h recovers); `Persistor`
/// is the policy: boot by recovering (or seeding from an initial
/// database), append every delta line BEFORE it is applied and acked,
/// auto-snapshot every `snapshot_every` appends, and account everything
/// through `persist.*` metrics and structured log events.
///
/// The durability contract it gives the server (net/server.cpp):
///
///     Append(G, line) returned OK  =>  a crash at ANY later point
///     recovers the database at generation >= G.
///
/// because Append fsyncs the WAL record before returning, and the
/// server only Applies + acks after Append succeeds. The converse
/// direction is free: a batch whose Append failed (or tore in a crash)
/// was never acked, so dropping it at recovery is correct.
///
/// Boot always ends by writing a fresh snapshot at the recovered
/// generation. That "healing snapshot" keeps the append path trivial
/// (the WAL to continue is always the one Boot just rotated), folds the
/// replayed tail back into chunks, and replaces any damaged manifest or
/// torn WAL tail with clean files — recovery work is done once at boot,
/// not re-done on every subsequent boot.
///
/// Thread model: `Append`/`WriteSnapshot`/`ShouldSnapshot` are called
/// under the same exclusive lock that guards `VersionedDatabase::Apply`
/// (the server's db mutex) — the WAL append and the Apply must be atomic
/// together or the log could disagree with the state it claims to
/// describe. `Boot` is startup-time, single-threaded.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "hierarq/data/value.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/obs/log.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/persist/snapshot.h"
#include "hierarq/persist/wal.h"
#include "hierarq/util/result.h"

namespace hierarq::persist {

class Persistor {
 public:
  struct Options {
    /// The I/O seam. nullptr = an owned `RealFileIo` (production); tests
    /// pass a `FaultInjectingIo`.
    FileIo* io = nullptr;
    /// Write a snapshot after this many WAL appends (0 = only at boot
    /// and on explicit request). Snapshots bound replay time and let
    /// the WAL be truncated.
    uint64_t snapshot_every = 0;
    /// Structured event sink. nullptr = obs::Logger::Global().
    obs::Logger* logger = nullptr;
  };

  /// Binds a persistor to `dir` (created if missing). No I/O beyond the
  /// directory probe happens until `Boot`.
  static Result<std::unique_ptr<Persistor>> Open(std::string dir,
                                                 Options options);

  ~Persistor();
  Persistor(const Persistor&) = delete;
  Persistor& operator=(const Persistor&) = delete;

  /// Brings the directory and a database into sync, exactly one of:
  ///   - dir holds a snapshot: recover it (replaying the WAL tail) and
  ///     return the recovered database — `initial` is IGNORED (the
  ///     directory is the source of truth once it exists);
  ///   - dir is empty: snapshot `initial` as generation 0 seed.
  /// Either way a fresh snapshot is committed and the WAL writer is
  /// open before returning, so `Append` is ready. `recovery()` tells a
  /// caller which path ran.
  Result<VersionedDatabase> Boot(VersionedDatabase initial, Dictionary* dict);

  /// Durably logs the delta `line` that will move the database to
  /// `generation` (i.e. db.generation() + 1 at call time). Returns only
  /// after the record is fsynced — the caller may then Apply and ack.
  Status Append(uint64_t generation, std::string_view line);

  /// True when `snapshot_every` appends have accumulated since the last
  /// snapshot — the caller (holding its db lock) should `WriteSnapshot`.
  bool ShouldSnapshot() const;

  /// Commits a full snapshot of `db` and rotates the WAL. After it
  /// returns the caller may `db.TruncateLog(db.generation())` — replay
  /// never needs the in-memory log, and the on-disk one restarts empty.
  Status WriteSnapshot(const VersionedDatabase& db, const Dictionary& dict);

  const std::string& dir() const { return dir_; }
  /// Detail of the Boot-time recovery; nullopt when Boot seeded from
  /// `initial` (no snapshot existed) or has not run.
  const std::optional<RecoverResult>& recovery() const { return recovery_; }
  uint64_t appends_since_snapshot() const { return appends_since_snapshot_; }

 private:
  Persistor(std::string dir, Options options, std::unique_ptr<FileIo> owned);

  FileIo& io() { return *io_; }
  obs::Logger& logger();

  std::string dir_;
  Options options_;
  std::unique_ptr<FileIo> owned_io_;
  FileIo* io_ = nullptr;
  std::optional<WalWriter> wal_;
  std::optional<RecoverResult> recovery_;
  uint64_t appends_since_snapshot_ = 0;
};

}  // namespace hierarq::persist

#endif  // HIERARQ_PERSIST_PERSISTOR_H_
