#include "hierarq/persist/persistor.h"

#include <utility>

#include "hierarq/obs/metrics.h"
#include "hierarq/persist/chunk_store.h"
#include "hierarq/util/timer.h"

namespace hierarq::persist {

namespace {

/// persist.* instruments, resolved once (handles are stable).
struct PersistMetrics {
  obs::Counter* wal_appends;
  obs::Counter* wal_append_bytes;
  obs::Histogram* wal_append_ns;
  obs::Counter* snapshots;
  obs::Counter* snapshot_bytes;
  obs::Histogram* snapshot_ns;
  obs::Counter* recoveries;
  obs::Gauge* recovered_generation;
  obs::Counter* wal_replayed_records;
  obs::Counter* wal_truncated_bytes;

  static PersistMetrics& Get() {
    static PersistMetrics* const metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      auto* m = new PersistMetrics;
      m->wal_appends = registry.GetCounter("persist.wal_appends");
      m->wal_append_bytes = registry.GetCounter("persist.wal_append_bytes");
      m->wal_append_ns = registry.GetHistogram("persist.wal_append_ns");
      m->snapshots = registry.GetCounter("persist.snapshots");
      m->snapshot_bytes = registry.GetCounter("persist.snapshot_bytes");
      m->snapshot_ns = registry.GetHistogram("persist.snapshot_ns");
      m->recoveries = registry.GetCounter("persist.recoveries");
      m->recovered_generation =
          registry.GetGauge("persist.recovered_generation");
      m->wal_replayed_records =
          registry.GetCounter("persist.wal_replayed_records");
      m->wal_truncated_bytes =
          registry.GetCounter("persist.wal_truncated_bytes");
      return m;
    }();
    return *metrics;
  }
};

uint64_t Nanos(const WallTimer& timer) {
  return static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
}

}  // namespace

Persistor::Persistor(std::string dir, Options options,
                     std::unique_ptr<FileIo> owned)
    : dir_(std::move(dir)),
      options_(options),
      owned_io_(std::move(owned)),
      io_(options.io != nullptr ? options.io : owned_io_.get()) {}

Persistor::~Persistor() = default;

obs::Logger& Persistor::logger() {
  return options_.logger != nullptr ? *options_.logger
                                    : obs::Logger::Global();
}

Result<std::unique_ptr<Persistor>> Persistor::Open(std::string dir,
                                                   Options options) {
  std::unique_ptr<FileIo> owned;
  if (options.io == nullptr) {
    owned = std::make_unique<RealFileIo>();
  }
  std::unique_ptr<Persistor> persistor(
      new Persistor(std::move(dir), options, std::move(owned)));
  HIERARQ_RETURN_NOT_OK(persistor->io().MakeDir(persistor->dir_));
  return persistor;
}

Result<VersionedDatabase> Persistor::Boot(VersionedDatabase initial,
                                          Dictionary* dict) {
  auto& metrics = PersistMetrics::Get();
  VersionedDatabase db = std::move(initial);
  const bool have_snapshot = io().Exists(dir_ + "/" + kManifestName) ||
                             io().Exists(dir_ + "/" + kPreviousManifestName);
  if (have_snapshot) {
    WallTimer timer;
    RecoverResult detail;
    HIERARQ_ASSIGN_OR_RETURN(db, RecoverDatabase(io(), dir_, dict, &detail));
    metrics.recoveries->Add();
    metrics.recovered_generation->Set(
        static_cast<int64_t>(detail.recovered_generation));
    metrics.wal_replayed_records->Add(detail.wal_records);
    metrics.wal_truncated_bytes->Add(detail.wal_truncated_bytes);
    logger().Info(
        "persist.recovered",
        {{"dir", dir_},
         {"snapshot_generation", std::to_string(detail.snapshot_generation)},
         {"recovered_generation", std::to_string(detail.recovered_generation)},
         {"wal_records", std::to_string(detail.wal_records)},
         {"wal_truncated_bytes", std::to_string(detail.wal_truncated_bytes)},
         {"used_fallback_manifest",
          detail.used_fallback_manifest ? "true" : "false"},
         {"elapsed_ms", std::to_string(timer.ElapsedMillis())}});
    recovery_ = std::move(detail);
  } else {
    logger().Info("persist.boot_seed",
                  {{"dir", dir_},
                   {"generation", std::to_string(db.generation())},
                   {"facts", std::to_string(db.NumFacts())}});
  }
  // The healing snapshot (see the class comment): fold the replayed tail
  // into chunks, rotate to a fresh WAL, replace anything damaged. After
  // it commits, the directory is exactly "snapshot at db.generation(),
  // empty log" — the one state Append needs.
  const Dictionary empty;
  HIERARQ_RETURN_NOT_OK(WriteSnapshot(db, dict != nullptr ? *dict : empty));
  return db;
}

Status Persistor::Append(uint64_t generation, std::string_view line) {
  if (!wal_.has_value()) {
    return Status::Internal(
        "Persistor::Append before Boot/WriteSnapshot opened a WAL");
  }
  auto& metrics = PersistMetrics::Get();
  WallTimer timer;
  HIERARQ_RETURN_NOT_OK(wal_->Append(generation, line));
  metrics.wal_appends->Add();
  metrics.wal_append_bytes->Add(line.size());
  metrics.wal_append_ns->Observe(Nanos(timer));
  ++appends_since_snapshot_;
  return Status::OK();
}

bool Persistor::ShouldSnapshot() const {
  return options_.snapshot_every > 0 &&
         appends_since_snapshot_ >= options_.snapshot_every;
}

Status Persistor::WriteSnapshot(const VersionedDatabase& db,
                                const Dictionary& dict) {
  auto& metrics = PersistMetrics::Get();
  WallTimer timer;
  // Snapshot FIRST: if it fails, the old manifest still governs and the
  // still-open WAL handle keeps appending to the file it names — the
  // durable path survives a failed snapshot untouched. (The rotation
  // rename may replace an identically-named wal file only in the
  // zero-append re-snapshot case, where nothing can be appended between
  // the rename and the handle swap below: callers hold the db lock.)
  HIERARQ_ASSIGN_OR_RETURN(const SnapshotStats stats,
                           persist::WriteSnapshot(io(), dir_, db, dict));
  if (wal_.has_value()) {
    const Status closed = wal_->Close();
    wal_.reset();
    HIERARQ_RETURN_NOT_OK(closed);
  }
  HIERARQ_ASSIGN_OR_RETURN(
      WalWriter wal,
      WalWriter::Open(io_, dir_ + "/" + WalFileName(db.generation())));
  wal_ = std::move(wal);
  appends_since_snapshot_ = 0;
  metrics.snapshots->Add();
  metrics.snapshot_bytes->Add(stats.bytes);
  metrics.snapshot_ns->Observe(Nanos(timer));
  logger().Info("persist.snapshot",
                {{"dir", dir_},
                 {"generation", std::to_string(stats.generation)},
                 {"relations", std::to_string(stats.relations)},
                 {"facts", std::to_string(stats.facts)},
                 {"bytes", std::to_string(stats.bytes)},
                 {"elapsed_ms", std::to_string(timer.ElapsedMillis())}});
  return Status::OK();
}

}  // namespace hierarq::persist
