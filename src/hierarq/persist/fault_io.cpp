#include "hierarq/persist/fault_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace hierarq::persist {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status RealFileIo::MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", path);
}

Result<std::vector<std::string>> RealFileIo::ListDir(
    const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such directory: " + path);
    }
    return Errno("opendir", path);
  }
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

bool RealFileIo::Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RealFileIo::Remove(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) {
    return Status::OK();
  }
  return Errno("unlink", path);
}

Status RealFileIo::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) == 0) {
    return Status::OK();
  }
  return Errno("rename", from + " -> " + to);
}

Status RealFileIo::SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Errno("open dir", path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Errno("fsync dir", path);
  }
  return Status::OK();
}

Result<std::string> RealFileIo::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      break;
    }
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return bytes;
}

Result<uint64_t> RealFileIo::OpenForWrite(const std::string& path,
                                          bool truncate) {
  const int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Errno("open for write", path);
  }
  return static_cast<uint64_t>(fd);
}

Status RealFileIo::Write(uint64_t file, std::string_view bytes) {
  const int fd = static_cast<int>(file);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write", "fd " + std::to_string(fd));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RealFileIo::Sync(uint64_t file) {
  if (::fsync(static_cast<int>(file)) != 0) {
    return Errno("fsync", "fd " + std::to_string(file));
  }
  return Status::OK();
}

Status RealFileIo::Close(uint64_t file) {
  if (::close(static_cast<int>(file)) != 0) {
    return Errno("close", "fd " + std::to_string(file));
  }
  return Status::OK();
}

// -- FaultInjectingIo --------------------------------------------------

FaultInjectingIo::Fault FaultInjectingIo::NextOp() {
  ++ops_;
  if (options_.crash_at_op != 0 && ops_ == options_.crash_at_op) {
    return Fault::kCrash;
  }
  if (options_.fail_sync_at_op != 0 && ops_ == options_.fail_sync_at_op) {
    return Fault::kFailSync;
  }
  if (options_.flip_bit_at_op != 0 && ops_ == options_.flip_bit_at_op) {
    return Fault::kFlipBit;
  }
  return Fault::kNone;
}

Status FaultInjectingIo::MakeDir(const std::string& path) {
  if (crashed_) {
    return Crashed();
  }
  return delegate_->MakeDir(path);
}

Result<std::vector<std::string>> FaultInjectingIo::ListDir(
    const std::string& path) {
  if (crashed_) {
    return Crashed();
  }
  return delegate_->ListDir(path);
}

bool FaultInjectingIo::Exists(const std::string& path) {
  return crashed_ ? false : delegate_->Exists(path);
}

Status FaultInjectingIo::Remove(const std::string& path) {
  if (crashed_) {
    return Crashed();
  }
  if (NextOp() == Fault::kCrash) {
    crashed_ = true;
    return Crashed();
  }
  return delegate_->Remove(path);
}

Status FaultInjectingIo::Rename(const std::string& from,
                                const std::string& to) {
  if (crashed_) {
    return Crashed();
  }
  if (NextOp() == Fault::kCrash) {
    crashed_ = true;
    return Crashed();
  }
  return delegate_->Rename(from, to);
}

Status FaultInjectingIo::SyncDir(const std::string& path) {
  if (crashed_) {
    return Crashed();
  }
  switch (NextOp()) {
    case Fault::kCrash:
      crashed_ = true;
      return Crashed();
    case Fault::kFailSync:
      return Status::Internal("injected fsync failure (dir)");
    default:
      return delegate_->SyncDir(path);
  }
}

Result<std::string> FaultInjectingIo::ReadFile(const std::string& path) {
  if (crashed_) {
    return Crashed();
  }
  return delegate_->ReadFile(path);
}

Result<uint64_t> FaultInjectingIo::OpenForWrite(const std::string& path,
                                                bool truncate) {
  if (crashed_) {
    return Crashed();
  }
  return delegate_->OpenForWrite(path, truncate);
}

Status FaultInjectingIo::Write(uint64_t file, std::string_view bytes) {
  if (crashed_) {
    return Crashed();
  }
  switch (NextOp()) {
    case Fault::kCrash: {
      // A dying writer leaves a prefix behind: [0, n) seeded bytes made
      // it to the file, the rest did not. The torn result is exactly
      // what CRC framing and atomic-rename must make invisible.
      crashed_ = true;
      if (!bytes.empty()) {
        const size_t prefix = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        if (prefix > 0) {
          (void)delegate_->Write(file, bytes.substr(0, prefix));
        }
      }
      return Crashed();
    }
    case Fault::kFlipBit: {
      if (!bytes.empty()) {
        std::string corrupted(bytes);
        const size_t byte = static_cast<size_t>(rng_.UniformInt(
            0, static_cast<int64_t>(corrupted.size()) - 1));
        const int bit = static_cast<int>(rng_.UniformInt(0, 7));
        corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
        return delegate_->Write(file, corrupted);
      }
      return delegate_->Write(file, bytes);
    }
    default:
      return delegate_->Write(file, bytes);
  }
}

Status FaultInjectingIo::Sync(uint64_t file) {
  if (crashed_) {
    return Crashed();
  }
  switch (NextOp()) {
    case Fault::kCrash:
      crashed_ = true;
      return Crashed();
    case Fault::kFailSync:
      return Status::Internal("injected fsync failure");
    default:
      return delegate_->Sync(file);
  }
}

Status FaultInjectingIo::Close(uint64_t file) {
  // Close always reaches the delegate — even a dead process's fds close
  // — so wrappers never leak descriptors across a simulated crash.
  const Status closed = delegate_->Close(file);
  return crashed_ ? Crashed() : closed;
}

// -- Atomic publish ----------------------------------------------------

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

Status AtomicWriteFile(FileIo& io, const std::string& path,
                       std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  HIERARQ_ASSIGN_OR_RETURN(const uint64_t file,
                           io.OpenForWrite(tmp, /*truncate=*/true));
  Status status = io.Write(file, bytes);
  if (status.ok()) {
    status = io.Sync(file);
  }
  const Status closed = io.Close(file);
  if (status.ok()) {
    status = closed;
  }
  if (!status.ok()) {
    return status;
  }
  // The commit point: rename is atomic, so `path` flips from old-or-
  // absent to the complete new bytes in one step; the directory fsync
  // makes the flip itself durable.
  HIERARQ_RETURN_NOT_OK(io.Rename(tmp, path));
  return io.SyncDir(DirName(path));
}

}  // namespace hierarq::persist
