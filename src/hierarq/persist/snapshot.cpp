#include "hierarq/persist/snapshot.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hierarq/incremental/delta_text.h"
#include "hierarq/persist/chunk_store.h"
#include "hierarq/persist/codec.h"
#include "hierarq/persist/wal.h"
#include "hierarq/util/strings.h"

namespace hierarq::persist {

namespace {

std::string Join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// Extracts the generation a data-dir file belongs to from its name
/// ("chunk-<G>-<k>.hq", "dict-<G>.hq", "wal-<G>.log"). False when the
/// name is not part of the snapshot naming scheme.
bool GenerationOfFile(const std::string& name, uint64_t* generation) {
  for (const std::string_view prefix : {"chunk-", "dict-", "wal-"}) {
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string_view rest = std::string_view(name).substr(prefix.size());
    const size_t digits = rest.find_first_not_of("0123456789");
    if (digits == 0 || digits == std::string_view::npos) {
      continue;
    }
    Result<int64_t> parsed = ParseInt64(rest.substr(0, digits));
    if (!parsed.ok() || *parsed < 0) {
      continue;
    }
    *generation = static_cast<uint64_t>(*parsed);
    return true;
  }
  return false;
}

/// Deletes snapshot-scheme files of generations outside `keep` plus any
/// leftover temp files. Best effort: a file that refuses to die is a
/// disk-space leak, not a correctness problem, so errors are swallowed —
/// the next snapshot retries.
void SweepStale(FileIo& io, const std::string& dir,
                const std::vector<uint64_t>& keep) {
  Result<std::vector<std::string>> names = io.ListDir(dir);
  if (!names.ok()) {
    return;
  }
  for (const std::string& name : *names) {
    const bool is_temp = name.size() > 4 && name.ends_with(".tmp");
    uint64_t generation = 0;
    bool drop = is_temp;
    if (!drop && GenerationOfFile(name, &generation)) {
      drop = true;
      for (uint64_t g : keep) {
        if (generation == g) {
          drop = false;
          break;
        }
      }
    }
    if (drop) {
      (void)io.Remove(Join(dir, name));
    }
  }
}

/// Loads the snapshot `manifest` describes: dictionary, then every
/// relation chunk, validating sizes and CRCs against the manifest.
Result<VersionedDatabase> LoadSnapshot(FileIo& io, const std::string& dir,
                                       const Manifest& manifest,
                                       Dictionary* dict) {
  std::vector<Value> remap;
  if (!manifest.dict_file.empty()) {
    HIERARQ_ASSIGN_OR_RETURN(const std::string bytes,
                             io.ReadFile(Join(dir, manifest.dict_file)));
    if (bytes.size() != manifest.dict_bytes ||
        Crc32(bytes) != manifest.dict_crc) {
      return Status::InvalidArgument("dictionary chunk " + manifest.dict_file +
                                     " does not match its manifest entry "
                                     "(truncated or corrupt)");
    }
    HIERARQ_ASSIGN_OR_RETURN(remap, DecodeDictionaryChunk(bytes, dict));
  }
  Database facts;
  std::unordered_map<Fact, double, FactHash> weights;
  for (const ChunkInfo& chunk : manifest.chunks) {
    HIERARQ_ASSIGN_OR_RETURN(const std::string bytes,
                             io.ReadFile(Join(dir, chunk.file)));
    HIERARQ_RETURN_NOT_OK(
        DecodeRelationChunk(bytes, chunk, remap, &facts, &weights));
  }
  return VersionedDatabase(std::move(facts), std::move(weights),
                           manifest.generation);
}

}  // namespace

std::string ChunkFileName(uint64_t generation, size_t index) {
  return "chunk-" + std::to_string(generation) + "-" + std::to_string(index) +
         ".hq";
}

std::string DictFileName(uint64_t generation) {
  return "dict-" + std::to_string(generation) + ".hq";
}

std::string WalFileName(uint64_t generation) {
  return "wal-" + std::to_string(generation) + ".log";
}

Result<SnapshotStats> WriteSnapshot(FileIo& io, const std::string& dir,
                                    const VersionedDatabase& db,
                                    const Dictionary& dict) {
  HIERARQ_RETURN_NOT_OK(io.MakeDir(dir));
  const uint64_t generation = db.generation();
  SnapshotStats stats;
  stats.generation = generation;

  // Remember the outgoing snapshot's generation (if its manifest still
  // decodes) so the sweep below can keep its files as the fallback.
  std::vector<uint64_t> keep = {generation};
  const std::string manifest_path = Join(dir, kManifestName);
  if (io.Exists(manifest_path)) {
    Result<std::string> previous = io.ReadFile(manifest_path);
    if (previous.ok()) {
      Result<Manifest> decoded = DecodeManifest(*previous);
      if (decoded.ok()) {
        keep.push_back(decoded->generation);
      }
    }
  }

  Manifest manifest;
  manifest.generation = generation;
  manifest.wal_file = WalFileName(generation);

  // Chunks first — each is invisible until the manifest commits. The
  // relations() map iterates in name order, so chunk indices (and with
  // them the recovered insertion order) are deterministic.
  size_t index = 0;
  for (const auto& [name, relation] : db.facts().relations()) {
    ChunkInfo info;
    info.file = ChunkFileName(generation, index++);
    info.relation = name;
    info.arity = static_cast<uint32_t>(relation.arity());
    info.rows = relation.tuples().size();
    const std::string bytes = EncodeRelationChunk(relation, db);
    info.bytes = bytes.size();
    info.crc = Crc32(bytes);
    HIERARQ_RETURN_NOT_OK(AtomicWriteFile(io, Join(dir, info.file), bytes));
    stats.bytes += bytes.size();
    stats.facts += relation.tuples().size();
    manifest.chunks.push_back(std::move(info));
  }
  stats.relations = manifest.chunks.size();

  if (dict.size() > 0) {
    const std::string bytes = EncodeDictionaryChunk(dict);
    manifest.dict_file = DictFileName(generation);
    manifest.dict_bytes = bytes.size();
    manifest.dict_crc = Crc32(bytes);
    HIERARQ_RETURN_NOT_OK(
        AtomicWriteFile(io, Join(dir, manifest.dict_file), bytes));
    stats.bytes += bytes.size();
  }

  // The rotated (empty) WAL must exist durably before the manifest that
  // names it. AtomicWriteFile also covers the only legal overwrite case:
  // re-snapshotting at an unchanged generation (boot healing with zero
  // replayed records), where the old wal-<G>.log holds at most a torn
  // tail that SHOULD be discarded.
  HIERARQ_RETURN_NOT_OK(AtomicWriteFile(io, Join(dir, manifest.wal_file), ""));

  // The commit point. Rotate the old manifest into the fallback slot
  // first; if we crash between the two steps, recovery finds no MANIFEST
  // and proceeds straight to MANIFEST.1 — the same snapshot it would
  // have used anyway.
  if (io.Exists(manifest_path)) {
    HIERARQ_RETURN_NOT_OK(
        io.Rename(manifest_path, Join(dir, kPreviousManifestName)));
    HIERARQ_RETURN_NOT_OK(io.SyncDir(dir));
  }
  const std::string encoded = EncodeManifest(manifest);
  HIERARQ_RETURN_NOT_OK(AtomicWriteFile(io, manifest_path, encoded));
  stats.bytes += encoded.size();

  SweepStale(io, dir, keep);
  return stats;
}

Result<RecoverResult> Recover(FileIo& io, const std::string& dir,
                              Dictionary* dict) {
  // Newest valid snapshot: MANIFEST, then the MANIFEST.1 fallback. A
  // candidate is rejected (not fatal) when its manifest or any of its
  // chunks fails validation — only when NO candidate loads do we error.
  bool any_manifest = false;
  std::string failures;
  for (const char* name : {kManifestName, kPreviousManifestName}) {
    const std::string path = Join(dir, name);
    Result<std::string> bytes = io.ReadFile(path);
    if (!bytes.ok()) {
      if (!bytes.status().Is(StatusCode::kNotFound)) {
        return bytes.status();
      }
      continue;
    }
    any_manifest = true;
    Result<Manifest> manifest = DecodeManifest(*bytes);
    Result<VersionedDatabase> loaded =
        manifest.ok() ? LoadSnapshot(io, dir, *manifest, dict)
                      : manifest.status();
    if (!loaded.ok()) {
      failures += std::string(failures.empty() ? "" : "; ") + name + ": " +
                  loaded.status().message();
      continue;
    }

    RecoverResult result;
    result.db = *std::move(loaded);
    result.snapshot_generation = manifest->generation;
    result.used_fallback_manifest = (name == kPreviousManifestName);

    // Replay the WAL chain. The snapshot's own log runs up to the point
    // where a NEWER snapshot (whose manifest may be the one that just
    // failed above) rotated to wal-<G'>.log; keep following those hops
    // so no acked record is lost to a damaged newest manifest. Records
    // must advance the generation by exactly one each — a gap or
    // repeat means corruption, and truncation applies from there.
    VersionedDatabase scratch = result.db;  // Arity schema for parsing.
    std::string wal_file = manifest->wal_file;
    uint64_t next_generation = result.snapshot_generation + 1;
    while (true) {
      WalReadStats wal_stats;
      Result<std::vector<WalRecord>> records =
          ReadWal(io, Join(dir, wal_file), &wal_stats);
      if (!records.ok()) {
        return records.status();
      }
      result.wal_truncated_bytes += wal_stats.truncated_bytes;
      bool clean = !wal_stats.torn_tail;
      for (const WalRecord& record : *records) {
        if (record.generation != next_generation) {
          clean = false;
          break;
        }
        Result<DeltaBatch> batch =
            ParseDeltaLine(record.line, dict, scratch);
        if (!batch.ok()) {
          clean = false;
          break;
        }
        scratch.Apply(*batch);
        result.tail.push_back(*std::move(batch));
        ++result.wal_records;
        ++next_generation;
      }
      if (!clean) {
        break;  // Torn, corrupt, or discontinuous — stop at the last good record.
      }
      const std::string next_wal = WalFileName(next_generation - 1);
      if (next_wal == wal_file || !io.Exists(Join(dir, next_wal))) {
        break;  // No newer rotation to chain into.
      }
      wal_file = next_wal;
    }
    result.recovered_generation =
        result.snapshot_generation + result.tail.size();
    return result;
  }
  if (!any_manifest) {
    return Status::NotFound("no snapshot manifest in " + dir);
  }
  return Status::InvalidArgument("no valid snapshot in " + dir + " (" +
                                 failures + ")");
}

Result<VersionedDatabase> RecoverDatabase(FileIo& io, const std::string& dir,
                                          Dictionary* dict,
                                          RecoverResult* detail) {
  HIERARQ_ASSIGN_OR_RETURN(RecoverResult result, Recover(io, dir, dict));
  for (const DeltaBatch& batch : result.tail) {
    result.db.Apply(batch);
  }
  if (detail != nullptr) {
    RecoverResult& out = *detail;
    out = std::move(result);
    return std::move(out.db);
  }
  return std::move(result.db);
}

}  // namespace hierarq::persist
