#ifndef HIERARQ_HIERARQ_H_
#define HIERARQ_HIERARQ_H_

/// \file hierarq.h
/// \brief Umbrella header: the full hierarq public API.
///
/// hierarq implements the unifying 2-monoid algorithm for hierarchical
/// self-join-free Boolean conjunctive queries of Abo Khamis, Comer,
/// Kolaitis, Roy and Tannen (PODS 2025), together with its three problem
/// instantiations (probabilistic query evaluation, Shapley values, bag-set
/// maximization), a fourth one (resilience), the universal provenance
/// monoid, the Theorem 4.4 hardness reduction, and the data/query
/// substrates they depend on.

#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/provenance.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/satcount_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/bagset.h"
#include "hierarq/core/cancel.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/core/expectation.h"
#include "hierarq/core/parallel.h"
#include "hierarq/core/pqe.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/columnar.h"
#include "hierarq/data/database.h"
#include "hierarq/data/loader.h"
#include "hierarq/data/sharded.h"
#include "hierarq/data/storage.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/engine/bruteforce.h"
#include "hierarq/engine/join.h"
#include "hierarq/engine/lineage.h"
#include "hierarq/incremental/delta.h"
#include "hierarq/incremental/delta_text.h"
#include "hierarq/incremental/incremental_evaluator.h"
#include "hierarq/incremental/incremental_view.h"
#include "hierarq/incremental/monoid_traits.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/async_service.h"
#include "hierarq/net/client.h"
#include "hierarq/net/server.h"
#include "hierarq/net/wire.h"
#include "hierarq/obs/explain.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/trace.h"
#include "hierarq/persist/chunk_store.h"
#include "hierarq/persist/codec.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/persist/persistor.h"
#include "hierarq/persist/snapshot.h"
#include "hierarq/persist/wal.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/gyo.h"
#include "hierarq/query/hierarchical.h"
#include "hierarq/query/parser.h"
#include "hierarq/query/query.h"
#include "hierarq/reductions/bagset_reduction.h"
#include "hierarq/reductions/bcbs.h"
#include "hierarq/reductions/graph.h"
#include "hierarq/service/batch_solvers.h"
#include "hierarq/service/eval_service.h"
#include "hierarq/service/shared_plan_cache.h"
#include "hierarq/util/bigint.h"
#include "hierarq/util/fraction.h"
#include "hierarq/util/result.h"
#include "hierarq/util/simd.h"
#include "hierarq/util/status.h"
#include "hierarq/util/worker_pool.h"
#include "hierarq/workload/data_gen.h"
#include "hierarq/workload/query_gen.h"

#endif  // HIERARQ_HIERARQ_H_
