#ifndef HIERARQ_ENGINE_JOIN_H_
#define HIERARQ_ENGINE_JOIN_H_

/// \file join.h
/// \brief Bag-set-semantics evaluation of SJF-BCQs over set databases.
///
/// Q(D) under bag-set semantics is the number of distinct satisfying
/// assignments of vars(Q) (paper §1). This engine computes it by
/// backtracking over the atoms in a greedy join order with per-atom hash
/// indexes on the already-bound variables. It works for *every* SJF-BCQ —
/// hierarchical or not — and is hierarq's ground truth: the unified
/// algorithm's counting instantiation, the brute-force oracles, and the
/// Theorem 4.4 reduction all validate against it.

#include <cstdint>
#include <functional>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/value.h"
#include "hierarq/query/query.h"

namespace hierarq {

/// Q(D): the number of satisfying assignments (saturating uint64).
uint64_t BagSetCount(const ConjunctiveQuery& query, const Database& db);

/// Set-semantics evaluation: true iff Q(D) > 0 (early-exit).
bool EvaluateBoolean(const ConjunctiveQuery& query, const Database& db);

/// Enumerates satisfying assignments. The callback receives the values of
/// the query variables in ascending VarId order (i.e. `query.AllVars()`
/// order) and returns true to continue, false to stop the enumeration.
void EnumerateAssignments(
    const ConjunctiveQuery& query, const Database& db,
    const std::function<bool(const std::vector<Value>&)>& callback);

}  // namespace hierarq

#endif  // HIERARQ_ENGINE_JOIN_H_
