#ifndef HIERARQ_ENGINE_LINEAGE_H_
#define HIERARQ_ENGINE_LINEAGE_H_

/// \file lineage.h
/// \brief DNF lineage and Shannon-expansion PQE for arbitrary SJF-BCQs.
///
/// On the intractable side of the dichotomy (non-hierarchical queries,
/// #P-hard by Dalvi–Suciu), practical systems fall back to *lineage*: the
/// query's Boolean provenance as a DNF over facts — one disjunct per
/// satisfying assignment — evaluated exactly by Shannon expansion
/// (condition on a fact, recurse on both branches). Worst-case exponential
/// in the lineage's fact count, but exact and often fast.
///
/// hierarq includes this fallback for three reasons:
///  * completeness: `EvaluateProbabilityExhaustive` answers PQE for *any*
///    SJF-BCQ on instances whose lineage support is small;
///  * validation: for hierarchical queries its output must equal the
///    unified algorithm's (tests do exactly this cross-check);
///  * contrast: unlike Algorithm 1's provenance trees (read-once by
///    Lemma 6.3), DNF lineage of a non-hierarchical query repeats facts —
///    which is precisely why independent-events evaluation fails and
///    exponential Shannon expansion becomes necessary.

#include <functional>

#include "hierarq/algebra/provenance.h"
#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Builds the DNF lineage of Q over `db` via the join engine: an ∨ of one
/// ∧-clause per satisfying assignment. Works for every SJF-BCQ. The
/// returned tree is generally NOT decomposable (facts repeat across
/// clauses) — check `tree->IsDecomposable()` to see whether the instance
/// happens to be read-once.
Result<ProvenanceResult> ComputeDnfLineage(const ConjunctiveQuery& query,
                                           const Database& db);

/// Exact probability that the Boolean formula of `tree` is true, where
/// leaf s holds independently with probability `probability(s)`. Shannon
/// expansion on the most frequent fact; exponential worst case. CHECKs
/// that the support has at most 30 facts.
double TreeProbabilityShannon(
    const ProvTreeRef& tree,
    const std::function<double(uint64_t)>& probability);

/// PQE for an arbitrary SJF-BCQ: DNF lineage + Shannon expansion.
/// Exact; exponential worst case (use `EvaluateProbability` for
/// hierarchical queries — it is linear-time and agrees, see tests).
Result<double> EvaluateProbabilityExhaustive(const ConjunctiveQuery& query,
                                             const TidDatabase& db);

}  // namespace hierarq

#endif  // HIERARQ_ENGINE_LINEAGE_H_
