#include "hierarq/engine/bruteforce.h"

#include <algorithm>
#include <numeric>

#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/engine/join.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

constexpr size_t kMaxSubsetBits = 28;

/// Builds base ∪ {facts[i] : mask bit i set}.
Database WithSubset(const Database& base, const std::vector<Fact>& facts,
                    uint64_t mask) {
  Database out = base;
  for (size_t i = 0; i < facts.size(); ++i) {
    if ((mask >> i) & 1) {
      out.AddFactOrDie(facts[i].relation, facts[i].tuple);
    }
  }
  return out;
}

}  // namespace

double BruteForcePqe(const ConjunctiveQuery& query, const TidDatabase& db) {
  // Split facts into certain (p == 1), impossible (p == 0) and uncertain.
  Database certain;
  std::vector<Fact> uncertain;
  std::vector<double> probs;
  for (const auto& [fact, p] : db.AllFacts()) {
    if (p >= 1.0) {
      certain.AddFactOrDie(fact.relation, fact.tuple);
    } else if (p > 0.0) {
      uncertain.push_back(fact);
      probs.push_back(p);
    }
  }
  HIERARQ_CHECK_LE(uncertain.size(), kMaxSubsetBits)
      << "brute-force PQE instance too large";

  double total = 0.0;
  const uint64_t worlds = uint64_t{1} << uncertain.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < uncertain.size(); ++i) {
      weight *= ((mask >> i) & 1) ? probs[i] : (1.0 - probs[i]);
    }
    if (weight == 0.0) {
      continue;
    }
    if (EvaluateBoolean(query, WithSubset(certain, uncertain, mask))) {
      total += weight;
    }
  }
  return total;
}

BruteForceSatCounts BruteForceCountSat(const ConjunctiveQuery& query,
                                       const Database& exogenous,
                                       const Database& endogenous) {
  const std::vector<Fact> facts = endogenous.AllFacts();
  const size_t n = facts.size();
  HIERARQ_CHECK_LE(n, kMaxSubsetBits) << "brute-force #Sat instance too large";

  BruteForceSatCounts out;
  out.on_true.assign(n + 1, BigUint(0));
  out.on_false.assign(n + 1, BigUint(0));
  const uint64_t worlds = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    const size_t k = static_cast<size_t>(__builtin_popcountll(mask));
    const bool sat =
        EvaluateBoolean(query, WithSubset(exogenous, facts, mask));
    if (sat) {
      out.on_true[k] += BigUint(1);
    } else {
      out.on_false[k] += BigUint(1);
    }
  }
  return out;
}

Fraction BruteForceShapleySubsets(const ConjunctiveQuery& query,
                                  const Database& exogenous,
                                  const Database& endogenous,
                                  const Fact& fact) {
  HIERARQ_CHECK(endogenous.ContainsFact(fact));
  std::vector<Fact> others;
  for (const Fact& g : endogenous.AllFacts()) {
    if (g != fact) {
      others.push_back(g);
    }
  }
  const size_t n = others.size() + 1;
  HIERARQ_CHECK_LE(others.size(), kMaxSubsetBits);

  BigInt numerator(0);
  const uint64_t worlds = uint64_t{1} << others.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    const size_t k = static_cast<size_t>(__builtin_popcountll(mask));
    const Database base = WithSubset(exogenous, others, mask);
    Database with_f = base;
    with_f.AddFactOrDie(fact.relation, fact.tuple);
    const int delta = static_cast<int>(EvaluateBoolean(query, with_f)) -
                      static_cast<int>(EvaluateBoolean(query, base));
    if (delta == 0) {
      continue;
    }
    const BigUint weight =
        BigUint::Factorial(k) * BigUint::Factorial(n - k - 1);
    numerator += BigInt(weight, delta < 0);
  }
  return Fraction(numerator, BigInt(BigUint::Factorial(n)));
}

Fraction BruteForceShapleyPermutations(const ConjunctiveQuery& query,
                                       const Database& exogenous,
                                       const Database& endogenous,
                                       const Fact& fact) {
  HIERARQ_CHECK(endogenous.ContainsFact(fact));
  std::vector<Fact> facts = endogenous.AllFacts();
  const size_t n = facts.size();
  HIERARQ_CHECK_LE(n, 9u) << "permutation brute force caps at |Dn| = 9";
  std::sort(facts.begin(), facts.end());

  BigUint flips(0);
  uint64_t permutations = 0;
  do {
    ++permutations;
    Database db = exogenous;
    bool was_true = EvaluateBoolean(query, db);
    for (const Fact& g : facts) {
      db.AddFactOrDie(g.relation, g.tuple);
      const bool now_true = was_true || EvaluateBoolean(query, db);
      if (g == fact) {
        if (now_true && !was_true) {
          flips += BigUint(1);
        }
        break;  // Later insertions cannot change f's marginal contribution.
      }
      was_true = now_true;
    }
  } while (std::next_permutation(facts.begin(), facts.end()));
  HIERARQ_CHECK_EQ(BigUint(permutations), BigUint::Factorial(n));

  return Fraction(BigInt(flips), BigInt(BigUint::Factorial(n)));
}

BagMaxVec BruteForceBagSetMax(const ConjunctiveQuery& query,
                              const Database& d, const Database& repair,
                              size_t budget) {
  std::vector<Fact> candidates;
  for (const Fact& fact : repair.AllFacts()) {
    if (!d.ContainsFact(fact)) {
      candidates.push_back(fact);
    }
  }
  HIERARQ_CHECK_LE(candidates.size(), kMaxSubsetBits)
      << "brute-force bag-set-max instance too large";

  BagMaxVec profile(budget + 1, 0);
  const uint64_t worlds = uint64_t{1} << candidates.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    const size_t cost = static_cast<size_t>(__builtin_popcountll(mask));
    if (cost > budget) {
      continue;
    }
    const uint64_t value =
        BagSetCount(query, WithSubset(d, candidates, mask));
    if (value > profile[cost]) {
      profile[cost] = value;
    }
  }
  // profile[i] so far is "max at cost exactly i"; make it cumulative.
  for (size_t i = 1; i <= budget; ++i) {
    profile[i] = std::max(profile[i], profile[i - 1]);
  }
  return profile;
}

uint64_t BruteForceResilience(const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous) {
  const std::vector<Fact> facts = endogenous.AllFacts();
  const size_t n = facts.size();
  HIERARQ_CHECK_LE(n, kMaxSubsetBits)
      << "brute-force resilience instance too large";

  Result<Database> combined = exogenous.UnionWith(endogenous);
  HIERARQ_CHECK(combined.ok()) << combined.status().ToString();
  if (!EvaluateBoolean(query, *combined)) {
    return 0;  // Already false: nothing to remove.
  }

  // `mask` selects the facts to REMOVE; keep the complement.
  uint64_t best = ResilienceMonoid::kInfinity;
  const uint64_t worlds = uint64_t{1} << n;
  for (uint64_t mask = 1; mask < worlds; ++mask) {
    const uint64_t k = static_cast<uint64_t>(__builtin_popcountll(mask));
    if (k >= best) {
      continue;
    }
    const uint64_t keep = ~mask & (worlds - 1);
    if (!EvaluateBoolean(query, WithSubset(exogenous, facts, keep))) {
      best = k;
    }
  }
  return best;
}

}  // namespace hierarq
