#include "hierarq/engine/lineage.h"

#include <map>
#include <unordered_map>
#include <vector>

#include "hierarq/engine/join.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

/// Conditions `tree` on leaf `symbol` := `value`, applying full Boolean
/// simplification (annihilation included — sound here because the
/// semantics is purely Boolean, not 2-monoid).
ProvTreeRef Condition(const ProvTreeRef& tree, uint64_t symbol, bool value) {
  switch (tree->kind()) {
    case ProvTree::Kind::kTrue:
    case ProvTree::Kind::kFalse:
      return tree;
    case ProvTree::Kind::kLeaf:
      if (tree->symbol() == symbol) {
        return value ? ProvTree::True() : ProvTree::False();
      }
      return tree;
    case ProvTree::Kind::kOr: {
      ProvTreeRef acc = ProvTree::False();
      for (const ProvTreeRef& child : tree->children()) {
        const ProvTreeRef conditioned = Condition(child, symbol, value);
        if (conditioned->kind() == ProvTree::Kind::kTrue) {
          return ProvTree::True();  // Annihilation for ∨.
        }
        acc = ProvTree::Or(acc, conditioned);
      }
      return acc;
    }
    case ProvTree::Kind::kAnd: {
      ProvTreeRef acc = ProvTree::True();
      for (const ProvTreeRef& child : tree->children()) {
        const ProvTreeRef conditioned = Condition(child, symbol, value);
        if (conditioned->kind() == ProvTree::Kind::kFalse) {
          return ProvTree::False();  // Annihilation for ∧.
        }
        acc = ProvTree::And(acc, conditioned);
      }
      return acc;
    }
  }
  return tree;
}

/// Most frequent leaf symbol (ties: smallest), or nullopt for constants.
std::optional<uint64_t> PickBranchSymbol(const ProvTree& tree) {
  std::map<uint64_t, size_t> frequency;
  std::vector<const ProvTree*> stack = {&tree};
  while (!stack.empty()) {
    const ProvTree* node = stack.back();
    stack.pop_back();
    if (node->kind() == ProvTree::Kind::kLeaf) {
      frequency[node->symbol()] += 1;
    }
    for (const ProvTreeRef& child : node->children()) {
      stack.push_back(child.get());
    }
  }
  if (frequency.empty()) {
    return std::nullopt;
  }
  uint64_t best = frequency.begin()->first;
  size_t best_count = frequency.begin()->second;
  for (const auto& [symbol, count] : frequency) {
    if (count > best_count) {
      best = symbol;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

Result<ProvenanceResult> ComputeDnfLineage(const ConjunctiveQuery& query,
                                           const Database& db) {
  ProvenanceResult out;
  std::unordered_map<Fact, uint64_t, FactHash> symbol_of;

  auto symbol_for = [&](Fact fact) {
    auto it = symbol_of.find(fact);
    if (it != symbol_of.end()) {
      return it->second;
    }
    const uint64_t symbol = out.facts.size();
    out.facts.push_back(fact);
    symbol_of.emplace(std::move(fact), symbol);
    return symbol;
  };

  ProvTreeRef dnf = ProvTree::False();
  // Assignment values arrive in ascending-VarId order; map them back.
  const VarSet& all_vars = query.AllVars();
  EnumerateAssignments(
      query, db, [&](const std::vector<Value>& row) {
        ProvTreeRef clause = ProvTree::True();
        for (const Atom& atom : query.atoms()) {
          Tuple tuple;
          tuple.reserve(atom.arity());
          for (const Term& term : atom.terms()) {
            if (term.is_constant()) {
              tuple.push_back(term.constant());
            } else {
              // Index of the variable within AllVars order.
              size_t index = 0;
              while (all_vars[index] != term.var()) {
                ++index;
              }
              tuple.push_back(row[index]);
            }
          }
          clause = ProvTree::And(
              clause, ProvTree::Leaf(symbol_for(Fact{atom.relation(),
                                                     std::move(tuple)})));
        }
        dnf = ProvTree::Or(dnf, clause);
        return true;
      });
  out.tree = std::move(dnf);
  return out;
}

double TreeProbabilityShannon(
    const ProvTreeRef& tree,
    const std::function<double(uint64_t)>& probability) {
  HIERARQ_CHECK_LE(tree->Support().size(), 30u)
      << "Shannon expansion support too large";
  // Recursive expansion; simplification after each conditioning step keeps
  // the branches shrinking.
  auto recurse = [&probability](auto&& self,
                                const ProvTreeRef& node) -> double {
    if (node->kind() == ProvTree::Kind::kTrue) {
      return 1.0;
    }
    if (node->kind() == ProvTree::Kind::kFalse) {
      return 0.0;
    }
    const auto branch = PickBranchSymbol(*node);
    HIERARQ_CHECK(branch.has_value());
    const double p = probability(*branch);
    double total = 0.0;
    if (p > 0.0) {
      total += p * self(self, Condition(node, *branch, true));
    }
    if (p < 1.0) {
      total += (1.0 - p) * self(self, Condition(node, *branch, false));
    }
    return total;
  };
  return recurse(recurse, tree);
}

Result<double> EvaluateProbabilityExhaustive(const ConjunctiveQuery& query,
                                             const TidDatabase& db) {
  HIERARQ_ASSIGN_OR_RETURN(ProvenanceResult lineage,
                           ComputeDnfLineage(query, db.facts()));
  return TreeProbabilityShannon(lineage.tree, [&](uint64_t symbol) {
    return db.Probability(lineage.facts[symbol]);
  });
}

}  // namespace hierarq
