#include "hierarq/engine/join.h"

#include <algorithm>
#include <unordered_map>

#include "hierarq/algebra/bagmax_monoid.h"  // SatAddU64
#include "hierarq/query/var_set.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

/// Candidate bindings of one atom: tuples over the atom's variable set in
/// ascending VarId order, after constant/repeated-variable filtering.
std::vector<Tuple> AtomBindings(const Atom& atom, const Database& db) {
  std::vector<Tuple> out;
  const Relation* relation = db.FindRelation(atom.relation());
  if (relation == nullptr) {
    return out;
  }
  for (const Tuple& tuple : relation->tuples()) {
    if (tuple.size() != atom.arity()) {
      continue;
    }
    bool matches = true;
    for (size_t i = 0; i < atom.terms().size() && matches; ++i) {
      if (atom.terms()[i].is_constant()) {
        matches = atom.terms()[i].constant() == tuple[i];
      }
    }
    if (matches) {
      for (VarId v : atom.vars()) {
        const auto positions = atom.PositionsOf(v);
        for (size_t i = 1; i < positions.size() && matches; ++i) {
          matches = tuple[positions[i]] == tuple[positions[0]];
        }
        if (!matches) {
          break;
        }
      }
    }
    if (!matches) {
      continue;
    }
    Tuple binding;
    binding.reserve(atom.vars().size());
    for (VarId v : atom.vars()) {
      binding.push_back(tuple[atom.PositionsOf(v).front()]);
    }
    out.push_back(std::move(binding));
  }
  return out;
}

/// One atom in the join pipeline.
struct JoinStage {
  const Atom* atom = nullptr;
  /// Variables of this atom already bound by earlier stages, in ascending
  /// VarId order (positions within the atom's binding tuples).
  std::vector<size_t> key_positions;
  /// Variables newly bound here (positions within binding tuples).
  std::vector<size_t> new_positions;
  std::vector<VarId> new_vars;
  /// key tuple -> bindings that extend it.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
};

class JoinEvaluator {
 public:
  JoinEvaluator(const ConjunctiveQuery& query, const Database& db)
      : query_(query) {
    // Greedy join order: repeatedly take the atom sharing the most
    // variables with the already-bound set (ties: smallest index). This
    // keeps intermediate key arity high, which is what the hash indexes
    // exploit.
    const size_t n = query.num_atoms();
    std::vector<bool> used(n, false);
    VarSet bound;
    std::vector<size_t> order;
    for (size_t step = 0; step < n; ++step) {
      size_t best = n;
      size_t best_shared = 0;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) {
          continue;
        }
        const size_t shared =
            query.atoms()[i].vars().Intersect(bound).size();
        if (best == n || shared > best_shared) {
          best = i;
          best_shared = shared;
        }
      }
      used[best] = true;
      order.push_back(best);
      bound = bound.Union(query.atoms()[best].vars());
    }

    // Build the stages in that order.
    bindings_.resize(n);
    VarSet bound_so_far;
    for (size_t idx : order) {
      const Atom& atom = query.atoms()[idx];
      bindings_[idx] = AtomBindings(atom, db);
      JoinStage stage;
      stage.atom = &atom;
      const VarSet& vars = atom.vars();
      for (size_t pos = 0; pos < vars.size(); ++pos) {
        if (bound_so_far.Contains(vars[pos])) {
          stage.key_positions.push_back(pos);
        } else {
          stage.new_positions.push_back(pos);
          stage.new_vars.push_back(vars[pos]);
        }
      }
      for (const Tuple& binding : bindings_[idx]) {
        Tuple key;
        key.reserve(stage.key_positions.size());
        for (size_t pos : stage.key_positions) {
          key.push_back(binding[pos]);
        }
        stage.index[key].push_back(&binding);
      }
      bound_so_far = bound_so_far.Union(vars);
      stages_.push_back(std::move(stage));
    }
    assignment_.assign(query.variables().size(), 0);
  }

  /// Runs the backtracking join; `on_result` returns false to stop.
  void Run(const std::function<bool(const std::vector<Value>&)>& on_result) {
    on_result_ = &on_result;
    stopped_ = false;
    Recurse(0);
    on_result_ = nullptr;
  }

 private:
  void Recurse(size_t depth) {
    if (stopped_) {
      return;
    }
    if (depth == stages_.size()) {
      // Report values of AllVars() in ascending VarId order.
      result_buffer_.clear();
      for (VarId v : query_.AllVars()) {
        result_buffer_.push_back(assignment_[v]);
      }
      if (!(*on_result_)(result_buffer_)) {
        stopped_ = true;
      }
      return;
    }
    JoinStage& stage = stages_[depth];
    Tuple key;
    key.reserve(stage.key_positions.size());
    const VarSet& vars = stage.atom->vars();
    for (size_t pos : stage.key_positions) {
      key.push_back(assignment_[vars[pos]]);
    }
    auto it = stage.index.find(key);
    if (it == stage.index.end()) {
      return;
    }
    for (const Tuple* binding : it->second) {
      for (size_t i = 0; i < stage.new_positions.size(); ++i) {
        assignment_[stage.new_vars[i]] = (*binding)[stage.new_positions[i]];
      }
      Recurse(depth + 1);
      if (stopped_) {
        return;
      }
    }
  }

  const ConjunctiveQuery& query_;
  std::vector<std::vector<Tuple>> bindings_;  // Keyed by atom index.
  std::vector<JoinStage> stages_;
  std::vector<Value> assignment_;  // Keyed by VarId.
  std::vector<Value> result_buffer_;
  const std::function<bool(const std::vector<Value>&)>* on_result_ = nullptr;
  bool stopped_ = false;
};

}  // namespace

uint64_t BagSetCount(const ConjunctiveQuery& query, const Database& db) {
  uint64_t count = 0;
  JoinEvaluator evaluator(query, db);
  evaluator.Run([&count](const std::vector<Value>&) {
    count = SatAddU64(count, 1);
    return true;
  });
  return count;
}

bool EvaluateBoolean(const ConjunctiveQuery& query, const Database& db) {
  bool satisfied = false;
  JoinEvaluator evaluator(query, db);
  evaluator.Run([&satisfied](const std::vector<Value>&) {
    satisfied = true;
    return false;  // Early exit on the first witness.
  });
  return satisfied;
}

void EnumerateAssignments(
    const ConjunctiveQuery& query, const Database& db,
    const std::function<bool(const std::vector<Value>&)>& callback) {
  JoinEvaluator evaluator(query, db);
  evaluator.Run(callback);
}

}  // namespace hierarq
