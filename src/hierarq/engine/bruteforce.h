#ifndef HIERARQ_ENGINE_BRUTEFORCE_H_
#define HIERARQ_ENGINE_BRUTEFORCE_H_

/// \file bruteforce.h
/// \brief Exponential exact oracles for all four problems.
///
/// These enumerate possible worlds / subsets / permutations directly from
/// the definitions. They are deliberately simple — on small instances they
/// *are* the ground truth the unified algorithm is validated against, and
/// in the dichotomy benchmarks they exhibit the exponential wall that
/// Theorem 4.4 predicts for non-hierarchical queries.
///
/// All entry points CHECK that the instance is small enough to enumerate
/// (subset enumerations cap at 2^28 steps).

#include <cstdint>
#include <vector>

#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/bigint.h"
#include "hierarq/util/fraction.h"

namespace hierarq {

/// Pr[Q] by summing over all 2^u possible worlds, where u is the number of
/// facts with probability strictly between 0 and 1.
double BruteForcePqe(const ConjunctiveQuery& query, const TidDatabase& db);

/// #Sat vectors by enumerating all subsets of Dn (Definition 5.13).
struct BruteForceSatCounts {
  std::vector<BigUint> on_true;
  std::vector<BigUint> on_false;
};
BruteForceSatCounts BruteForceCountSat(const ConjunctiveQuery& query,
                                       const Database& exogenous,
                                       const Database& endogenous);

/// Shapley value via the subset reformulation (the display after
/// Definition 5.13), enumerating subsets of Dn \ {f}.
Fraction BruteForceShapleySubsets(const ConjunctiveQuery& query,
                                  const Database& exogenous,
                                  const Database& endogenous,
                                  const Fact& fact);

/// Shapley value directly from Definition 5.12: averages the marginal
/// contribution of `fact` over *all permutations* of Dn. Exponentially
/// worse than the subset form — |Dn| ≤ 9 — but it validates the reduction
/// itself.
Fraction BruteForceShapleyPermutations(const ConjunctiveQuery& query,
                                       const Database& exogenous,
                                       const Database& endogenous,
                                       const Fact& fact);

/// Bag-set maximization by enumerating all subsets of Dr \ D with at most
/// `budget` facts (Definition 4.1). Returns the full budget profile:
/// profile[i] = max multiplicity at repair cost ≤ i.
BagMaxVec BruteForceBagSetMax(const ConjunctiveQuery& query,
                              const Database& d, const Database& repair,
                              size_t budget);

/// Resilience by trying removal sets of increasing size; returns
/// ResilienceMonoid::kInfinity when the query cannot be falsified.
uint64_t BruteForceResilience(const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous);

}  // namespace hierarq

#endif  // HIERARQ_ENGINE_BRUTEFORCE_H_
