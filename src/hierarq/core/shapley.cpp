#include "hierarq/core/shapley.h"

#include <utility>

#include "hierarq/algebra/satcount_monoid.h"

namespace hierarq {

namespace {

struct RawSatCount {
  SatCountVec<BigUint> vec;
  size_t relevant_endogenous = 0;  ///< m = |Dn[F]| (★-annotated facts).
};

/// Runs Algorithm 1 with the #Sat monoid. The raw output counts subsets of
/// Dn[F] — the endogenous facts that actually occur in the query's lineage
/// (Eq. (21)); facts of Dn that match no atom (wrong relation, constant
/// mismatch, or shadowed by an identical exogenous fact) are irrelevant and
/// are accounted for by the caller via a binomial expansion.
Result<RawSatCount> RunSatCount(Evaluator& evaluator,
                                const ConjunctiveQuery& query,
                                const Database& exogenous,
                                const Database& endogenous) {
  const size_t n = endogenous.NumFacts();
  const SatCountMonoid<BigUint> monoid(n);

  HIERARQ_ASSIGN_OR_RETURN(Database combined,
                           exogenous.UnionWith(endogenous));
  size_t relevant = 0;
  HIERARQ_ASSIGN_OR_RETURN(
      SatCountVec<BigUint> vec,
      (evaluator.Evaluate<SatCountMonoid<BigUint>>(
          query, monoid, combined,
          [&](const Fact& fact) -> SatCountVec<BigUint> {
            // Definition 5.15: exogenous facts are always present (1);
            // endogenous facts toggle (★). A fact in both is treated as
            // exogenous — its endogenous copy cannot change the query.
            if (exogenous.ContainsFact(fact)) {
              return monoid.One();
            }
            ++relevant;
            return monoid.Star();
          })));
  return RawSatCount{std::move(vec), relevant};
}

}  // namespace

Result<SatCounts> CountSatBoth(Evaluator& evaluator,
                               const ConjunctiveQuery& query,
                               const Database& exogenous,
                               const Database& endogenous) {
  const size_t n = endogenous.NumFacts();
  HIERARQ_ASSIGN_OR_RETURN(
      RawSatCount raw, RunSatCount(evaluator, query, exogenous, endogenous));
  const size_t m = raw.relevant_endogenous;
  HIERARQ_CHECK_LE(m, n);

  // Expand counts over subsets of Dn[F] (m facts) to counts over subsets
  // of Dn (n facts): the n−m irrelevant facts can be added freely without
  // affecting the query, so
  //   #Sat(k, b) = Σ_j raw(j, b) · binomial(n−m, k−j).
  SatCounts out;
  out.on_true.assign(n + 1, BigUint(0));
  out.on_false.assign(n + 1, BigUint(0));
  for (size_t k = 0; k <= n; ++k) {
    for (size_t j = 0; j <= k && j <= m; ++j) {
      const BigUint choices = BigUint::Binomial(n - m, k - j);
      if (choices.IsZero()) {
        continue;
      }
      out.on_true[k] += raw.vec.on_true[j] * choices;
      out.on_false[k] += raw.vec.on_false[j] * choices;
    }
  }
  return out;
}

Result<SatCounts> CountSatBoth(const ConjunctiveQuery& query,
                               const Database& exogenous,
                               const Database& endogenous) {
  Evaluator evaluator;
  return CountSatBoth(evaluator, query, exogenous, endogenous);
}

Result<std::vector<BigUint>> CountSat(Evaluator& evaluator,
                                      const ConjunctiveQuery& query,
                                      const Database& exogenous,
                                      const Database& endogenous) {
  HIERARQ_ASSIGN_OR_RETURN(
      SatCounts both, CountSatBoth(evaluator, query, exogenous, endogenous));
  return std::move(both.on_true);
}

Result<std::vector<BigUint>> CountSat(const ConjunctiveQuery& query,
                                      const Database& exogenous,
                                      const Database& endogenous) {
  Evaluator evaluator;
  return CountSat(evaluator, query, exogenous, endogenous);
}

Result<Fraction> ShapleyValue(Evaluator& evaluator,
                              const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous, const Fact& fact) {
  if (!endogenous.ContainsFact(fact)) {
    return Status::InvalidArgument("Shapley value requested for a fact that "
                                   "is not endogenous: " + fact.ToString());
  }
  const size_t n = endogenous.NumFacts();

  // Dn \ {f} and Dx ∪ {f}.
  Database endo_minus = endogenous;
  endo_minus.EraseFact(fact);
  Database exo_plus = exogenous;
  HIERARQ_RETURN_NOT_OK(exo_plus.AddFact(fact.relation, fact.tuple).status());

  HIERARQ_ASSIGN_OR_RETURN(
      std::vector<BigUint> with_f,
      CountSat(evaluator, query, exo_plus, endo_minus));
  HIERARQ_ASSIGN_OR_RETURN(
      std::vector<BigUint> without_f,
      CountSat(evaluator, query, exogenous, endo_minus));

  // Σ_k k!(n-k-1)! (A_k − B_k), over denominator n!.
  BigInt numerator(0);
  for (size_t k = 0; k + 1 <= n; ++k) {
    const BigUint weight =
        BigUint::Factorial(k) * BigUint::Factorial(n - k - 1);
    const BigInt delta = BigInt(with_f[k]) - BigInt(without_f[k]);
    numerator += BigInt(weight) * delta;
  }
  return Fraction(numerator, BigInt(BigUint::Factorial(n)));
}

Result<Fraction> ShapleyValue(const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous, const Fact& fact) {
  Evaluator evaluator;
  return ShapleyValue(evaluator, query, exogenous, endogenous, fact);
}

Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    Evaluator& evaluator, const ConjunctiveQuery& query,
    const Database& exogenous, const Database& endogenous) {
  std::vector<std::pair<Fact, Fraction>> out;
  for (const Fact& fact : endogenous.AllFacts()) {
    HIERARQ_ASSIGN_OR_RETURN(
        Fraction value,
        ShapleyValue(evaluator, query, exogenous, endogenous, fact));
    out.emplace_back(fact, std::move(value));
  }
  return out;
}

Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    const ConjunctiveQuery& query, const Database& exogenous,
    const Database& endogenous) {
  Evaluator evaluator;
  return AllShapleyValues(evaluator, query, exogenous, endogenous);
}

}  // namespace hierarq
