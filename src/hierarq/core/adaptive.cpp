#include "hierarq/core/adaptive.h"

#include <algorithm>
#include <thread>

namespace hierarq {
namespace {

// EWMA weight for measured step costs: heavy enough that one replay of a
// plan overrides a mis-calibrated constant, light enough that a single
// noisy timing (page faults, a scheduler hiccup) cannot flip a decision
// permanently.
constexpr double kFeedbackAlpha = 0.4;

// Below this many rows a timing sample is mostly fixed overhead and
// clock granularity; folding it into a per-row estimate would poison the
// EWMA with huge ns/row values.
constexpr size_t kMinFeedbackRows = 64;

}  // namespace

double CostModel::SerialNsPerRow(StorageKind kind) const {
  // Anchored on bench/baselines/BENCH_algorithm1.json (serial
  // replays_per_sec x num_facts at |D| = 300k):
  //   columnar ~12.2M rows/s -> ~82 ns/row,
  //   flat     ~4.2M  rows/s -> ~240 ns/row,
  //   sharded  ~4.1M  rows/s -> ~245 ns/row,
  //   baseline ~1.0M  rows/s -> ~970 ns/row.
  // sharded_columnar sits between columnar and sharded: columnar cells,
  // but hash-routed across 8 stores, so worse locality than one native.
  switch (kind) {
    case StorageKind::kBaseline:
      return 970.0;
    case StorageKind::kFlat:
      return 240.0;
    case StorageKind::kColumnar:
      return 82.0;
    case StorageKind::kSharded:
      return 245.0;
    case StorageKind::kShardedColumnar:
      return 110.0;
  }
  return 240.0;
}

double CostModel::SerialStepNs(StorageKind kind, size_t rows) const {
  return static_cast<double>(rows) * SerialNsPerRow(kind);
}

double CostModel::ParallelStepNs(double effective_threads,
                                 size_t rows) const {
  const double eff = std::max(1.0, effective_threads);
  return ParallelStepOverheadNs() +
         static_cast<double>(rows) * ParallelNsPerRow() / eff;
}

AdaptiveController::AdaptiveController() : AdaptiveController(Options{}) {}

AdaptiveController::AdaptiveController(const Options& options)
    : hardware_threads_(options.hardware_threads),
      max_threads_(std::max<size_t>(1, options.max_threads)),
      min_parallel_rows_(options.min_parallel_rows) {
  if (hardware_threads_ == 0) {
    hardware_threads_ = std::thread::hardware_concurrency();
    if (hardware_threads_ == 0) {
      hardware_threads_ = 1;  // hardware_concurrency() may be unknowable.
    }
  }
}

StepChoice AdaptiveController::Choose(const EliminationPlan* plan,
                                      size_t step_index,
                                      const RelationStats& input) const {
  StepChoice choice;
  choice.serial_storage = model_.BestSerialStorage();
  choice.parallel_storage = StorageKind::kShardedColumnar;

  // Per-step measured feedback, when this plan step has run before. The
  // recorded values are *wall-clock* ns/row — the parallel channel
  // already folds in the fan-out and the latch overhead, so it is used
  // as-is rather than re-divided by the thread estimate.
  double measured_serial = -1.0;
  double measured_parallel = -1.0;
  if (plan != nullptr) {
    auto it = feedback_.find(plan);
    if (it != feedback_.end() && step_index < it->second.size()) {
      measured_serial = it->second[step_index].serial_ns_per_row;
      measured_parallel = it->second[step_index].parallel_ns_per_row;
    }
  }

  choice.predicted_serial_ns =
      measured_serial > 0.0
          ? static_cast<double>(input.rows) * measured_serial
          : model_.SerialStepNs(choice.serial_storage, input.rows);

  const size_t budget =
      std::min({hardware_threads_, max_threads_,
                ShardedStore<char>::kNumShards});
  if (budget <= 1 || input.rows < min_parallel_rows_) {
    // No fan-out available, or the step is too small to amortize even a
    // single fused latch — the parallel estimate is moot.
    choice.predicted_parallel_ns = model_.ParallelStepNs(1.0, input.rows);
    return choice;
  }

  // Skew caps effective parallelism: the scatter phase ends when the
  // fullest shard's owner finishes, so at most kNumShards / skew shards'
  // worth of work proceeds concurrently.
  const double skew = std::max(1.0, input.skew);
  const double effective = std::min(
      static_cast<double>(budget),
      static_cast<double>(ShardedStore<char>::kNumShards) / skew);
  choice.predicted_parallel_ns =
      measured_parallel > 0.0
          ? static_cast<double>(input.rows) * measured_parallel
          : model_.ParallelStepNs(effective, input.rows);

  if (choice.predicted_parallel_ns < choice.predicted_serial_ns) {
    choice.parallel = true;
    choice.threads = budget;
  }
  return choice;
}

void AdaptiveController::RecordMeasured(const EliminationPlan* plan,
                                        size_t step_index, bool parallel,
                                        size_t rows, double seconds) {
  if (parallel) {
    ++parallel_steps_;
  } else {
    ++serial_steps_;
  }
  if (plan == nullptr || rows < kMinFeedbackRows || seconds <= 0.0) {
    return;
  }
  std::vector<StepFeedback>& steps = feedback_[plan];
  if (steps.size() <= step_index) {
    steps.resize(step_index + 1);
  }
  const double ns_per_row = seconds * 1e9 / static_cast<double>(rows);
  StepFeedback& fb = steps[step_index];
  double& channel =
      parallel ? fb.parallel_ns_per_row : fb.serial_ns_per_row;
  if (channel < 0.0) {
    channel = ns_per_row;
  } else {
    channel = kFeedbackAlpha * ns_per_row + (1.0 - kFeedbackAlpha) * channel;
  }
}

double AdaptiveController::MeasuredNsPerRow(const EliminationPlan* plan,
                                            size_t step_index,
                                            bool parallel) const {
  auto it = feedback_.find(plan);
  if (it == feedback_.end() || step_index >= it->second.size()) {
    return -1.0;
  }
  const StepFeedback& fb = it->second[step_index];
  return parallel ? fb.parallel_ns_per_row : fb.serial_ns_per_row;
}

}  // namespace hierarq
