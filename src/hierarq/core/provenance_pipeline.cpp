#include "hierarq/core/provenance_pipeline.h"

namespace hierarq {

Result<ProvenanceResult> ComputeProvenance(Evaluator& evaluator,
                                           const ConjunctiveQuery& query,
                                           const Database& db) {
  const ProvMonoid monoid;
  ProvenanceResult out;
  HIERARQ_ASSIGN_OR_RETURN(
      out.tree, (evaluator.Evaluate<ProvMonoid>(
                    query, monoid, db, [&out](const Fact& fact) {
                      const uint64_t symbol = out.facts.size();
                      out.facts.push_back(fact);
                      return ProvTree::Leaf(symbol);
                    })));
  return out;
}

Result<ProvenanceResult> ComputeProvenance(const ConjunctiveQuery& query,
                                           const Database& db) {
  Evaluator evaluator;
  return ComputeProvenance(evaluator, query, db);
}

}  // namespace hierarq
