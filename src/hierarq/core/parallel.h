#ifndef HIERARQ_CORE_PARALLEL_H_
#define HIERARQ_CORE_PARALLEL_H_

/// \file parallel.h
/// \brief Intra-query parallel Algorithm 1: hash-sharded Rule 1/Rule 2
/// steps fanned out across a `WorkerPool`.
///
/// Algorithm 1's per-step work partitions perfectly by key hash: the key
/// of every Rule 1 output group and every Rule 2 output fact determines a
/// single shard (`ShardedStore::ShardOfHash`, the hash's top bits), so a
/// step splits into `kNumShards` sub-steps that share nothing but
/// read-only inputs. Each step runs in two phases:
///
///   1. **Hash.** Per-row output-key hashes are computed once, in
///      parallel over contiguous row/slot ranges (columnar inputs use the
///      SIMD batch folds of util/simd.h; map inputs fold per occupied
///      slot). Rule 1 hashes only the surviving positions — the hash *is*
///      the output partition key.
///   2. **Scatter/accumulate.** One task per output shard scans the
///      input(s), keeps the rows whose hash routes to its shard, and
///      accumulates them into that shard's private table — lock-free,
///      since no other task ever touches the shard. Rule 2 tasks
///      additionally probe the *whole* other side read-only with the
///      precomputed hashes. The output shards are FlatMaps
///      (`StorageKind::kSharded`) or ColumnarStores
///      (`StorageKind::kShardedColumnar`, which keeps the SIMD kernels in
///      play for downstream steps) — `IntraQueryParallel::parallel_storage`
///      picks the flavor.
///
/// Both phases run inside **one** `WorkerPool::ParallelFor` per step: the
/// hash work is cut into chunk closures, every shard task claims and runs
/// chunks off a shared atomic counter, then spin-waits until all chunks
/// are done and scatters into its own shard. This fuses what used to be
/// two or three pool latches per step (hash left, hash right, scatter)
/// into exactly one — measurable via `WorkerPool::parallel_for_calls()`.
/// The wait cannot deadlock even when the pool has fewer workers than
/// tasks: a task only starts waiting after the claim counter is
/// exhausted, so every chunk is already being executed by some *running*
/// task, which finishes it without needing another scheduling slot. Hash
/// writes land at fixed addresses regardless of which task runs a chunk,
/// so fusion changes no results.
///
/// The final ⊕-fold to the nullary atom (where every row lands on one
/// key, so output sharding cannot help) instead folds fixed per-segment
/// partials in parallel and ⊕-merges them in segment order.
///
/// Determinism: shard ownership depends only on key hashes and the fixed
/// shard count, and every task scans its input in a fixed order — so
/// results are *identical for any thread count* (including one), and
/// bit-identical to the serial runner for exact monoids, whose ⊕ is fully
/// associative/commutative. Floating-point monoids see one fixed
/// shard-induced ⊕ order, within the same tolerance the storage backends
/// already imply (the differential suite checks 1e-11 relative).
///
/// Scheduling: every entry point takes an `IntraQueryParallel` handle
/// (pool + thread budget) and falls back to the bit-identical serial path
/// when disabled, when a relation is under `min_rows` (fan-out overhead
/// would dominate), or when an input lives in the `kBaseline` reference
/// backend (which exposes no range-scannable layout). `ParallelFor` must
/// be driven from outside the pool — `Evaluator` calls these on the
/// client thread, exactly like `EvalService`'s across-query fan-out.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/cancel.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/columnar.h"
#include "hierarq/data/sharded.h"
#include "hierarq/data/storage.h"
#include "hierarq/data/tuple.h"
#include "hierarq/query/elimination.h"
#include "hierarq/util/hash.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/simd.h"
#include "hierarq/util/worker_pool.h"

namespace hierarq {

/// How (and whether) one evaluation may parallelize inside a single
/// query. Plain aggregate, cheap to pass by value; the pool is borrowed.
struct IntraQueryParallel {
  /// Executes the per-shard tasks; nullptr disables parallelism. Must be
  /// driven from outside the pool (no task of `pool` may re-enter).
  WorkerPool* pool = nullptr;
  /// Advisory parallelism: <= 1 disables. Per-step fan-out is capped by
  /// `ShardedStore::kNumShards` regardless.
  size_t threads = 1;
  /// Steps whose input support is below this run serially — the fan-out
  /// latch and task overhead cost more than they save on small tables.
  size_t min_rows = 4096;
  /// Which sharded flavor parallel steps scatter into: kSharded (FlatMap
  /// shards) or kShardedColumnar (ColumnarStore shards, SIMD kernels).
  StorageKind parallel_storage = StorageKind::kSharded;

  bool enabled() const { return pool != nullptr && threads > 1; }
};

/// What one step primitive actually did — the parallel-vs-serial
/// predicate is computed inside ProjectDropStep/JoinUnionStep, and the
/// runners (and their trace events) learn the outcome through this
/// out-param instead of re-deriving it.
struct StepExecution {
  bool parallel = false;
  size_t threads = 1;
};

namespace parallel_internal {

/// Deterministic [begin, end) slice `i` of `n` elements cut into `parts`.
inline std::pair<size_t, size_t> Slice(size_t n, size_t parts, size_t i) {
  return {n * i / parts, n * (i + 1) / parts};
}

/// True when the parallel path can scan this relation's layout (the
/// baseline unordered_map exposes no slot ranges).
template <typename K>
bool RangeScannable(const AnnotatedRelation<K>& rel) {
  return rel.storage() != StorageKind::kBaseline;
}

/// Probes `rel` for `key` with its hash precomputed (`hash` ==
/// `HashRange` over `key`'s values). Works on every backend; the
/// baseline ignores the hash.
template <typename K>
const K* FindWithHash(const AnnotatedRelation<K>& rel, uint64_t hash,
                      const Tuple& key) {
  switch (rel.storage()) {
    case StorageKind::kFlat:
      return rel.flat_store().FindHashed(hash, key);
    case StorageKind::kColumnar:
      return rel.columnar_store().FindWithHash(hash, key);
    case StorageKind::kSharded: {
      const auto& store = rel.sharded_store();
      return store.shard(store.ShardOfHash(hash)).FindHashed(hash, key);
    }
    case StorageKind::kShardedColumnar: {
      const auto& store = rel.sharded_columnar_store();
      return store.shard(store.ShardOfHash(hash)).FindWithHash(hash, key);
    }
    case StorageKind::kBaseline:
      return rel.Find(key);
  }
  HIERARQ_CHECK(false) << "unhandled StorageKind";
  return nullptr;
}

/// Visits every fact of `rel` as (hash, key, value) where `hash` is
/// looked up in the side arrays `PrecomputeHashes` filled — the shard
/// tasks' filtered rescan. Enumeration order is fixed per backend
/// (columnar rows ascending; flat slots ascending; sharded shards then
/// slots ascending), which is what makes shard contents deterministic.
/// `key_scratch` is reused across rows for the columnar layout.
template <typename K, typename Fn>
void ScanWithHashes(const AnnotatedRelation<K>& rel,
                    const std::vector<std::vector<uint64_t>>& hashes,
                    Tuple* key_scratch, Fn fn) {
  switch (rel.storage()) {
    case StorageKind::kColumnar: {
      const ColumnarStore<K>& store = rel.columnar_store();
      const size_t arity = store.arity();
      const size_t n = store.size();
      key_scratch->resize(arity);
      const std::vector<uint64_t>& row_hashes = hashes.front();
      for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < arity; ++c) {
          (*key_scratch)[c] = store.column(c)[r];
        }
        fn(row_hashes[r], static_cast<const Tuple&>(*key_scratch),
           store.row_value(static_cast<uint32_t>(r)));
      }
      return;
    }
    case StorageKind::kFlat: {
      const auto& store = rel.flat_store();
      const std::vector<uint64_t>& slot_hashes = hashes.front();
      store.ForEachSlotInRange(
          0, store.capacity(), [&](size_t slot, const Tuple& key,
                                   const K& value) {
            fn(slot_hashes[slot], key, value);
          });
      return;
    }
    case StorageKind::kSharded: {
      const ShardedStore<K>& store = rel.sharded_store();
      for (size_t s = 0; s < ShardedStore<K>::kNumShards; ++s) {
        const auto& shard = store.shard(s);
        const std::vector<uint64_t>& slot_hashes = hashes[s];
        shard.ForEachSlotInRange(
            0, shard.capacity(), [&](size_t slot, const Tuple& key,
                                     const K& value) {
              fn(slot_hashes[slot], key, value);
            });
      }
      return;
    }
    case StorageKind::kShardedColumnar: {
      const ShardedColumnarStore<K>& store = rel.sharded_columnar_store();
      for (size_t s = 0; s < ShardedColumnarStore<K>::kNumShards; ++s) {
        const ColumnarStore<K>& shard = store.shard(s);
        const std::vector<uint64_t>& row_hashes = hashes[s];
        const size_t arity = shard.arity();
        const size_t n = shard.size();
        key_scratch->resize(arity);
        for (size_t r = 0; r < n; ++r) {
          for (size_t c = 0; c < arity; ++c) {
            (*key_scratch)[c] = shard.column(c)[r];
          }
          fn(row_hashes[r], static_cast<const Tuple&>(*key_scratch),
             shard.row_value(static_cast<uint32_t>(r)));
        }
      }
      return;
    }
    case StorageKind::kBaseline:
      break;
  }
  HIERARQ_CHECK(false) << "baseline relations take the serial path";
}

/// Pre-sizes `*hashes` (one per-row/per-slot array per enumeration
/// segment of `rel`: one for columnar/flat, one per shard for the sharded
/// flavors) and appends closures to `*chunks`, each of which fills one
/// contiguous piece, hashing only the positions `keep(position)` admits
/// in ascending position order — Rule 1 passes the survivor filter,
/// Rule 2 keeps everything. The closures are independent and write
/// disjoint fixed locations, so any task may run any chunk; they are
/// executed inside the step's single fused ParallelFor (see
/// RunChunksThenShards). `tasks` controls the chunk granularity of the
/// contiguous layouts.
template <typename K, typename Keep>
void AppendHashChunks(const AnnotatedRelation<K>& rel, Keep keep,
                      size_t tasks,
                      std::vector<std::vector<uint64_t>>* hashes,
                      std::vector<std::function<void()>>* chunks) {
  switch (rel.storage()) {
    case StorageKind::kColumnar: {
      const ColumnarStore<K>& store = rel.columnar_store();
      std::vector<size_t> cols;
      cols.reserve(store.arity());
      for (size_t c = 0; c < store.arity(); ++c) {
        if (keep(c)) {
          cols.push_back(c);
        }
      }
      hashes->resize(1);
      std::vector<uint64_t>& row_hashes = (*hashes)[0];
      const size_t n = store.size();
      row_hashes.resize(n);
      for (size_t i = 0; i < tasks; ++i) {
        chunks->push_back([&store, &row_hashes, cols, n, tasks, i] {
          const auto [lo, hi] = Slice(n, tasks, i);
          std::fill(row_hashes.begin() + lo, row_hashes.begin() + hi,
                    kHashRangeSeed);
          for (size_t c : cols) {
            simd::HashCombineRows(row_hashes.data() + lo,
                                  store.column(c).data() + lo, hi - lo);
          }
        });
      }
      return;
    }
    case StorageKind::kFlat: {
      const auto& store = rel.flat_store();
      hashes->resize(1);
      std::vector<uint64_t>& slot_hashes = (*hashes)[0];
      slot_hashes.resize(store.capacity());
      for (size_t i = 0; i < tasks; ++i) {
        chunks->push_back([&store, &slot_hashes, keep, tasks, i] {
          const auto [lo, hi] = Slice(store.capacity(), tasks, i);
          store.ForEachSlotInRange(
              lo, hi, [&](size_t slot, const Tuple& key, const K&) {
                uint64_t h = kHashRangeSeed;
                for (size_t c = 0; c < key.size(); ++c) {
                  if (keep(c)) {
                    h = HashCombine(h, static_cast<uint64_t>(key[c]));
                  }
                }
                slot_hashes[slot] = h;
              });
        });
      }
      return;
    }
    case StorageKind::kSharded: {
      const ShardedStore<K>& store = rel.sharded_store();
      hashes->resize(ShardedStore<K>::kNumShards);
      for (size_t s = 0; s < ShardedStore<K>::kNumShards; ++s) {
        // One chunk per input shard; the closure owns its whole array, so
        // it sizes the array itself.
        std::vector<uint64_t>& slot_hashes = (*hashes)[s];
        chunks->push_back([&store, &slot_hashes, keep, s] {
          const auto& shard = store.shard(s);
          slot_hashes.resize(shard.capacity());
          shard.ForEachSlotInRange(
              0, shard.capacity(),
              [&](size_t slot, const Tuple& key, const K&) {
                uint64_t h = kHashRangeSeed;
                for (size_t c = 0; c < key.size(); ++c) {
                  if (keep(c)) {
                    h = HashCombine(h, static_cast<uint64_t>(key[c]));
                  }
                }
                slot_hashes[slot] = h;
              });
        });
      }
      return;
    }
    case StorageKind::kShardedColumnar: {
      const ShardedColumnarStore<K>& store = rel.sharded_columnar_store();
      std::vector<size_t> cols;
      cols.reserve(store.arity());
      for (size_t c = 0; c < store.arity(); ++c) {
        if (keep(c)) {
          cols.push_back(c);
        }
      }
      hashes->resize(ShardedColumnarStore<K>::kNumShards);
      for (size_t s = 0; s < ShardedColumnarStore<K>::kNumShards; ++s) {
        std::vector<uint64_t>& row_hashes = (*hashes)[s];
        chunks->push_back([&store, &row_hashes, cols, s] {
          const ColumnarStore<K>& shard = store.shard(s);
          const size_t n = shard.size();
          row_hashes.assign(n, kHashRangeSeed);
          for (size_t c : cols) {
            simd::HashCombineRows(row_hashes.data(), shard.column(c).data(),
                                  n);
          }
        });
      }
      return;
    }
    case StorageKind::kBaseline:
      break;
  }
  HIERARQ_CHECK(false) << "baseline relations take the serial path";
}

/// The fused-step driver: ONE ParallelFor of `num_shards` tasks runs the
/// hash chunks *and* the per-shard scatter. Each task drains chunks off a
/// shared claim counter, then waits (cooperatively — see the deadlock
/// argument in the file comment) until every chunk is done before
/// scattering into its own shard. The release-increment/acquire-load pair
/// on `chunks_done` orders all chunk writes before every shard task's
/// reads.
inline void RunChunksThenShards(
    WorkerPool* pool, size_t num_shards,
    const std::vector<std::function<void()>>& chunks,
    const std::function<void(size_t shard)>& shard_task) {
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  const size_t total = chunks.size();
  pool->ParallelFor(num_shards, [&](size_t, size_t j) {
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) {
        break;
      }
      chunks[c]();
      chunks_done.fetch_add(1, std::memory_order_release);
    }
    while (chunks_done.load(std::memory_order_acquire) < total) {
      std::this_thread::yield();
    }
    shard_task(j);
  });
}

}  // namespace parallel_internal

namespace parallel_internal {

/// The scatter phase of the fused Rule 1, generic over the output sharded
/// flavor (`Sharded` is ShardedStore<K> or ShardedColumnarStore<K> —
/// both expose shard(j) stores with MergeHashed and the identical
/// ShardOfHash routing).
template <typename Sharded, typename K, typename Plus>
void FusedProjectScatter(const AnnotatedRelation<K>& src, size_t drop_pos,
                         Plus plus, const IntraQueryParallel& par,
                         const std::vector<std::vector<uint64_t>>& hashes,
                         const std::vector<std::function<void()>>& chunks,
                         Sharded* sharded) {
  RunChunksThenShards(par.pool, Sharded::kNumShards, chunks, [&](size_t j) {
    typename Sharded::Shard& mine = sharded->shard(j);
    Tuple scan_scratch;
    Tuple projected;
    ScanWithHashes(src, hashes, &scan_scratch,
                   [&](uint64_t hash, const Tuple& key, const K& value) {
                     if (Sharded::ShardOfHash(hash) != j) {
                       return;
                     }
                     projected.clear();
                     for (size_t c = 0; c < key.size(); ++c) {
                       if (c != drop_pos) {
                         projected.push_back(key[c]);
                       }
                     }
                     mine.MergeHashed(hash, projected, value, plus);
                   });
  });
}

}  // namespace parallel_internal

/// Rule 1, hash-sharded: ⊕-projects schema position `drop_pos` out of
/// `src` into `out`, which the caller has Reset to the surviving schema
/// in a sharded flavor (kSharded or kShardedColumnar). One fused
/// ParallelFor computes the surviving-key hashes and scatters — each
/// output shard task accumulates the rows whose hash it owns.
/// Preconditions: `par.enabled()`, `src` not baseline, `out` sharded.
template <typename K, typename Plus>
void ParallelProjectDropInto(const AnnotatedRelation<K>& src,
                             size_t drop_pos, Plus plus,
                             const IntraQueryParallel& par,
                             AnnotatedRelation<K>* out) {
  HIERARQ_CHECK(par.enabled());
  HIERARQ_CHECK(out->storage() == StorageKind::kSharded ||
                out->storage() == StorageKind::kShardedColumnar);
  HIERARQ_CHECK_LT(drop_pos, src.schema().size());
  HIERARQ_CHECK_EQ(out->schema().size() + 1, src.schema().size());

  std::vector<std::vector<uint64_t>> hashes;
  std::vector<std::function<void()>> chunks;
  parallel_internal::AppendHashChunks(
      src, [drop_pos](size_t c) { return c != drop_pos; }, par.threads,
      &hashes, &chunks);

  out->Reserve(src.size());
  if (out->storage() == StorageKind::kSharded) {
    parallel_internal::FusedProjectScatter(src, drop_pos, plus, par, hashes,
                                           chunks,
                                           &out->mutable_sharded_store());
  } else {
    parallel_internal::FusedProjectScatter(
        src, drop_pos, plus, par, hashes, chunks,
        &out->mutable_sharded_columnar_store());
  }
}

namespace parallel_internal {

/// The scatter phase of the fused Rule 2, generic over the output sharded
/// flavor like FusedProjectScatter.
template <typename Sharded, typename K, typename Times>
void FusedJoinScatter(const AnnotatedRelation<K>& left,
                      const AnnotatedRelation<K>& right, Times times,
                      const K& zero, const IntraQueryParallel& par,
                      const std::vector<std::vector<uint64_t>>& left_hashes,
                      const std::vector<std::vector<uint64_t>>& right_hashes,
                      const std::vector<std::function<void()>>& chunks,
                      Sharded* sharded) {
  RunChunksThenShards(par.pool, Sharded::kNumShards, chunks, [&](size_t j) {
    typename Sharded::Shard& mine = sharded->shard(j);
    Tuple scan_scratch;
    // Left pass: every left key lands in the result, joined against the
    // right annotation or zero.
    ScanWithHashes(left, left_hashes, &scan_scratch,
                   [&](uint64_t hash, const Tuple& key, const K& value) {
                     if (Sharded::ShardOfHash(hash) != j) {
                       return;
                     }
                     const K* other = FindWithHash(right, hash, key);
                     auto [slot, inserted] = mine.FindOrInsertHashed(hash, key);
                     HIERARQ_CHECK(inserted);  // Left keys are unique.
                     *slot = times(value, other != nullptr ? *other : zero);
                   });
    // Right pass: only keys absent from the left still need a result
    // entry; shared keys were finalized above.
    ScanWithHashes(right, right_hashes, &scan_scratch,
                   [&](uint64_t hash, const Tuple& key, const K& value) {
                     if (Sharded::ShardOfHash(hash) != j) {
                       return;
                     }
                     auto [slot, inserted] = mine.FindOrInsertHashed(hash, key);
                     if (inserted) {
                       *slot = times(zero, value);
                     }
                   });
  });
}

}  // namespace parallel_internal

/// Rule 2, hash-sharded: out(x) = left(x) ⊗ right(x) over the union of
/// supports. One fused ParallelFor hashes both sides and scatters: each
/// output-shard task scans both sides filtered to its hash range and
/// probes the opposite side read-only with the precomputed hash
/// (one-sided facts multiply with `zero`, exactly like the serial native;
/// only absent-absent pairs are skipped — Lemma 6.6). Preconditions:
/// `par.enabled()`, neither input baseline, `out` Reset to the common
/// schema in a sharded flavor (kSharded or kShardedColumnar).
template <typename K, typename Times>
void ParallelJoinUnionInto(const AnnotatedRelation<K>& left,
                           const AnnotatedRelation<K>& right, Times times,
                           const K& zero, const IntraQueryParallel& par,
                           AnnotatedRelation<K>* out) {
  HIERARQ_CHECK(par.enabled());
  HIERARQ_CHECK(out->storage() == StorageKind::kSharded ||
                out->storage() == StorageKind::kShardedColumnar);
  HIERARQ_CHECK(left.schema() == right.schema())
      << "Rule 2 requires equal schemas";
  HIERARQ_CHECK(out->schema() == left.schema());

  const auto keep_all = [](size_t) { return true; };
  std::vector<std::vector<uint64_t>> left_hashes;
  std::vector<std::vector<uint64_t>> right_hashes;
  std::vector<std::function<void()>> chunks;
  parallel_internal::AppendHashChunks(left, keep_all, par.threads,
                                      &left_hashes, &chunks);
  parallel_internal::AppendHashChunks(right, keep_all, par.threads,
                                      &right_hashes, &chunks);

  out->Reserve(left.size() + right.size());  // Lemma 6.6 bound.
  if (out->storage() == StorageKind::kSharded) {
    parallel_internal::FusedJoinScatter(left, right, times, zero, par,
                                        left_hashes, right_hashes, chunks,
                                        &out->mutable_sharded_store());
  } else {
    parallel_internal::FusedJoinScatter(
        left, right, times, zero, par, left_hashes, right_hashes, chunks,
        &out->mutable_sharded_columnar_store());
  }
}

/// The terminal Rule 1 shape: every row of `src` folds into the single
/// nullary key, so output sharding cannot split the work — instead each
/// task ⊕-folds one fixed input segment and the partials ⊕-merge in
/// segment order (the "cheap ⊕-merge of shard results"). Returns nullopt
/// for an empty support (the empty ⊕). Deterministic for any thread
/// count: segments are fixed fractions of the enumeration, not
/// work-stealing chunks.
template <typename K, typename Plus>
std::optional<K> ParallelFoldSupport(const AnnotatedRelation<K>& src,
                                     Plus plus,
                                     const IntraQueryParallel& par) {
  using Sharded = ShardedStore<K>;
  HIERARQ_CHECK(par.enabled());
  constexpr size_t kSegments = Sharded::kNumShards;
  std::vector<std::optional<K>> partial(kSegments);

  const auto fold_into = [&plus](std::optional<K>& acc, const K& value) {
    if (!acc.has_value()) {
      acc = value;
    } else {
      acc = plus(*acc, value);
    }
  };

  switch (src.storage()) {
    case StorageKind::kColumnar: {
      const ColumnarStore<K>& store = src.columnar_store();
      const size_t n = store.size();
      par.pool->ParallelFor(kSegments, [&](size_t, size_t s) {
        const auto [lo, hi] = parallel_internal::Slice(n, kSegments, s);
        for (size_t r = lo; r < hi; ++r) {
          fold_into(partial[s], store.row_value(static_cast<uint32_t>(r)));
        }
      });
      break;
    }
    case StorageKind::kFlat: {
      const auto& store = src.flat_store();
      par.pool->ParallelFor(kSegments, [&](size_t, size_t s) {
        const auto [lo, hi] =
            parallel_internal::Slice(store.capacity(), kSegments, s);
        store.ForEachInSlotRange(lo, hi,
                                 [&](const Tuple&, const K& value) {
                                   fold_into(partial[s], value);
                                 });
      });
      break;
    }
    case StorageKind::kSharded: {
      const ShardedStore<K>& store = src.sharded_store();
      par.pool->ParallelFor(kSegments, [&](size_t, size_t s) {
        store.shard(s).ForEach([&](const Tuple&, const K& value) {
          fold_into(partial[s], value);
        });
      });
      break;
    }
    case StorageKind::kShardedColumnar: {
      const ShardedColumnarStore<K>& store = src.sharded_columnar_store();
      par.pool->ParallelFor(kSegments, [&](size_t, size_t s) {
        const ColumnarStore<K>& shard = store.shard(s);
        const size_t n = shard.size();
        for (size_t r = 0; r < n; ++r) {
          fold_into(partial[s], shard.row_value(static_cast<uint32_t>(r)));
        }
      });
      break;
    }
    case StorageKind::kBaseline: {
      // No range-scannable layout; fold serially (callers normally route
      // baseline inputs to the serial runner before getting here).
      std::optional<K> acc;
      src.ForEach(
          [&](const Tuple&, const K& value) { fold_into(acc, value); });
      return acc;
    }
  }

  std::optional<K> acc;
  for (std::optional<K>& part : partial) {
    if (part.has_value()) {
      fold_into(acc, *part);
    }
  }
  return acc;
}

/// One Rule 1 step with the parallel-vs-serial decision made in one
/// place (shared by the batch runner below and the incremental view's
/// Materialize, so the two engines can never drift in coverage): the
/// terminal nullary projection takes the segment fold, other big
/// range-scannable sources take the sharded scatter, everything else
/// runs the bit-identical serial native into `serial_storage`. Resets
/// `*result`; never Clears `source`.
template <typename K, typename Plus>
void ProjectDropStep(const AnnotatedRelation<K>& source, size_t drop_pos,
                     const VarSet& result_vars, Plus plus,
                     const IntraQueryParallel& par,
                     StorageKind serial_storage,
                     AnnotatedRelation<K>* result,
                     StepExecution* exec = nullptr) {
  const bool big = par.enabled() && source.size() >= par.min_rows &&
                   parallel_internal::RangeScannable(source);
  if (exec != nullptr) {
    exec->parallel = big;
    exec->threads = big ? par.threads : 1;
  }
  if (big && result_vars.empty()) {
    // Terminal fold: all rows land on the empty key, so output sharding
    // cannot split the work; the single-key result is cheapest flat.
    result->Reset(result_vars, StorageKind::kFlat);
    std::optional<K> folded = ParallelFoldSupport(source, plus, par);
    if (folded.has_value()) {
      result->Set(Tuple{}, *std::move(folded));
    }
  } else if (big) {
    result->Reset(result_vars, par.parallel_storage);
    ParallelProjectDropInto(source, drop_pos, plus, par, result);
  } else {
    result->Reset(result_vars, serial_storage);
    source.ProjectDropInto(drop_pos, plus, result);
  }
}

/// One Rule 2 step, parallel-vs-serial decided exactly like
/// ProjectDropStep (nullary results always run serial — they hold at
/// most one key). Resets `*result`; never Clears the operands.
template <typename K, typename Times>
void JoinUnionStep(const AnnotatedRelation<K>& left,
                   const AnnotatedRelation<K>& right,
                   const VarSet& result_vars, Times times, const K& zero,
                   const IntraQueryParallel& par, StorageKind serial_storage,
                   AnnotatedRelation<K>* result,
                   StepExecution* exec = nullptr) {
  const bool big = par.enabled() && !result_vars.empty() &&
                   left.size() + right.size() >= par.min_rows &&
                   parallel_internal::RangeScannable(left) &&
                   parallel_internal::RangeScannable(right);
  if (exec != nullptr) {
    exec->parallel = big;
    exec->threads = big ? par.threads : 1;
  }
  if (big) {
    result->Reset(result_vars, par.parallel_storage);
    ParallelJoinUnionInto(left, right, times, zero, par, result);
  } else {
    result->Reset(result_vars, serial_storage);
    AnnotatedRelation<K>::JoinUnionInto(left, right, times, zero, result);
  }
}

/// `RunAlgorithm1InPlace` with intra-query parallelism: per-step fan-out
/// over hash shards when the step's input is large enough, bit-identical
/// serial execution otherwise (and entirely serial when `par` is
/// disabled). Intermediates produced by parallel steps live in the
/// sharded flavor `par.parallel_storage` names; small steps keep their
/// source's backend so the serial natives still apply. See
/// RunAlgorithm1InPlace for the relations-vector contract.
template <TwoMonoid M>
typename M::value_type RunAlgorithm1InPlaceParallel(
    const EliminationPlan& plan, const M& monoid,
    std::vector<AnnotatedRelation<typename M::value_type>>& relations,
    const IntraQueryParallel& par) {
  using K = typename M::value_type;
  if (!par.enabled()) {
    return RunAlgorithm1InPlace(plan, monoid, relations);
  }
  HIERARQ_CHECK_EQ(relations.size(), plan.num_atoms());

  const auto plus = [&monoid](const K& a, const K& b) {
    return monoid.Plus(a, b);
  };
  const auto times = [&monoid](const K& a, const K& b) {
    return monoid.Times(a, b);
  };

  obs::Tracer* const tracer = obs::Tracer::Current();
  obs::QueryStats* const query_stats = obs::CurrentQueryStats();
  uint32_t step_index = 0;
  for (const EliminationStep& step : plan.steps()) {
    // Deadline gate between steps (see core/cancel.h); shard sub-tasks
    // within a step run to completion — only the step loop aborts.
    CancellationCheckpoint();
    AnnotatedRelation<K>& result = relations[step.result_atom];
    const VarSet& result_vars = plan.vars_of(step.result_atom);

    const uint64_t start_ns = tracer != nullptr ? obs::Tracer::NowNs() : 0;
    uint64_t rows_in = 0;
    StepExecution exec;
    if (step.rule == EliminationRule::kProjectVariable) {
      AnnotatedRelation<K>& source = relations[step.source_atom];
      HIERARQ_CHECK_LT(step.drop_pos, source.schema().size());
      HIERARQ_CHECK_EQ(source.schema()[step.drop_pos], step.variable);
      rows_in = source.size();
      ProjectDropStep(source, step.drop_pos, result_vars, plus, par,
                      source.storage(), &result, &exec);
      source.Clear();
    } else {
      AnnotatedRelation<K>& left = relations[step.left_atom];
      AnnotatedRelation<K>& right = relations[step.right_atom];
      rows_in = left.size() + right.size();
      JoinUnionStep(left, right, result_vars, times, monoid.Zero(), par,
                    left.storage(), &result, &exec);
      left.Clear();
      right.Clear();
    }
    if (query_stats != nullptr) {
      query_stats->RecordStep(
          step.rule == EliminationRule::kProjectVariable ? 1 : 2, rows_in,
          result.size(), exec.parallel);
    }
    if (tracer != nullptr) {
      obs::TraceStepArgs args;
      args.step_index = step_index;
      args.rule = step.rule == EliminationRule::kProjectVariable ? 1 : 2;
      args.backend = result.storage();
      args.simd = simd::ActiveLevel();
      args.parallel = exec.parallel;
      args.threads = static_cast<uint32_t>(exec.threads);
      args.rows_in = rows_in;
      args.rows_out = result.size();
      tracer->EmitStep(start_ns, obs::Tracer::NowNs(), args);
    }
    ++step_index;
  }

  AnnotatedRelation<K>& final_rel = relations[plan.final_atom()];
  auto [slot, inserted] = final_rel.FindOrInsert(Tuple{});
  K result = inserted ? monoid.Zero() : std::move(*slot);
  final_rel.Clear();
  return result;
}

}  // namespace hierarq

#endif  // HIERARQ_CORE_PARALLEL_H_
