#include "hierarq/core/bagset.h"

#include <algorithm>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/algorithm1.h"

namespace hierarq {

Result<BagSetMaxResult> MaximizeBagSet(const ConjunctiveQuery& query,
                                       const Database& d,
                                       const Database& repair, size_t budget,
                                       const RepairCosts* costs,
                                       StorageKind storage) {
  const BagMaxMonoid monoid(budget);

  // ψ(D, Dr): facts of D get 1 (all-ones); facts of Dr \ D get ★ (or the
  // generalized cost vector); everything else is absent (Definition 5.10).
  HIERARQ_ASSIGN_OR_RETURN(Database combined, d.UnionWith(repair));

  HIERARQ_ASSIGN_OR_RETURN(
      BagMaxVec profile,
      (RunAlgorithm1OnQuery<BagMaxMonoid>(
          query, monoid, combined, [&](const Fact& fact) -> BagMaxVec {
            if (d.ContainsFact(fact)) {
              return monoid.One();
            }
            size_t cost = 1;
            if (costs != nullptr) {
              auto it = costs->find(fact);
              if (it != costs->end()) {
                cost = it->second;
              }
            }
            return monoid.FromCost(cost);
          },
          storage)));

  BagSetMaxResult out;
  out.saturated = BagMaxMonoid::Saturated(profile);
  out.max_multiplicity = profile.back();
  out.profile = std::move(profile);
  return out;
}

Result<std::vector<Fact>> ExtractOptimalRepair(const ConjunctiveQuery& query,
                                               const Database& d,
                                               const Database& repair,
                                               size_t budget) {
  HIERARQ_ASSIGN_OR_RETURN(BagSetMaxResult base,
                           MaximizeBagSet(query, d, repair, budget));
  const uint64_t target = base.max_multiplicity;

  // Greedy with the solver as oracle: committing fact f is safe iff the
  // optimum from D ∪ {f} with budget-1 still equals the global optimum.
  // If an optimal solution is non-empty, at least one of its facts passes
  // the test, so the greedy always makes progress toward `target`.
  Database current = d;
  std::vector<Fact> candidates;
  for (const Fact& fact : repair.AllFacts()) {
    if (!d.ContainsFact(fact)) {
      candidates.push_back(fact);
    }
  }

  std::vector<Fact> chosen;
  size_t remaining = budget;
  while (remaining > 0) {
    // Are we already at the target without further repairs?
    HIERARQ_ASSIGN_OR_RETURN(uint64_t now,
                             BagSetCountHierarchical(query, current));
    if (now >= target) {
      break;
    }
    bool committed = false;
    for (size_t i = 0; i < candidates.size() && !committed; ++i) {
      Database tentative = current;
      HIERARQ_RETURN_NOT_OK(
          tentative.AddFact(candidates[i].relation, candidates[i].tuple)
              .status());
      HIERARQ_ASSIGN_OR_RETURN(
          BagSetMaxResult sub,
          MaximizeBagSet(query, tentative, repair, remaining - 1));
      if (sub.max_multiplicity >= target) {
        chosen.push_back(candidates[i]);
        current = std::move(tentative);
        candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(i));
        remaining -= 1;
        committed = true;
      }
    }
    if (!committed) {
      return Status::Internal(
          "optimal-repair greedy failed to make progress (bug)");
    }
  }
  return chosen;
}

Result<uint64_t> BagSetCountHierarchical(const ConjunctiveQuery& query,
                                         const Database& d,
                                         StorageKind storage) {
  const CountMonoid monoid;
  return RunAlgorithm1OnQuery<CountMonoid>(
      query, monoid, d, [](const Fact&) -> uint64_t { return 1; }, storage);
}

}  // namespace hierarq
