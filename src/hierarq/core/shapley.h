#ifndef HIERARQ_CORE_SHAPLEY_H_
#define HIERARQ_CORE_SHAPLEY_H_

/// \file shapley.h
/// \brief #Sat computation and Shapley values of facts
/// (paper §5.6, Theorem 5.16).
///
/// #Sat_{Q,Dx,Dn}(k) counts the size-k subsets D' ⊆ Dn with Q(Dx ∪ D')
/// true (Definition 5.13). Algorithm 1 computes the whole vector at once
/// with the #Sat 2-monoid (Definition 5.14): exogenous facts are annotated
/// 1, endogenous facts ★ (Definition 5.15). Shapley values then follow
/// from the Livshits–Bertossi–Kimelfeld–Sebag reduction (the displayed
/// equation after Definition 5.13):
///
///   Shapley(f) = Σ_{k=0}^{n-1} k!(n-k-1)!/n! ·
///                ( #Sat_{Q, Dx∪{f}, Dn\{f}}(k) − #Sat_{Q, Dx, Dn\{f}}(k) )
///
/// with n = |Dn|. Counts use exact BigUint arithmetic; Shapley values are
/// exact `Fraction`s (denominator n!).

/// Every entry point has an `Evaluator&` overload that amortizes the plan
/// build and relation buffers across Algorithm 1 invocations — the
/// all-facts Shapley computation runs Algorithm 1 2·|Dn| times on the same
/// query, so it reuses one evaluator throughout.

#include <vector>

#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/bigint.h"
#include "hierarq/util/fraction.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// The full #Sat vector: counts[k] = #Sat_{Q,Dx,Dn}(k) for k = 0..|Dn|.
/// Exact (BigUint) counts.
Result<std::vector<BigUint>> CountSat(const ConjunctiveQuery& query,
                                      const Database& exogenous,
                                      const Database& endogenous);
Result<std::vector<BigUint>> CountSat(Evaluator& evaluator,
                                      const ConjunctiveQuery& query,
                                      const Database& exogenous,
                                      const Database& endogenous);

/// Both polarity vectors: counts of subsets making Q true and false.
/// Their sum at k is binomial(|Dn|, k) — an identity the tests rely on.
struct SatCounts {
  std::vector<BigUint> on_true;
  std::vector<BigUint> on_false;
};
Result<SatCounts> CountSatBoth(const ConjunctiveQuery& query,
                               const Database& exogenous,
                               const Database& endogenous);
Result<SatCounts> CountSatBoth(Evaluator& evaluator,
                               const ConjunctiveQuery& query,
                               const Database& exogenous,
                               const Database& endogenous);

/// The Shapley value of endogenous fact `fact`, exact.
/// Fails kInvalidArgument when `fact` is not endogenous.
Result<Fraction> ShapleyValue(const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous, const Fact& fact);
Result<Fraction> ShapleyValue(Evaluator& evaluator,
                              const ConjunctiveQuery& query,
                              const Database& exogenous,
                              const Database& endogenous, const Fact& fact);

/// Shapley values of all endogenous facts, in `endogenous.AllFacts()`
/// order. (Their sum equals Q(D) − Q(Dx) ∈ {0, 1} — the efficiency axiom —
/// which the tests verify.)
Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    const ConjunctiveQuery& query, const Database& exogenous,
    const Database& endogenous);
Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    Evaluator& evaluator, const ConjunctiveQuery& query,
    const Database& exogenous, const Database& endogenous);

}  // namespace hierarq

#endif  // HIERARQ_CORE_SHAPLEY_H_
