#ifndef HIERARQ_CORE_CANCEL_H_
#define HIERARQ_CORE_CANCEL_H_

/// \file cancel.h
/// \brief Cooperative cancellation with deadlines for long evaluations.
///
/// The server front door (net/) promises per-request deadlines, and a
/// deadline is only as good as the engine's willingness to stop: a replay
/// over a 10M-fact database cannot be aborted from outside without
/// leaving scratch state undefined. The contract here is *checkpointed*
/// cancellation — every Algorithm 1 runner (serial, parallel, adaptive)
/// calls `CancellationCheckpoint()` between elimination steps, the one
/// place where all intermediate state is a well-formed relation and
/// nothing is half-built. A triggered checkpoint throws `CancelledError`,
/// which the *installing* layer (net/async_service.h, or
/// `EvalService::EvaluateGroup` for requests carrying a token) catches
/// and converts to `Status` — the exception never crosses a public API
/// boundary, per the codebase-wide rule in util/status.h.
///
/// Mechanics: a `CancelToken` is a deadline (on the `obs::Tracer::NowNs`
/// timeline) plus a manual cancel flag. It is installed per *thread* with
/// `ScopedCancel` — the step loops run on whichever thread executes the
/// evaluation (a service pool worker for batch fan-out, the submitting
/// thread for intra-parallel replays), so the installer wraps exactly the
/// evaluation call. With no token installed a checkpoint is one
/// thread_local load and a branch: the default costs nothing measurable
/// against a step that scans thousands of rows.
///
/// Database safety: queries only read the database and write private
/// scratch, so a cancelled evaluation leaves the database untouched by
/// construction; scratch relations are Reset by every caller before
/// reuse, so a half-filled intermediate from an aborted run can never
/// leak into a later result.

#include <atomic>
#include <cstdint>

#include "hierarq/obs/query_stats.h"
#include "hierarq/obs/trace.h"

namespace hierarq {

/// Thrown by `CancellationCheckpoint()`; caught by the layer that
/// installed the token (never escapes across a public API).
struct CancelledError {
  bool deadline_exceeded = false;  ///< Deadline vs explicit Cancel().
};

/// One request's cancellation state. Thread-safe: the connection thread
/// may Cancel() while an evaluation thread polls Expired().
class CancelToken {
 public:
  CancelToken() = default;

  /// Arms the deadline: the token expires once `obs::Tracer::NowNs()`
  /// passes `deadline_ns`. 0 (the default) means no deadline.
  void set_deadline_ns(uint64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Convenience: expire `budget_ns` from now.
  void ExpireAfter(uint64_t budget_ns) {
    set_deadline_ns(obs::Tracer::NowNs() + budget_ns);
  }

  /// Manual cancellation (client disconnected, server shutting down).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  uint64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the deadline. The deadline comparison
  /// reads the clock, so callers poll this at checkpoints, not per row.
  bool Expired() const {
    if (cancelled()) {
      return true;
    }
    const uint64_t deadline = deadline_ns();
    return deadline != 0 && obs::Tracer::NowNs() > deadline;
  }

 private:
  std::atomic<uint64_t> deadline_ns_{0};
  std::atomic<bool> cancelled_{false};
};

namespace cancel_internal {

/// The token watching this thread's current evaluation, if any.
inline thread_local const CancelToken* g_current = nullptr;

}  // namespace cancel_internal

/// Installs `token` as this thread's checkpoint target for the enclosing
/// scope (restoring the previous one on exit, so nested evaluations —
/// e.g. a traced request inside a bench harness — compose).
class ScopedCancel {
 public:
  explicit ScopedCancel(const CancelToken* token)
      : previous_(cancel_internal::g_current) {
    cancel_internal::g_current = token;
  }
  ~ScopedCancel() { cancel_internal::g_current = previous_; }

  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  const CancelToken* const previous_;
};

/// The engine-side gate, called between elimination steps by every
/// Algorithm 1 runner. No token installed (the overwhelmingly common
/// case): one thread_local load (plus one for the stats collector, only
/// hit between steps). Installed and expired: throws `CancelledError`
/// for the installing layer to catch. A collected evaluation counts
/// every poll — checkpoints-hit is part of `obs::QueryStats`.
inline void CancellationCheckpoint() {
  if (obs::QueryStats* const stats = obs::CurrentQueryStats()) {
    ++stats->cancel_checkpoints;
  }
  const CancelToken* const token = cancel_internal::g_current;
  if (token != nullptr && token->Expired()) {
    throw CancelledError{!token->cancelled()};
  }
}

}  // namespace hierarq

#endif  // HIERARQ_CORE_CANCEL_H_
