#ifndef HIERARQ_CORE_EVALUATOR_H_
#define HIERARQ_CORE_EVALUATOR_H_

/// \file evaluator.h
/// \brief `Evaluator` — the amortizing front door to Algorithm 1.
///
/// Algorithm 1 splits into a query-only phase (building the
/// `EliminationPlan`, Proposition 5.1) and a data phase (annotating and
/// replaying the plan). Workloads that evaluate the *same* query against
/// *many* databases — Shapley values run Algorithm 1 O(n²) times on
/// perturbed databases, the CLI and servers answer the same query per
/// request — were paying the plan build and fresh hash-table allocations
/// on every call. `Evaluator` amortizes both:
///
///   * plans are cached per canonical query text, so the second and later
///     evaluations of a query skip `EliminationPlan::Build` entirely;
///   * the per-monoid scratch vector of annotated relations is kept
///     between runs; `AnnotatedRelation::Reset` drops entries but keeps
///     each table's slot array, so steady-state evaluation allocates
///     nothing but the tuples themselves.
///
/// The data phase splits once more for multi-query batching (the service
/// layer, service/eval_service.h): `AnnotateForQuerySet` annotates the
/// base relations once for a whole set of queries, and `ReplayPlan`
/// replays one query's plan against those shared annotations. An Evaluator
/// is single-threaded by design (one per worker); plans are immutable
/// after build, so workers share a thread-safe `PlanProvider`
/// (service/shared_plan_cache.h) while each keeps private scratch.
///
/// One evaluation can additionally parallelize *inside* itself:
/// `Options.intra_query_threads > 1` fans each large Rule 1/Rule 2 step
/// out over hash shards (core/parallel.h) — the single-huge-replay
/// regime, where across-query fan-out has nothing to fan out. Results are
/// deterministic for any thread count and bit-identical to serial for
/// exact monoids.

#include <algorithm>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/adaptive.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/parallel.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/database.h"
#include "hierarq/data/storage.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"
#include "hierarq/util/worker_pool.h"

namespace hierarq {

/// Where an evaluator gets its compiled plans. `Evaluator` itself
/// implements it with a private single-threaded cache; `SharedPlanCache`
/// (service/shared_plan_cache.h) implements it thread-safely so N workers
/// can stand behind one build-once cache.
class PlanProvider {
 public:
  virtual ~PlanProvider() = default;

  /// Returns the plan for `query`, building it on first sight. The pointer
  /// stays valid for the provider's lifetime. Fails with kNotHierarchical
  /// exactly as EliminationPlan::Build does.
  virtual Result<const EliminationPlan*> GetPlan(
      const ConjunctiveQuery& query) = 0;
};

/// Canonical annotation signature of an atom: the relation name with each
/// term rendered as a constant or as its variable's rank in the atom's
/// (VarId-ascending) variable set — e.g. "R(v0,#7,v1,v0)". Two atoms with
/// equal signatures produce identical annotated relations over the same
/// annotated database, up to schema labels: the constant selections, the
/// repeated-variable positions, and the projection order (ascending VarId
/// = ascending rank) all coincide. This is the sharing key of
/// `AnnotateForQuerySet`.
std::string AtomAnnotationSignature(const Atom& atom);

/// A shared pool of base-relation annotations for a *set* of queries over
/// one database: the annotate-once half of the batching split. Entries are
/// keyed by `AtomAnnotationSignature`, so atoms that differ only in
/// variable names — R(A,B) in one query, R(X,Y) in another — share one
/// annotated relation; replay re-labels the schema per query
/// (`AnnotatedRelation::AssignFrom`).
template <typename K>
struct AnnotationPool {
  std::unordered_map<std::string, AnnotatedRelation<K>> by_signature;
  size_t scans = 0;   ///< Base-relation annotation passes performed.
  size_t reused = 0;  ///< Atom occurrences served by an existing pass.

  const AnnotatedRelation<K>* Find(const std::string& signature) const {
    auto it = by_signature.find(signature);
    return it == by_signature.end() ? nullptr : &it->second;
  }
};

/// Extends `pool` with the annotations `queries` need over `facts` that it
/// does not already hold, sharing work between atoms with equal
/// signatures: one scan (and one annotator call per matching tuple) per
/// distinct *missing* signature. Signatures already pooled — by an earlier
/// call against the same database snapshot, e.g. through the service
/// layer's generation-keyed annotation cache — are counted in
/// `pool->reused` and not re-scanned. Pool relations live in the `storage`
/// backend; replays adopt it via `AssignFrom`.
template <typename K, typename Combine>
void AnnotateForQuerySetInto(
    const std::vector<const ConjunctiveQuery*>& queries,
    const Database& facts, const std::function<K(const Fact&)>& annotator,
    Combine combine, StorageKind storage, AnnotationPool<K>* pool) {
  for (const ConjunctiveQuery* query : queries) {
    for (const Atom& atom : query->atoms()) {
      auto [it, inserted] =
          pool->by_signature.try_emplace(AtomAnnotationSignature(atom));
      if (!inserted) {
        ++pool->reused;
        continue;
      }
      ++pool->scans;
      AnnotatedRelation<K>& out = it->second;
      out.Reset(atom.vars(), storage);
      const Relation* relation = facts.FindRelation(atom.relation());
      if (relation != nullptr) {
        out.Reserve(relation->size());
        AnnotateAtom<K>(atom, *relation, annotator, combine, &out);
      }
    }
  }
}

/// Annotates the base relations needed by `queries` over `facts` into a
/// fresh pool (see AnnotateForQuerySetInto). The batch entry point of the
/// service layer; the per-query path (`Evaluator::Evaluate`) keeps its
/// direct annotation loop.
template <typename K, typename Combine>
AnnotationPool<K> AnnotateForQuerySet(
    const std::vector<const ConjunctiveQuery*>& queries,
    const Database& facts, const std::function<K(const Fact&)>& annotator,
    Combine combine, StorageKind storage = kDefaultStorageKind) {
  AnnotationPool<K> pool;
  AnnotateForQuerySetInto(queries, facts, annotator, combine, storage, &pool);
  return pool;
}

/// Resolves one shared base relation per atom of `query` from `pool`, in
/// atom order — the `bases` input of `Evaluator::ReplayPlan`. CHECKs that
/// the pool covers every atom. Callers resolve once per (query, pool)
/// pair so replays never rebuild signature strings.
template <typename K>
std::vector<const AnnotatedRelation<K>*> ResolveBases(
    const ConjunctiveQuery& query, const AnnotationPool<K>& pool) {
  std::vector<const AnnotatedRelation<K>*> bases;
  bases.reserve(query.num_atoms());
  for (const Atom& atom : query.atoms()) {
    const AnnotatedRelation<K>* shared =
        pool.Find(AtomAnnotationSignature(atom));
    HIERARQ_CHECK(shared != nullptr)
        << "annotation pool lacks " << AtomAnnotationSignature(atom);
    bases.push_back(shared);
  }
  return bases;
}

/// One base-relation input of a plan replay: the shared annotation to
/// read, plus — when the pool entry serves exactly one atom of one query
/// in the batch group — a mutable alias the replay may *move* from
/// instead of copying (`AnnotatedRelation::AdoptFrom`). The copy is the
/// service's main single-query overhead versus a bare `Evaluator`, and a
/// singleton entry has no other reader, so moving it is free sharing.
template <typename K>
struct ReplaySource {
  const AnnotatedRelation<K>* shared = nullptr;  ///< Always set.
  AnnotatedRelation<K>* movable = nullptr;  ///< Non-null iff exclusive.
};

/// The per-query replay inputs of a whole batch group, plus how many pool
/// entries were marked movable.
template <typename K>
struct ReplaySourceSet {
  std::vector<std::vector<ReplaySource<K>>> per_query;  ///< Query order.
  size_t movable = 0;  ///< Slots eligible for zero-copy adoption.
};

/// Resolves every query's replay sources from `pool` in one pass, marking
/// pool entries used by exactly one (query, atom) pair as movable when
/// `allow_moves` (the caller must guarantee the pool dies with the group
/// and is not shared beyond it — cached pools pass false). Workers then
/// adopt movable entries instead of copying; distinct map values are
/// touched by distinct workers, so the shared map needs no lock.
template <typename K>
ReplaySourceSet<K> ResolveReplaySources(
    const std::vector<const ConjunctiveQuery*>& queries,
    AnnotationPool<K>* pool, bool allow_moves) {
  ReplaySourceSet<K> out;
  out.per_query.resize(queries.size());
  std::unordered_map<AnnotatedRelation<K>*, size_t> uses;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<ReplaySource<K>>& sources = out.per_query[i];
    sources.reserve(queries[i]->num_atoms());
    for (const Atom& atom : queries[i]->atoms()) {
      const std::string signature = AtomAnnotationSignature(atom);
      auto it = pool->by_signature.find(signature);
      HIERARQ_CHECK(it != pool->by_signature.end())
          << "annotation pool lacks " << signature;
      ++uses[&it->second];
      sources.push_back(ReplaySource<K>{&it->second, nullptr});
    }
  }
  if (allow_moves) {
    for (std::vector<ReplaySource<K>>& sources : out.per_query) {
      for (ReplaySource<K>& source : sources) {
        AnnotatedRelation<K>* entry =
            const_cast<AnnotatedRelation<K>*>(source.shared);
        if (uses[entry] == 1) {
          source.movable = entry;
          ++out.movable;
        }
      }
    }
  }
  return out;
}

class Evaluator : public PlanProvider {
 public:
  /// Cache observability, used by tests and ops counters.
  struct Stats {
    size_t plans_built = 0;      ///< EliminationPlan::Build invocations.
    size_t plan_cache_hits = 0;  ///< Evaluations that reused a cached plan.
    size_t evaluations = 0;      ///< Successful Evaluate/ReplayPlan calls.
  };

  /// Engine configuration. Plain aggregate so call sites can name only
  /// what they change.
  struct Options {
    /// Storage backend of the scratch relations (data/storage.h).
    StorageKind storage = kDefaultStorageKind;
    /// Intra-query parallelism for one evaluation's Rule 1/Rule 2 steps
    /// (core/parallel.h): > 1 fans big steps out over hash shards; 1
    /// keeps the bit-identical serial path. When no `intra_pool` is
    /// supplied the evaluator owns a WorkerPool of this many threads.
    size_t intra_query_threads = 1;
    /// Steps whose input support is below this stay serial.
    size_t parallel_min_rows = 4096;
    /// Optional externally owned pool to fan out on (must outlive the
    /// evaluator); EvalService lends its own pool this way so one huge
    /// replay and batch fan-out share workers. Evaluate/ReplayPlan must
    /// then be called from *outside* that pool's tasks.
    WorkerPool* intra_pool = nullptr;
    /// Adaptive per-step execution (core/adaptive.h): stats + a cost
    /// model — refined by measured feedback keyed through the plan
    /// cache — choose each elimination step's backend, thread count,
    /// and serial/parallel cutoff. `storage` still governs base-atom
    /// annotation; `intra_query_threads` (or, when it is 1, the detected
    /// hardware concurrency) caps the per-step fan-out.
    bool adaptive = false;
  };

  Evaluator() = default;

  /// An evaluator whose scratch relations live in the given storage
  /// backend (data/storage.h) — the runtime half of the storage policy;
  /// `hierarq_cli --storage=...` and the bench A/B emitters land here.
  explicit Evaluator(StorageKind storage) : storage_(storage) {}

  /// The full-options constructor; `plans` (optional, non-owning) plays
  /// the same role as in the PlanProvider constructor below.
  explicit Evaluator(const Options& options, PlanProvider* plans = nullptr)
      : shared_plans_(plans), storage_(options.storage) {
    size_t threads = options.intra_query_threads;
    if (options.adaptive) {
      AdaptiveController::Options ctl;
      // An explicit thread count is both the pool size and the budget
      // the controller plans against; with the default (1) the
      // controller detects the hardware concurrency and the pool is
      // sized to match, so --adaptive alone uses the whole machine.
      if (threads > 1) {
        ctl.hardware_threads = threads;
      }
      ctl.min_parallel_rows = options.parallel_min_rows;
      adaptive_ = std::make_unique<AdaptiveController>(ctl);
      threads = std::max(threads, adaptive_->hardware_threads());
    }
    if (threads > 1) {
      if (options.intra_pool == nullptr) {
        owned_pool_ = std::make_unique<WorkerPool>(threads);
      }
      par_.pool = options.intra_pool != nullptr ? options.intra_pool
                                                : owned_pool_.get();
      par_.threads = threads;
      par_.min_rows = options.parallel_min_rows;
    }
  }

  /// An evaluator whose plans come from `plans` (non-owning; must outlive
  /// this evaluator) instead of the private cache — the per-worker
  /// configuration: N workers share one `SharedPlanCache` and keep private
  /// scratch. In this mode stats().plans_built / plan_cache_hits stay
  /// zero; the shared provider tracks them.
  explicit Evaluator(PlanProvider* plans,
                     StorageKind storage = kDefaultStorageKind)
      : shared_plans_(plans), storage_(storage) {}

  // The scratch tables and plan cache are identity, not value.
  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Returns the cached plan for `query`, building (and caching) it on
  /// first sight. The pointer stays valid for the Evaluator's lifetime.
  /// Fails with kNotHierarchical exactly as EliminationPlan::Build does;
  /// failures are not cached (they are cheap to re-derive and callers
  /// usually stop at the first one).
  Result<const EliminationPlan*> GetPlan(
      const ConjunctiveQuery& query) override;

  /// Evaluates `query` over `facts` in the given 2-monoid: annotates each
  /// matching fact with `annotator(fact)` (duplicates ⊕-merge) and replays
  /// the cached plan. Equivalent to RunAlgorithm1OnQuery, minus the
  /// repeated plan builds and table allocations.
  template <TwoMonoid M>
  Result<typename M::value_type> Evaluate(
      const ConjunctiveQuery& query, const M& monoid, const Database& facts,
      const std::function<typename M::value_type(const Fact&)>& annotator) {
    using K = typename M::value_type;
    HIERARQ_ASSIGN_OR_RETURN(const EliminationPlan* plan, GetPlan(query));

    std::vector<AnnotatedRelation<K>>& relations = ScratchForPlan<K>(*plan);
    const auto plus = [&monoid](const K& a, const K& b) {
      return monoid.Plus(a, b);
    };
    for (size_t i = 0; i < plan->num_base_atoms(); ++i) {
      const Atom& atom = query.atoms()[i];
      relations[i].Reset(atom.vars(), storage_);
      const Relation* relation = facts.FindRelation(atom.relation());
      if (relation != nullptr) {
        relations[i].Reserve(relation->size());
        AnnotateAtom<K>(atom, *relation, annotator, plus, &relations[i]);
      }
    }

    ++stats_.evaluations;
    return Run(*plan, monoid, relations);
  }

  /// The replay-many half of the batching split: copies each base atom's
  /// shared annotation (one pre-resolved pointer per base atom, in atom
  /// order — e.g. looked up in an AnnotationPool once per group, on the
  /// caller thread, so workers never build signature strings) into this
  /// evaluator's scratch, re-labelled with this query's variables, and
  /// replays `plan`. The shared relations are only read, so concurrent
  /// replays against them are safe as long as each runs on its own
  /// Evaluator. Precondition: `plan` is the plan of `query`.
  template <TwoMonoid M>
  typename M::value_type ReplayPlan(
      const EliminationPlan& plan, const M& monoid,
      const ConjunctiveQuery& query,
      const std::vector<const AnnotatedRelation<typename M::value_type>*>&
          bases) {
    using K = typename M::value_type;
    HIERARQ_CHECK_EQ(bases.size(), plan.num_base_atoms());
    std::vector<AnnotatedRelation<K>>& relations = ScratchForPlan<K>(plan);
    const auto copy_base = [&](size_t i) {
      HIERARQ_CHECK(bases[i] != nullptr);
      relations[i].AssignFrom(*bases[i], query.atoms()[i].vars());
    };
    if (par_.enabled()) {
      // Distinct scratch targets, read-only shared sources: the copies
      // are independent, so spread them over the pool too.
      par_.pool->ParallelFor(plan.num_base_atoms(),
                             [&](size_t, size_t i) { copy_base(i); });
    } else {
      for (size_t i = 0; i < plan.num_base_atoms(); ++i) {
        copy_base(i);
      }
    }
    ++stats_.evaluations;
    return Run(plan, monoid, relations);
  }

  /// ReplayPlan over `ReplaySource`s: base relations marked movable are
  /// *adopted* into scratch (wholesale buffer steal, leaving the pool
  /// entry empty) instead of copied — the zero-copy path for annotation
  /// pool entries that serve exactly one query in their group. Shared
  /// (non-movable) entries are copied exactly as the pointer overload
  /// does.
  template <TwoMonoid M>
  typename M::value_type ReplayPlan(
      const EliminationPlan& plan, const M& monoid,
      const ConjunctiveQuery& query,
      const std::vector<ReplaySource<typename M::value_type>>& bases) {
    using K = typename M::value_type;
    HIERARQ_CHECK_EQ(bases.size(), plan.num_base_atoms());
    std::vector<AnnotatedRelation<K>>& relations = ScratchForPlan<K>(plan);
    const auto fill_base = [&](size_t i) {
      HIERARQ_CHECK(bases[i].shared != nullptr);
      if (bases[i].movable != nullptr) {
        relations[i].AdoptFrom(std::move(*bases[i].movable),
                               query.atoms()[i].vars());
      } else {
        relations[i].AssignFrom(*bases[i].shared, query.atoms()[i].vars());
      }
    };
    if (par_.enabled()) {
      // Movable entries are exclusive to this query and copies only read
      // their shared source, so the per-atom fills are independent.
      par_.pool->ParallelFor(plan.num_base_atoms(),
                             [&](size_t, size_t i) { fill_base(i); });
    } else {
      for (size_t i = 0; i < plan.num_base_atoms(); ++i) {
        fill_base(i);
      }
    }
    ++stats_.evaluations;
    return Run(plan, monoid, relations);
  }

  /// Convenience overload resolving the base relations from `pool` by
  /// atom signature. Precondition: `pool` covers all of `query`'s atoms
  /// (CHECKed).
  template <TwoMonoid M>
  typename M::value_type ReplayPlan(
      const EliminationPlan& plan, const M& monoid,
      const ConjunctiveQuery& query,
      const AnnotationPool<typename M::value_type>& pool) {
    return ReplayPlan(plan, monoid, query, ResolveBases(query, pool));
  }

  const Stats& stats() const { return stats_; }

  /// The storage backend this evaluator's scratch relations use. Replays
  /// (`ReplayPlan`) adopt the annotation pool's backend instead — the pool
  /// owner picks the layout once for the whole batch.
  StorageKind storage() const { return storage_; }

  /// The intra-query parallel configuration (disabled unless the Options
  /// constructor enabled it).
  const IntraQueryParallel& intra_query_parallel() const { return par_; }

  /// The adaptive controller when Options.adaptive enabled one, nullptr
  /// otherwise — test/introspection surface (per-step feedback, serial
  /// vs parallel step counts).
  const AdaptiveController* adaptive_controller() const {
    return adaptive_.get();
  }

  /// Number of distinct queries with a cached plan (always 0 when plans
  /// are delegated to a shared provider).
  size_t num_cached_plans() const { return plans_.size(); }

  /// Drops all locally cached plans and scratch buffers. A shared plan
  /// provider, if any, is not touched.
  void ClearCache();

 private:
  /// The single exit of Evaluate and every ReplayPlan overload: adaptive
  /// per-step execution when the controller exists, the fixed
  /// configuration otherwise. Also the single observability point — one
  /// global counter bump and, when a tracer is installed, one enclosing
  /// span around the step events the runners emit.
  template <TwoMonoid M>
  typename M::value_type Run(
      const EliminationPlan& plan, const M& monoid,
      std::vector<AnnotatedRelation<typename M::value_type>>& relations) {
    static obs::Counter* const evaluations =
        obs::MetricsRegistry::Global().GetCounter("evaluator.evaluations");
    evaluations->Add();
    obs::Span span("evaluate", "evaluator");
    // Per-evaluation accounting (obs/query_stats.h): this is the single
    // exit of every evaluation, so the one clock edge here is the
    // request's exec_ns. Reads the clock only when a collector is
    // installed.
    obs::QueryStats* const query_stats = obs::CurrentQueryStats();
    const uint64_t start_ns =
        query_stats != nullptr ? obs::Tracer::NowNs() : 0;
    typename M::value_type value =
        adaptive_ != nullptr
            ? RunAlgorithm1InPlaceAdaptive(plan, monoid, relations, par_,
                                           adaptive_.get())
            : RunAlgorithm1InPlaceParallel(plan, monoid, relations, par_);
    if (query_stats != nullptr) {
      query_stats->exec_ns += obs::Tracer::NowNs() - start_ns;
    }
    return value;
  }

  struct ScratchBase {
    virtual ~ScratchBase() = default;
  };
  template <typename K>
  struct Scratch : ScratchBase {
    std::vector<AnnotatedRelation<K>> relations;
  };

  /// The reusable relations vector for annotation type K. One live scratch
  /// per K: evaluating in a new monoid domain does not invalidate others.
  template <typename K>
  std::vector<AnnotatedRelation<K>>& ScratchFor() {
    std::unique_ptr<ScratchBase>& slot = scratch_[std::type_index(typeid(K))];
    if (slot == nullptr) {
      slot = std::make_unique<Scratch<K>>();
    }
    return static_cast<Scratch<K>*>(slot.get())->relations;
  }

  /// Scratch sized for `plan`, shrinking or growing while keeping the
  /// common prefix: consecutive queries with different atom counts reuse
  /// the prefix tables' slot arrays instead of reallocating every table
  /// (the old `assign` dropped them all on any size change). Stale entries
  /// in kept tables are harmless — every base slot is Reset by the caller
  /// and every intermediate slot is Reset by its step before use.
  template <typename K>
  std::vector<AnnotatedRelation<K>>& ScratchForPlan(
      const EliminationPlan& plan) {
    std::vector<AnnotatedRelation<K>>& relations = ScratchFor<K>();
    if (relations.size() != plan.num_atoms()) {
      relations.resize(plan.num_atoms());
    }
    return relations;
  }

  PlanProvider* shared_plans_ = nullptr;  // Non-owning; nullptr = private.
  StorageKind storage_ = kDefaultStorageKind;
  // Intra-query parallel execution (core/parallel.h). The pool is either
  // owned (Options with no intra_pool) or borrowed; par_.pool aliases it.
  std::unique_ptr<WorkerPool> owned_pool_;
  IntraQueryParallel par_;
  // Per-evaluator adaptive controller (Options.adaptive); single-threaded
  // like the scratch tables it sits beside.
  std::unique_ptr<AdaptiveController> adaptive_;
  // unique_ptr values keep plan addresses stable across cache rehashes.
  std::unordered_map<std::string, std::unique_ptr<EliminationPlan>> plans_;
  std::unordered_map<std::type_index, std::unique_ptr<ScratchBase>> scratch_;
  Stats stats_;
};

}  // namespace hierarq

#endif  // HIERARQ_CORE_EVALUATOR_H_
