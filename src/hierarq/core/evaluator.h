#ifndef HIERARQ_CORE_EVALUATOR_H_
#define HIERARQ_CORE_EVALUATOR_H_

/// \file evaluator.h
/// \brief `Evaluator` — the amortizing front door to Algorithm 1.
///
/// Algorithm 1 splits into a query-only phase (building the
/// `EliminationPlan`, Proposition 5.1) and a data phase (annotating and
/// replaying the plan). Workloads that evaluate the *same* query against
/// *many* databases — Shapley values run Algorithm 1 O(n²) times on
/// perturbed databases, the CLI and servers answer the same query per
/// request — were paying the plan build and fresh hash-table allocations
/// on every call. `Evaluator` amortizes both:
///
///   * plans are cached per canonical query text, so the second and later
///     evaluations of a query skip `EliminationPlan::Build` entirely;
///   * the per-monoid scratch vector of annotated relations is kept
///     between runs; `AnnotatedRelation::Reset` drops entries but keeps
///     each table's slot array, so steady-state evaluation allocates
///     nothing but the tuples themselves.
///
/// An Evaluator is single-threaded by design (one per worker); the cached
/// plans are immutable once built, so sharing *plans* across threads is a
/// future refactor, not a semantic change.

#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/database.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

class Evaluator {
 public:
  /// Cache observability, used by tests and ops counters.
  struct Stats {
    size_t plans_built = 0;      ///< EliminationPlan::Build invocations.
    size_t plan_cache_hits = 0;  ///< Evaluations that reused a cached plan.
    size_t evaluations = 0;      ///< Successful Evaluate calls.
  };

  Evaluator() = default;

  // The scratch tables and plan cache are identity, not value.
  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Returns the cached plan for `query`, building (and caching) it on
  /// first sight. The pointer stays valid for the Evaluator's lifetime.
  /// Fails with kNotHierarchical exactly as EliminationPlan::Build does;
  /// failures are not cached (they are cheap to re-derive and callers
  /// usually stop at the first one).
  Result<const EliminationPlan*> GetPlan(const ConjunctiveQuery& query);

  /// Evaluates `query` over `facts` in the given 2-monoid: annotates each
  /// matching fact with `annotator(fact)` (duplicates ⊕-merge) and replays
  /// the cached plan. Equivalent to RunAlgorithm1OnQuery, minus the
  /// repeated plan builds and table allocations.
  template <TwoMonoid M>
  Result<typename M::value_type> Evaluate(
      const ConjunctiveQuery& query, const M& monoid, const Database& facts,
      const std::function<typename M::value_type(const Fact&)>& annotator) {
    using K = typename M::value_type;
    HIERARQ_ASSIGN_OR_RETURN(const EliminationPlan* plan, GetPlan(query));

    std::vector<AnnotatedRelation<K>>& relations = ScratchFor<K>();
    if (relations.size() != plan->num_atoms()) {
      relations.assign(plan->num_atoms(), AnnotatedRelation<K>());
    }
    const auto plus = [&monoid](const K& a, const K& b) {
      return monoid.Plus(a, b);
    };
    for (size_t i = 0; i < plan->num_base_atoms(); ++i) {
      const Atom& atom = query.atoms()[i];
      relations[i].Reset(atom.vars());
      const Relation* relation = facts.FindRelation(atom.relation());
      if (relation != nullptr) {
        relations[i].Reserve(relation->size());
        AnnotateAtom<K>(atom, *relation, annotator, plus, &relations[i]);
      }
    }

    ++stats_.evaluations;
    return RunAlgorithm1InPlace(*plan, monoid, relations);
  }

  const Stats& stats() const { return stats_; }

  /// Number of distinct queries with a cached plan.
  size_t num_cached_plans() const { return plans_.size(); }

  /// Drops all cached plans and scratch buffers.
  void ClearCache();

 private:
  struct ScratchBase {
    virtual ~ScratchBase() = default;
  };
  template <typename K>
  struct Scratch : ScratchBase {
    std::vector<AnnotatedRelation<K>> relations;
  };

  /// The reusable relations vector for annotation type K. One live scratch
  /// per K: evaluating in a new monoid domain does not invalidate others.
  template <typename K>
  std::vector<AnnotatedRelation<K>>& ScratchFor() {
    std::unique_ptr<ScratchBase>& slot = scratch_[std::type_index(typeid(K))];
    if (slot == nullptr) {
      slot = std::make_unique<Scratch<K>>();
    }
    return static_cast<Scratch<K>*>(slot.get())->relations;
  }

  // unique_ptr values keep plan addresses stable across cache rehashes.
  std::unordered_map<std::string, std::unique_ptr<EliminationPlan>> plans_;
  std::unordered_map<std::type_index, std::unique_ptr<ScratchBase>> scratch_;
  Stats stats_;
};

}  // namespace hierarq

#endif  // HIERARQ_CORE_EVALUATOR_H_
