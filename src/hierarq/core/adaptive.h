#ifndef HIERARQ_CORE_ADAPTIVE_H_
#define HIERARQ_CORE_ADAPTIVE_H_

/// \file adaptive.h
/// \brief Adaptive per-step execution: stats + a cost model pick each
/// elimination step's backend, thread count, and parallel cutoff.
///
/// The engine spans a real configuration space — five storage backends ×
/// thread count × `parallel_min_rows` × SIMD tier — and the fastest point
/// depends on |D|, arity, and skew, with crossover points (cf. the
/// trade-offs analysis of Kara/Nikolic/Olteanu/Zhang, arXiv 1907.01988):
/// a 300k-row step wants the sharded scatter on an 8-core host but the
/// serial columnar native on one core, and a 500-row step wants neither
/// latch nor fan-out anywhere. Instead of making callers hand-pick flags,
/// the adaptive mode decides per *elimination step*, from three inputs:
///
///   1. **Cheap stats** (`CollectRelationStats`): input cardinality and
///      arity straight off the store, plus key skew read from the shard
///      occupancy counts when the input lives in a sharded flavor —
///      max/mean shard fill, 1.0 = perfectly uniform. Skew discounts the
///      parallel speedup estimate: one overfull shard serializes the
///      scatter phase no matter how many workers wait on the rest.
///   2. **A calibrated cost model** (`CostModel`): per-row serial costs
///      per backend and the parallel per-row + per-step-latch constants,
///      anchored on the stored `BENCH_algorithm1.json` threads × backend
///      matrix (bench/baselines/). The constants only need to rank
///      configurations and place the serial/parallel crossover; they are
///      refined per step by (3).
///   3. **Measured feedback through the plan cache**: every adaptive step
///      is timed, and the observed ns/row is folded (EWMA) into a table
///      keyed by the cached `EliminationPlan`'s stable address + step
///      index. Replays of the same plan — the service layer's hot path —
///      re-decide each step from its *measured* cost, so a mis-calibrated
///      constant corrects itself after one replay.
///
/// The runner (`RunAlgorithm1InPlaceAdaptive`) reuses the exact
/// `ProjectDropStep` / `JoinUnionStep` primitives of core/parallel.h, so
/// adaptive execution inherits their determinism: results are
/// bit-identical to every fixed configuration for exact monoids and
/// within the usual 1e-11 relative for double monoids (the adaptive
/// differential suite, tests/adaptive_test.cpp, pins both).
///
/// `AdaptiveController` is single-threaded by design, like the Evaluator
/// that owns it (one controller per worker); plans may be shared across
/// workers but each worker keeps private feedback.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/algorithm1.h"
#include "hierarq/core/cancel.h"
#include "hierarq/core/parallel.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/sharded.h"
#include "hierarq/data/storage.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/util/logging.h"

namespace hierarq {

/// Cheap per-relation statistics feeding the per-step decision.
struct RelationStats {
  size_t rows = 0;   ///< |supp(R)|.
  size_t arity = 0;  ///< Schema width.
  /// Shard-occupancy skew: max shard size / mean shard size when the
  /// relation lives in a sharded flavor (>= 1.0; 1.0 = uniform), 1.0 for
  /// layouts without shard counts. A skewed partition caps the effective
  /// parallelism of the scatter phase at kNumShards / skew.
  double skew = 1.0;
};

/// Reads `RelationStats` off `rel` in O(arity + shards) — no row scans.
template <typename K>
RelationStats CollectRelationStats(const AnnotatedRelation<K>& rel) {
  RelationStats stats;
  stats.arity = rel.schema().size();
  switch (rel.storage()) {
    case StorageKind::kSharded: {
      const ShardedStore<K>& store = rel.sharded_store();
      size_t total = 0;
      size_t largest = 0;
      for (size_t s = 0; s < ShardedStore<K>::kNumShards; ++s) {
        const size_t n = store.shard(s).size();
        total += n;
        largest = n > largest ? n : largest;
      }
      stats.rows = total;
      if (total > 0) {
        stats.skew = static_cast<double>(largest) *
                     static_cast<double>(ShardedStore<K>::kNumShards) /
                     static_cast<double>(total);
      }
      return stats;
    }
    case StorageKind::kShardedColumnar: {
      const ShardedColumnarStore<K>& store = rel.sharded_columnar_store();
      size_t total = 0;
      size_t largest = 0;
      for (size_t s = 0; s < ShardedColumnarStore<K>::kNumShards; ++s) {
        const size_t n = store.shard(s).size();
        total += n;
        largest = n > largest ? n : largest;
      }
      stats.rows = total;
      if (total > 0) {
        stats.skew =
            static_cast<double>(largest) *
            static_cast<double>(ShardedColumnarStore<K>::kNumShards) /
            static_cast<double>(total);
      }
      return stats;
    }
    case StorageKind::kBaseline:
    case StorageKind::kFlat:
    case StorageKind::kColumnar:
      break;
  }
  stats.rows = rel.size();
  return stats;
}

/// The knobs one elimination step runs with, as decided by the
/// controller.
struct StepChoice {
  bool parallel = false;  ///< Shard-parallel scatter vs serial native.
  size_t threads = 1;     ///< Fan-out when parallel (capped by shards).
  /// Result backend of a serial step.
  StorageKind serial_storage = StorageKind::kColumnar;
  /// Sharded flavor a parallel step scatters into.
  StorageKind parallel_storage = StorageKind::kShardedColumnar;
  // Introspection (tests, bench rows): the model's cost estimates in ns.
  double predicted_serial_ns = 0.0;
  double predicted_parallel_ns = 0.0;
};

/// Per-row / per-step cost constants, anchored on the stored
/// `bench/baselines/BENCH_algorithm1.json` threads × backend matrix.
/// Absolute values matter less than ranking and crossover placement —
/// measured feedback (AdaptiveController) refines them per plan step.
class CostModel {
 public:
  /// Estimated serial cost of one step processing `rows` input rows into
  /// a `kind` result.
  double SerialStepNs(StorageKind kind, size_t rows) const;

  /// Estimated cost of the fused shard-parallel step: one pool latch plus
  /// the scatter at `effective_threads`-way parallelism.
  double ParallelStepNs(double effective_threads, size_t rows) const;

  /// The backend serial step results default to — the fastest serial
  /// per-row constant (columnar, per the calibration matrix).
  StorageKind BestSerialStorage() const { return StorageKind::kColumnar; }

  /// Raw per-row constants (ns), exposed for tests.
  double SerialNsPerRow(StorageKind kind) const;
  double ParallelNsPerRow() const { return 260.0; }
  double ParallelStepOverheadNs() const { return 150000.0; }
};

/// Decides per-step knobs and accumulates measured-cost feedback. Keyed
/// by the cached `EliminationPlan`'s address (stable for the owning
/// Evaluator's lifetime — plans live behind unique_ptr in the plan
/// cache), so repeated replays of one plan sharpen its own estimates
/// without cross-plan interference. Not thread-safe: one controller per
/// Evaluator, like the scratch tables.
class AdaptiveController {
 public:
  struct Options {
    /// Worker threads the host can actually run; 0 = detect via
    /// std::thread::hardware_concurrency().
    size_t hardware_threads = 0;
    /// Hard cap on per-step fan-out (the shard count binds anyway).
    size_t max_threads = ShardedStore<char>::kNumShards;
    /// Inputs below this many rows never go parallel, whatever the model
    /// says — the floor mirrors IntraQueryParallel::min_rows.
    size_t min_parallel_rows = 4096;
  };

  AdaptiveController();  // Equivalent to AdaptiveController(Options{}).
  explicit AdaptiveController(const Options& options);

  /// The thread budget decisions draw from (resolved hardware count).
  size_t hardware_threads() const { return hardware_threads_; }

  const CostModel& cost_model() const { return model_; }

  /// Picks the knobs for step `step_index` of `plan` given its input
  /// stats (for Rule 2, rows = |left| + |right| and skew = the worse
  /// side). `plan` may be nullptr (no feedback key — pure model).
  StepChoice Choose(const EliminationPlan* plan, size_t step_index,
                    const RelationStats& input) const;

  /// Folds one measured step execution into the feedback table (EWMA
  /// over ns/row, separate serial and parallel channels).
  void RecordMeasured(const EliminationPlan* plan, size_t step_index,
                      bool parallel, size_t rows, double seconds);

  /// The current EWMA ns/row for the given channel, or a negative value
  /// when nothing has been recorded — test/introspection surface proving
  /// the feedback round-trips through the plan-cache key.
  double MeasuredNsPerRow(const EliminationPlan* plan, size_t step_index,
                          bool parallel) const;

  /// How many adaptive steps ran parallel / serial so far (ops counters).
  size_t parallel_steps() const { return parallel_steps_; }
  size_t serial_steps() const { return serial_steps_; }

 private:
  struct StepFeedback {
    double serial_ns_per_row = -1.0;
    double parallel_ns_per_row = -1.0;
  };

  size_t hardware_threads_;
  size_t max_threads_;
  size_t min_parallel_rows_;
  CostModel model_;
  std::unordered_map<const EliminationPlan*, std::vector<StepFeedback>>
      feedback_;
  size_t parallel_steps_ = 0;
  size_t serial_steps_ = 0;
};

namespace adaptive_internal {

/// Builds the per-step IntraQueryParallel handle realizing `choice` on
/// top of the evaluator-level `base` (whose pool it borrows). A serial
/// choice — or a base without a pool — drops the pool so the step
/// primitives take their bit-identical serial path; a parallel choice
/// zeroes min_rows because the controller already applied its own floor.
inline IntraQueryParallel StepParallel(const IntraQueryParallel& base,
                                       const StepChoice& choice) {
  IntraQueryParallel par = base;
  if (!choice.parallel || base.pool == nullptr) {
    par.pool = nullptr;
    par.threads = 1;
  } else {
    par.threads = choice.threads;
    par.min_rows = 0;
    par.parallel_storage = choice.parallel_storage;
  }
  return par;
}

}  // namespace adaptive_internal

/// `RunAlgorithm1InPlaceParallel` with per-step adaptive decisions: each
/// Rule 1/Rule 2 step collects its input stats, asks `controller` for the
/// knobs, executes through the shared step primitives, and feeds the
/// measured wall time back. `par` supplies the pool and acts as the
/// ceiling on fan-out; when it has no pool every step runs serial (with
/// the controller still choosing the serial result backend). See
/// RunAlgorithm1InPlace for the relations-vector contract.
template <TwoMonoid M>
typename M::value_type RunAlgorithm1InPlaceAdaptive(
    const EliminationPlan& plan, const M& monoid,
    std::vector<AnnotatedRelation<typename M::value_type>>& relations,
    const IntraQueryParallel& par, AdaptiveController* controller) {
  using K = typename M::value_type;
  HIERARQ_CHECK(controller != nullptr);
  HIERARQ_CHECK_EQ(relations.size(), plan.num_atoms());

  const auto plus = [&monoid](const K& a, const K& b) {
    return monoid.Plus(a, b);
  };
  const auto times = [&monoid](const K& a, const K& b) {
    return monoid.Times(a, b);
  };

  obs::Tracer* const tracer = obs::Tracer::Current();
  obs::QueryStats* const query_stats = obs::CurrentQueryStats();
  size_t step_index = 0;
  for (const EliminationStep& step : plan.steps()) {
    // Deadline gate between steps (see core/cancel.h).
    CancellationCheckpoint();
    AnnotatedRelation<K>& result = relations[step.result_atom];
    const VarSet& result_vars = plan.vars_of(step.result_atom);

    // One clock per step edge serves both consumers: the controller's
    // EWMA feedback and (when installed) the trace event.
    const uint64_t start_ns = obs::Tracer::NowNs();
    size_t input_rows = 0;
    StepChoice choice;
    StepExecution exec;
    if (step.rule == EliminationRule::kProjectVariable) {
      AnnotatedRelation<K>& source = relations[step.source_atom];
      HIERARQ_CHECK_LT(step.drop_pos, source.schema().size());
      HIERARQ_CHECK_EQ(source.schema()[step.drop_pos], step.variable);
      const RelationStats stats = CollectRelationStats(source);
      input_rows = stats.rows;
      choice = controller->Choose(&plan, step_index, stats);
      ProjectDropStep(source, step.drop_pos, result_vars, plus,
                      adaptive_internal::StepParallel(par, choice),
                      choice.serial_storage, &result, &exec);
      source.Clear();
    } else {
      AnnotatedRelation<K>& left = relations[step.left_atom];
      AnnotatedRelation<K>& right = relations[step.right_atom];
      const RelationStats left_stats = CollectRelationStats(left);
      const RelationStats right_stats = CollectRelationStats(right);
      RelationStats stats;
      stats.rows = left_stats.rows + right_stats.rows;
      stats.arity = left_stats.arity;
      stats.skew = left_stats.skew > right_stats.skew ? left_stats.skew
                                                      : right_stats.skew;
      input_rows = stats.rows;
      choice = controller->Choose(&plan, step_index, stats);
      JoinUnionStep(left, right, result_vars, times, monoid.Zero(),
                    adaptive_internal::StepParallel(par, choice),
                    choice.serial_storage, &result, &exec);
      left.Clear();
      right.Clear();
    }
    const uint64_t end_ns = obs::Tracer::NowNs();
    controller->RecordMeasured(&plan, step_index, choice.parallel,
                               input_rows,
                               static_cast<double>(end_ns - start_ns) * 1e-9);
    if (query_stats != nullptr) {
      query_stats->RecordStep(
          step.rule == EliminationRule::kProjectVariable ? 1 : 2, input_rows,
          result.size(), exec.parallel);
    }
    if (tracer != nullptr) {
      obs::TraceStepArgs args;
      args.step_index = static_cast<uint32_t>(step_index);
      args.rule = step.rule == EliminationRule::kProjectVariable ? 1 : 2;
      args.backend = result.storage();
      args.simd = simd::ActiveLevel();
      args.adaptive = true;
      args.parallel = exec.parallel;
      args.threads = static_cast<uint32_t>(exec.threads);
      args.rows_in = input_rows;
      args.rows_out = result.size();
      args.predicted_serial_ns = choice.predicted_serial_ns;
      args.predicted_parallel_ns = choice.predicted_parallel_ns;
      tracer->EmitStep(start_ns, end_ns, args);
    }
    ++step_index;
  }

  AnnotatedRelation<K>& final_rel = relations[plan.final_atom()];
  auto [slot, inserted] = final_rel.FindOrInsert(Tuple{});
  K result = inserted ? monoid.Zero() : std::move(*slot);
  final_rel.Clear();
  return result;
}

}  // namespace hierarq

#endif  // HIERARQ_CORE_ADAPTIVE_H_
