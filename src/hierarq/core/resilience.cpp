#include "hierarq/core/resilience.h"

namespace hierarq {

std::function<uint64_t(const Fact&)> ResilienceCostAnnotator(
    const Database& exogenous) {
  return [&exogenous](const Fact& fact) -> uint64_t {
    const ResilienceMonoid monoid;  // Stateless; costs are constants.
    // Facts in both databases are exogenous: they cannot be removed.
    if (exogenous.ContainsFact(fact)) {
      return monoid.ExogenousCost();
    }
    return monoid.EndogenousCost();
  };
}

Result<uint64_t> ComputeResilience(Evaluator& evaluator,
                                   const ConjunctiveQuery& query,
                                   const Database& exogenous,
                                   const Database& endogenous) {
  const ResilienceMonoid monoid;
  HIERARQ_ASSIGN_OR_RETURN(Database combined,
                           exogenous.UnionWith(endogenous));
  return evaluator.Evaluate<ResilienceMonoid>(query, monoid, combined,
                                              ResilienceCostAnnotator(exogenous));
}

Result<uint64_t> ComputeResilience(const ConjunctiveQuery& query,
                                   const Database& exogenous,
                                   const Database& endogenous) {
  Evaluator evaluator;
  return ComputeResilience(evaluator, query, exogenous, endogenous);
}

Result<uint64_t> ComputeResilience(const ConjunctiveQuery& query,
                                   const Database& db) {
  return ComputeResilience(query, Database(), db);
}

}  // namespace hierarq
