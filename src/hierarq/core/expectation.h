#ifndef HIERARQ_CORE_EXPECTATION_H_
#define HIERARQ_CORE_EXPECTATION_H_

/// \file expectation.h
/// \brief Expected multiplicity over TID databases — a fifth instantiation
/// (this one a true semiring).
///
/// E[Q(D)] under bag-set semantics over a tuple-independent database is,
/// by linearity of expectation, the sum over assignments of the product of
/// their facts' probabilities (each assignment of an SJF query uses each
/// fact at most once). That is Algorithm 1 over the expectation semiring
/// (ℝ≥0, +, ×) with probability annotations. Unlike the marginal
/// probability Pr[Q] (which needs the non-distributive monoid of
/// Definition 5.7), the expectation is a distributive instantiation —
/// a useful contrast pair: same input, same plan, different algebra,
/// different semantics.

#include "hierarq/core/evaluator.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// The expectation semiring: (ℝ≥0, +, ×).
class ExpectationMonoid {
 public:
  using value_type = double;

  double Zero() const { return 0.0; }
  double One() const { return 1.0; }
  double Plus(double a, double b) const { return a + b; }
  double Times(double a, double b) const { return a * b; }
};

/// E[number of satisfying assignments of Q] over the possible worlds of
/// `db`. Fails with kNotHierarchical for non-hierarchical queries.
Result<double> ExpectedMultiplicity(const ConjunctiveQuery& query,
                                    const TidDatabase& db);

/// As above, but amortized through `evaluator` (cached plan, reused
/// relation buffers).
Result<double> ExpectedMultiplicity(Evaluator& evaluator,
                                    const ConjunctiveQuery& query,
                                    const TidDatabase& db);

}  // namespace hierarq

#endif  // HIERARQ_CORE_EXPECTATION_H_
