#ifndef HIERARQ_CORE_BAGSET_H_
#define HIERARQ_CORE_BAGSET_H_

/// \file bagset.h
/// \brief Bag-Set Maximization (paper §4, §5.5, Theorem 5.11).
///
/// Given a set database D, a repair database Dr and a budget θ, computes
/// the maximum value Q(D') under bag-set semantics over all valid repairs
/// D ⊆ D' ⊆ D ∪ Dr with |D' \ D| ≤ θ. The solver instantiates Algorithm 1
/// with the bag-max 2-monoid (Definition 5.9), annotating facts of D with
/// the all-ones vector and facts of Dr \ D with ★ (Definition 5.10); its
/// output vector holds the optimum for *every* budget i ≤ θ at once.
///
/// Extensions beyond the paper:
///  * per-fact repair costs (weighted repairs) via `RepairCosts`;
///  * witness extraction: `ExtractOptimalRepair` returns an optimal set of
///    facts, using the solver as an oracle (a polynomial greedy that
///    commits a fact iff doing so preserves the optimum at the reduced
///    budget).

#include <optional>
#include <unordered_map>
#include <vector>

#include "hierarq/algebra/bagmax_monoid.h"
#include "hierarq/data/database.h"
#include "hierarq/data/storage.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Optional per-fact insertion costs for facts of the repair database;
/// facts not listed cost 1 (the paper's setting).
using RepairCosts = std::unordered_map<Fact, size_t, FactHash>;

/// Result of bag-set maximization.
struct BagSetMaxResult {
  /// profile[i] = max multiplicity of Q achievable with repair cost ≤ i,
  /// for i = 0..θ (Theorem 5.11's output vector q).
  BagMaxVec profile;

  /// profile[θ]: the answer to the Bag-Set Maximization instance.
  uint64_t max_multiplicity = 0;

  /// True when a counter saturated; the reported values are then lower
  /// bounds. Cannot happen for realistically sized inputs.
  bool saturated = false;
};

/// Solves Bag-Set Maximization. Fails with kNotHierarchical for
/// non-hierarchical queries (where the problem is NP-complete,
/// Theorem 4.4). `storage` picks the relation backend the Algorithm 1 run
/// stores its supports in (data/storage.h).
Result<BagSetMaxResult> MaximizeBagSet(const ConjunctiveQuery& query,
                                       const Database& d,
                                       const Database& repair, size_t budget,
                                       const RepairCosts* costs = nullptr,
                                       StorageKind storage =
                                           kDefaultStorageKind);

/// Returns an optimal repair: a set of at most `budget` facts from
/// `repair` \ `d` whose addition achieves the maximum multiplicity.
/// Runs O(θ·|Dr|) solver invocations. Unit costs only.
Result<std::vector<Fact>> ExtractOptimalRepair(const ConjunctiveQuery& query,
                                               const Database& d,
                                               const Database& repair,
                                               size_t budget);

/// Q(D) under bag-set semantics via Algorithm 1 with the counting
/// semiring — valid for hierarchical queries (cross-checked against the
/// general join engine in tests).
Result<uint64_t> BagSetCountHierarchical(const ConjunctiveQuery& query,
                                         const Database& d,
                                         StorageKind storage =
                                             kDefaultStorageKind);

}  // namespace hierarq

#endif  // HIERARQ_CORE_BAGSET_H_
