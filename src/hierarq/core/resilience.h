#ifndef HIERARQ_CORE_RESILIENCE_H_
#define HIERARQ_CORE_RESILIENCE_H_

/// \file resilience.h
/// \brief Resilience of hierarchical queries — a fourth instantiation of
/// Algorithm 1 (hierarq's answer to the paper's concluding Question 2).
///
/// res(Q, Dx, Dn) is the minimum number of endogenous facts whose removal
/// makes Q false (∞ when Q stays true even after removing all of Dn; 0
/// when Q is already false). Computed in O(|D|) via the resilience
/// 2-monoid (ℕ ∪ {∞}, +, min); see
/// hierarq/algebra/resilience_monoid.h for the algebra and its φ-map.

#include <cstdint>
#include <functional>

#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// The removal-cost annotator shared by the single-query and batch
/// resilience paths: facts of `exogenous` cost ∞ (they cannot be
/// removed — including facts present in both databases), all others 1.
/// The returned function captures `exogenous` by reference.
std::function<uint64_t(const Fact&)> ResilienceCostAnnotator(
    const Database& exogenous);

/// Minimum removals from `endogenous` falsifying Q over Dx ∪ Dn.
/// Returns ResilienceMonoid::kInfinity when Q cannot be falsified.
Result<uint64_t> ComputeResilience(const ConjunctiveQuery& query,
                                   const Database& exogenous,
                                   const Database& endogenous);

/// All-endogenous convenience overload.
Result<uint64_t> ComputeResilience(const ConjunctiveQuery& query,
                                   const Database& db);

/// As the two-database form, but amortized through `evaluator` (cached
/// plan, reused relation buffers).
Result<uint64_t> ComputeResilience(Evaluator& evaluator,
                                   const ConjunctiveQuery& query,
                                   const Database& exogenous,
                                   const Database& endogenous);

}  // namespace hierarq

#endif  // HIERARQ_CORE_RESILIENCE_H_
