#include "hierarq/core/expectation.h"

#include "hierarq/core/algorithm1.h"

namespace hierarq {

Result<double> ExpectedMultiplicity(const ConjunctiveQuery& query,
                                    const TidDatabase& db) {
  const ExpectationMonoid monoid;
  return RunAlgorithm1OnQuery<ExpectationMonoid>(
      query, monoid, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

}  // namespace hierarq
