#include "hierarq/core/expectation.h"

namespace hierarq {

Result<double> ExpectedMultiplicity(Evaluator& evaluator,
                                    const ConjunctiveQuery& query,
                                    const TidDatabase& db) {
  const ExpectationMonoid monoid;
  return evaluator.Evaluate<ExpectationMonoid>(
      query, monoid, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

Result<double> ExpectedMultiplicity(const ConjunctiveQuery& query,
                                    const TidDatabase& db) {
  Evaluator evaluator;
  return ExpectedMultiplicity(evaluator, query, db);
}

}  // namespace hierarq
