#include "hierarq/core/evaluator.h"

#include <utility>

namespace hierarq {

Result<const EliminationPlan*> Evaluator::GetPlan(
    const ConjunctiveQuery& query) {
  const std::string key = query.ToString();
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.plan_cache_hits;
    return const_cast<const EliminationPlan*>(it->second.get());
  }
  HIERARQ_ASSIGN_OR_RETURN(EliminationPlan plan,
                           EliminationPlan::Build(query));
  ++stats_.plans_built;
  auto owned = std::make_unique<EliminationPlan>(std::move(plan));
  const EliminationPlan* raw = owned.get();
  plans_.emplace(key, std::move(owned));
  return raw;
}

void Evaluator::ClearCache() {
  plans_.clear();
  scratch_.clear();
}

}  // namespace hierarq
