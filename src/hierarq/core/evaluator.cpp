#include "hierarq/core/evaluator.h"

#include <utility>

#include "hierarq/obs/metrics.h"
#include "hierarq/obs/query_stats.h"

namespace hierarq {

namespace {

// Shared with SharedPlanCache: every planner — private or shared —
// reports into one global "planner.*" pair, so `--metrics` shows total
// plan work regardless of which cache served it.
obs::Counter* PlansBuiltCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("planner.plans_built");
  return counter;
}

obs::Counter* PlanCacheHitsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("planner.plan_cache_hits");
  return counter;
}

}  // namespace

std::string AtomAnnotationSignature(const Atom& atom) {
  const VarSet& vars = atom.vars();
  std::string sig = atom.relation();
  sig += '(';
  for (size_t i = 0; i < atom.terms().size(); ++i) {
    if (i > 0) {
      sig += ',';
    }
    const Term& term = atom.terms()[i];
    if (term.is_constant()) {
      sig += '#';
      sig += std::to_string(term.constant());
    } else {
      // Rank of the variable in the atom's sorted variable set — the
      // position its binding occupies in the projected annotation key.
      size_t rank = 0;
      while (vars[rank] != term.var()) {
        ++rank;
      }
      sig += 'v';
      sig += std::to_string(rank);
    }
  }
  sig += ')';
  return sig;
}

Result<const EliminationPlan*> Evaluator::GetPlan(
    const ConjunctiveQuery& query) {
  if (shared_plans_ != nullptr) {
    return shared_plans_->GetPlan(query);
  }
  const std::string key = query.ToString();
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++stats_.plan_cache_hits;
    PlanCacheHitsCounter()->Add();
    if (obs::QueryStats* const query_stats = obs::CurrentQueryStats()) {
      query_stats->plan_cache_hit = true;
    }
    return const_cast<const EliminationPlan*>(it->second.get());
  }
  HIERARQ_ASSIGN_OR_RETURN(EliminationPlan plan,
                           EliminationPlan::Build(query));
  ++stats_.plans_built;
  PlansBuiltCounter()->Add();
  auto owned = std::make_unique<EliminationPlan>(std::move(plan));
  const EliminationPlan* raw = owned.get();
  plans_.emplace(key, std::move(owned));
  return raw;
}

void Evaluator::ClearCache() {
  plans_.clear();
  scratch_.clear();
}

}  // namespace hierarq
