#ifndef HIERARQ_CORE_PROVENANCE_PIPELINE_H_
#define HIERARQ_CORE_PROVENANCE_PIPELINE_H_

/// \file provenance_pipeline.h
/// \brief Algorithm 1 over the universal provenance 2-monoid.
///
/// Annotates every fact with a unique symbol and runs Algorithm 1 with the
/// provenance monoid (Definition 6.2). The output tree is guaranteed
/// decomposable with pairwise-disjoint fact supports (Lemma 6.3) — it is a
/// read-once lineage of the query. The φ-homomorphisms of Theorem 6.4 can
/// then replay the tree in any concrete monoid; the tests use exactly this
/// to validate all four solvers, and the provenance example renders the
/// trees for inspection.

#include <vector>

#include "hierarq/algebra/provenance.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// The lineage of a query over a database.
struct ProvenanceResult {
  /// The output provenance tree (read-once by Lemma 6.3).
  ProvTreeRef tree;
  /// Symbol i labels facts[i].
  std::vector<Fact> facts;
};

/// Computes the query's provenance tree. Fails with kNotHierarchical for
/// non-hierarchical queries.
Result<ProvenanceResult> ComputeProvenance(const ConjunctiveQuery& query,
                                           const Database& db);

/// As above, but amortized through `evaluator` (cached plan, reused
/// relation buffers).
Result<ProvenanceResult> ComputeProvenance(Evaluator& evaluator,
                                           const ConjunctiveQuery& query,
                                           const Database& db);

}  // namespace hierarq

#endif  // HIERARQ_CORE_PROVENANCE_PIPELINE_H_
