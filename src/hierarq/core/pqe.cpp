#include "hierarq/core/pqe.h"

#include "hierarq/algebra/prob_monoid.h"

namespace hierarq {

Result<double> EvaluateProbability(Evaluator& evaluator,
                                   const ConjunctiveQuery& query,
                                   const TidDatabase& db) {
  const ProbMonoid monoid;
  return evaluator.Evaluate<ProbMonoid>(
      query, monoid, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

Result<double> EvaluateProbability(const ConjunctiveQuery& query,
                                   const TidDatabase& db) {
  Evaluator evaluator;
  return EvaluateProbability(evaluator, query, db);
}

}  // namespace hierarq
