#include "hierarq/core/pqe.h"

#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/core/algorithm1.h"

namespace hierarq {

Result<double> EvaluateProbability(const ConjunctiveQuery& query,
                                   const TidDatabase& db) {
  const ProbMonoid monoid;
  return RunAlgorithm1OnQuery<ProbMonoid>(
      query, monoid, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

}  // namespace hierarq
